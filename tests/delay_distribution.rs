//! Deep validation of Experiment 2's substrate: the *distribution* of
//! simulated one-way delays must match the configured shifted gamma
//! (Table V), not just produce the right aggregate quality.

use deadline_multipath::experiments::scenarios;
use deadline_multipath::prelude::*;
use dmc_proto::{DmcReceiver, DmcSender, ReceiverConfig, SenderConfig};
use dmc_sim::LinkConfig;
use std::sync::Arc;

#[test]
fn simulated_delays_follow_the_configured_gamma() {
    // Build the Table V network and run the full protocol on links whose
    // propagation is the gamma spec; links are over-provisioned so
    // queueing does not contaminate the distribution (the paper does the
    // same in Exp. 2).
    let net = scenarios::table5(90e6, 0.750);
    let rd_cfg = RandomDelayConfig::default();
    let model = RandomDelayModel::new(&net, &rd_cfg);
    let strategy = model.solve_quality(&SolverOptions::default()).unwrap();
    let timeouts = TimeoutPlan::from_random_model(&model, SimDuration::ZERO);
    let mk_links = || -> Vec<LinkConfig> {
        net.paths()
            .iter()
            .map(|p| LinkConfig {
                bandwidth_bps: p.bandwidth() * 2.0, // over-provisioned
                propagation: Arc::clone(p.delay()),
                loss: p.loss().into(),
                queue_capacity_bytes: 1 << 22,
            })
            .collect()
    };
    let sender = DmcSender::new(SenderConfig::new(strategy, timeouts, 90e6, 20_000));
    let receiver = DmcReceiver::new(ReceiverConfig::new(
        SimDuration::from_secs_f64(0.750),
        model.ack_path(),
    ));
    let mut sim = TwoHostSim::new(mk_links(), mk_links(), sender, receiver, 4242).unwrap();
    sim.run_to_completion();

    for (k, spec) in net.paths().iter().enumerate() {
        let observed = sim.server().delay_moments(k);
        if observed.count() < 500 {
            continue; // path barely used by the optimal strategy
        }
        // Serialization adds 8192 bits / (2·b) on top of propagation.
        let ser = 8192.0 / (spec.bandwidth() * 2.0);
        let want_mean = spec.delay().mean() + ser;
        let want_var = spec.delay().variance();
        assert!(
            (observed.mean() - want_mean).abs() < 0.002,
            "path {k}: observed mean {:.4}s vs spec {:.4}s",
            observed.mean(),
            want_mean
        );
        assert!(
            (observed.population_variance() - want_var).abs() < want_var * 0.2 + 1e-6,
            "path {k}: observed var {:.2e} vs spec {:.2e}",
            observed.population_variance(),
            want_var
        );
        // The support floor is the gamma's shift.
        assert!(
            observed.min() >= spec.delay().min_delay() - 1e-9,
            "path {k}: min {:.4} below shift",
            observed.min()
        );
    }
}
