//! The cost-minimization variant (§VI-A) against its quality-max dual.

use deadline_multipath::prelude::*;

fn costed_network(budget: Option<f64>) -> NetworkSpec {
    let mut b = NetworkSpec::builder()
        .path(PathSpec::with_cost(80e6, 0.450, 0.2, 3e-9).unwrap())
        .path(PathSpec::with_cost(20e6, 0.150, 0.0, 1e-9).unwrap())
        .data_rate(90e6)
        .lifetime(0.8);
    if let Some(mu) = budget {
        b = b.cost_budget(mu);
    }
    b.build().unwrap()
}

#[test]
fn min_cost_respects_floor_and_is_cheapest() {
    let net = costed_network(None);
    let cfg = ModelConfig::default();
    let mut last_cost = 0.0;
    for floor in [0.3, 0.5, 0.7, 0.9, 42.0 / 45.0] {
        let s = min_cost_strategy(&net, floor, &cfg).unwrap();
        assert!(
            s.quality() >= floor - 1e-9,
            "floor {floor}: Q={}",
            s.quality()
        );
        assert!(
            s.cost_rate() >= last_cost - 1e-9,
            "cost must be monotone in the floor"
        );
        last_cost = s.cost_rate();
    }
    // Beyond the achievable optimum: infeasible.
    assert!(min_cost_strategy(&net, 0.95, &cfg).is_err());
}

#[test]
fn duality_roundtrip() {
    // Solve min-cost at floor q*, then max-quality with that budget: must
    // recover at least q*.
    let net = costed_network(None);
    let cfg = ModelConfig::default();
    let floor = 0.8;
    let cheap = min_cost_strategy(&net, floor, &cfg).unwrap();
    let budgeted = costed_network(Some(cheap.cost_rate() + 1e-9));
    let qmax = optimal_strategy(&budgeted, &cfg).unwrap();
    assert!(
        qmax.quality() >= floor - 1e-6,
        "Q={} under budget {}",
        qmax.quality(),
        cheap.cost_rate()
    );
}

#[test]
fn zero_budget_forces_free_paths() {
    // Only the free path (none here is free → blackhole + infeasibility
    // pressure): with a tiny budget the expensive fat path is unusable.
    let net = costed_network(Some(90e6 * 1e-9 * 20.0 / 90.0 * 1.01)); // ≈ path-2-only budget
    let s = optimal_strategy(&net, &ModelConfig::default()).unwrap();
    // Path 2 costs 1e-9/bit → 20 Mbps costs 0.02/s; budget ≈ 0.0202.
    // Path 1 at 3e-9/bit is unaffordable beyond a sliver.
    assert!(s.quality() < 0.35, "Q = {}", s.quality());
    assert!(s.send_rates()[0] < 5e6, "S1 = {}", s.send_rates()[0]);
}
