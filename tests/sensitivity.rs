//! Figure 3 end-to-end: the qualitative sensitivity shapes the paper
//! reports, measured through the full simulator.

use deadline_multipath::experiments::figure3::{curve, Metric};
use deadline_multipath::experiments::runner::RunConfig;

fn cfg(messages: u64) -> RunConfig {
    let mut c = RunConfig::default();
    c.messages = messages;
    c
}

#[test]
fn bandwidth_panel_is_asymmetric() {
    // Left of zero: quality degrades (capacity wasted via the blackhole).
    // Right of zero: roughly flat (overflow loss substitutes for drops).
    let pts = curve(
        Metric::Bandwidth,
        0,
        &[-0.5, -0.25, 0.0, 0.25, 0.5],
        &cfg(8_000),
    );
    let q = |i: usize| pts[i].quality;
    assert!(
        q(0) < q(1) && q(1) < q(2),
        "left side must rise: {:?} {:?} {:?}",
        q(0),
        q(1),
        q(2)
    );
    assert!(
        (q(3) - q(2)).abs() < 0.07,
        "right side flat: {} vs {}",
        q(3),
        q(2)
    );
    assert!(
        (q(4) - q(2)).abs() < 0.07,
        "right side flat: {} vs {}",
        q(4),
        q(2)
    );
}

#[test]
fn delay_panel_has_central_plateau() {
    let pts = curve(
        Metric::Delay,
        0,
        &[-0.1, -0.05, 0.0, 0.05, 0.1],
        &cfg(5_000),
    );
    let exact = pts[2].quality;
    for p in &pts {
        assert!(
            (p.quality - exact).abs() < 0.03,
            "delay error {:+.2} moved quality to {} (exact {exact})",
            p.error,
            p.quality
        );
    }
}

#[test]
fn loss_panel_degrades_gently_then_collapses() {
    // Fig. 3 (bottom): "reasonable" loss errors cost a few points — but
    // as the error drives the believed τ₁ toward 1 the path is written
    // off entirely and quality falls to the path-2-only floor (2/9); the
    // paper's y-axis bottoms out at exactly that 20 % for the same
    // reason.
    let pts = curve(Metric::Loss, 0, &[0.0, 0.4, 0.8], &cfg(5_000));
    let exact = pts[0].quality;
    let moderate = pts[1].quality;
    let extreme = pts[2].quality;
    assert!(
        exact - moderate < 0.2,
        "moderate (+0.4) error: {moderate} from {exact}"
    );
    assert!(moderate > extreme - 1e-9, "monotone degradation");
    assert!(
        extreme >= 2.0 / 9.0 - 0.02,
        "even τ̂=1 keeps the path-2 floor: {extreme}"
    );
}

#[test]
fn path2_perturbations_are_mild() {
    // Path 2 is small (20 of 100 Mbps): mis-estimating it moves quality
    // much less than mis-estimating path 1.
    let big = curve(Metric::Bandwidth, 0, &[-0.5], &cfg(5_000))[0].quality;
    let small = curve(Metric::Bandwidth, 1, &[-0.5], &cfg(5_000))[0].quality;
    assert!(
        small > big,
        "perturbing the small path ({small}) should hurt less than the big one ({big})"
    );
}
