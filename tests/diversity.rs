//! The paper's §I claim: complementary paths beat identical ones of the
//! same aggregate capacity in deadline-bound settings.

use deadline_multipath::prelude::*;

fn q(paths: [PathSpec; 2], lambda: f64, delta: f64) -> f64 {
    let net = NetworkSpec::builder()
        .paths(paths)
        .data_rate(lambda)
        .lifetime(delta)
        .build()
        .unwrap();
    optimal_strategy(&net, &ModelConfig::default())
        .unwrap()
        .quality()
}

#[test]
fn diverse_pair_dominates_uniform_pair_at_tight_deadlines() {
    let diverse = [
        PathSpec::new(80e6, 0.450, 0.2).unwrap(),
        PathSpec::new(20e6, 0.150, 0.0).unwrap(),
    ];
    // Same total bandwidth, bandwidth-weighted delay/loss.
    let uniform = [
        PathSpec::new(50e6, 0.390, 0.16).unwrap(),
        PathSpec::new(50e6, 0.390, 0.16).unwrap(),
    ];
    let mut diverse_wins = 0;
    for delta_ms in [300.0, 450.0, 600.0, 750.0, 900.0, 1050.0] {
        let qd = q(diverse, 90e6, delta_ms / 1e3);
        let qu = q(uniform, 90e6, delta_ms / 1e3);
        if qd > qu + 1e-9 {
            diverse_wins += 1;
        }
        assert!(
            qd >= qu - 1e-9 || delta_ms >= 1000.0,
            "uniform beat diverse at δ={delta_ms}: {qu} vs {qd}"
        );
    }
    assert!(
        diverse_wins >= 4,
        "diversity won only {diverse_wins}/6 points"
    );
}

#[test]
fn low_latency_path_specializes_in_retransmissions() {
    // In the diverse optimum at δ=800 ms, retransmissions ride the clean
    // fast path: the x[1→2] style combinations carry weight, while
    // x[2→1] (fast first, slow rescue) is pointless.
    let net = NetworkSpec::builder()
        .path(PathSpec::new(80e6, 0.450, 0.2).unwrap())
        .path(PathSpec::new(20e6, 0.150, 0.0).unwrap())
        .data_rate(90e6)
        .lifetime(0.8)
        .build()
        .unwrap();
    let s = optimal_strategy(&net, &ModelConfig::default()).unwrap();
    // All path-1-first traffic that plans a retransmission plans it on
    // path 2 (never back on the 450 ms path: it cannot return in time).
    let retrans_on_slow = s.fraction(&[Slot::Path(0), Slot::Path(0)]);
    assert!(retrans_on_slow < 1e-9, "x[1,1] = {retrans_on_slow}");
    // Path-2 capacity is exactly filled (fresh data + rescue copies).
    assert!((s.send_rates()[1] - 20e6).abs() < 1.0);
}

#[test]
fn three_diverse_paths_beat_two() {
    // Extension: adding a third, complementary mid-latency path can only
    // help, and strictly helps when capacity binds.
    let two = NetworkSpec::builder()
        .path(PathSpec::new(80e6, 0.450, 0.2).unwrap())
        .path(PathSpec::new(20e6, 0.150, 0.0).unwrap())
        .data_rate(130e6)
        .lifetime(0.8)
        .build()
        .unwrap();
    let three = NetworkSpec::builder()
        .path(PathSpec::new(80e6, 0.450, 0.2).unwrap())
        .path(PathSpec::new(20e6, 0.150, 0.0).unwrap())
        .path(PathSpec::new(30e6, 0.250, 0.05).unwrap())
        .data_rate(130e6)
        .lifetime(0.8)
        .build()
        .unwrap();
    let cfg = ModelConfig::default();
    let q2 = optimal_strategy(&two, &cfg).unwrap().quality();
    let q3 = optimal_strategy(&three, &cfg).unwrap().quality();
    assert!(q3 > q2 + 0.05, "q2={q2} q3={q3}");
}
