//! Telemetry determinism and zero-cost pins for dmc-obs, end to end
//! through the public facade:
//!
//! * the merged chaos-workload snapshot (fleet replays through the
//!   Monte-Carlo engine plus a faulted protocol run) must be
//!   **bit-identical** — same FNV-1a hash, same JSONL bytes — at 1 and
//!   4 worker threads and across repeated replays of the same seed;
//! * a **disabled** registry (the default every library config ships
//!   with) must not allocate: instrumentation left compiled into the
//!   solver's hot loops may cost a branch, never a malloc.

// dmc-lint: allow-file(unsafe-code) the counting global allocator below must implement GlobalAlloc (an unsafe trait); it only increments a thread-local and defers to System

use deadline_multipath::experiments::chaos;
use deadline_multipath::experiments::montecarlo::MonteCarloConfig;
use deadline_multipath::obs::{Obs, Snapshot};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Defers every allocation to [`System`], counting this thread's calls.
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocations made by `f` on the current thread (other test threads
/// have their own counters, so this is parallel-test safe).
fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.with(Cell::get);
    let out = f();
    (ALLOCS.with(Cell::get) - before, out)
}

#[test]
fn disabled_registry_performs_no_allocation() {
    let obs = Obs::disabled();
    // Warm nothing: handles are created inside the measured block, the
    // way instrumented library code uses them.
    let (allocs, ()) = allocations_during(|| {
        for i in 0..100u64 {
            obs.counter("lp.pivots").add(i);
            obs.gauge("fleet.shed_queue").add(1);
            obs.histogram("lp.eta_len").record(i);
            obs.advance(i);
            obs.advance_to(i);
            drop(obs.span("lp.solve"));
            let _ = obs.tick();
        }
        let _ = obs.fork();
    });
    assert_eq!(allocs, 0, "a disabled sink must be malloc-free");
    // And it observes nothing: the snapshot is empty.
    assert_eq!(obs.snapshot(), Snapshot::default());
}

/// The chaos workload of the `chaos` driver, recorded into a fresh
/// registry at the given worker-thread count.
fn chaos_snapshot(threads: usize) -> Snapshot {
    let obs = Obs::enabled();
    let mc = MonteCarloConfig {
        trials: 3,
        threads,
        base_seed: 0xDEAD_BEEF,
    };
    let outcomes = chaos::fleet_chaos_mc_obs(&mc, chaos::CHAOS_FLOWS, &obs);
    assert!(
        outcomes.iter().all(|o| o.violations.is_empty()),
        "chaos invariants (incl. the telemetry cross-check) must hold"
    );
    chaos::proto_chaos_run_obs(mc.base_seed, 1_500, &obs).expect("proto chaos run succeeds");
    obs.snapshot()
}

#[test]
fn chaos_telemetry_is_bitwise_identical_across_threads_and_replays() {
    let seq = chaos_snapshot(1);
    let par = chaos_snapshot(4);
    let again = chaos_snapshot(4);
    assert_eq!(
        seq.fnv_hash(),
        par.fnv_hash(),
        "snapshot hash must not depend on worker threads"
    );
    assert_eq!(
        par.fnv_hash(),
        again.fnv_hash(),
        "snapshot hash must reproduce across replays"
    );
    assert_eq!(
        seq.to_jsonl(),
        par.to_jsonl(),
        "bitwise, not just hash-equal"
    );
    // The workload actually exercised all four instrumented layers.
    for name in [
        "lp.solves",
        "fleet.sheds",
        "proto.tx.generated",
        "sim.events",
    ] {
        assert!(
            seq.counter(name).unwrap_or(0) > 0,
            "expected nonzero counter {name}"
        );
    }
}
