//! The chaos acceptance scenario (tier-1): one seeded script combining
//! payload corruption, frame duplication and a **correlated two-link
//! outage** runs end-to-end with
//!
//! * zero invariant violations (certified joint-LP solves, allocations
//!   within surviving capacity, bounded re-admission),
//! * only the lowest-priority floored flows shed by the outage,
//! * every shed flow re-admitted after recovery under its original id,
//! * bitwise-identical traces on repeated same-seed runs.

use deadline_multipath::experiments::chaos::{
    self, chaos_paths, check_invariants, trace_hash, trace_priorities,
};
use deadline_multipath::prelude::*;
use deadline_multipath::sim::LinkChange;

/// Mixed-priority population crafted so the greedy priority-ordered
/// re-admission has an exact expected outcome: after paths 0 and 2 fail
/// together, only the 20 Mbps clean path survives — the priority-8.0
/// flow (10 Mbps, 90 % floor) fits it alone, the two low-priority
/// floored flows cannot, and the best-effort flow is always feasible.
fn acceptance_trace() -> FleetTrace {
    FleetTrace::new()
        .arrive(
            0.0,
            FlowRequest::new(30e6, 0.8)
                .unwrap()
                .with_min_quality(0.8)
                .with_priority(1.0),
        )
        .unwrap()
        .arrive(
            1.0,
            FlowRequest::new(25e6, 0.8)
                .unwrap()
                .with_min_quality(0.7)
                .with_priority(2.0),
        )
        .unwrap()
        .arrive(
            2.0,
            FlowRequest::new(10e6, 0.9)
                .unwrap()
                .with_min_quality(0.9)
                .with_priority(8.0),
        )
        .unwrap()
        .arrive(3.0, FlowRequest::new(15e6, 1.2).unwrap())
        .unwrap()
        // The correlated fault domain: both links at the same instant.
        .link(4.0, 0, LinkChange::Fail)
        .unwrap()
        .link(4.0, 2, LinkChange::Fail)
        .unwrap()
        .link(6.0, 0, LinkChange::Recover)
        .unwrap()
        .link(6.0, 2, LinkChange::Recover)
        .unwrap()
        // Trailing no-op retunes keep sweeping the queue so the horizon
        // invariant is checkable to the end.
        .link(7.0, 1, LinkChange::SetBandwidth(20e6))
        .unwrap()
        .link(8.0, 1, LinkChange::SetBandwidth(20e6))
        .unwrap()
}

fn replay_certified(trace: &FleetTrace) -> (Vec<FleetSnapshot>, FleetPlanner) {
    let mut fleet = FleetPlanner::new(
        chaos_paths(),
        FleetConfig {
            certify: true,
            ..FleetConfig::default()
        },
    )
    .unwrap();
    let snaps = fleet.replay(trace).unwrap();
    (snaps, fleet)
}

#[test]
fn correlated_outage_sheds_lowest_priority_only_and_recovery_readmits() {
    let trace = acceptance_trace();
    let (snaps, fleet) = replay_certified(&trace);

    // Zero invariant violations: capacity respected after every event,
    // every shed flow resolved within the backoff horizon (and every
    // joint solve along the way passed its feasibility certificate —
    // `certify` would have panicked otherwise).
    let violations = check_invariants(&trace, &snaps, &fleet);
    assert!(violations.is_empty(), "{violations:?}");

    // The outage sheds exactly the two low-priority floored flows.
    let prio = trace_priorities(&trace);
    let shed: Vec<FlowId> = snaps.iter().flat_map(|s| s.shed.clone()).collect();
    assert!(!shed.is_empty(), "the outage must shed the floored bulk");
    let max_shed_prio = shed
        .iter()
        .map(|id| prio[id])
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        max_shed_prio < 8.0,
        "the high-priority flow must never be shed (max shed priority {max_shed_prio})"
    );
    // …while the priority-8.0 flow rides out the outage admitted.
    let outage_snap = &snaps[5]; // after both Fail events
    assert!(outage_snap.admitted.contains(&FlowId::from_index(2)));

    // Recovery re-admits every shed flow under its original id.
    let revived: Vec<FlowId> = snaps.iter().flat_map(|s| s.revived.clone()).collect();
    let sorted = |mut v: Vec<FlowId>| {
        v.sort();
        v
    };
    assert_eq!(
        sorted(shed),
        sorted(revived),
        "every shed flow is revived once capacity returns"
    );
    assert!(fleet.shed_flows().is_empty());
    assert!(fleet.shed_rejected().is_empty());

    // Bitwise-identical traces on repeated same-seed runs.
    let (snaps2, fleet2) = replay_certified(&trace);
    assert_eq!(trace_hash(&snaps, &fleet), trace_hash(&snaps2, &fleet2));
}

#[test]
fn seeded_chaos_script_holds_every_invariant() {
    // The fully seeded script (arrivals, retune, outage, recovery and the
    // trailing horizon all derived from the seed) — the driver's per-trial
    // body, pinned here as tier-1.
    let outcome = chaos::fleet_chaos_trial(0xACCE55, 6).unwrap();
    assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
    assert!(outcome.shed > 0);
    assert!(outcome.revived + outcome.rejected > 0);
    // Same seed ⇒ same trace hash, end to end.
    let again = chaos::fleet_chaos_trial(0xACCE55, 6).unwrap();
    assert_eq!(outcome.hash, again.hash);
}

#[test]
fn corruption_and_duplication_never_forge_a_delivery() {
    // Proto leg: Table III under 2 % corruption + 2 % duplication + 5 %
    // bounded reordering. The checksum rejects every corrupted frame that
    // arrives, the dedup window absorbs duplicates, and the run is a pure
    // function of its seed.
    let out = chaos::proto_chaos_run(0xACCE55, 2_000).unwrap();
    let inj = out.faults_injected;
    assert!(inj.corrupted > 0 && inj.duplicated > 0);
    assert!(out.receiver.malformed > 0);
    assert!(out.receiver.malformed <= inj.corrupted + inj.duplicated);
    assert!(out.quality > 0.9, "quality {}", out.quality);
    let again = chaos::proto_chaos_run(0xACCE55, 2_000).unwrap();
    assert_eq!(out.sender, again.sender);
    assert_eq!(out.receiver, again.receiver);
    assert_eq!(out.faults_injected, again.faults_injected);
}
