//! The parallel Monte-Carlo engine's determinism pin: for a fixed seed,
//! the aggregate `TrialStats` (and every summed counter) must be
//! **bit-identical** at 1, 2, and 8 worker threads to the sequential
//! oracle, on the paper's Table V (Experiment 2) scenario.
//!
//! This is the property that makes `--threads N` safe to default on:
//! scaling out trial throughput can never change a reported number.

use deadline_multipath::experiments::montecarlo::{
    run_plan_trials, run_trials_parallel, trial_seed, MonteCarloConfig,
};
use deadline_multipath::experiments::runner::{RunConfig, TrueNetwork};
use deadline_multipath::experiments::scenarios;
use deadline_multipath::prelude::*;

fn table5_plan_and_truth() -> (Plan, TrueNetwork) {
    let plan = Planner::new()
        .plan(
            &scenarios::table5_scenario(90e6, 0.750),
            Objective::MaxQuality,
        )
        .expect("feasible");
    let truth = TrueNetwork::from_random(&scenarios::table5(90e6, 0.750)).over_provisioned(1.5);
    (plan, truth)
}

fn quick_cfg() -> RunConfig {
    let mut cfg = RunConfig::default();
    cfg.messages = 1_200; // enough protocol activity to surface ordering bugs
    cfg
}

#[test]
fn parallel_trialstats_bit_identical_to_sequential_oracle() {
    let (plan, truth) = table5_plan_and_truth();
    let cfg = quick_cfg();
    let mc = |threads| MonteCarloConfig {
        trials: 6,
        threads,
        base_seed: 0x00C0_FFEE,
    };
    // threads = 1 takes the plain-loop path: the sequential oracle.
    let oracle = run_plan_trials(&plan, &truth, &cfg, &mc(1)).expect("sequential run");
    assert_eq!(oracle.quality.count(), 6);
    assert!(
        oracle.quality.mean() > 0.85,
        "sanity: {}",
        oracle.quality.mean()
    );

    for threads in [2usize, 8] {
        let parallel = run_plan_trials(&plan, &truth, &cfg, &mc(threads)).expect("parallel run");
        // Bitwise equality of the folded statistics (TrialStats PartialEq
        // compares the Welford state fields exactly).
        assert_eq!(
            parallel.quality, oracle.quality,
            "{threads}-thread TrialStats diverged from the sequential oracle"
        );
        assert_eq!(
            parallel.quality.mean().to_bits(),
            oracle.quality.mean().to_bits()
        );
        assert_eq!(
            parallel.sender, oracle.sender,
            "{threads}-thread sender counters"
        );
        assert_eq!(
            parallel.receiver, oracle.receiver,
            "{threads}-thread receiver counters"
        );
        assert_eq!(
            parallel.first.quality.to_bits(),
            oracle.first.quality.to_bits()
        );
    }
}

#[test]
fn different_seeds_produce_different_aggregates() {
    let (plan, truth) = table5_plan_and_truth();
    let cfg = quick_cfg();
    let run = |base_seed| {
        run_plan_trials(
            &plan,
            &truth,
            &cfg,
            &MonteCarloConfig {
                trials: 4,
                threads: 2,
                base_seed,
            },
        )
        .expect("run")
    };
    let a = run(1);
    let b = run(2);
    // Quality is a ratio of small integers, so two streams can tie on the
    // mean; the full counter set cannot plausibly coincide.
    assert!(
        a.quality != b.quality || a.sender != b.sender || a.receiver != b.receiver,
        "distinct base seeds must yield distinct trial streams"
    );
    // And the same seed reproduces itself exactly.
    let a2 = run(1);
    assert_eq!(a.quality, a2.quality);
    assert_eq!(a.sender, a2.sender);
}

#[test]
fn engine_reassembles_results_in_trial_order_at_any_thread_count() {
    for threads in [1usize, 2, 3, 8] {
        let mc = MonteCarloConfig {
            trials: 64,
            threads,
            base_seed: 5,
        };
        let got = run_trials_parallel(&mc, |t, s| (t, s));
        let want: Vec<(u64, u64)> = (0..64).map(|t| (t, trial_seed(5, t))).collect();
        assert_eq!(got, want, "thread count {threads}");
    }
}
