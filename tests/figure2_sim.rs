//! Figure 2 end-to-end: the simulation tracks the theoretical bound and
//! multipath dominates both single-path baselines.

use deadline_multipath::experiments::figure2;
use deadline_multipath::experiments::runner::RunConfig;

fn quick() -> RunConfig {
    let mut cfg = RunConfig::default();
    cfg.messages = 4_000;
    cfg
}

#[test]
fn rate_sweep_tracks_theory() {
    // A subsample of the paper's λ axis (full sweep in the figure2 bin).
    for p in figure2::rate_sweep(&[20.0, 60.0, 100.0, 140.0], &quick()) {
        assert!(
            (p.simulation - p.theory).abs() < 0.03,
            "λ={:.0} Mbps: sim {:.4} vs theory {:.4}",
            p.param / 1e6,
            p.simulation,
            p.theory
        );
        assert!(p.theory >= p.path1_theory - 1e-9);
        assert!(p.theory >= p.path2_theory - 1e-9);
    }
}

#[test]
fn lifetime_sweep_tracks_theory() {
    for p in figure2::lifetime_sweep(&[200.0, 500.0, 800.0, 1100.0], &quick()) {
        assert!(
            (p.simulation - p.theory).abs() < 0.03,
            "δ={:.0} ms: sim {:.4} vs theory {:.4}",
            p.param * 1e3,
            p.simulation,
            p.theory
        );
    }
}

#[test]
fn multipath_gain_region_exists() {
    // The paper's headline: a region where multipath strictly beats the
    // best single path. At λ=90/δ=800: multi 93.3% vs 71.1%/22.2%.
    let p = &figure2::lifetime_sweep(&[800.0], &quick())[0];
    let best_single = p.path1_theory.max(p.path2_theory);
    assert!(
        p.theory > best_single + 0.2,
        "multi {:.3} vs best single {:.3}",
        p.theory,
        best_single
    );
    assert!(p.simulation > best_single + 0.15);
}
