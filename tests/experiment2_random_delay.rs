//! Experiment 2 end-to-end: Eq.-34 timeouts, expected quality, and the
//! gamma-delay simulation (paper: 93,332 / 100,000 ≈ 93.3 %).

use deadline_multipath::experiments::experiment2;
use deadline_multipath::experiments::runner::RunConfig;

#[test]
fn experiment2_full_pipeline() {
    let mut cfg = RunConfig::default();
    cfg.messages = 15_000;
    let r = experiment2::run(&cfg).expect("experiment");
    // Timeouts near the paper's (plateau tie-breaks differ slightly).
    let t12 = r.t12.expect("t(1,2)") * 1e3;
    let t21 = r.t21.expect("t(2,1)") * 1e3;
    assert!((585.0..=645.0).contains(&t12), "t(1,2) = {t12} ms vs 615");
    assert!((230.0..=270.0).contains(&t21), "t(2,1) = {t21} ms vs 252");
    assert!(r.t11.is_none(), "t(1,1) must be undefined");
    // Qualities.
    assert!(
        (r.expected_quality - 0.9333).abs() < 0.005,
        "expected {}",
        r.expected_quality
    );
    assert!(
        (r.outcome.quality - r.expected_quality).abs() < 0.01,
        "simulated {} vs expected {}",
        r.outcome.quality,
        r.expected_quality
    );
    // The render includes the paper comparison lines.
    let text = experiment2::render(&r);
    assert!(text.contains("93.3%"), "{text}");
}

#[test]
fn gamma_jitter_requires_eq34_timeouts() {
    // Using naive deterministic timeouts (mean delay based, no
    // distributional reasoning) must not beat the Eq.-34 plan — sanity
    // that the optimization is doing real work. We compare expected
    // quality of the solved model against a lifetime so tight that
    // timeout placement matters.
    use deadline_multipath::experiments::scenarios;
    use deadline_multipath::prelude::*;
    let net = scenarios::table5(90e6, 0.620);
    let model = RandomDelayModel::new(&net, &RandomDelayConfig::default());
    let s = model.solve_quality(&SolverOptions::default()).unwrap();
    // With δ = 620 ms there is no time for path-1 retransmissions at all
    // (ack ≈ 550 + rescue 110 > 620); the model must discover this and
    // quality drops to the no-path1-retransmission regime.
    assert!(model.timeout(0, 1).is_none() || s.quality() < 0.92);
    assert!(s.quality() > 0.5);
}
