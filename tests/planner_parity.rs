//! The unified `Scenario` → `Planner` → `Plan` pipeline must agree with
//! the legacy split entry points on the paper's scenarios — to 1e-9 —
//! and must never panic on any valid scenario.

use deadline_multipath::experiments::scenarios;
use deadline_multipath::prelude::*;
use proptest::prelude::*;
// Explicit import wins over both globs: `Strategy` here is proptest's
// trait (dmc-core's `Strategy` struct is only used through `Plan`).
use proptest::Strategy;
use std::sync::Arc;

const TOL: f64 = 1e-9;

/// Planner vs. `optimal_strategy` on the paper's Table III scenarios
/// (the full Table IV sweep, both halves).
#[test]
fn deterministic_parity_on_table3() {
    let mut planner = Planner::new();
    let cfg = ModelConfig::default();
    let lambdas = [10e6, 20e6, 40e6, 60e6, 80e6, 90e6, 100e6, 120e6, 140e6];
    let deltas = [
        0.150, 0.400, 0.450, 0.700, 0.750, 0.800, 1.000, 1.050, 1.500,
    ];
    for &lambda in &lambdas {
        for &delta in &deltas {
            let net = scenarios::table3_model(lambda, delta);
            let legacy = optimal_strategy(&net, &cfg).expect("feasible");
            let plan = planner
                .plan(&Scenario::from_network(&net), Objective::MaxQuality)
                .expect("feasible");
            assert!(
                (plan.quality() - legacy.quality()).abs() < TOL,
                "λ={lambda} δ={delta}: plan {} vs legacy {}",
                plan.quality(),
                legacy.quality()
            );
            assert!(
                (plan.cost_rate() - legacy.cost_rate()).abs() < TOL,
                "λ={lambda} δ={delta}: cost mismatch"
            );
            for (a, b) in plan.send_rates().iter().zip(legacy.send_rates()) {
                assert!((a - b).abs() < TOL * lambda, "λ={lambda} δ={delta}: rates");
            }
            for (a, b) in plan.strategy().x().iter().zip(legacy.x()) {
                assert!((a - b).abs() < TOL, "λ={lambda} δ={delta}: x mismatch");
            }
        }
    }
}

/// Planner vs. `min_cost_strategy` on a costed Table III network.
#[test]
fn min_cost_parity() {
    let net = NetworkSpec::builder()
        .path(PathSpec::with_cost(80e6, 0.450, 0.2, 3e-9).unwrap())
        .path(PathSpec::with_cost(20e6, 0.150, 0.0, 1e-9).unwrap())
        .data_rate(90e6)
        .lifetime(0.8)
        .build()
        .unwrap();
    let mut planner = Planner::new();
    let cfg = ModelConfig::default();
    for floor in [0.3, 0.5, 0.7, 0.9, 42.0 / 45.0] {
        let legacy = min_cost_strategy(&net, floor, &cfg).expect("achievable");
        let plan = planner
            .plan(
                &Scenario::from_network(&net),
                Objective::MinCost { min_quality: floor },
            )
            .expect("achievable");
        assert!(
            (plan.cost_rate() - legacy.cost_rate()).abs() < TOL,
            "floor {floor}: plan cost {} vs legacy {}",
            plan.cost_rate(),
            legacy.cost_rate()
        );
        assert!(
            (plan.quality() - legacy.quality()).abs() < TOL,
            "floor {floor}"
        );
    }
}

/// Planner vs. `RandomDelayModel` on the paper's Table V scenario
/// (Experiment 2), including the Eq. 34 pairwise timeouts.
#[test]
fn random_delay_parity_on_table5() {
    let mut planner = Planner::new();
    for (lambda, delta) in [(90e6, 0.750), (90e6, 0.620), (60e6, 0.900)] {
        let net = scenarios::table5(lambda, delta);
        let model = RandomDelayModel::new(&net, &RandomDelayConfig::default());
        let legacy = model.solve_quality(&SolverOptions::default()).expect("ok");
        let plan = planner
            .plan(&Scenario::from_random(&net), Objective::MaxQuality)
            .expect("ok");
        assert!(
            (plan.quality() - legacy.quality()).abs() < TOL,
            "λ={lambda} δ={delta}: plan {} vs legacy {}",
            plan.quality(),
            legacy.quality()
        );
        for (a, b) in plan.strategy().x().iter().zip(legacy.x()) {
            assert!((a - b).abs() < TOL, "λ={lambda} δ={delta}: x mismatch");
        }
        assert_eq!(plan.ack_path(), model.ack_path());
        for i in 0..2 {
            for j in 0..2 {
                match (plan.timeout(i, j), model.timeout(i, j)) {
                    (Some(a), Some(b)) => {
                        assert!((a - b).abs() < TOL, "t({i},{j}): {a} vs {b}")
                    }
                    (a, b) => assert_eq!(a, b, "t({i},{j}) definedness"),
                }
            }
        }
    }
}

/// A constant-delay scenario routed through the *random* model (wrapping
/// every delay in a distribution) and through the deterministic branch
/// must agree — the regimes are one model.
#[test]
fn constant_distributions_match_deterministic_branch() {
    let mut planner = Planner::new();
    let det = Scenario::builder()
        .path(ScenarioPath::constant(80e6, 0.450, 0.2).unwrap())
        .path(ScenarioPath::constant(20e6, 0.150, 0.0).unwrap())
        .data_rate(90e6)
        .lifetime(0.8)
        .build()
        .unwrap();
    assert!(det.is_deterministic());
    let plan = planner.plan(&det, Objective::MaxQuality).unwrap();
    // Same network through the legacy random-delay API.
    let p1 = RandomPath::new(80e6, Arc::new(ConstantDelay::new(0.450)), 0.2, 0.0).unwrap();
    let p2 = RandomPath::new(20e6, Arc::new(ConstantDelay::new(0.150)), 0.0, 0.0).unwrap();
    let net = RandomNetworkSpec::new(vec![p1, p2], 90e6, 0.8).unwrap();
    let legacy = RandomDelayModel::new(&net, &RandomDelayConfig::default())
        .solve_quality(&SolverOptions::default())
        .unwrap();
    // The random branch discretizes, so agreement is to the grid's
    // accuracy rather than 1e-9.
    assert!(
        (plan.quality() - legacy.quality()).abs() < 1e-6,
        "det {} vs random-branch {}",
        plan.quality(),
        legacy.quality()
    );
}

/// A warm-swept planner (one planner, basis cached across points) must
/// match cold solves (fresh planner per point) **bit-for-bit** on the
/// Table III λ- and δ-sweeps: warm starting is purely a performance
/// device, never an accuracy trade.
#[test]
fn warm_sweep_matches_cold_bit_for_bit_on_table3() {
    let mut warm = Planner::new();
    let lambdas = [10e6, 20e6, 40e6, 60e6, 80e6, 90e6, 100e6, 120e6, 140e6];
    let deltas = [0.150, 0.450, 0.750, 0.800, 1.050, 1.500];
    for &lambda in &lambdas {
        for &delta in &deltas {
            let scenario = Scenario::from_network(&scenarios::table3_model(lambda, delta));
            let swept = warm
                .plan(&scenario, Objective::MaxQuality)
                .expect("feasible");
            let cold = Planner::new()
                .plan(&scenario, Objective::MaxQuality)
                .expect("feasible");
            assert_eq!(
                swept.strategy().x(),
                cold.strategy().x(),
                "λ={lambda} δ={delta}: warm and cold vertices differ"
            );
            assert_eq!(swept.quality(), cold.quality(), "λ={lambda} δ={delta}");
            assert_eq!(swept.cost_rate(), cold.cost_rate(), "λ={lambda} δ={delta}");
            assert_eq!(
                swept.send_rates(),
                cold.send_rates(),
                "λ={lambda} δ={delta}"
            );
        }
    }
    let stats = warm.warm_stats();
    assert!(stats.attempts() > 0, "sweep never consulted the warm cache");
    assert!(stats.hits > 0, "no sweep point actually warm-started");
}

/// Same bit-for-bit property on the random-delay Table V scenario
/// (Experiment 2) across a λ sweep.
#[test]
fn warm_sweep_matches_cold_bit_for_bit_on_table5() {
    let mut warm = Planner::new();
    for lambda in [60e6, 75e6, 90e6, 100e6] {
        let scenario = Scenario::from_random(&scenarios::table5(lambda, 0.750));
        let swept = warm.plan(&scenario, Objective::MaxQuality).expect("ok");
        let cold = Planner::new()
            .plan(&scenario, Objective::MaxQuality)
            .expect("ok");
        assert_eq!(swept.strategy().x(), cold.strategy().x(), "λ={lambda}");
        assert_eq!(swept.quality(), cold.quality(), "λ={lambda}");
    }
    assert!(
        warm.warm_stats().hits > 0,
        "no warm start on the Table V sweep"
    );
}

/// A shape change (different path count / transmissions) must not reuse
/// the previous shape's basis — each shape gets its own cache slot and
/// correct answers throughout.
#[test]
fn shape_change_invalidates_cached_basis() {
    let mut planner = Planner::new();
    let two = scenarios::table3_model_scenario(90e6, 0.800);
    let three = Scenario::builder()
        .path(ScenarioPath::constant(80e6, 0.450, 0.2).unwrap())
        .path(ScenarioPath::constant(20e6, 0.150, 0.0).unwrap())
        .path(ScenarioPath::constant(30e6, 0.250, 0.05).unwrap())
        .data_rate(130e6)
        .lifetime(0.8)
        .build()
        .unwrap();
    let a = planner.plan(&two, Objective::MaxQuality).unwrap();
    assert_eq!(planner.cached_bases(), 1);
    // Different shape (9 → 16 LP variables): a new cache entry, and the
    // answer matches a cold planner exactly.
    let b = planner.plan(&three, Objective::MaxQuality).unwrap();
    assert_eq!(planner.cached_bases(), 2);
    let b_cold = Planner::new().plan(&three, Objective::MaxQuality).unwrap();
    assert_eq!(b.strategy().x(), b_cold.strategy().x());
    // Returning to the first shape warm-starts from its own basis.
    let a2 = planner.plan(&two, Objective::MaxQuality).unwrap();
    assert_eq!(a.strategy().x(), a2.strategy().x());
    let stats = planner.warm_stats();
    assert!(stats.attempts() >= 1 && stats.hits >= 1);
    // m=3 changes the variable count → yet another shape, still correct.
    let m3 = planner
        .plan(&two.with_transmissions(3), Objective::MaxQuality)
        .unwrap();
    let m3_cold = Planner::new()
        .plan(&two.with_transmissions(3), Objective::MaxQuality)
        .unwrap();
    assert_eq!(m3.strategy().x(), m3_cold.strategy().x());
    assert_eq!(planner.cached_bases(), 3);
}

/// A cached basis made infeasible by a drastic parameter change must fall
/// back to a cold solve inside the LP (no error, identical results), and
/// disabling `warm_start` must bypass the cache entirely.
#[test]
fn infeasible_warm_basis_falls_back_and_can_be_disabled() {
    // Plenty of capacity → basis with real-path combos basic.
    let mut planner = Planner::new();
    let roomy = scenarios::table3_model_scenario(20e6, 0.800);
    planner.plan(&roomy, Objective::MaxQuality).unwrap();
    // Starved capacity: the old basis is primal infeasible for the new
    // RHS, so the solver must re-run phase 1 — and still agree with cold.
    let starved = scenarios::table3_model_scenario(500e6, 0.800);
    let warm = planner.plan(&starved, Objective::MaxQuality).unwrap();
    let cold = Planner::new()
        .plan(&starved, Objective::MaxQuality)
        .unwrap();
    assert_eq!(warm.strategy().x(), cold.strategy().x());
    assert_eq!(warm.quality(), cold.quality());

    // warm_start = false: the cache never fills and never gets consulted.
    let mut off = Planner::with_config(PlannerConfig {
        warm_start: false,
        ..PlannerConfig::default()
    });
    off.plan(&roomy, Objective::MaxQuality).unwrap();
    off.plan(&starved, Objective::MaxQuality).unwrap();
    assert_eq!(off.cached_bases(), 0);
    assert_eq!(off.warm_stats(), dmc_core::WarmStats::default());
}

fn arb_constant_path() -> impl Strategy<Value = ScenarioPath> {
    (
        1.0f64..200.0, // bandwidth Mbps
        0.005f64..0.8, // delay s
        0.0f64..0.9,   // loss
        0.0f64..5e-9,  // cost per bit
    )
        .prop_map(|(bw, d, l, c)| {
            ScenarioPath::constant_with_cost(bw * 1e6, d, l, c).expect("valid")
        })
}

fn arb_gamma_path() -> impl Strategy<Value = ScenarioPath> {
    (
        1.0f64..100.0,  // bandwidth Mbps
        1.0f64..12.0,   // gamma shape
        0.001f64..0.01, // gamma scale s
        0.01f64..0.4,   // shift s
        0.0f64..0.8,    // loss
    )
        .prop_map(|(bw, shape, scale, shift, loss)| {
            ScenarioPath::new(
                bw * 1e6,
                Arc::new(ShiftedGamma::new(shape, scale, shift).expect("valid")),
                loss,
                0.0,
            )
            .expect("valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any valid deterministic scenario round-trips through the pipeline
    /// without panicking, and the plan is internally consistent: a
    /// well-formed strategy, in-range quality, bandwidth-respecting send
    /// rates, a scheduler that starts, and a schedule covering every
    /// combination.
    #[test]
    fn any_deterministic_scenario_plans(
        paths in proptest::collection::vec(arb_constant_path(), 1..5),
        lambda in 1.0f64..300.0,
        delta in 0.05f64..2.0,
        m in 1usize..4,
    ) {
        let scenario = Scenario::builder()
            .paths(paths)
            .data_rate(lambda * 1e6)
            .lifetime(delta)
            .transmissions(m)
            .build()
            .expect("valid");
        let mut planner = Planner::new();
        let plan = planner.plan(&scenario, Objective::MaxQuality).expect("feasible");
        prop_assert!(plan.strategy().is_well_formed(1e-7));
        prop_assert!(plan.quality() >= -1e-9 && plan.quality() <= 1.0 + 1e-9,
            "Q = {}", plan.quality());
        for (k, (&rate, path)) in plan.send_rates().iter().zip(scenario.paths()).enumerate() {
            prop_assert!(rate <= path.bandwidth() * (1.0 + 1e-7),
                "S_{k} = {rate} > b = {}", path.bandwidth());
        }
        prop_assert_eq!(plan.schedule().num_combos(), plan.strategy().table().num_combos());
        let mut sched = plan.scheduler();
        let combo = sched.next_combo();
        prop_assert!(combo < plan.strategy().table().num_combos());
    }

    /// Same for random-delay scenarios (smaller sizes: discretized
    /// timeout optimization is the expensive part).
    #[test]
    fn any_random_scenario_plans(
        paths in proptest::collection::vec(arb_gamma_path(), 1..4),
        lambda in 1.0f64..150.0,
        delta in 0.1f64..1.5,
    ) {
        let scenario = Scenario::builder()
            .paths(paths)
            .data_rate(lambda * 1e6)
            .lifetime(delta)
            .build()
            .expect("valid");
        let mut planner = Planner::new();
        let plan = planner.plan(&scenario, Objective::MaxQuality).expect("feasible");
        prop_assert!(plan.strategy().is_well_formed(1e-7));
        prop_assert!(plan.quality() >= -1e-9 && plan.quality() <= 1.0 + 1e-9,
            "Q = {}", plan.quality());
        prop_assert!(plan.ack_path() < scenario.num_paths());
        // Every defined pairwise timeout is positive and within the
        // lifetime.
        for i in 0..scenario.num_paths() {
            for j in 0..scenario.num_paths() {
                if let Some(t) = plan.timeout(i, j) {
                    prop_assert!(t >= 0.0 && t <= delta + 1e-12, "t({i},{j}) = {t}");
                }
            }
        }
    }

    /// Mixed scenarios (one constant + one gamma path) plan fine too —
    /// the regimes genuinely compose.
    #[test]
    fn mixed_scenarios_plan(
        constant in arb_constant_path(),
        gamma in arb_gamma_path(),
        lambda in 1.0f64..150.0,
        delta in 0.1f64..1.5,
    ) {
        let scenario = Scenario::builder()
            .path(constant)
            .path(gamma)
            .data_rate(lambda * 1e6)
            .lifetime(delta)
            .build()
            .expect("valid");
        prop_assert!(!scenario.is_deterministic());
        let mut planner = Planner::new();
        let plan = planner.plan(&scenario, Objective::MaxQuality).expect("feasible");
        prop_assert!(plan.strategy().is_well_formed(1e-7));
    }
}
