//! Cross-crate reproduction of Table IV: every quality value in the
//! paper's table, to 1e-9, plus the structural invariants of the
//! solutions.

use deadline_multipath::experiments::{scenarios, table4};
use deadline_multipath::prelude::*;

#[test]
fn every_table4_row_reproduces() {
    for &(lambda_mbps, want) in table4::PAPER_TOP {
        let rows = table4::top(&[lambda_mbps]);
        let got = rows[0].quality();
        assert!(
            (got - want).abs() < 1e-9,
            "Table IV top, λ={lambda_mbps} Mbps: Q={got}, paper {want}"
        );
    }
    for &(delta_ms, want) in table4::PAPER_BOTTOM {
        let rows = table4::bottom(&[delta_ms]);
        let got = rows[0].quality();
        assert!(
            (got - want).abs() < 1e-9,
            "Table IV bottom, δ={delta_ms} ms: Q={got}, paper {want}"
        );
    }
}

#[test]
fn solutions_satisfy_model_invariants() {
    for lambda in [10e6, 60e6, 100e6, 140e6] {
        let net = scenarios::table3_model(lambda, 0.8);
        let s = optimal_strategy(&net, &ModelConfig::default()).unwrap();
        assert!(s.is_well_formed(1e-9), "Σx ≠ 1 at λ={lambda}");
        assert!(
            s.quality() >= -1e-12 && s.quality() <= 1.0 + 1e-9,
            "Q out of range at λ={lambda}"
        );
        for (k, (&rate, path)) in s.send_rates().iter().zip(net.paths()).enumerate() {
            assert!(
                rate <= path.bandwidth() * (1.0 + 1e-9),
                "S_{k} = {rate} exceeds b_{k} at λ={lambda}"
            );
        }
    }
}

#[test]
fn band_boundaries_are_sharp() {
    // The quality bands of Table IV (bottom) switch exactly at the
    // combination-arrival boundaries: 450 ms (path-1 direct) and 750 ms
    // (path-1 + retransmit-on-2).
    let q = |delta_ms: f64| table4::bottom(&[delta_ms])[0].quality();
    assert!((q(449.0) - 2.0 / 9.0).abs() < 1e-9);
    assert!((q(450.0) - 0.8444444444444444).abs() < 1e-9);
    assert!((q(749.0) - 0.8444444444444444).abs() < 1e-9);
    assert!((q(750.0) - 42.0 / 45.0).abs() < 1e-9);
}

#[test]
fn more_retransmissions_never_hurt_and_saturate() {
    // m = 3 adds a second retransmission stage: quality must be
    // monotone in m, and for the Table III network at δ = 800 ms a third
    // transmission cannot help (no time for two round trips), so m=2 and
    // m=3 agree.
    let net = scenarios::table3_model(90e6, 0.8);
    let q2 = optimal_strategy(&net, &ModelConfig::with_transmissions(2))
        .unwrap()
        .quality();
    let q3 = optimal_strategy(&net, &ModelConfig::with_transmissions(3))
        .unwrap()
        .quality();
    assert!(q3 >= q2 - 1e-9);
    assert!((q3 - q2).abs() < 1e-9, "q2={q2} q3={q3}");
    // A third transmission helps only when *loss* (not bandwidth) binds:
    // on Table III, path 2 is lossless so two attempts already reach
    // p = 1, and when bandwidth binds the retransmission exchange rate is
    // identical at every m. With both paths lossy and ample capacity,
    // m = 3 strictly wins: 1 − τ² → 1 − τ³.
    let lossy = NetworkSpec::builder()
        .path(PathSpec::new(80e6, 0.100, 0.3).unwrap())
        .path(PathSpec::new(20e6, 0.050, 0.3).unwrap())
        .data_rate(10e6)
        .lifetime(1.0)
        .build()
        .unwrap();
    let q2 = optimal_strategy(&lossy, &ModelConfig::with_transmissions(2))
        .unwrap()
        .quality();
    let q3 = optimal_strategy(&lossy, &ModelConfig::with_transmissions(3))
        .unwrap()
        .quality();
    assert!((q2 - 0.91).abs() < 1e-9, "q2 = {q2}");
    assert!((q3 - 0.973).abs() < 1e-9, "q3 = {q3}");
}
