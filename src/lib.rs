//! # deadline-multipath
//!
//! A complete Rust implementation of **"Deadline-Aware Multipath
//! Communication: An Optimization Problem"** (Chuat, Perrig & Hu,
//! DSN 2017): partially-reliable multipath communication that maximizes
//! the fraction of data delivered *before a deadline* by solving a linear
//! program over *path combinations* (initial-transmission path +
//! retransmission path(s)).
//!
//! The workspace layers, bottom up:
//!
//! | Crate | Re-exported as | What it is |
//! |---|---|---|
//! | `dmc-obs` | [`obs`] | deterministic telemetry: counters/histograms/span traces on a logical clock, JSONL + Prometheus export (`--metrics` in every driver) |
//! | `dmc-lp` | [`lp`] | dense two-phase simplex LP solver with reusable workspaces |
//! | `dmc-stats` | [`stats`] | gamma special functions, shifted-gamma delays, convolution |
//! | `dmc-core` | [`model`] | **the paper's model** behind the `Scenario` → `Planner` → `Plan` pipeline |
//! | `dmc-sim` | [`sim`] | deterministic discrete-event network simulator (the ns-3 stand-in) |
//! | `dmc-proto` | [`proto`] | sender/receiver protocol state machines, acks, estimators |
//! | `dmc-fleet` | [`fleet`] | multi-flow admission control + joint shared-capacity allocation; `fleet::service` shards it into capacity regions behind a wire front end |
//! | `dmc-experiments` | [`experiments`] | regenerators for every table & figure of the paper |
//! | `dmc-lint` | (dev tool, not re-exported) | dependency-free static analyzer enforcing the workspace's determinism, float-safety, and panic-hygiene invariants (`cargo run -p dmc-lint -- --deny`; rule catalogue and pragma syntax in `EXPERIMENTS.md`) |
//!
//! # Quick start
//!
//! One pipeline covers both delay regimes and all three solve modes:
//! describe a [`Scenario`](model::Scenario), pick an
//! [`Objective`](model::Objective), and ask a
//! [`Planner`](model::Planner) for a [`Plan`](model::Plan).
//!
//! ```
//! use deadline_multipath::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Figure 1: a fat slow lossy path + a thin fast clean one.
//! let scenario = Scenario::builder()
//!     .path(ScenarioPath::constant(10e6, 0.600, 0.10)?) // 10 Mbps, 600 ms, 10 %
//!     .path(ScenarioPath::constant(1e6, 0.200, 0.0)?)   //  1 Mbps, 200 ms,  0 %
//!     .data_rate(10e6)                                  // λ
//!     .lifetime(1.0)                                    // δ
//!     .build()?;
//!
//! let mut planner = Planner::new();
//! let plan = planner.plan(&scenario, Objective::MaxQuality)?;
//! assert!((plan.quality() - 1.0).abs() < 1e-9); // 100 % in time
//!
//! // The plan carries everything a sender needs:
//! let mut scheduler = plan.scheduler();            // Algorithm 1
//! let combo = scheduler.next_combo();
//! let slots = plan.strategy().table().slots_of(combo);
//! assert!(!slots.is_empty());
//! let t12 = plan.timeout(0, 1).expect("retransmission timeout, Eq. 4");
//! assert!((t12 - 0.800).abs() < 1e-9);             // d_1 + d_min
//! // ...and dmc-proto turns it into a runnable sender in one call:
//! // DmcSender::from_plan(&plan, rto_extra, total_messages).
//! # Ok(())
//! # }
//! ```
//!
//! Random delays use the *same* pipeline — construct the path with
//! [`ScenarioPath::new`](model::ScenarioPath::new) and a
//! [`ShiftedGamma`](stats::ShiftedGamma) distribution and the planner
//! optimizes the Eq. 34 retransmission timeouts automatically.
//!
//! # MIGRATION
//!
//! The pre-pipeline names remain available as thin shims. Mapping:
//!
//! | Legacy | Unified |
//! |---|---|
//! | `NetworkSpec`/`PathSpec` + `optimal_strategy` | `Scenario`/`ScenarioPath::constant` + `Planner::plan(_, Objective::MaxQuality)` |
//! | `min_cost_strategy(&net, q, &cfg)` | `Objective::MinCost { min_quality: q }` |
//! | `RandomNetworkSpec`/`RandomPath` + `RandomDelayModel` | `Scenario`/`ScenarioPath::new` through the same `Planner` |
//! | `single_path_quality(&net, k, &cfg)` | `planner.plan(&scenario.restricted_to_path(k), _)` |
//! | `ComboScheduler::new(x)` / `RandomScheduler` | `plan.scheduler()` / `Scheduler::new(x, SchedulePolicy::…)` |
//! | `TimeoutPlan::deterministic` / `from_random_model` | `TimeoutPlan::from_plan(&plan, extra)` |
//! | hand-built `SenderConfig::new(strategy, timeouts, λ, n)` | `SenderConfig::from_plan(&plan, extra, n)` |
//! | `experiments::runner::run_strategy(…6 args…)` | `experiments::runner::run_plan(&plan, &truth, &cfg)` |
//! | one `Planner` per flow, each assuming it owns the `Scenario` | [`dmc_fleet::FleetPlanner`] — admission control + one joint LP whose capacity rows are shared across all concurrent flows (multi-flow use) |
//! | one `FleetPlanner` serializing every offer/depart | [`dmc_fleet::FleetService`] — capacity-region sharding (one planner + warm-basis cache per shard), batched worker ticks, two-phase spanning admission, and a checksummed wire front end (`dmc_proto::wire` offer/decision/depart/link frames) |
//!
//! See `crates/core/src/lib.rs` for the model-level table,
//! `EXPERIMENTS.md` for the paper-vs-measured record, and
//! `ARCHITECTURE.md` for the crate dependency map, the data-flow
//! diagrams, the determinism rules, and "where to add X" pointers
//! (its crate table is kept in lockstep with the workspace by the
//! `arch_check` CI gate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dmc_core as model;
pub use dmc_experiments as experiments;
pub use dmc_fleet as fleet;
pub use dmc_lp as lp;
pub use dmc_obs as obs;
pub use dmc_proto as proto;
pub use dmc_sim as sim;
pub use dmc_stats as stats;

/// The most common imports in one place.
pub mod prelude {
    // The unified pipeline (preferred).
    pub use dmc_core::{
        Objective, Plan, PlanError, Planner, PlannerConfig, Scenario, ScenarioBuilder,
        ScenarioPath, SchedulePolicy, Scheduler, StageTimeoutSpec, TimeoutSchedule,
    };
    // Legacy model names (kept for migration; see the crate docs).
    pub use dmc_core::{
        min_cost_strategy, optimal_strategy, single_path_quality, ComboScheduler, ComboTable,
        DeterministicModel, ModelConfig, ModelError, NetworkSpec, PathSpec, PlateauRule,
        RandomDelayConfig, RandomDelayModel, RandomNetworkSpec, RandomPath, Slot, SolverOptions,
        Strategy,
    };
    pub use dmc_fleet::{
        AdmissionDecision, FleetConfig, FleetEvent, FleetObjective, FleetPlanner, FleetSnapshot,
        FleetTrace, FlowId, FlowRequest,
    };
    pub use dmc_proto::{
        AdaptiveConfig, AdaptiveSender, DmcReceiver, DmcSender, FailureDetection, ReceiverConfig,
        SenderConfig, TimeoutPlan,
    };
    pub use dmc_sim::{
        Dynamics, GilbertElliott, LinkConfig, LossModel, SimDuration, SimTime, TwoHostSim,
    };
    pub use dmc_stats::{ConstantDelay, Delay, ShiftedGamma, TrialStats};
}
