//! # deadline-multipath
//!
//! A complete Rust implementation of **"Deadline-Aware Multipath
//! Communication: An Optimization Problem"** (Chuat, Perrig & Hu,
//! DSN 2017): partially-reliable multipath communication that maximizes
//! the fraction of data delivered *before a deadline* by solving a linear
//! program over *path combinations* (initial-transmission path +
//! retransmission path(s)).
//!
//! The workspace layers, bottom up:
//!
//! | Crate | Re-exported as | What it is |
//! |---|---|---|
//! | `dmc-lp` | [`lp`] | dense two-phase simplex LP solver |
//! | `dmc-stats` | [`stats`] | gamma special functions, shifted-gamma delays, convolution |
//! | `dmc-core` | [`model`] | **the paper's model**: combinations, LPs, timeouts, Algorithm 1 |
//! | `dmc-sim` | [`sim`] | deterministic discrete-event network simulator (the ns-3 stand-in) |
//! | `dmc-proto` | [`proto`] | sender/receiver protocol state machines, acks, estimators |
//! | `dmc-experiments` | [`experiments`] | regenerators for every table & figure of the paper |
//!
//! # Quick start
//!
//! ```
//! use deadline_multipath::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Figure 1: a fat slow lossy path + a thin fast clean one.
//! let net = NetworkSpec::builder()
//!     .path(PathSpec::new(10e6, 0.600, 0.10)?) // 10 Mbps, 600 ms, 10 %
//!     .path(PathSpec::new(1e6, 0.200, 0.0)?)   //  1 Mbps, 200 ms,  0 %
//!     .data_rate(10e6)                          // λ
//!     .lifetime(1.0)                            // δ
//!     .build()?;
//!
//! let strategy = optimal_strategy(&net, &ModelConfig::default())?;
//! assert!((strategy.quality() - 1.0).abs() < 1e-9); // 100 % in time
//!
//! // Discretize per packet with Algorithm 1:
//! let mut scheduler = ComboScheduler::new(strategy.x().to_vec())?;
//! let combo = scheduler.next_combo();
//! let slots = strategy.table().slots_of(combo);
//! assert!(!slots.is_empty());
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios (simulation
//! included) and `EXPERIMENTS.md` for the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dmc_core as model;
pub use dmc_experiments as experiments;
pub use dmc_lp as lp;
pub use dmc_proto as proto;
pub use dmc_sim as sim;
pub use dmc_stats as stats;

/// The most common imports in one place.
pub mod prelude {
    pub use dmc_core::{
        min_cost_strategy, optimal_strategy, single_path_quality, ComboScheduler, ComboTable,
        DeterministicModel, ModelConfig, ModelError, NetworkSpec, PathSpec, PlateauRule,
        RandomDelayConfig, RandomDelayModel, RandomNetworkSpec, RandomPath, Slot, SolverOptions,
        Strategy,
    };
    pub use dmc_proto::{
        AdaptiveConfig, AdaptiveSender, DmcReceiver, DmcSender, ReceiverConfig, SenderConfig,
        TimeoutPlan,
    };
    pub use dmc_sim::{LinkConfig, SimDuration, SimTime, TwoHostSim};
    pub use dmc_stats::{ConstantDelay, Delay, ShiftedGamma};
}
