//! Cost-aware scheduling (§VI-A): a drone video uplink over a free but
//! weak mesh link, a metered LTE link, and an expensive satellite link.
//!
//! Shows both directions of the optimization:
//! * quality maximization under a spend budget `µ` (Eq. 7), sweeping the
//!   budget to trace the quality/cost frontier;
//! * cost minimization under a quality floor (Eq. 20–23).
//!
//! Run: `cargo run --example cost_budget --release`

use deadline_multipath::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Cost unit: $ per gigabit ≈ 1e-9 $/bit.
    let per_gbit = 1e-9;
    let mesh = PathSpec::with_cost(3e6, 0.080, 0.15, 0.0)?; // free, lossy
    let lte = PathSpec::with_cost(10e6, 0.050, 0.02, 8.0 * per_gbit)?;
    let sat = PathSpec::with_cost(20e6, 0.550, 0.01, 40.0 * per_gbit)?;

    let base = NetworkSpec::builder()
        .paths([mesh, lte, sat])
        .data_rate(12e6)
        .lifetime(0.9)
        .build()?;
    let cfg = ModelConfig::default();

    println!("budget ($/s) | quality | spend ($/s) | mesh/LTE/sat send rates (Mbps)");
    for budget in [0.02, 0.05, 0.10, 0.20, 0.40, 0.80] {
        let net = NetworkSpec::builder()
            .paths(base.paths().iter().copied())
            .data_rate(base.data_rate())
            .lifetime(base.lifetime())
            .cost_budget(budget)
            .build()?;
        let s = optimal_strategy(&net, &cfg)?;
        let r = s.send_rates();
        println!(
            "   {budget:>7.2}   |  {:>5.1}% |    {:>6.4}   | {:.1} / {:.1} / {:.1}",
            s.quality() * 100.0,
            s.cost_rate(),
            r[0] / 1e6,
            r[1] / 1e6,
            r[2] / 1e6
        );
    }

    println!("\nCheapest way to guarantee 95% quality:");
    match min_cost_strategy(&base, 0.95, &cfg) {
        Ok(s) => {
            println!(
                "  spend {:.4} $/s at quality {:.1}%",
                s.cost_rate(),
                s.quality() * 100.0
            );
            print!("{s}");
        }
        Err(e) => println!("  not achievable: {e}"),
    }

    println!("\nCheapest way to guarantee 99.5% quality:");
    match min_cost_strategy(&base, 0.995, &cfg) {
        Ok(s) => println!(
            "  spend {:.4} $/s at quality {:.1}%",
            s.cost_rate(),
            s.quality() * 100.0
        ),
        Err(e) => println!("  not achievable: {e}"),
    }
    Ok(())
}
