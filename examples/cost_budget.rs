//! Cost-aware scheduling (§VI-A): a drone video uplink over a free but
//! weak mesh link, a metered LTE link, and an expensive satellite link.
//!
//! Shows both directions of the optimization through one `Planner`:
//! * quality maximization under a spend budget `µ` (Eq. 7), sweeping the
//!   budget with `Objective::MaxQualityUnderBudget` to trace the
//!   quality/cost frontier;
//! * cost minimization under a quality floor (`Objective::MinCost`,
//!   Eq. 20–23).
//!
//! Run: `cargo run --example cost_budget --release`

use deadline_multipath::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Cost unit: $ per gigabit ≈ 1e-9 $/bit.
    let per_gbit = 1e-9;
    let mesh = ScenarioPath::constant_with_cost(3e6, 0.080, 0.15, 0.0)?; // free, lossy
    let lte = ScenarioPath::constant_with_cost(10e6, 0.050, 0.02, 8.0 * per_gbit)?;
    let sat = ScenarioPath::constant_with_cost(20e6, 0.550, 0.01, 40.0 * per_gbit)?;

    let base = Scenario::builder()
        .paths([mesh, lte, sat])
        .data_rate(12e6)
        .lifetime(0.9)
        .build()?;
    let mut planner = Planner::new();

    println!("budget ($/s) | quality | spend ($/s) | mesh/LTE/sat send rates (Mbps)");
    for budget in [0.02, 0.05, 0.10, 0.20, 0.40, 0.80] {
        let plan = planner.plan(
            &base.with_cost_budget(budget),
            Objective::MaxQualityUnderBudget,
        )?;
        let r = plan.send_rates();
        println!(
            "   {budget:>7.2}   |  {:>5.1}% |    {:>6.4}   | {:.1} / {:.1} / {:.1}",
            plan.quality() * 100.0,
            plan.cost_rate(),
            r[0] / 1e6,
            r[1] / 1e6,
            r[2] / 1e6
        );
    }

    println!("\nCheapest way to guarantee 95% quality:");
    match planner.plan(&base, Objective::MinCost { min_quality: 0.95 }) {
        Ok(plan) => {
            println!(
                "  spend {:.4} $/s at quality {:.1}%",
                plan.cost_rate(),
                plan.quality() * 100.0
            );
            print!("{}", plan.strategy());
        }
        Err(e) => println!("  not achievable: {e}"),
    }

    println!("\nCheapest way to guarantee 99.5% quality:");
    match planner.plan(&base, Objective::MinCost { min_quality: 0.995 }) {
        Ok(plan) => println!(
            "  spend {:.4} $/s at quality {:.1}%",
            plan.cost_rate(),
            plan.quality() * 100.0
        ),
        Err(e) => println!("  not achievable: {e}"),
    }
    Ok(())
}
