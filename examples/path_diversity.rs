//! Is path diversity worth it? (paper §I: "Is it preferable to have
//! identical paths … or diverse ones?")
//!
//! Compares, at equal aggregate capacity, a pair of *identical* "average"
//! paths against the paper's *complementary* pair (fat/slow/lossy +
//! thin/fast/clean), sweeping the lifetime. Diversity lets each path
//! specialize — bulk on the fat one, retransmissions and rescue on the
//! fast one — and wins across the deadline range where the slow path's
//! retransmissions can't return in time.
//!
//! Run: `cargo run --example path_diversity --release`

use deadline_multipath::prelude::*;

fn quality(paths: [PathSpec; 2], lambda: f64, delta: f64) -> f64 {
    let net = NetworkSpec::builder()
        .paths(paths)
        .data_rate(lambda)
        .lifetime(delta)
        .build()
        .expect("valid scenario");
    optimal_strategy(&net, &ModelConfig::default())
        .expect("feasible")
        .quality()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lambda = 90e6;
    // Diverse pair (Table III with the paper's model delays):
    let diverse = [
        PathSpec::new(80e6, 0.450, 0.2)?,
        PathSpec::new(20e6, 0.150, 0.0)?,
    ];
    // Identical pair with the same totals: 2 × 50 Mbps, averaged delay and
    // loss (weighted by bandwidth: 0.8·450+0.2·150 = 390 ms; 0.8·0.2 = 16%).
    let uniform = [
        PathSpec::new(50e6, 0.390, 0.16)?,
        PathSpec::new(50e6, 0.390, 0.16)?,
    ];

    println!("lifetime δ (ms) | diverse pair Q | identical pair Q");
    for delta_ms in [300, 450, 600, 750, 900, 1050, 1200, 1500] {
        let delta = delta_ms as f64 / 1e3;
        let qd = quality(diverse, lambda, delta);
        let qu = quality(uniform, lambda, delta);
        let marker = if qd > qu + 1e-9 {
            "← diversity wins"
        } else if qu > qd + 1e-9 {
            "← uniform wins"
        } else {
            ""
        };
        println!(
            "     {delta_ms:>5}      |     {:>5.1}%     |     {:>5.1}%      {marker}",
            qd * 100.0,
            qu * 100.0
        );
    }
    println!("\nThe complementary pair dominates at tight deadlines: the fast");
    println!("clean path rescues retransmissions the slow path cannot.");
    Ok(())
}
