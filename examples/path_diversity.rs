//! Is path diversity worth it? (paper §I: "Is it preferable to have
//! identical paths … or diverse ones?")
//!
//! Compares, at equal aggregate capacity, a pair of *identical* "average"
//! paths against the paper's *complementary* pair (fat/slow/lossy +
//! thin/fast/clean), sweeping the lifetime. Diversity lets each path
//! specialize — bulk on the fat one, retransmissions and rescue on the
//! fast one — and wins across the deadline range where the slow path's
//! retransmissions can't return in time.
//!
//! The whole sweep runs through one `Planner`, reusing its LP workspace.
//!
//! Run: `cargo run --example path_diversity --release`

use deadline_multipath::prelude::*;

fn quality(planner: &mut Planner, paths: [ScenarioPath; 2], lambda: f64, delta: f64) -> f64 {
    let scenario = Scenario::builder()
        .paths(paths)
        .data_rate(lambda)
        .lifetime(delta)
        .build()
        .expect("valid scenario");
    planner
        .plan(&scenario, Objective::MaxQuality)
        .expect("feasible")
        .quality()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lambda = 90e6;
    // Diverse pair (Table III with the paper's model delays):
    let diverse = [
        ScenarioPath::constant(80e6, 0.450, 0.2)?,
        ScenarioPath::constant(20e6, 0.150, 0.0)?,
    ];
    // Identical pair with the same totals: 2 × 50 Mbps, averaged delay and
    // loss (weighted by bandwidth: 0.8·450+0.2·150 = 390 ms; 0.8·0.2 = 16%).
    let uniform = [
        ScenarioPath::constant(50e6, 0.390, 0.16)?,
        ScenarioPath::constant(50e6, 0.390, 0.16)?,
    ];

    let mut planner = Planner::new();
    println!("lifetime δ (ms) | diverse pair Q | identical pair Q");
    for delta_ms in [300, 450, 600, 750, 900, 1050, 1200, 1500] {
        let delta = delta_ms as f64 / 1e3;
        let qd = quality(&mut planner, diverse.clone(), lambda, delta);
        let qu = quality(&mut planner, uniform.clone(), lambda, delta);
        let marker = if qd > qu + 1e-9 {
            "← diversity wins"
        } else if qu > qd + 1e-9 {
            "← uniform wins"
        } else {
            ""
        };
        println!(
            "     {delta_ms:>5}      |     {:>5.1}%     |     {:>5.1}%      {marker}",
            qd * 100.0,
            qu * 100.0
        );
    }
    println!("\nThe complementary pair dominates at tight deadlines: the fast");
    println!("clean path rescues retransmissions the slow path cannot.");
    Ok(())
}
