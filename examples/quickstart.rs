//! Quickstart: the paper's Figure 1 scenario, end to end, through the
//! unified `Scenario` → `Planner` → `Plan` pipeline.
//!
//! Two paths with opposite strengths — a fat, slow, lossy one and a thin,
//! fast, clean one — carry a 10 Mbps flow whose packets expire after one
//! second. Neither path alone can deliver everything in time; the optimal
//! *combination* (send on the fat path, retransmit losses on the thin
//! one) delivers 100 %.
//!
//! Run: `cargo run --example quickstart --release`

use deadline_multipath::experiments::runner::{run_plan, RunConfig, TrueNetwork};
use deadline_multipath::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Describe the scenario (paper Figure 1) -------------------------
    let scenario = Scenario::builder()
        .path(ScenarioPath::constant(10e6, 0.600, 0.10)?) // path 1: 10 Mbps, 600 ms, 10 %
        .path(ScenarioPath::constant(1e6, 0.200, 0.0)?) //   path 2:  1 Mbps, 200 ms,  0 %
        .data_rate(10e6) // the application generates 10 Mbps
        .lifetime(1.0) // data is useless after 1 s
        .build()?;

    // --- Plan ------------------------------------------------------------
    let mut planner = Planner::new();
    let plan = planner.plan(&scenario, Objective::MaxQuality)?;
    println!("Optimal multipath strategy:\n{}", plan.strategy());

    for (k, label) in [(0usize, "path 1"), (1, "path 2")] {
        let q = planner
            .plan(&scenario.restricted_to_path(k), Objective::MaxQuality)?
            .quality();
        println!("best possible using {label} alone: {:.1}%", q * 100.0);
    }

    // --- Validate in simulation ------------------------------------------
    // Figure 1's numbers sit *exactly* at the deadline boundary
    // (600 + 200 + 200 ms = δ = 1 s) with both paths at 100 % load — an
    // idealization. A real run needs slack for serialization, timeout
    // margin and queueing, so the practical variant runs at 80 % load
    // with a 1.2 s lifetime; the optimal structure (bulk on path 1,
    // retransmissions on path 2) is identical.
    let practical = scenario.with_data_rate(8e6).with_lifetime(1.2);
    // Conservative model: 15 % bandwidth headroom (a path planned at
    // 100 % of its true capacity builds an unbounded queue), and
    // `plan_with_margin` adds the paper's +50 ms delay margin to the LP
    // while keeping retransmission timeouts on the measured delays.
    let mut conservative = practical.clone();
    for (k, p) in practical.paths().iter().enumerate() {
        let spec = p.as_spec().expect("constant-delay path");
        conservative = conservative.with_path_replaced(
            k,
            ScenarioPath::constant(spec.bandwidth() * 0.85, spec.delay(), spec.loss())?,
        );
    }
    let plan = planner.plan_with_margin(&conservative, 0.050, Objective::MaxQuality)?;
    println!(
        "practical strategy for the simulation run:\n{}",
        plan.strategy()
    );

    let mut run_cfg = RunConfig::default();
    run_cfg.messages = 20_000;
    run_cfg.rto_extra = SimDuration::from_millis(50);
    let outcome = run_plan(&plan, &TrueNetwork::from_scenario(&practical), &run_cfg)?;
    println!(
        "simulation: {} of {} messages in time → Q = {:.2}% (theory: {:.2}%)",
        outcome.receiver.unique_in_time,
        outcome.sender.generated,
        outcome.quality * 100.0,
        outcome.predicted_quality * 100.0,
    );
    println!(
        "retransmissions: {}   duplicates at receiver: {}",
        outcome.sender.retransmissions, outcome.receiver.duplicates
    );
    Ok(())
}
