//! Quickstart: the paper's Figure 1 scenario, end to end.
//!
//! Two paths with opposite strengths — a fat, slow, lossy one and a thin,
//! fast, clean one — carry a 10 Mbps flow whose packets expire after one
//! second. Neither path alone can deliver everything in time; the optimal
//! *combination* (send on the fat path, retransmit losses on the thin
//! one) delivers 100 %.
//!
//! Run: `cargo run --example quickstart --release`

use deadline_multipath::experiments::runner::{run_strategy, RunConfig, TrueNetwork};
use deadline_multipath::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Describe the scenario (paper Figure 1) -------------------------
    let net = NetworkSpec::builder()
        .path(PathSpec::new(10e6, 0.600, 0.10)?) // path 1: 10 Mbps, 600 ms, 10 %
        .path(PathSpec::new(1e6, 0.200, 0.0)?) //   path 2:  1 Mbps, 200 ms,  0 %
        .data_rate(10e6) // the application generates 10 Mbps
        .lifetime(1.0) // data is useless after 1 s
        .build()?;

    // --- Solve the LP ----------------------------------------------------
    let cfg = ModelConfig::default();
    let strategy = optimal_strategy(&net, &cfg)?;
    println!("Optimal multipath strategy:\n{strategy}");

    for (k, label) in [(0usize, "path 1"), (1, "path 2")] {
        let q = single_path_quality(&net, k, &cfg)?;
        println!("best possible using {label} alone: {:.1}%", q * 100.0);
    }

    // --- Validate in simulation ------------------------------------------
    // Figure 1's numbers sit *exactly* at the deadline boundary
    // (600 + 200 + 200 ms = δ = 1 s) with both paths at 100 % load — an
    // idealization. A real run needs slack for serialization, timeout
    // margin and queueing, so the practical variant runs at 80 % load
    // with a 1.2 s lifetime; the optimal structure (bulk on path 1,
    // retransmissions on path 2) is identical.
    let practical = net.with_data_rate(8e6).with_lifetime(1.2);
    // Conservative model: +50 ms on delays and 15 % bandwidth headroom
    // (a path planned at 100 % of its true capacity builds an unbounded
    // queue — the paper's §IX-C suggests adjusting the bounds in q
    // exactly like this).
    let mut model_net = practical.clone();
    for k in 0..practical.num_paths() {
        let p = practical.paths()[k];
        model_net = model_net.with_path_replaced(
            k,
            PathSpec::new(p.bandwidth() * 0.85, p.delay() + 0.05, p.loss())?,
        );
    }
    let strategy = optimal_strategy(&model_net, &cfg)?;
    println!("practical strategy for the simulation run:\n{strategy}");
    let timeouts =
        TimeoutPlan::deterministic(&practical, strategy.table(), SimDuration::from_millis(50));
    let mut run_cfg = RunConfig::default();
    run_cfg.messages = 20_000;
    let outcome = run_strategy(
        strategy,
        timeouts,
        &TrueNetwork::deterministic(&practical),
        practical.data_rate(),
        practical.lifetime(),
        practical.min_delay_path(),
        &run_cfg,
    )?;
    println!(
        "simulation: {} of {} messages in time → Q = {:.2}% (theory: {:.2}%)",
        outcome.receiver.unique_in_time,
        outcome.sender.generated,
        outcome.quality * 100.0,
        outcome.predicted_quality * 100.0,
    );
    println!(
        "retransmissions: {}   duplicates at receiver: {}",
        outcome.sender.retransmissions, outcome.receiver.duplicates
    );
    Ok(())
}
