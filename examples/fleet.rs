//! Fleet walkthrough: many tenants, two shared links, one joint LP.
//!
//! A video call, a telemetry stream and a bulk sync contend for the
//! paper's Table III path pair. The fleet admits each flow only if the
//! remaining shared capacity can still meet every accepted quality floor
//! (the DDCCast rule), allocates jointly — `Σ` over flows of per-flow
//! path usage ≤ path bandwidth — and hands every tenant an ordinary
//! `Plan`, which we verify by simulation on the flow's allocated slice.
//! Then a link fails mid-session: flows that no longer fit are shed into
//! the re-admission queue (lowest priority first), everyone else is
//! re-planned, warm-started from cached bases — and recovery revives the
//! shed flows under their original ids.
//!
//! Run: `cargo run --example fleet --release`

use deadline_multipath::experiments::fleet::allocated_slice;
use deadline_multipath::experiments::runner::{run_plan, RunConfig};
use deadline_multipath::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The shared infrastructure --------------------------------------
    // One fat lossy link + one thin clean link, shared by *all* tenants.
    let mut fleet = FleetPlanner::new(
        vec![
            ScenarioPath::constant(80e6, 0.450, 0.2)?, // 80 Mbps, 450 ms, 20 %
            ScenarioPath::constant(20e6, 0.150, 0.0)?, // 20 Mbps, 150 ms,  0 %
        ],
        FleetConfig::default(),
    )?;

    // --- Tenants arrive ---------------------------------------------------
    // 900 ms of lifetime leaves headroom over the 750 ms cross-path
    // retransmission (exact-boundary plans don't survive real timers and
    // queueing — see the quickstart example's discussion).
    let video = fleet.offer(
        FlowRequest::new(30e6, 0.900)? // 30 Mbps of frames, 900 ms deadline
            .with_min_quality(0.95) //    ≥ 95 % must arrive in time
            .with_priority(4.0),
    )?;
    let telemetry = fleet.offer(
        FlowRequest::new(5e6, 0.450)? // small but latency-critical
            .with_min_quality(0.99),
    )?;
    let bulk = fleet.offer(FlowRequest::new(60e6, 1.5)?)?; // best effort
    for (name, decision) in [
        ("video", &video),
        ("telemetry", &telemetry),
        ("bulk", &bulk),
    ] {
        match decision {
            AdmissionDecision::Admitted {
                predicted_quality, ..
            } => println!(
                "{name:9} admitted: predicted delivery {:.1} %",
                predicted_quality * 100.0
            ),
            AdmissionDecision::Rejected { reason, .. } => {
                println!("{name:9} REJECTED: {reason}")
            }
        }
    }
    let util = fleet.utilization();
    println!(
        "shared-link utilization: path 1 {:.0} %, path 2 {:.0} % (joint LP keeps both ≤ 100 %)",
        util[0] * 100.0,
        util[1] * 100.0
    );

    // A fourth strict tenant that does NOT fit is turned away — and the
    // incumbents' allocations are untouched.
    let greedy = fleet.offer(FlowRequest::new(60e6, 0.8)?.with_min_quality(0.9))?;
    assert!(!greedy.is_admitted());
    println!("\na 60 Mbps / 90 %-floor latecomer is rejected: floors already spoken for");

    // --- Every tenant holds an ordinary Plan ------------------------------
    // Verify the video flow by simulation on its *allocated slice* of the
    // shared links (over-provisioned 2× for queueing slack, the paper's
    // Experiment-2 practice — the same convention the fleet driver uses).
    let plan = fleet.plan_of(video.id()).expect("admitted").clone();
    let mut cfg = RunConfig::default();
    cfg.messages = 20_000;
    let outcome = run_plan(&plan, &allocated_slice(&plan), &cfg).map_err(|e| e.to_string())?;
    println!(
        "\nvideo verified by simulation on its slice: {:.2} % delivered in time (LP predicted {:.2} %)",
        outcome.quality * 100.0,
        plan.quality() * 100.0
    );

    // --- A link fails mid-session ----------------------------------------
    let shed = fleet.apply_link_change(0, &deadline_multipath::sim::LinkChange::Fail)?;
    println!(
        "\npath 1 fails: {} flow(s) shed for re-admission, {} still admitted on the thin link",
        shed.len(),
        fleet.num_flows()
    );
    for id in &shed {
        println!("  shed: {id}");
    }
    for (id, plan) in fleet.plans() {
        println!(
            "  {id} keeps {:.1} % predicted delivery",
            plan.quality() * 100.0
        );
    }

    // --- Recovery revives the shed flows ----------------------------------
    fleet.apply_link_change(0, &deadline_multipath::sim::LinkChange::Recover)?;
    println!(
        "\npath 1 recovers: {} flow(s) revived under their original ids, {} admitted again",
        fleet.revived_flows().len(),
        fleet.num_flows()
    );

    // --- Churn is cheap ----------------------------------------------------
    for _ in 0..8 {
        let d = fleet.offer(FlowRequest::new(10e6, 0.8)?.with_min_quality(0.5))?;
        fleet.depart(d.id())?;
    }
    println!(
        "\nafter 8 arrive/depart cycles: {} (bases cached per joint-LP shape)",
        fleet.warm_stats()
    );
    Ok(())
}
