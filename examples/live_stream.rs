//! A live stream with *online estimation* (§VIII-A): the sender starts
//! with an optimistic prior, discovers the real loss rate from acks and
//! timeouts, re-plans through its owned `Planner`, and retargets
//! Algorithm 1 from each fresh `Plan`.
//!
//! Compares the static (mis-informed) sender against the adaptive one on
//! the same network. Both are constructed from the same initial `Plan` —
//! no hand-wired strategy/timeout/config assembly.
//!
//! Run: `cargo run --example live_stream --release`

use deadline_multipath::prelude::*;
use dmc_sim::LinkConfig;
use std::sync::Arc;

fn link(bw: f64, delay: f64, loss: f64) -> LinkConfig {
    LinkConfig {
        bandwidth_bps: bw,
        propagation: Arc::new(ConstantDelay::new(delay)),
        loss: loss.into(),
        queue_capacity_bytes: 100 * 1024,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The sender believes: primary 10 Mbps / 100 ms / 2 % loss,
    //                      backup   4 Mbps /  50 ms / clean.
    // (The adaptive loop refines a NetworkSpec prior, so build that and
    // derive the unified Scenario from it.)
    let prior = NetworkSpec::builder()
        .path(PathSpec::new(10e6, 0.100, 0.02)?)
        .path(PathSpec::new(4e6, 0.050, 0.0)?)
        .data_rate(12e6)
        .lifetime(0.4)
        .build()?;
    // Reality: the primary is losing 40 % (interference), and the true
    // links have headroom over the configured rates (provisioning slack).
    let fwd = vec![link(12e6, 0.100, 0.40), link(5e6, 0.050, 0.0)];
    let bwd = vec![link(12e6, 0.100, 0.0), link(5e6, 0.050, 0.0)];
    let messages = 40_000;

    let mut planner = Planner::new();
    let plan = planner.plan(&Scenario::from_network(&prior), Objective::MaxQuality)?;
    let rto_extra = SimDuration::from_millis(50);
    let receiver = || DmcReceiver::new(ReceiverConfig::new(SimDuration::from_secs_f64(0.4), 1));

    // --- static sender ---------------------------------------------------
    let mut sim = TwoHostSim::new(
        fwd.clone(),
        bwd.clone(),
        DmcSender::from_plan(&plan, rto_extra, messages),
        receiver(),
        1,
    )?;
    sim.run_until(SimTime::from_secs_f64(60.0));
    let q_static = sim.server().stats().unique_in_time as f64 / messages as f64;
    println!("static sender (wrong prior): Q = {:.1}%", q_static * 100.0);

    // --- adaptive sender ---------------------------------------------------
    let adaptive = AdaptiveSender::from_plan(
        &plan,
        AdaptiveConfig {
            prior: prior.clone(),
            interval: SimDuration::from_millis(250),
            model: ModelConfig::default(),
            rto_extra,
            min_samples: 30,
            quality_floor: None,
            jitter_seed: 0x11_7E57,
        },
        messages,
    );
    let mut sim = TwoHostSim::new(fwd, bwd, adaptive, receiver(), 1)?;
    sim.run_until(SimTime::from_secs_f64(60.0));
    let q_adaptive = sim.server().stats().unique_in_time as f64 / messages as f64;
    let est = sim.client().estimated_network();
    println!(
        "adaptive sender:             Q = {:.1}%  ({} re-solves)",
        q_adaptive * 100.0,
        sim.client().resolves()
    );
    println!(
        "learned characteristics: primary loss {:.1}% (true 40%), delay {:.0} ms (true 100 ms)",
        est.paths()[0].loss() * 100.0,
        est.paths()[0].delay() * 1e3
    );
    Ok(())
}
