//! A live stream surviving a *mid-transfer path failure*: the primary
//! path dies 10 s in and comes back at 25 s (a `dmc_sim::Dynamics`
//! schedule). The receiver's failure detector notices the outage within
//! ~100 ms, reports it with a `PathNotice` on the surviving path, and the
//! adaptive sender re-plans immediately with the dead path's loss pinned
//! to 1 — then probes the path until the recovery notice re-admits it.
//!
//! Compares a static (plan-once) sender against the failure-aware
//! adaptive loop on the same network and failure schedule.
//!
//! Run: `cargo run --example path_failure --release`

use deadline_multipath::prelude::*;
use std::sync::Arc;

fn link(bw: f64, delay: f64, loss: f64) -> LinkConfig {
    LinkConfig {
        bandwidth_bps: bw,
        propagation: Arc::new(ConstantDelay::new(delay)),
        loss: loss.into(),
        queue_capacity_bytes: 100 * 1024,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Primary: wide but 2 % lossy. Backup: thin and clean. λ = 5 Mbps
    // fits either path's direct share, but the δ = 300 ms deadline is
    // tight enough that a timeout detour (send on the dead primary, wait
    // d₀ + d_min + extra = 250 ms, retransmit on the backup) arrives
    // late — so during the outage only traffic *planned* onto the backup
    // survives, and re-planning is what saves the stream.
    let believed = NetworkSpec::builder()
        .path(PathSpec::new(10e6, 0.100, 0.02)?)
        .path(PathSpec::new(4e6, 0.050, 0.0)?)
        .data_rate(5e6)
        .lifetime(0.3)
        .build()?;
    let fwd = vec![link(12e6, 0.100, 0.02), link(5e6, 0.050, 0.0)];
    let bwd = vec![link(12e6, 0.100, 0.0), link(5e6, 0.050, 0.0)];
    // The outage: path 0 (both directions) down from t = 10 s to t = 25 s.
    let dynamics = Dynamics::new().path_failure(0, 10.0, 25.0)?;
    // ≈ 34 s of generation at λ = 5 Mbps; MESSAGES overrides (the CI
    // smoke run uses a shorter transfer that still spans the outage).
    let messages = std::env::var("MESSAGES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(21_000);
    let horizon = SimTime::from_secs_f64(40.0);
    let rto_extra = SimDuration::from_millis(100);

    let mut planner = Planner::new();
    let plan = planner.plan(&Scenario::from_network(&believed), Objective::MaxQuality)?;

    // --- static sender: plans once, never hears about the failure --------
    let receiver = DmcReceiver::new(ReceiverConfig::new(SimDuration::from_secs_f64(0.3), 1));
    let mut sim = TwoHostSim::new(
        fwd.clone(),
        bwd.clone(),
        DmcSender::from_plan(&plan, rto_extra, messages),
        receiver,
        1,
    )?;
    sim.apply_dynamics(&dynamics)?;
    sim.run_until(horizon);
    let q_static = sim.server().stats().unique_in_time as f64 / messages as f64;
    println!("static sender:         Q = {:.1}%", q_static * 100.0);

    // --- failure-aware adaptive sender -----------------------------------
    let adaptive = AdaptiveSender::from_plan(
        &plan,
        AdaptiveConfig {
            prior: believed.clone(),
            interval: SimDuration::from_millis(500),
            model: ModelConfig::default(),
            rto_extra,
            min_samples: 30,
            quality_floor: None,
            jitter_seed: 0x12_7E57,
        },
        messages,
    );
    let receiver = DmcReceiver::new(
        ReceiverConfig::new(SimDuration::from_secs_f64(0.3), 1)
            // Silence threshold ≫ the slowest path's natural inter-arrival
            // (the backup sees mostly loss-retransmissions, ~80 ms apart on
            // average) or lulls read as outages and the detector flaps.
            .with_failure_detection(FailureDetection::new(SimDuration::from_millis(500))),
    );
    let mut sim = TwoHostSim::new(fwd, bwd, adaptive, receiver, 1)?;
    sim.apply_dynamics(&dynamics)?;
    sim.run_until(horizon);
    let q_aware = sim.server().stats().unique_in_time as f64 / messages as f64;
    let stats = sim.server().stats();
    println!(
        "failure-aware sender:  Q = {:.1}%  ({} down/{} up notices, {} notice re-plans, {} probes)",
        q_aware * 100.0,
        stats.failure_notices_sent,
        stats.recovery_notices_sent,
        sim.client().notice_replans(),
        sim.client().probes_sent(),
    );
    println!(
        "paths still marked failed at the end: {:?}",
        sim.client().failed_paths()
    );
    Ok(())
}
