//! A videoconference over WiFi + LTE + wired, with realistic *random*
//! delays (shifted gamma, §VI-B) and a tight 150 ms lifetime.
//!
//! Demonstrates that random delays ride the exact same pipeline as
//! constant ones: build a `Scenario` whose paths carry `ShiftedGamma`
//! distributions, plan it, and read the Eq. 34 retransmission timeouts
//! straight off the `Plan`.
//!
//! Run: `cargo run --example videoconference --release`

use deadline_multipath::experiments::runner::{run_plan, RunConfig, TrueNetwork};
use deadline_multipath::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 4 Mbps of video+audio, 150 ms budget (interactive threshold).
    // WiFi: decent rate, jittery, occasionally lossy.
    let wifi = ScenarioPath::new(
        8e6,
        Arc::new(ShiftedGamma::new(4.0, 0.004, 0.015)?), // mean 31 ms
        0.05,
        0.0,
    )?;
    // LTE: lower rate, higher floor, cleaner.
    let lte = ScenarioPath::new(
        4e6,
        Arc::new(ShiftedGamma::new(6.0, 0.005, 0.040)?), // mean 70 ms
        0.01,
        0.0,
    )?;
    // Wired: thin but fast and clean (e.g. tethered DSL).
    let wired = ScenarioPath::new(
        2e6,
        Arc::new(ShiftedGamma::new(3.0, 0.002, 0.010)?), // mean 16 ms
        0.0,
        0.0,
    )?;

    let scenario = Scenario::builder()
        .paths([wifi, lte, wired])
        .data_rate(4e6)
        .lifetime(0.150)
        .build()?;

    let mut planner = Planner::new();
    let plan = planner.plan(&scenario, Objective::MaxQuality)?;
    println!(
        "ack path: {} (lowest expected delay, Eq. 25)",
        plan.ack_path() + 1
    );
    for (i, j, name) in [
        (0usize, 2usize, "WiFi → wired"),
        (0, 1, "WiFi → LTE"),
        (1, 2, "LTE → wired"),
    ] {
        match plan.timeout(i, j) {
            Some(t) => println!("timeout {name}: {:.0} ms (Eq. 34)", t * 1e3),
            None => println!("timeout {name}: no retransmission can meet the deadline"),
        }
    }

    println!("\nOptimal strategy:\n{}", plan.strategy());

    let mut cfg = RunConfig::default();
    cfg.messages = 50_000;
    cfg.message_bytes = 512; // small media packets
    let truth = TrueNetwork::from_scenario(&scenario).over_provisioned(1.5);
    let outcome =
        run_plan(&plan, &truth, &cfg).map_err(|e| -> Box<dyn std::error::Error> { e.into() })?;
    println!(
        "simulated: {:.2}% in time (model expected {:.2}%)",
        outcome.quality * 100.0,
        outcome.predicted_quality * 100.0
    );
    Ok(())
}
