//! Fixture-based golden tests: per rule, one violating fixture, one clean
//! fixture, and one pragma-suppressed fixture. Fixtures live under
//! `tests/fixtures/` (skipped by the workspace scan via `dmc-lint.conf`)
//! and are scanned here under synthetic repo paths, because a file's role
//! (library vs test/bin) and rule scope derive from its path.

use std::path::Path;

use dmc_lint::{scan_source, Config, Rule};

/// Scan a fixture as if it lived at `rel` inside the repo.
fn scan_fixture_as(fixture: &str, rel: &str) -> dmc_lint::rules::FileScan {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    scan_source(rel, &src, &Config::default())
}

/// (rule, line) pairs of the unsuppressed diagnostics.
fn hits(scan: &dmc_lint::rules::FileScan) -> Vec<(Rule, u32)> {
    scan.diags.iter().map(|d| (d.rule, d.line)).collect()
}

// A path inside the determinism scope with Library role.
const LIB: &str = "crates/core/src/fixture.rs";

#[test]
fn float_exact_golden() {
    let v = scan_fixture_as("float_exact_violation.rs", LIB);
    assert_eq!(hits(&v), vec![(Rule::FloatExact, 2), (Rule::FloatExact, 5)]);
    // Full rendered form, pinned once: rustc-style file:line:col with rule id.
    assert_eq!(
        v.diags[0].render(true),
        "crates/core/src/fixture.rs:2:7: error[float-exact]: exact float `==` comparison: \
         use a tolerance, or annotate the invariant that makes exact equality meaningful"
    );

    assert!(hits(&scan_fixture_as("float_exact_clean.rs", LIB)).is_empty());

    let s = scan_fixture_as("float_exact_suppressed.rs", LIB);
    assert!(hits(&s).is_empty(), "{:?}", s.diags);
    assert_eq!(s.suppressed_pragma, 2);

    // Float compares in test/bin-role files are idiomatic (bitwise parity
    // tests are this repo's bread and butter) and do not flag.
    let as_test = scan_fixture_as("float_exact_violation.rs", "crates/core/tests/fixture.rs");
    assert!(hits(&as_test).is_empty());
}

#[test]
fn panic_hygiene_golden() {
    let v = scan_fixture_as("panic_hygiene_violation.rs", LIB);
    assert_eq!(
        hits(&v),
        vec![
            (Rule::PanicHygiene, 2),  // .unwrap()
            (Rule::PanicHygiene, 5),  // panic!
            (Rule::PanicHygiene, 10), // unreachable!
            (Rule::PanicHygiene, 14), // short .expect
        ]
    );

    // Clean: typed errors, invariant-naming expect, and a #[cfg(test)]
    // module whose unwrap/panic are exempt.
    let c = scan_fixture_as("panic_hygiene_clean.rs", LIB);
    assert!(hits(&c).is_empty(), "{:?}", c.diags);

    let s = scan_fixture_as("panic_hygiene_suppressed.rs", LIB);
    assert!(hits(&s).is_empty(), "{:?}", s.diags);
    assert_eq!(s.suppressed_pragma, 1);

    // The same violations under a bin-role path are exempt.
    let as_bin = scan_fixture_as(
        "panic_hygiene_violation.rs",
        "crates/experiments/src/bin/fixture.rs",
    );
    assert!(hits(&as_bin).is_empty());
}

#[test]
fn det_unordered_map_golden() {
    let v = scan_fixture_as("det_unordered_map_violation.rs", LIB);
    // The `use` line never flags; both body mentions do.
    assert_eq!(
        hits(&v),
        vec![(Rule::DetUnorderedMap, 4), (Rule::DetUnorderedMap, 4)]
    );

    assert!(hits(&scan_fixture_as("det_unordered_map_clean.rs", LIB)).is_empty());

    let s = scan_fixture_as("det_unordered_map_suppressed.rs", LIB);
    assert!(hits(&s).is_empty(), "{:?}", s.diags);
    assert_eq!(s.suppressed_pragma, 1);

    // Outside the determinism scope the rule does not apply.
    let out = scan_fixture_as(
        "det_unordered_map_violation.rs",
        "crates/lint/src/fixture.rs",
    );
    assert!(hits(&out).is_empty());
}

#[test]
fn det_wallclock_golden() {
    let v = scan_fixture_as("det_wallclock_violation.rs", LIB);
    // `use std::time::Instant` is exempt; the return type and the call
    // site both flag.
    assert_eq!(
        hits(&v),
        vec![(Rule::DetWallclock, 3), (Rule::DetWallclock, 4)]
    );

    assert!(hits(&scan_fixture_as("det_wallclock_clean.rs", LIB)).is_empty());

    let s = scan_fixture_as("det_wallclock_suppressed.rs", LIB);
    // The pragma guards the call; the type mention in the signature still
    // flags, so a real suppression needs the signature annotated too —
    // here we only pin the call-site suppression.
    assert_eq!(hits(&s), vec![(Rule::DetWallclock, 3)]);
    assert_eq!(s.suppressed_pragma, 1);
}

#[test]
fn det_thread_spawn_golden() {
    let v = scan_fixture_as("det_thread_spawn_violation.rs", LIB);
    assert_eq!(
        hits(&v),
        vec![
            (Rule::DetThreadSpawn, 2), // std::thread::spawn
            (Rule::DetThreadSpawn, 4), // std::thread::scope
            (Rule::DetThreadSpawn, 5), // s.spawn(…)
        ]
    );

    assert!(hits(&scan_fixture_as("det_thread_spawn_clean.rs", LIB)).is_empty());

    let s = scan_fixture_as("det_thread_spawn_suppressed.rs", LIB);
    assert!(hits(&s).is_empty(), "{:?}", s.diags);
    assert_eq!(s.suppressed_pragma, 2);

    // The checked-in allowlist suppresses without touching the source:
    // this is exactly how the Monte-Carlo pool is sanctioned.
    let cfg = Config::parse(
        "allow det-thread-spawn crates/core/src/fixture.rs -- sanctioned pool for this test\n",
    )
    .unwrap();
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/det_thread_spawn_violation.rs");
    let src = std::fs::read_to_string(path).unwrap();
    let allowed = scan_source(LIB, &src, &cfg);
    assert!(allowed.diags.is_empty(), "{:?}", allowed.diags);
    assert_eq!(allowed.suppressed_allowlist, 3);
}

#[test]
fn unsafe_code_golden() {
    let v = scan_fixture_as("unsafe_code_violation.rs", LIB);
    assert_eq!(hits(&v), vec![(Rule::UnsafeCode, 2)]);

    assert!(hits(&scan_fixture_as("unsafe_code_clean.rs", LIB)).is_empty());

    // unsafe flags even in test-role files: the audit has no blind spots.
    let in_tests = scan_fixture_as("unsafe_code_violation.rs", "crates/core/tests/fixture.rs");
    assert_eq!(hits(&in_tests), vec![(Rule::UnsafeCode, 2)]);
}

#[test]
fn pragma_without_reason_is_rejected() {
    let v = scan_fixture_as("bad_pragma.rs", LIB);
    let bad: Vec<u32> = v
        .diags
        .iter()
        .filter(|d| d.rule == Rule::BadPragma)
        .map(|d| d.line)
        .collect();
    // Reasonless pragma, unknown rule id, unknown directive.
    assert_eq!(bad, vec![2, 6, 10]);
    // A rejected pragma suppresses nothing: all three float compares
    // still flag.
    let floats = v
        .diags
        .iter()
        .filter(|d| d.rule == Rule::FloatExact)
        .count();
    assert_eq!(floats, 3, "{:?}", v.diags);
    assert_eq!(v.suppressed_pragma, 0);
}
