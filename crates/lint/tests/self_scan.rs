//! The linchpin: the workspace itself must be clean under `--deny`
//! semantics, with every suppression carrying a written reason. This is
//! the same scan CI runs; if a new HashMap iteration, wall-clock read,
//! float `==` or library `unwrap()` lands anywhere in the workspace, this
//! test fails before CI does.

use std::path::{Path, PathBuf};

use dmc_lint::{engine, Config};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("crates/lint sits two levels below the workspace root")
}

fn workspace_config(root: &Path) -> Config {
    let conf = root.join("dmc-lint.conf");
    let text =
        std::fs::read_to_string(&conf).expect("dmc-lint.conf is checked in at the workspace root");
    Config::parse(&text).expect("checked-in dmc-lint.conf parses")
}

#[test]
fn workspace_is_clean_under_deny() {
    let root = workspace_root();
    let cfg = workspace_config(&root);
    let report = engine::scan_workspace(&root, &[], &cfg).expect("workspace scan io");
    let rendered: Vec<String> = report.diags.iter().map(|d| d.render(true)).collect();
    assert!(
        report.clean(),
        "workspace has unsuppressed diagnostics:\n{}",
        rendered.join("\n")
    );
    // Sanity: the scan actually covered the workspace rather than
    // silently skipping it.
    assert!(
        report.files_scanned > 80,
        "only {} files scanned",
        report.files_scanned
    );
    // The sweep is real: deliberate exact-float/map/wallclock sites are
    // annotated (not absent), and the Monte-Carlo pool rides the
    // checked-in allowlist.
    assert!(
        report.suppressed_pragma >= 20,
        "expected the annotated sweep, saw {} pragma suppressions",
        report.suppressed_pragma
    );
    assert!(
        report.suppressed_allowlist >= 1,
        "expected the montecarlo allowlist entry to be exercised"
    );
}

#[test]
fn every_allowlist_entry_names_a_real_path() {
    // Allowlist entries that match nothing are stale and must be removed;
    // entries pointing at paths that no longer exist are bugs.
    let root = workspace_root();
    let cfg = workspace_config(&root);
    for entry in &cfg.allow {
        assert!(
            root.join(&entry.prefix).exists(),
            "allowlist entry for `{}` points at a path that does not exist",
            entry.prefix
        );
        assert!(
            !entry.reason.is_empty(),
            "allowlist entry for `{}` has no reason",
            entry.prefix
        );
    }
}
