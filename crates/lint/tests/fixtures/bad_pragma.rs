pub fn is_zero(x: f64) -> bool {
    // dmc-lint: allow(float-exact)
    x == 0.0
}
pub fn unknown_rule(x: f64) -> bool {
    // dmc-lint: allow(no-such-rule) reason text
    x == 1.0
}
pub fn unknown_directive(x: f64) -> bool {
    // dmc-lint: frobnicate(float-exact) reason text
    x == 2.0
}
