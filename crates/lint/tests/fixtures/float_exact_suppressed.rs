pub fn is_zero(x: f64) -> bool {
    x == 0.0 // dmc-lint: allow(float-exact) a stored zero means structurally absent
}
pub fn nonzero(x: f64) -> bool {
    // dmc-lint: allow(float-exact) exact endpoint short-circuits to the exact value
    0.0 != x
}
