use std::collections::HashMap;

pub fn build() -> usize {
    let m: HashMap<u64, u64> = HashMap::default();
    m.len()
}
