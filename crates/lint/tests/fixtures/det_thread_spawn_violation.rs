pub fn fan_out() {
    let h = std::thread::spawn(|| 1 + 1);
    let _ = h.join();
    std::thread::scope(|s| {
        s.spawn(|| 2 + 2);
    });
}
