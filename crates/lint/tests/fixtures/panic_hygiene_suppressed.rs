pub fn arm(x: u32) -> u32 {
    match x % 2 {
        0 => 1,
        1 => 2,
        // dmc-lint: allow(panic-hygiene) n % 2 is exhaustively covered by the arms above
        _ => unreachable!(),
    }
}
