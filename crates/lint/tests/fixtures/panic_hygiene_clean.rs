pub fn take(o: Option<u32>) -> Result<u32, String> {
    o.ok_or_else(|| "empty".to_string())
}
pub fn invariant_named(o: Option<u32>) -> u32 {
    o.expect("slot filled by the loop above")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_idiomatic_in_tests() {
        let o: Option<u32> = Some(1);
        assert_eq!(o.unwrap(), 1);
        let bad: Option<u32> = None;
        if bad.is_some() {
            panic!("unreachable in this test");
        }
    }
}
