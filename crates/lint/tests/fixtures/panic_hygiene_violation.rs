pub fn take(o: Option<u32>) -> u32 {
    o.unwrap()
}
pub fn boom() {
    panic!("boom");
}
pub fn arm(x: u32) -> u32 {
    match x {
        0 => 1,
        _ => unreachable!(),
    }
}
pub fn short_message(o: Option<u32>) -> u32 {
    o.expect("present")
}
