pub fn is_zero(x: f64) -> bool {
    x == 0.0
}
pub fn nonzero(x: f64) -> bool {
    0.0 != x
}
