pub fn near(x: f64, y: f64) -> bool {
    (x - y).abs() < 1e-9
}
pub fn int_compare_is_fine(a: u32) -> bool {
    a == 0
}
