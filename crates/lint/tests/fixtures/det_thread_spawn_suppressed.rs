pub fn pool() {
    // dmc-lint: allow(det-thread-spawn) sanctioned pool: trials are pure and reassembled in index order
    std::thread::scope(|s| {
        // dmc-lint: allow(det-thread-spawn) same pool: per-trial seed streams keep results bit-identical
        s.spawn(|| 2 + 2);
    });
}
