pub fn sequential(trials: u64) -> u64 {
    (0..trials).map(|t| t * 2).sum()
}
