use std::collections::HashMap;

pub struct Cache {
    // dmc-lint: allow(det-unordered-map) key-lookup-only cache: never iterated
    map: HashMap<u64, u64>,
}

impl Cache {
    pub fn lookup(&self, k: u64) -> Option<u64> {
        self.map.get(&k).copied()
    }
}
