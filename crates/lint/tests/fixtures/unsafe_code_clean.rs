pub fn peek(v: &[u32], i: usize) -> Option<u32> {
    v.get(i).copied()
}
