use std::collections::BTreeMap;

pub fn build() -> usize {
    let m: BTreeMap<u64, u64> = BTreeMap::new();
    m.len()
}
