pub fn advance(now_ns: u64, dt_ns: u64) -> u64 {
    now_ns + dt_ns
}
