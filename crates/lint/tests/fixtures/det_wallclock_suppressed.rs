use std::time::Instant;

pub fn stamp() -> Instant {
    // dmc-lint: allow(det-wallclock) timing is reported only, never fed back into results
    Instant::now()
}
