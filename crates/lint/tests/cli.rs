//! End-to-end CLI tests: the exact binary CI invokes, including the exit
//! code a seeded violation must produce under `--deny`. This demonstrates
//! that the CI lint step fails when a violation lands.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dmc-lint"))
}

/// A scratch root inside `target/` (kept inside the repo tree, wiped and
/// rebuilt on every run).
fn scratch_root(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("scratch dir removable");
    }
    std::fs::create_dir_all(dir.join("crates/core/src")).expect("scratch dir creatable");
    dir
}

#[test]
fn seeded_violation_fails_under_deny_and_passes_without() {
    let root = scratch_root("seeded-violation");
    std::fs::write(
        root.join("crates/core/src/lib.rs"),
        "pub fn f(o: Option<f64>) -> bool {\n    o.unwrap() == 0.0\n}\n",
    )
    .expect("seed file written");

    // Under --deny: nonzero exit, both rules reported rustc-style.
    let out = bin()
        .args(["--deny", "--root"])
        .arg(&root)
        .output()
        .expect("dmc-lint runs");
    assert_eq!(out.status.code(), Some(1), "--deny must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/core/src/lib.rs:2:7: error[panic-hygiene]"),
        "{stdout}"
    );
    assert!(
        stdout.contains("crates/core/src/lib.rs:2:16: error[float-exact]"),
        "{stdout}"
    );

    // Without --deny: warnings only, exit 0.
    let out = bin()
        .arg("--root")
        .arg(&root)
        .output()
        .expect("dmc-lint runs");
    assert_eq!(out.status.code(), Some(0), "warn mode must exit 0");
    assert!(String::from_utf8_lossy(&out.stdout).contains("warning[panic-hygiene]"));
}

#[test]
fn clean_tree_exits_zero_under_deny() {
    let root = scratch_root("clean-tree");
    std::fs::write(
        root.join("crates/core/src/lib.rs"),
        "pub fn near(x: f64, y: f64) -> bool {\n    (x - y).abs() < 1e-9\n}\n",
    )
    .expect("clean file written");
    let out = bin()
        .args(["--deny", "--root"])
        .arg(&root)
        .output()
        .expect("dmc-lint runs");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn malformed_config_is_a_usage_error() {
    let root = scratch_root("bad-config");
    std::fs::write(root.join("crates/core/src/lib.rs"), "pub fn ok() {}\n").expect("file written");
    std::fs::write(root.join("dmc-lint.conf"), "allow float-exact crates/ \n")
        .expect("config written");
    let out = bin()
        .args(["--deny", "--root"])
        .arg(&root)
        .output()
        .expect("dmc-lint runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "reasonless allow entry must be a config error"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("reason"));
}

#[test]
fn list_rules_covers_the_catalogue() {
    let out = bin().arg("--list-rules").output().expect("dmc-lint runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in [
        "unsafe-code",
        "det-unordered-map",
        "det-wallclock",
        "det-thread-spawn",
        "float-exact",
        "panic-hygiene",
        "bad-pragma",
        "lex-error",
    ] {
        assert!(stdout.contains(id), "missing {id} in:\n{stdout}");
    }
}
