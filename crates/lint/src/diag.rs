//! Rule identities and diagnostic rendering.

use std::fmt;

/// Every rule dmc-lint knows about.
///
/// `bad-pragma` and `lex-error` are meta-rules: they report problems with
/// the lint input itself and can never be suppressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    UnsafeCode,
    DetUnorderedMap,
    DetWallclock,
    DetThreadSpawn,
    FloatExact,
    PanicHygiene,
    BadPragma,
    LexError,
}

impl Rule {
    /// Stable kebab-case id used in diagnostics, pragmas and the config.
    pub fn id(self) -> &'static str {
        match self {
            Rule::UnsafeCode => "unsafe-code",
            Rule::DetUnorderedMap => "det-unordered-map",
            Rule::DetWallclock => "det-wallclock",
            Rule::DetThreadSpawn => "det-thread-spawn",
            Rule::FloatExact => "float-exact",
            Rule::PanicHygiene => "panic-hygiene",
            Rule::BadPragma => "bad-pragma",
            Rule::LexError => "lex-error",
        }
    }

    /// Rules a pragma or allowlist entry may name. The meta-rules are
    /// deliberately absent: you cannot suppress a malformed pragma.
    pub fn from_id(id: &str) -> Option<Rule> {
        match id {
            "unsafe-code" => Some(Rule::UnsafeCode),
            "det-unordered-map" => Some(Rule::DetUnorderedMap),
            "det-wallclock" => Some(Rule::DetWallclock),
            "det-thread-spawn" => Some(Rule::DetThreadSpawn),
            "float-exact" => Some(Rule::FloatExact),
            "panic-hygiene" => Some(Rule::PanicHygiene),
            _ => None,
        }
    }

    pub fn all() -> [Rule; 8] {
        [
            Rule::UnsafeCode,
            Rule::DetUnorderedMap,
            Rule::DetWallclock,
            Rule::DetThreadSpawn,
            Rule::FloatExact,
            Rule::PanicHygiene,
            Rule::BadPragma,
            Rule::LexError,
        ]
    }

    /// One-line catalogue entry for `--list-rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::UnsafeCode => {
                "`unsafe` anywhere in the workspace (also compiler-backed by #![forbid(unsafe_code)])"
            }
            Rule::DetUnorderedMap => {
                "HashMap/HashSet in deterministic-scope library code: iteration order is \
                 run-unstable; use BTreeMap/sorted iteration or annotate key-lookup-only use"
            }
            Rule::DetWallclock => {
                "std::time::{Instant,SystemTime} or ambient entropy (thread_rng/from_entropy/\
                 OsRng) in deterministic-scope library code: solver, sim and backoff/jitter \
                 paths must take time as an input and draw randomness from seeded streams"
            }
            Rule::DetThreadSpawn => {
                "thread spawn/scope outside the Monte-Carlo pool: parallelism must go through \
                 the deterministic per-trial seed sharder"
            }
            Rule::FloatExact => {
                "`==`/`!=` against a float literal in library code: use a tolerance, or annotate \
                 the invariant that makes exact comparison meaningful"
            }
            Rule::PanicHygiene => {
                "`.unwrap()`, `panic!`-family macros, or an `.expect` message too short to name \
                 an invariant, in library (non-test, non-bin) code"
            }
            Rule::BadPragma => "malformed `dmc-lint:` pragma (unknown rule, missing reason, …)",
            Rule::LexError => "file could not be lexed; dmc-lint cannot vouch for it",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding, positioned in a file.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub rule: Rule,
    pub msg: String,
}

impl Diagnostic {
    /// rustc-style one-liner: `path:line:col: severity[rule-id]: message`.
    pub fn render(&self, deny: bool) -> String {
        let severity = if deny { "error" } else { "warning" };
        format!(
            "{}:{}:{}: {}[{}]: {}",
            self.path, self.line, self.col, severity, self.rule, self.msg
        )
    }
}
