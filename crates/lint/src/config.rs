//! The checked-in allowlist config (`dmc-lint.conf`).
//!
//! Line-oriented, hand-parsed (no deps):
//!
//! ```text
//! # comment
//! skip <path-prefix>
//! allow <rule-id> <path-prefix> -- <reason>
//! det-scope <path-prefix>
//! ```
//!
//! `skip` excludes a subtree from scanning entirely. `allow` suppresses one
//! rule under a path prefix and — like pragmas — **requires a written
//! reason** after `--`. `det-scope` lines, if any are present, replace the
//! built-in list of path prefixes the determinism rules apply to.

use crate::diag::Rule;

/// One `allow` line: suppress `rule` for every path under `prefix`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub rule: Rule,
    pub prefix: String,
    pub reason: String,
}

#[derive(Debug, Clone)]
pub struct Config {
    /// Path prefixes excluded from scanning (config-supplied; `target/`,
    /// `.git/` and dot-directories are always excluded).
    pub skip: Vec<String>,
    pub allow: Vec<AllowEntry>,
    /// Path prefixes the determinism rules (`det-*`) apply to.
    pub det_scope: Vec<String>,
    /// Minimum `.expect("…")` message length (in chars) that counts as
    /// naming an invariant.
    pub min_expect_chars: usize,
}

/// Crates whose library code must uphold the determinism invariants.
/// `compat/` (external-API stand-ins), `bench/` (timing is its job) and
/// `lint/` (not on any solver path) are deliberately absent. `obs/` is
/// *in* scope — telemetry that drifted from wallclock or map order would
/// silently unpin every snapshot hash; its one sanctioned wallclock
/// island (`WallProfiler`, driver-only) carries a file-level
/// `allow-file(det-wallclock)` pragma in `crates/obs/src/wall.rs`.
const DEFAULT_DET_SCOPE: &[&str] = &[
    "crates/obs/",
    "crates/lp/",
    "crates/core/",
    "crates/fleet/",
    "crates/proto/",
    "crates/sim/",
    "crates/stats/",
    "crates/experiments/",
    "src/",
];

impl Default for Config {
    fn default() -> Self {
        Config {
            skip: Vec::new(),
            allow: Vec::new(),
            det_scope: DEFAULT_DET_SCOPE.iter().map(|s| s.to_string()).collect(),
            min_expect_chars: 12,
        }
    }
}

impl Config {
    /// Parse a config file body. Errors carry the offending line number.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut scope_overridden = false;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (directive, rest) = match line.split_once(char::is_whitespace) {
                Some((d, r)) => (d, r.trim()),
                None => (line, ""),
            };
            match directive {
                "skip" => {
                    if rest.is_empty() {
                        return Err(format!("line {lineno}: `skip` needs a path prefix"));
                    }
                    cfg.skip.push(normalize(rest));
                }
                "det-scope" => {
                    if rest.is_empty() {
                        return Err(format!("line {lineno}: `det-scope` needs a path prefix"));
                    }
                    if !scope_overridden {
                        cfg.det_scope.clear();
                        scope_overridden = true;
                    }
                    cfg.det_scope.push(normalize(rest));
                }
                "allow" => {
                    let (rule_id, tail) =
                        rest.split_once(char::is_whitespace).ok_or_else(|| {
                            format!(
                                "line {lineno}: `allow` needs <rule-id> <path-prefix> -- <reason>"
                            )
                        })?;
                    let rule = Rule::from_id(rule_id)
                        .ok_or_else(|| format!("line {lineno}: unknown rule id `{rule_id}`"))?;
                    let (prefix, reason) = tail.split_once("--").ok_or_else(|| {
                        format!(
                            "line {lineno}: `allow` entry has no `-- <reason>`; every \
                                 suppression must carry a written reason"
                        )
                    })?;
                    let prefix = prefix.trim();
                    let reason = reason.trim();
                    if prefix.is_empty() {
                        return Err(format!("line {lineno}: `allow` needs a path prefix"));
                    }
                    if reason.is_empty() {
                        return Err(format!(
                            "line {lineno}: empty reason; every suppression must carry a \
                             written reason"
                        ));
                    }
                    cfg.allow.push(AllowEntry {
                        rule,
                        prefix: normalize(prefix),
                        reason: reason.to_string(),
                    });
                }
                other => {
                    return Err(format!(
                        "line {lineno}: unknown directive `{other}` (expected skip / allow / \
                         det-scope)"
                    ));
                }
            }
        }
        Ok(cfg)
    }

    pub fn is_skipped(&self, rel: &str) -> bool {
        self.skip.iter().any(|p| rel.starts_with(p.as_str()))
    }

    pub fn in_det_scope(&self, rel: &str) -> bool {
        self.det_scope.iter().any(|p| rel.starts_with(p.as_str()))
    }

    /// Does a checked-in allowlist entry cover this (rule, path)?
    pub fn allows(&self, rule: Rule, rel: &str) -> bool {
        self.allow
            .iter()
            .any(|a| a.rule == rule && rel.starts_with(a.prefix.as_str()))
    }
}

fn normalize(p: &str) -> String {
    p.trim_start_matches("./").to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_directives() {
        let cfg = Config::parse(
            "# header\n\
             skip crates/compat/\n\
             allow det-thread-spawn crates/experiments/src/montecarlo.rs -- the sanctioned pool\n\
             det-scope crates/lp/\n",
        )
        .unwrap();
        assert!(cfg.is_skipped("crates/compat/rand/src/lib.rs"));
        assert!(cfg.allows(Rule::DetThreadSpawn, "crates/experiments/src/montecarlo.rs"));
        assert!(!cfg.allows(Rule::DetWallclock, "crates/experiments/src/montecarlo.rs"));
        assert_eq!(cfg.det_scope, vec!["crates/lp/"]);
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let err = Config::parse("allow float-exact crates/lp/ --  \n").unwrap_err();
        assert!(err.contains("reason"), "{err}");
        let err = Config::parse("allow float-exact crates/lp/\n").unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn unknown_rule_and_directive_are_rejected() {
        assert!(Config::parse("allow no-such-rule x -- y\n").is_err());
        assert!(Config::parse("frobnicate x\n").is_err());
    }
}
