//! dmc-lint — dependency-free static analysis for the deadline-multipath
//! workspace.
//!
//! Every guarantee this repo sells (warm starts bitwise-equal to cold
//! solves, Monte-Carlo aggregates bit-identical at any thread count,
//! deterministic fleet-trace replay) rests on source conventions. This
//! tool machine-enforces them:
//!
//! | rule id             | invariant |
//! |---------------------|-----------|
//! | `det-unordered-map` | no `HashMap`/`HashSet` on deterministic library paths unless provably key-lookup-only |
//! | `det-wallclock`     | no `Instant`/`SystemTime`: time is an input, never ambient |
//! | `det-thread-spawn`  | no thread creation outside the Monte-Carlo pool |
//! | `float-exact`       | float `==`/`!=` only where exact equality is an invariant, annotated |
//! | `panic-hygiene`     | no `.unwrap()`/`panic!`-family/short `.expect` in library code |
//! | `unsafe-code`       | no `unsafe`, anywhere (also `#![forbid(unsafe_code)]` in every crate) |
//!
//! Suppression is always *written down*: a per-line/per-file pragma
//! (`// dmc-lint: allow(<rule>) <reason>` — the reason is mandatory) or a
//! checked-in allowlist entry in `dmc-lint.conf`. Run it as
//! `cargo run -p dmc-lint -- --deny`; see EXPERIMENTS.md § "Static
//! analysis" for the full catalogue and how to add a rule.

#![forbid(unsafe_code)]

pub mod config;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use config::Config;
pub use diag::{Diagnostic, Rule};
pub use engine::{scan_source, scan_workspace, Report};
