//! File walking and scan orchestration.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::diag::{Diagnostic, Rule};
use crate::lexer;
use crate::rules::{scan_tokens, FileScan};

/// Aggregate result of a workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub diags: Vec<Diagnostic>,
    pub suppressed_pragma: usize,
    pub suppressed_allowlist: usize,
}

impl Report {
    pub fn clean(&self) -> bool {
        self.diags.is_empty()
    }
}

/// Scan one file's source under its repo-relative path.
pub fn scan_source(rel: &str, src: &str, cfg: &Config) -> FileScan {
    match lexer::lex(src) {
        Ok(tokens) => scan_tokens(rel, &tokens, cfg),
        Err(e) => FileScan {
            diags: vec![Diagnostic {
                path: rel.to_string(),
                line: e.line,
                col: e.col,
                rule: Rule::LexError,
                msg: format!("cannot lex file: {}", e.msg),
            }],
            ..FileScan::default()
        },
    }
}

/// Scan every `.rs` file under `root` (or under `root`-relative `paths`
/// when non-empty), honoring the config's skip list. Deterministic: files
/// are visited in sorted path order.
pub fn scan_workspace(root: &Path, paths: &[String], cfg: &Config) -> io::Result<Report> {
    let mut files = Vec::new();
    if paths.is_empty() {
        collect_rs_files(root, root, cfg, &mut files)?;
    } else {
        for p in paths {
            let abs = root.join(p);
            if abs.is_dir() {
                collect_rs_files(root, &abs, cfg, &mut files)?;
            } else {
                files.push(abs);
            }
        }
    }
    files.sort();
    files.dedup();

    let mut report = Report::default();
    for abs in files {
        let rel = rel_path(root, &abs);
        if cfg.is_skipped(&rel) {
            continue;
        }
        let src = fs::read_to_string(&abs)?;
        let scan = scan_source(&rel, &src, cfg);
        report.files_scanned += 1;
        report.diags.extend(scan.diags);
        report.suppressed_pragma += scan.suppressed_pragma;
        report.suppressed_allowlist += scan.suppressed_allowlist;
    }
    Ok(report)
}

fn rel_path(root: &Path, abs: &Path) -> String {
    let rel = abs.strip_prefix(root).unwrap_or(abs);
    // Normalize to forward slashes so config prefixes match on any host.
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<PathBuf>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        // Dot-dirs (.git, .github) and build output are never scanned.
        if name.starts_with('.') || name == "target" {
            continue;
        }
        let rel = rel_path(root, &path);
        if path.is_dir() {
            if cfg.is_skipped(&format!("{rel}/")) {
                continue;
            }
            collect_rs_files(root, &path, cfg, out)?;
        } else if name.ends_with(".rs") && !cfg.is_skipped(&rel) {
            out.push(path);
        }
    }
    Ok(())
}
