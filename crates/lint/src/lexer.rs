//! Hand-rolled Rust lexer.
//!
//! Fidelity target: never misclassify code as comment/string (or the
//! reverse), never misread a lifetime as a char literal, and classify
//! numeric literals as int vs float — that is exactly the information the
//! token rules need. This is not a parser: structure beyond tokens
//! (attributes, `#[cfg(test)]` regions, `use` items) is recovered by the
//! rule engine from the token stream.

/// Kind of a single lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, `r#raw_ident`).
    Ident,
    /// Lifetime such as `'a` or `'static` (apostrophe included in text).
    Lifetime,
    /// Integer literal, including its suffix if any (`42`, `0xFF`, `7u64`).
    Int,
    /// Float literal (`1.0`, `1e-9`, `2f64`, `1.`).
    Float,
    /// String-like literal: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// Char or byte-char literal: `'a'`, `'\n'`, `b'x'`.
    Char,
    /// Punctuation. Multi-char operators the rules care about (`==`, `!=`,
    /// `::`) are joined into one token; everything else is one char each.
    Punct,
    /// `// …` comment, text includes the slashes (doc `///`/`//!` too).
    LineComment,
    /// `/* … */` comment (nesting handled), text includes delimiters.
    BlockComment,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Token {
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }
    pub fn is_ident(&self, id: &str) -> bool {
        self.kind == TokKind::Ident && self.text == id
    }
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// A lexing failure (unterminated string/comment, stray char, …).
#[derive(Debug)]
pub struct LexError {
    pub line: u32,
    pub col: u32,
    pub msg: &'static str,
}

/// Lex a whole source file. On error the file is considered unscannable
/// and the caller reports a `lex-error` diagnostic.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    Lexer::new(src).run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn new(src: &str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn peek_at(&self, off: usize) -> Option<char> {
        self.chars.get(self.i + off).copied()
    }

    fn advance(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, line: u32, col: u32, msg: &'static str) -> LexError {
        LexError { line, col, msg }
    }

    fn run(mut self) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        loop {
            while matches!(self.peek(), Some(c) if c.is_whitespace()) {
                self.advance();
            }
            let Some(c) = self.peek() else { break };
            let (line, col) = (self.line, self.col);
            let tok = match c {
                '/' if self.peek_at(1) == Some('/') => self.line_comment(),
                '/' if self.peek_at(1) == Some('*') => self.block_comment(line, col)?,
                '"' => self.string(line, col)?,
                '\'' => self.char_or_lifetime(line, col)?,
                'r' | 'b' if self.raw_or_byte_prefix() => self.prefixed_literal(line, col)?,
                c if is_ident_start(c) => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => self.punct(),
            };
            out.push(Token { line, col, ..tok });
        }
        Ok(out)
    }

    /// True when the upcoming `r`/`b` begins a literal (`r"`, `r#"`, `b"`,
    /// `b'`, `br"`, `br#"`) rather than an ordinary identifier.
    fn raw_or_byte_prefix(&self) -> bool {
        let c = self.peek();
        let n1 = self.peek_at(1);
        match (c, n1) {
            (Some('r'), Some('"')) => true,
            (Some('r'), Some('#')) => {
                // r#"…"# is a raw string; r#ident is a raw identifier.
                let mut k = 2;
                while self.peek_at(k) == Some('#') {
                    k += 1;
                }
                self.peek_at(k) == Some('"')
            }
            (Some('b'), Some('"')) | (Some('b'), Some('\'')) => true,
            (Some('b'), Some('r')) => matches!(self.peek_at(2), Some('"') | Some('#')),
            _ => false,
        }
    }

    fn line_comment(&mut self) -> Token {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.advance();
        }
        Token {
            kind: TokKind::LineComment,
            text,
            line: 0,
            col: 0,
        }
    }

    fn block_comment(&mut self, line: u32, col: u32) -> Result<Token, LexError> {
        let mut text = String::new();
        let mut depth = 0usize;
        loop {
            match (self.peek(), self.peek_at(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push('/');
                    text.push('*');
                    self.advance();
                    self.advance();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    text.push('*');
                    text.push('/');
                    self.advance();
                    self.advance();
                    if depth == 0 {
                        break;
                    }
                }
                (Some(c), _) => {
                    text.push(c);
                    self.advance();
                }
                (None, _) => return Err(self.err(line, col, "unterminated block comment")),
            }
        }
        Ok(Token {
            kind: TokKind::BlockComment,
            text,
            line: 0,
            col: 0,
        })
    }

    /// Plain `"…"` string (escapes honored). The opening quote has not
    /// been consumed yet.
    fn string(&mut self, line: u32, col: u32) -> Result<Token, LexError> {
        let mut text = String::new();
        text.push(self.advance().expect("caller saw the opening quote")); // '"'
        loop {
            match self.advance() {
                Some('\\') => {
                    text.push('\\');
                    if let Some(e) = self.advance() {
                        text.push(e);
                    }
                }
                Some('"') => {
                    text.push('"');
                    break;
                }
                Some(c) => text.push(c),
                None => return Err(self.err(line, col, "unterminated string literal")),
            }
        }
        Ok(Token {
            kind: TokKind::Str,
            text,
            line: 0,
            col: 0,
        })
    }

    /// Literals introduced by `r`/`b` prefixes: raw strings, byte strings,
    /// raw byte strings, byte chars.
    fn prefixed_literal(&mut self, line: u32, col: u32) -> Result<Token, LexError> {
        let mut text = String::new();
        // Consume the prefix letters (`r`, `b`, or `br`); the caller's
        // `raw_or_byte_prefix` check guarantees a literal body follows.
        while matches!(self.peek(), Some('r') | Some('b')) {
            text.push(self.advance().expect("peeked prefix letter"));
        }
        match self.peek() {
            Some('\'') => {
                // b'x' byte char: reuse char lexing, escapes included.
                self.advance();
                text.push('\'');
                loop {
                    match self.advance() {
                        Some('\\') => {
                            text.push('\\');
                            if let Some(e) = self.advance() {
                                text.push(e);
                            }
                        }
                        Some('\'') => {
                            text.push('\'');
                            break;
                        }
                        Some(c) => text.push(c),
                        None => return Err(self.err(line, col, "unterminated byte char")),
                    }
                }
                Ok(Token {
                    kind: TokKind::Char,
                    text,
                    line: 0,
                    col: 0,
                })
            }
            Some('"') => {
                // Non-raw (byte) string.
                let s = self.string(line, col)?;
                text.push_str(&s.text);
                Ok(Token {
                    kind: TokKind::Str,
                    text,
                    line: 0,
                    col: 0,
                })
            }
            Some('#') => {
                // Raw (byte) string: r#"…"#, with any number of hashes.
                let mut hashes = 0usize;
                while self.peek() == Some('#') {
                    hashes += 1;
                    text.push('#');
                    self.advance();
                }
                if self.peek() != Some('"') {
                    return Err(self.err(line, col, "malformed raw string"));
                }
                text.push('"');
                self.advance();
                'outer: loop {
                    match self.advance() {
                        Some('"') => {
                            text.push('"');
                            let mut seen = 0usize;
                            while seen < hashes && self.peek() == Some('#') {
                                seen += 1;
                                text.push('#');
                                self.advance();
                            }
                            if seen == hashes {
                                break 'outer;
                            }
                        }
                        Some(c) => text.push(c),
                        None => return Err(self.err(line, col, "unterminated raw string")),
                    }
                }
                Ok(Token {
                    kind: TokKind::Str,
                    text,
                    line: 0,
                    col: 0,
                })
            }
            _ => Err(self.err(line, col, "malformed literal prefix")),
        }
    }

    /// Disambiguate `'a'` (char) from `'a` (lifetime). The apostrophe has
    /// not been consumed yet.
    fn char_or_lifetime(&mut self, line: u32, col: u32) -> Result<Token, LexError> {
        let mut text = String::new();
        text.push(self.advance().expect("caller saw the apostrophe")); // '\''
        match self.peek() {
            Some('\\') => {
                // Escaped char literal: consume until the closing quote.
                loop {
                    match self.advance() {
                        Some('\\') => {
                            text.push('\\');
                            if let Some(e) = self.advance() {
                                text.push(e);
                            }
                        }
                        Some('\'') => {
                            text.push('\'');
                            break;
                        }
                        Some(c) => text.push(c),
                        None => return Err(self.err(line, col, "unterminated char literal")),
                    }
                }
                Ok(Token {
                    kind: TokKind::Char,
                    text,
                    line: 0,
                    col: 0,
                })
            }
            Some(c) if is_ident_start(c) => {
                while matches!(self.peek(), Some(c) if is_ident_continue(c)) {
                    text.push(self.advance().expect("peeked ident char"));
                }
                if self.peek() == Some('\'') {
                    text.push('\'');
                    self.advance();
                    Ok(Token {
                        kind: TokKind::Char,
                        text,
                        line: 0,
                        col: 0,
                    })
                } else {
                    Ok(Token {
                        kind: TokKind::Lifetime,
                        text,
                        line: 0,
                        col: 0,
                    })
                }
            }
            Some(_) => {
                // Single non-ident char like '(' or '1'.
                text.push(self.advance().expect("peeked literal char"));
                if self.peek() != Some('\'') {
                    return Err(self.err(line, col, "unterminated char literal"));
                }
                text.push('\'');
                self.advance();
                Ok(Token {
                    kind: TokKind::Char,
                    text,
                    line: 0,
                    col: 0,
                })
            }
            None => Err(self.err(line, col, "unterminated char literal")),
        }
    }

    fn ident(&mut self) -> Token {
        let mut text = String::new();
        // Raw identifier r#ident: keep the prefix in the text.
        if self.peek() == Some('r') && self.peek_at(1) == Some('#') {
            text.push(self.advance().expect("peeked raw-ident prefix r"));
            text.push(self.advance().expect("peeked raw-ident hash mark"));
        }
        while matches!(self.peek(), Some(c) if is_ident_continue(c)) {
            text.push(self.advance().expect("peeked ident char"));
        }
        Token {
            kind: TokKind::Ident,
            text,
            line: 0,
            col: 0,
        }
    }

    fn number(&mut self) -> Token {
        let mut text = String::new();
        let first = self.advance().expect("caller saw a digit");
        text.push(first);
        // Hex/octal/binary: always an integer.
        if first == '0' && matches!(self.peek(), Some('x') | Some('o') | Some('b')) {
            text.push(self.advance().expect("peeked base letter"));
            while matches!(self.peek(), Some(c) if c.is_ascii_hexdigit() || c == '_') {
                text.push(self.advance().expect("peeked digit"));
            }
            while matches!(self.peek(), Some(c) if is_ident_continue(c)) {
                text.push(self.advance().expect("peeked suffix char"));
            }
            return Token {
                kind: TokKind::Int,
                text,
                line: 0,
                col: 0,
            };
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == '_') {
            text.push(self.advance().expect("peeked digit"));
        }
        let mut is_float = false;
        if self.peek() == Some('.') {
            match self.peek_at(1) {
                // `1.5`: fractional part.
                Some(c) if c.is_ascii_digit() => {
                    is_float = true;
                    text.push(self.advance().expect("peeked fraction dot"));
                    while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == '_') {
                        text.push(self.advance().expect("peeked digit"));
                    }
                }
                // `1..n` range or `1.method()`: the dot is not ours.
                Some('.') => {}
                Some(c) if is_ident_start(c) => {}
                // Trailing-dot float `1.`.
                _ => {
                    is_float = true;
                    text.push(self.advance().expect("peeked fraction dot"));
                }
            }
        }
        // Exponent: `1e9`, `1e-9`, `2.5E+10`.
        if matches!(self.peek(), Some('e') | Some('E')) {
            let exp_ok = match self.peek_at(1) {
                Some(c) if c.is_ascii_digit() => true,
                Some('+') | Some('-') => {
                    matches!(self.peek_at(2), Some(c) if c.is_ascii_digit())
                }
                _ => false,
            };
            if exp_ok {
                is_float = true;
                text.push(self.advance().expect("peeked exponent marker"));
                if matches!(self.peek(), Some('+') | Some('-')) {
                    text.push(self.advance().expect("peeked exponent sign"));
                }
                while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == '_') {
                    text.push(self.advance().expect("peeked digit"));
                }
            }
        }
        // Suffix: `1f64` and `1.0_f32` are floats; `7u64` stays an int.
        let suffix_start = text.len();
        while matches!(self.peek(), Some(c) if is_ident_continue(c)) {
            text.push(self.advance().expect("peeked suffix char"));
        }
        let suffix = &text[suffix_start..];
        if suffix.trim_start_matches('_').starts_with("f32")
            || suffix.trim_start_matches('_').starts_with("f64")
        {
            is_float = true;
        }
        Token {
            kind: if is_float {
                TokKind::Float
            } else {
                TokKind::Int
            },
            text,
            line: 0,
            col: 0,
        }
    }

    fn punct(&mut self) -> Token {
        let c = self.advance().expect("caller saw a char");
        let mut text = String::new();
        text.push(c);
        // Join only the multi-char operators the rules inspect.
        let joined = matches!(
            (c, self.peek()),
            ('=', Some('=')) | ('!', Some('=')) | (':', Some(':'))
        );
        if joined {
            text.push(self.advance().expect("peeked second op char"));
        }
        Token {
            kind: TokKind::Punct,
            text,
            line: 0,
            col: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .unwrap()
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_strings_and_code_are_distinguished() {
        let toks = kinds(r#"let s = "a // not a comment"; // real"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("not a comment")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::LineComment && t == "// real"));
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let toks = kinds(r##"let s = r#"he said "hi""#;"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("he said")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str, c: char) { let y = 'z'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        assert_eq!(chars.len(), 2, "{toks:?}");
    }

    #[test]
    fn floats_vs_ints_vs_ranges_vs_method_calls() {
        let toks = kinds("let a = 1.0; let b = 1..5; let c = 1.max(2); let d = 1e-9; let e = 2f64; let f = 0xFF;");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, vec!["1.0", "1e-9", "2f64"]);
    }

    #[test]
    fn multi_char_ops_join() {
        let toks = kinds("a == b != c :: d => e");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::", "=", ">"]);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ fn");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert_eq!(toks[1].1, "fn");
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("fn main() {\n    let x = 1;\n}").unwrap();
        let x = toks.iter().find(|t| t.is_ident("x")).unwrap();
        assert_eq!((x.line, x.col), (2, 9));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("let s = \"oops").is_err());
    }
}
