//! dmc-lint CLI.
//!
//! ```text
//! dmc-lint [--deny] [--root DIR] [--config FILE] [--list-rules] [-q] [PATHS…]
//! ```
//!
//! Exit codes: 0 clean (or warnings without `--deny`), 1 diagnostics under
//! `--deny`, 2 usage/config/io error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use dmc_lint::{config::Config, diag::Rule, engine};

struct Args {
    deny: bool,
    quiet: bool,
    list_rules: bool,
    root: PathBuf,
    config: Option<PathBuf>,
    paths: Vec<String>,
}

const USAGE: &str =
    "usage: dmc-lint [--deny] [--root DIR] [--config FILE] [--list-rules] [-q] [PATHS...]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        quiet: false,
        list_rules: false,
        root: PathBuf::from("."),
        config: None,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => args.deny = true,
            "-q" | "--quiet" => args.quiet = true,
            "--list-rules" => args.list_rules = true,
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a file")?));
            }
            "-h" | "--help" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{USAGE}"));
            }
            other => args.paths.push(other.to_string()),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for rule in Rule::all() {
            println!("{:<18} {}", rule.id(), rule.describe());
        }
        return ExitCode::SUCCESS;
    }

    // Config: explicit --config, else <root>/dmc-lint.conf if present,
    // else built-in defaults.
    let config_path = args.config.clone().or_else(|| {
        let default = args.root.join("dmc-lint.conf");
        default.exists().then_some(default)
    });
    let cfg = match &config_path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(text) => match Config::parse(&text) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("dmc-lint: {}: {e}", p.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("dmc-lint: cannot read {}: {e}", p.display());
                return ExitCode::from(2);
            }
        },
        None => Config::default(),
    };

    let report = match engine::scan_workspace(&args.root, &args.paths, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dmc-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    for d in &report.diags {
        println!("{}", d.render(args.deny));
    }
    if !args.quiet {
        println!(
            "dmc-lint: scanned {} files; {} diagnostic{} ({} suppressed: {} pragma, {} allowlist)",
            report.files_scanned,
            report.diags.len(),
            if report.diags.len() == 1 { "" } else { "s" },
            report.suppressed_pragma + report.suppressed_allowlist,
            report.suppressed_pragma,
            report.suppressed_allowlist,
        );
    }
    if args.deny && !report.clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
