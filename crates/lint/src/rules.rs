//! The token-pattern rule engine.
//!
//! Works on the lexer's token stream plus three pieces of recovered
//! structure: `#[cfg(test)]` / `#[test]` item regions (brace-matched),
//! `use … ;` items (imports alone never flag), and the file's *role* —
//! library code vs test/bench/example/bin code — derived from its path.
//!
//! Suppression comes from pragmas in ordinary `//` comments:
//!
//! ```text
//! x == 0.0 // dmc-lint: allow(float-exact) stored zero means structurally absent
//! // dmc-lint: allow(panic-hygiene) index proven in-bounds by the loop above
//! let v = xs[i];
//! // dmc-lint: allow-file(det-unordered-map) <reason>   — whole file
//! ```
//!
//! A pragma **must** carry a reason after the closing paren; a reasonless
//! pragma is itself a diagnostic (`bad-pragma`) and suppresses nothing.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::diag::{Diagnostic, Rule};
use crate::lexer::{TokKind, Token};

/// Library code vs code where panics/float-compares are idiomatic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    Library,
    TestOrBin,
}

/// Classify a repo-relative path. Anything under a `tests`, `benches`,
/// `examples` or `bin` directory — plus `main.rs`/`build.rs` — is
/// test-or-bin; everything else is library code.
pub fn role_of(rel: &str) -> Role {
    let mut parts = rel.split('/').peekable();
    while let Some(p) = parts.next() {
        let is_last = parts.peek().is_none();
        if is_last {
            if p == "main.rs" || p == "build.rs" {
                return Role::TestOrBin;
            }
        } else if matches!(p, "tests" | "benches" | "examples" | "bin") {
            return Role::TestOrBin;
        }
    }
    Role::Library
}

/// Result of scanning one file: diagnostics that survived suppression,
/// plus how many were suppressed and by what.
#[derive(Debug, Default)]
pub struct FileScan {
    pub diags: Vec<Diagnostic>,
    pub suppressed_pragma: usize,
    pub suppressed_allowlist: usize,
}

struct Pragmas {
    /// line → rules allowed on that line.
    by_line: BTreeMap<u32, BTreeSet<Rule>>,
    /// rules allowed for the whole file.
    file_wide: BTreeSet<Rule>,
    /// malformed pragmas (reported, never suppressible).
    bad: Vec<Diagnostic>,
}

/// Run every rule over one file's tokens.
pub fn scan_tokens(rel: &str, tokens: &[Token], cfg: &Config) -> FileScan {
    let role = role_of(rel);
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let code_lines: BTreeSet<u32> = code.iter().map(|t| t.line).collect();
    let pragmas = collect_pragmas(rel, tokens, &code_lines);
    let test_mask = test_region_mask(&code);
    let use_mask = use_item_mask(&code);

    let mut raw: Vec<Diagnostic> = Vec::new();
    let in_det_scope = cfg.in_det_scope(rel);
    for (i, t) in code.iter().enumerate() {
        let prev = i.checked_sub(1).and_then(|j| code.get(j).copied());
        let prev2 = i.checked_sub(2).and_then(|j| code.get(j).copied());
        let next = code.get(i + 1).copied();
        let next2 = code.get(i + 2).copied();

        // unsafe-audit: everywhere, including tests and bins.
        if t.is_ident("unsafe") {
            raw.push(diag(
                rel,
                t,
                Rule::UnsafeCode,
                "`unsafe` is forbidden in this workspace".to_string(),
            ));
            continue;
        }

        let in_test = test_mask[i];
        let in_use = use_mask[i];

        // Determinism rules: library code of the deterministic crates.
        if in_det_scope && role == Role::Library && !in_test && !in_use {
            if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
                raw.push(diag(
                    rel,
                    t,
                    Rule::DetUnorderedMap,
                    format!(
                        "`{}` on a deterministic path: iteration order is run-unstable; use \
                         BTreeMap/BTreeSet or sorted iteration, or annotate a key-lookup-only use",
                        t.text
                    ),
                ));
                continue;
            }
            if t.kind == TokKind::Ident && (t.text == "Instant" || t.text == "SystemTime") {
                raw.push(diag(
                    rel,
                    t,
                    Rule::DetWallclock,
                    format!(
                        "`{}` reads the ambient wall clock: deterministic paths must take time \
                         as an input",
                        t.text
                    ),
                ));
                continue;
            }
            // Ambient entropy is wall-clock's twin: backoff/jitter and
            // fault-injection code must draw from seeded SplitMix64
            // streams, never from the OS entropy pool.
            if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "thread_rng" | "from_entropy" | "OsRng")
            {
                raw.push(diag(
                    rel,
                    t,
                    Rule::DetWallclock,
                    format!(
                        "`{}` draws ambient entropy: backoff/jitter on deterministic paths must \
                         use a seeded stream (SplitMix64 via mix_seed/trial_seed)",
                        t.text
                    ),
                ));
                continue;
            }
            let spawn_via_thread_path = matches!(&prev, Some(p) if p.is_punct("::"))
                && matches!(&prev2, Some(p) if p.is_ident("thread"))
                && t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "spawn" | "scope" | "Builder");
            let spawn_via_method = t.is_ident("spawn")
                && matches!(&prev, Some(p) if p.is_punct("."))
                && matches!(&next, Some(n) if n.is_punct("("));
            if spawn_via_thread_path || spawn_via_method {
                raw.push(diag(
                    rel,
                    t,
                    Rule::DetThreadSpawn,
                    "thread spawn outside the Monte-Carlo pool: parallelism must go through the \
                     deterministic per-trial seed sharder"
                        .to_string(),
                ));
                continue;
            }
        }

        // float-exact: library code, any crate.
        if role == Role::Library
            && !in_test
            && t.kind == TokKind::Punct
            && (t.text == "==" || t.text == "!=")
        {
            let float_adjacent = matches!(&prev, Some(p) if p.kind == TokKind::Float)
                || matches!(&next, Some(n) if n.kind == TokKind::Float);
            if float_adjacent {
                raw.push(diag(
                    rel,
                    t,
                    Rule::FloatExact,
                    format!(
                        "exact float `{}` comparison: use a tolerance, or annotate the invariant \
                         that makes exact equality meaningful",
                        t.text
                    ),
                ));
                continue;
            }
        }

        // panic-hygiene: library code, any crate.
        if role == Role::Library && !in_test {
            if t.is_ident("unwrap")
                && matches!(&prev, Some(p) if p.is_punct("."))
                && matches!(&next, Some(n) if n.is_punct("("))
                && matches!(&next2, Some(n) if n.is_punct(")"))
            {
                raw.push(diag(
                    rel,
                    t,
                    Rule::PanicHygiene,
                    "`.unwrap()` in library code: return a typed error or use \
                     `.expect(\"<invariant>\")`"
                        .to_string(),
                ));
                continue;
            }
            if t.kind == TokKind::Ident
                && matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                )
                && matches!(&next, Some(n) if n.is_punct("!"))
            {
                raw.push(diag(
                    rel,
                    t,
                    Rule::PanicHygiene,
                    format!(
                        "`{}!` in library code: return a typed error, or annotate why this arm \
                         is unreachable",
                        t.text
                    ),
                ));
                continue;
            }
            if t.is_ident("expect")
                && matches!(&prev, Some(p) if p.is_punct("."))
                && matches!(&next, Some(n) if n.is_punct("("))
            {
                if let Some(msg_tok) = &next2 {
                    if msg_tok.kind == TokKind::Str {
                        let inner = str_content_len(&msg_tok.text);
                        if inner < cfg.min_expect_chars {
                            raw.push(diag(
                                rel,
                                t,
                                Rule::PanicHygiene,
                                format!(
                                    "`.expect` message ({inner} chars) too short to name an \
                                     invariant (need ≥ {})",
                                    cfg.min_expect_chars
                                ),
                            ));
                            continue;
                        }
                    }
                }
            }
        }
    }

    // Apply suppression: file pragma, line pragma, then allowlist.
    let mut scan = FileScan::default();
    for d in raw {
        if pragmas.file_wide.contains(&d.rule)
            || pragmas
                .by_line
                .get(&d.line)
                .is_some_and(|rules| rules.contains(&d.rule))
        {
            scan.suppressed_pragma += 1;
        } else if cfg.allows(d.rule, rel) {
            scan.suppressed_allowlist += 1;
        } else {
            scan.diags.push(d);
        }
    }
    scan.diags.extend(pragmas.bad);
    scan.diags.sort_by_key(|d| (d.line, d.col, d.rule));
    scan
}

fn diag(rel: &str, t: &Token, rule: Rule, msg: String) -> Diagnostic {
    Diagnostic {
        path: rel.to_string(),
        line: t.line,
        col: t.col,
        rule,
        msg,
    }
}

/// Chars between the quotes of a string literal token, prefix/hashes
/// stripped. Good enough to judge "does this message name an invariant".
fn str_content_len(text: &str) -> usize {
    match (text.find('"'), text.rfind('"')) {
        (Some(a), Some(b)) if b > a => text[a + 1..b].chars().count(),
        _ => 0,
    }
}

/// Parse `dmc-lint:` pragmas out of ordinary line comments. Doc comments
/// (`///`, `//!`) are ignored — pragmas live in plain comments only.
fn collect_pragmas(rel: &str, tokens: &[Token], code_lines: &BTreeSet<u32>) -> Pragmas {
    let mut out = Pragmas {
        by_line: BTreeMap::new(),
        file_wide: BTreeSet::new(),
        bad: Vec::new(),
    };
    for t in tokens {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let body = &t.text[2..]; // strip `//`
        if body.starts_with('/') || body.starts_with('!') {
            continue; // doc comment
        }
        let Some(directive) = body.trim_start().strip_prefix("dmc-lint:") else {
            continue;
        };
        let directive = directive.trim();
        let mut report_bad = |msg: String| {
            out.bad.push(Diagnostic {
                path: rel.to_string(),
                line: t.line,
                col: t.col,
                rule: Rule::BadPragma,
                msg,
            });
        };
        let (file_wide, rest) = if let Some(r) = directive.strip_prefix("allow-file") {
            (true, r)
        } else if let Some(r) = directive.strip_prefix("allow") {
            (false, r)
        } else {
            report_bad(format!(
                "unknown pragma `{directive}` (expected `allow(<rule>) <reason>` or \
                 `allow-file(<rule>) <reason>`)"
            ));
            continue;
        };
        let rest = rest.trim_start();
        let Some(inner_and_tail) = rest.strip_prefix('(') else {
            report_bad("pragma is missing `(<rule-id>)`".to_string());
            continue;
        };
        let Some(close) = inner_and_tail.find(')') else {
            report_bad("pragma is missing the closing `)`".to_string());
            continue;
        };
        let (inner, tail) = inner_and_tail.split_at(close);
        let reason = tail[1..].trim();
        let mut rules = Vec::new();
        let mut ok = true;
        for id in inner.split(',') {
            let id = id.trim();
            match Rule::from_id(id) {
                Some(r) => rules.push(r),
                None => {
                    report_bad(format!("unknown rule id `{id}` in pragma"));
                    ok = false;
                }
            }
        }
        if !ok {
            continue;
        }
        if rules.is_empty() {
            report_bad("pragma names no rules".to_string());
            continue;
        }
        if reason.is_empty() {
            report_bad(
                "pragma has no reason: write `// dmc-lint: allow(<rule>) <why this is sound>`"
                    .to_string(),
            );
            continue;
        }
        if file_wide {
            out.file_wide.extend(rules);
        } else {
            // A trailing pragma applies to its own line; a pragma on a
            // line of its own applies to the next line containing code.
            let target = if code_lines.contains(&t.line) {
                t.line
            } else {
                match code_lines.range(t.line + 1..).next() {
                    Some(&l) => l,
                    None => continue, // pragma at EOF guards nothing
                }
            };
            out.by_line.entry(target).or_default().extend(rules);
        }
    }
    out
}

/// Mark every code token inside a `#[cfg(test)]`/`#[test]`-attributed item
/// (attribute included, brace-matched body included).
fn test_region_mask(code: &[&Token]) -> Vec<bool> {
    let n = code.len();
    let mut mask = vec![false; n];
    let mut i = 0;
    while i < n {
        if !starts_attr(code, i) {
            i += 1;
            continue;
        }
        let attr_open = attr_bracket_index(code, i);
        let (attr_end, is_test) = parse_attr(code, attr_open);
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut j = attr_end + 1;
        while starts_attr(code, j) {
            let open = attr_bracket_index(code, j);
            let (e, _) = parse_attr(code, open);
            j = e + 1;
        }
        // Item extent: first `;` at depth 0, or the matching `}` of the
        // first `{`.
        let mut k = j;
        let mut depth = 0i64;
        let mut end = n.saturating_sub(1);
        while k < n {
            let t = code[k];
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    end = k;
                    break;
                }
            } else if t.is_punct(";") && depth == 0 {
                end = k;
                break;
            }
            k += 1;
        }
        for m in &mut mask[i..=end] {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Does an attribute (`#[…]` or `#![…]`) start at `i`?
fn starts_attr(code: &[&Token], i: usize) -> bool {
    code.get(i).is_some_and(|t| t.is_punct("#"))
        && (code.get(i + 1).is_some_and(|t| t.is_punct("["))
            || (code.get(i + 1).is_some_and(|t| t.is_punct("!"))
                && code.get(i + 2).is_some_and(|t| t.is_punct("["))))
}

/// Index of the `[` of an attribute known to start at `i`.
fn attr_bracket_index(code: &[&Token], i: usize) -> usize {
    if code.get(i + 1).is_some_and(|t| t.is_punct("[")) {
        i + 1
    } else {
        i + 2
    }
}

/// Given the index of an attribute's `[`, return (index of its matching
/// `]`, whether the attribute mentions the bare ident `test`/`bench`).
fn parse_attr(code: &[&Token], open: usize) -> (usize, bool) {
    let mut depth = 0i64;
    let mut is_test = false;
    let mut k = open;
    while k < code.len() {
        let t = code[k];
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return (k, is_test);
            }
        } else if t.is_ident("test") || t.is_ident("bench") {
            is_test = true;
        }
        k += 1;
    }
    (code.len().saturating_sub(1), is_test)
}

/// Mark tokens belonging to `use …;` items so imports never flag.
fn use_item_mask(code: &[&Token]) -> Vec<bool> {
    let n = code.len();
    let mut mask = vec![false; n];
    let mut i = 0;
    while i < n {
        if code[i].is_ident("use") {
            let mut k = i;
            while k < n && !code[k].is_punct(";") {
                mask[k] = true;
                k += 1;
            }
            if k < n {
                mask[k] = true;
            }
            i = k + 1;
        } else {
            i += 1;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan(rel: &str, src: &str) -> FileScan {
        scan_tokens(rel, &lex(src).unwrap(), &Config::default())
    }

    #[test]
    fn roles_from_paths() {
        assert_eq!(role_of("crates/lp/src/simplex.rs"), Role::Library);
        assert_eq!(role_of("crates/lp/tests/t.rs"), Role::TestOrBin);
        assert_eq!(
            role_of("crates/experiments/src/bin/fleet.rs"),
            Role::TestOrBin
        );
        assert_eq!(role_of("examples/quickstart.rs"), Role::TestOrBin);
        assert_eq!(role_of("src/main.rs"), Role::TestOrBin);
        assert_eq!(role_of("src/lib.rs"), Role::Library);
    }

    #[test]
    fn cfg_test_modules_are_exempt_from_panic_hygiene() {
        let src = "fn lib() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let scan = scan("crates/core/src/a.rs", src);
        assert_eq!(scan.diags.len(), 1, "{:?}", scan.diags);
        assert_eq!(scan.diags[0].line, 1);
    }

    #[test]
    fn imports_do_not_flag_but_uses_do() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u8, u8> = HashMap::default(); m.len() }\n";
        let scan = scan("crates/core/src/a.rs", src);
        assert_eq!(
            scan.diags
                .iter()
                .filter(|d| d.rule == Rule::DetUnorderedMap)
                .count(),
            2,
            "{:?}",
            scan.diags
        );
        assert!(scan.diags.iter().all(|d| d.line == 2));
    }

    #[test]
    fn pragma_on_own_line_guards_next_code_line() {
        let src = "// dmc-lint: allow(float-exact) stored zero means structurally absent\n\
                   fn f(x: f64) -> bool { x == 0.0 }\n";
        let scan = scan("crates/lp/src/a.rs", src);
        assert!(scan.diags.is_empty(), "{:?}", scan.diags);
        assert_eq!(scan.suppressed_pragma, 1);
    }

    #[test]
    fn trailing_pragma_guards_its_own_line() {
        let src =
            "fn f(x: f64) -> bool { x != 0.0 } // dmc-lint: allow(float-exact) exact-zero test\n";
        let scan = scan("crates/lp/src/a.rs", src);
        assert!(scan.diags.is_empty(), "{:?}", scan.diags);
    }

    #[test]
    fn pragma_without_reason_is_rejected_and_suppresses_nothing() {
        let src = "// dmc-lint: allow(float-exact)\nfn f(x: f64) -> bool { x == 0.0 }\n";
        let scan = scan("crates/lp/src/a.rs", src);
        let rules: Vec<Rule> = scan.diags.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&Rule::BadPragma), "{:?}", scan.diags);
        assert!(rules.contains(&Rule::FloatExact), "{:?}", scan.diags);
    }

    #[test]
    fn short_expect_flags_long_expect_passes() {
        let src = "fn f() { a.expect(\"present\"); b.expect(\"row index returned by assemble stays in range\"); }\n";
        let scan = scan("crates/core/src/a.rs", src);
        assert_eq!(scan.diags.len(), 1, "{:?}", scan.diags);
        assert!(scan.diags[0].msg.contains("too short"));
    }

    #[test]
    fn unsafe_flags_even_in_tests_and_bins() {
        let scan = scan("crates/lp/tests/t.rs", "fn t() { unsafe { x() } }");
        assert_eq!(scan.diags.len(), 1);
        assert_eq!(scan.diags[0].rule, Rule::UnsafeCode);
    }

    #[test]
    fn thread_spawn_patterns() {
        let src = "fn f() { std::thread::spawn(|| {}); s.spawn(|| {}); }\n";
        let scan = scan("crates/core/src/a.rs", src);
        assert_eq!(
            scan.diags
                .iter()
                .filter(|d| d.rule == Rule::DetThreadSpawn)
                .count(),
            2
        );
    }

    #[test]
    fn det_rules_respect_scope() {
        let src = "fn f() { let m = HashMap::new(); m }\n";
        let in_scope = scan("crates/core/src/a.rs", src);
        let out_of_scope = scan("crates/lint/src/a.rs", src);
        assert!(!in_scope.diags.is_empty());
        assert!(out_of_scope.diags.is_empty(), "{:?}", out_of_scope.diags);
    }

    #[test]
    fn wallclock_flags_instant() {
        let scan = scan(
            "crates/experiments/src/a.rs",
            "fn f() { let t = Instant::now(); t }\n",
        );
        assert_eq!(scan.diags.len(), 1);
        assert_eq!(scan.diags[0].rule, Rule::DetWallclock);
    }

    #[test]
    fn wallclock_flags_ambient_entropy() {
        // Backoff/jitter code must draw from seeded streams: every
        // ambient-entropy entry point flags, in library code only.
        let src = "fn f() { let mut r = thread_rng(); let s = SmallRng::from_entropy(); \
                   OsRng.fill_bytes(&mut b); }\n";
        let scan = scan("crates/proto/src/a.rs", src);
        assert_eq!(
            scan.diags
                .iter()
                .filter(|d| d.rule == Rule::DetWallclock)
                .count(),
            3,
            "{:?}",
            scan.diags
        );
        assert!(scan.diags.iter().any(|d| d.msg.contains("seeded stream")));
        // Tests and bins keep their freedom.
        let test_scan = scan_tokens(
            "crates/proto/tests/t.rs",
            &lex(src).unwrap(),
            &Config::default(),
        );
        assert!(test_scan.diags.is_empty(), "{:?}", test_scan.diags);
    }
}
