//! Block-structured sparse revised simplex.
//!
//! The fleet layer's joint admission LP is *block-angular*: one
//! assignment block per admitted flow (its `Σx = 1` row, optional cost
//! and quality-floor rows, and its columns), coupled to every other block
//! only through the handful of shared per-path capacity rows. The dense
//! backends ignore that shape — [`Backend::Revised`](crate::Backend)
//! refactorizes a dense LU every few dozen pivots (`O(m³)` in the total
//! row count) and prices with `O(m·n)` row passes — so admission cost
//! grows cubically exactly where a fleet needs it cheapest. This backend
//! exploits the structure end to end:
//!
//! * **Sparse storage, both orientations.** Each [`Constraint`] carries
//!   its sorted nonzero support; per solve the backend assembles a CSC
//!   view (column pointers + row indices) over the same coefficients, so
//!   pricing streams rows by their nonzeros and column operations
//!   (FTRAN of the entering column, factorization) gather only actual
//!   entries.
//! * **Sparse product-form basis inverse.** The basis "factorization" is
//!   itself an eta file: one sparse Gauss–Jordan eta per basic column,
//!   built in *block order* — logical singletons first, then each block's
//!   structural columns pivoting on that block's own rows, and only the
//!   columns that cannot pivot locally fall through to the coupling
//!   rows. A block column's eliminated vector only ever touches its own
//!   block's rows plus the coupling rows, so elimination work and fill
//!   stay confined to the coupling rows plus the basic columns of active
//!   blocks instead of the full `m×m` matrix. Iteration pivots append
//!   further sparse etas to the same file; FTRAN applies it forward,
//!   BTRAN backward, each skipping etas whose pivot entry is zero.
//! * **Block-sectioned partial pricing.** The candidate-list pricing of
//!   the revised backend is kept, but the pricing sections follow the
//!   declared block boundaries ([`Problem::block_starts`]), so a pricing
//!   chunk scans per-flow blocks independently: per-flow rows contribute
//!   only to their own block's section and the bulk reduced-cost fill
//!   costs `O(nnz)` per full wrap instead of `O(m·n)`.
//! * **Same determinism contract.** Phase 2 is followed by the same
//!   least-capacity-vertex canonicalization as the revised backend
//!   (secondary weights decreasing in column mass, index jitter,
//!   duplicate-column pruning), and the final solution is extracted from
//!   a fresh factorization of the final basis — so warm and cold solves
//!   of one problem return **bit-identical** results, and results agree
//!   with the dense oracles to 1e-9 (`tests/proptest_backends.rs`).
//!
//! Without declared blocks the backend degrades gracefully to a plain
//! sparse revised simplex (one block, generic pricing sections), which on
//! dense inputs costs about what [`Backend::Revised`](crate::Backend)
//! does; its value is proportional to the sparsity it is given.

use crate::error::SolveError;
use crate::problem::{Constraint, ConstraintKind, Problem};
use crate::simplex::{PivotRule, SolverOptions, Workspace};
use crate::solution::{Basis, BasisVar, Solution};

/// Iteration etas accumulated beyond the factorization before the basis
/// is refactorized from scratch.
const REFACTOR_INTERVAL: usize = 64;

/// Number of pricing sections when no block structure is declared.
const PRICE_SECTIONS: usize = 8;

/// Minimum section width, so tiny problems/blocks degrade to full
/// pricing.
const MIN_SECTION: usize = 32;

/// Cap on the pricing candidate list banked during a section scan.
const CANDIDATE_LIMIT: usize = 24;

/// Pivot magnitude below which a factorization counts as singular.
const SINGULAR_TOL: f64 = 1e-12;

/// A block-local pivot is accepted when it is at least this fraction of
/// the best available pivot anywhere in the column (threshold pivoting:
/// sparsity-preserving but never numerically reckless).
const LOCAL_PIVOT_THRESHOLD: f64 = 0.01;

/// Sentinel for "row has no slack/artificial column".
const NONE_COL: usize = usize::MAX;

/// Sentinel block id for coupling rows (support spans several blocks).
const COUPLING: u32 = u32::MAX;

/// Reusable buffers of the sparse backend, owned by
/// [`Workspace`](crate::Workspace).
#[derive(Debug, Default)]
pub(crate) struct SparseWorkspace {
    // --- per-solve normalization and layout (same math as revised) ---
    row_factor: Vec<f64>,
    b: Vec<f64>,
    slack_col: Vec<usize>,
    art_col: Vec<usize>,
    logical_row: Vec<usize>,
    logical_val: Vec<f64>,
    // --- CSC view of the structural columns (raw values) ---
    col_ptr: Vec<usize>,
    col_rows: Vec<u32>,
    col_vals: Vec<f64>,
    // --- block structure ---
    /// Block id per structural column.
    col_block: Vec<u32>,
    /// Block id of a row when its support stays within one block,
    /// [`COUPLING`] otherwise.
    row_local: Vec<u32>,
    /// Pricing sections (column ranges over `0..art_start`), block
    /// aligned when blocks are declared.
    sections: Vec<(usize, usize)>,
    // --- basis state (slot k ↔ pivot row k after factorization) ---
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    x_basic: Vec<f64>,
    // --- sparse eta file: factorization etas then iteration etas ---
    eta_pivot: Vec<u32>,
    eta_pivot_val: Vec<f64>,
    eta_ptr: Vec<usize>,
    eta_rows: Vec<u32>,
    eta_vals: Vec<f64>,
    /// Number of etas belonging to the current factorization (iteration
    /// etas beyond this count trigger a refactorization).
    factor_etas: usize,
    // --- factorization scratch ---
    work: Vec<f64>,
    touched: Vec<u32>,
    mark: Vec<bool>,
    order: Vec<usize>,
    deferred: Vec<usize>,
    new_basis: Vec<usize>,
    pivoted: Vec<bool>,
    // --- phase state (mirrors the revised backend) ---
    cost: Vec<f64>,
    rc: Vec<f64>,
    cursor: usize,
    candidates: Vec<usize>,
    yf_scratch: Vec<f64>,
    face: Vec<usize>,
    face_fresh: bool,
    face_w2: Vec<f64>,
    w2: Vec<f64>,
    /// Per-solve telemetry, published by the dispatcher.
    pub(crate) stats: crate::simplex::SolveStats,
}

/// Column layout of the assembled matrix.
#[derive(Debug, Clone, Copy)]
struct Dims {
    m: usize,
    n: usize,
    art_start: usize,
    ncols: usize,
    n_art: usize,
}

/// Entry point used by `Problem::{solve, solve_with, solve_warm}` when
/// [`Backend::Sparse`](crate::Backend::Sparse) is selected.
pub(crate) fn solve(
    problem: &Problem,
    options: &SolverOptions,
    workspace: &mut Workspace,
    warm: Option<&Basis>,
) -> Result<Solution, SolveError> {
    let ws = &mut workspace.sparse;
    ws.stats.reset();
    let rows = problem.constraints();
    let dims = build(problem, ws);
    let tol = options.tolerance;
    let mut iterations = 0usize;

    let mut y = vec![0.0; dims.m];
    let mut y2 = vec![0.0; dims.m];
    let mut d = vec![0.0; dims.m];

    // ---- Warm start: try to re-enter phase 2 directly -------------------
    let warm_ok = warm.is_some_and(|basis| try_warm_basis(ws, &dims, basis, tol));

    if !warm_ok {
        install_initial_basis(ws, &dims);
        if !factor(ws, &dims) {
            return Err(SolveError::Singular);
        }
        load_x_basic(ws, dims.m);

        // ---- Phase 1: drive artificials to zero -------------------------
        if dims.n_art > 0 {
            ws.cost.clear();
            ws.cost.resize(dims.ncols, 0.0);
            for r in 0..dims.m {
                if ws.art_col[r] != NONE_COL {
                    ws.cost[ws.art_col[r]] = -1.0; // maximize −Σ artificials
                }
            }
            run_phase(
                rows,
                ws,
                &dims,
                options,
                Phase::One,
                &mut y,
                &mut d,
                &mut iterations,
            )?;
            let residual: f64 = (0..dims.m)
                .filter(|&i| ws.basis[i] >= dims.art_start)
                .map(|i| ws.x_basic[i].max(0.0))
                .sum();
            if residual > tol.max(1e-7) {
                return Err(SolveError::Infeasible { residual });
            }
            drive_out_artificials(ws, &dims, tol, &mut y, &mut d, &mut iterations);
        }
    }

    // ---- Phase 2: user objective ----------------------------------------
    ws.cost.clear();
    ws.cost.resize(dims.ncols, 0.0);
    ws.cost[..dims.n].copy_from_slice(&problem.objective);
    run_phase(
        rows,
        ws,
        &dims,
        options,
        Phase::Two,
        &mut y,
        &mut d,
        &mut iterations,
    )?;

    // ---- Phase 3: canonicalize over the optimal face --------------------
    canonicalize(
        rows,
        ws,
        &dims,
        options,
        &mut y,
        &mut y2,
        &mut d,
        &mut iterations,
    );

    // ---- Extraction from a fresh factorization of the final basis -------
    // The factorization order depends only on the basis *set* and the
    // problem, so any pivot path (warm or cold) reaching the same basis
    // yields bit-identical primal values, objective and duals.
    if !factor(ws, &dims) {
        return Err(SolveError::Singular);
    }
    load_x_basic(ws, dims.m);

    let mut x = vec![0.0; dims.n];
    for i in 0..dims.m {
        let bcol = ws.basis[i];
        if bcol < dims.n {
            // Clamp tiny negatives produced by roundoff.
            x[bcol] = ws.x_basic[i].max(0.0);
        }
    }
    let objective_internal: f64 = problem.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
    let objective = if problem.minimize {
        -objective_internal
    } else {
        objective_internal
    };

    // Duals: y = c_B·B⁻¹ in the normalized row space, un-normalized per
    // row (identical algebra to the dense backends).
    for (yi, &b) in y.iter_mut().zip(&ws.basis) {
        *yi = ws.cost[b];
    }
    btran(ws, &mut y);
    let mut duals = vec![0.0; dims.m];
    for (dual, (&yr, &f)) in duals.iter_mut().zip(y.iter().zip(&ws.row_factor)) {
        let mut v = yr * f;
        if problem.minimize {
            v = -v;
        }
        *dual = v;
    }

    let basis = export_basis(ws, &dims);

    Ok(Solution::new(
        x, objective, duals, iterations, basis, warm_ok,
    ))
}

/// Computes normalization, the CSC view and the block classification.
fn build(problem: &Problem, ws: &mut SparseWorkspace) -> Dims {
    let m = problem.num_constraints();
    let n = problem.num_vars();

    ws.row_factor.clear();
    ws.slack_col.clear();
    ws.art_col.clear();
    ws.b.clear();
    ws.logical_row.clear();
    ws.logical_val.clear();

    let mut n_slack = 0usize;
    let mut n_art = 0usize;
    for c in problem.constraints() {
        // Identical normalization arithmetic to the dense backends (zeros
        // cannot be the running max, so folding the support only is
        // exact).
        let scale = c
            .support()
            .iter()
            .fold(c.rhs().abs(), |acc, &j| {
                acc.max(c.coeffs()[j as usize].abs())
            })
            .max(1e-300);
        let negated = c.rhs() / scale < 0.0;
        if c.kind() == ConstraintKind::LessEq {
            n_slack += 1;
        }
        if c.kind() == ConstraintKind::Eq || negated {
            n_art += 1;
        }
        let sign = if negated { -1.0 } else { 1.0 };
        ws.row_factor.push(sign / scale);
        ws.slack_col.push(NONE_COL);
        ws.art_col.push(NONE_COL);
        ws.b.push(sign * c.rhs() / scale);
    }
    let art_start = n + n_slack;
    let ncols = art_start + n_art;

    for (r, c) in problem.constraints().iter().enumerate() {
        if c.kind() == ConstraintKind::LessEq {
            ws.slack_col[r] = n + ws.logical_row.len();
            ws.logical_row.push(r);
            ws.logical_val
                .push(if ws.row_factor[r] < 0.0 { -1.0 } else { 1.0 });
        }
    }
    for (r, c) in problem.constraints().iter().enumerate() {
        if c.kind() == ConstraintKind::Eq || ws.row_factor[r] < 0.0 {
            ws.art_col[r] = n + ws.logical_row.len();
            ws.logical_row.push(r);
            ws.logical_val.push(1.0);
        }
    }
    debug_assert_eq!(n + ws.logical_row.len(), ncols);

    // ---- CSC view over the structural columns (raw values) --------------
    ws.col_ptr.clear();
    ws.col_ptr.resize(n + 1, 0);
    for c in problem.constraints() {
        for &j in c.support() {
            ws.col_ptr[j as usize + 1] += 1;
        }
    }
    for j in 0..n {
        ws.col_ptr[j + 1] += ws.col_ptr[j];
    }
    let nnz = ws.col_ptr[n];
    ws.col_rows.clear();
    ws.col_rows.resize(nnz, 0);
    ws.col_vals.clear();
    ws.col_vals.resize(nnz, 0.0);
    let mut fill = ws.col_ptr.clone(); // next free slot per column
    for (r, c) in problem.constraints().iter().enumerate() {
        for &j in c.support() {
            let slot = fill[j as usize];
            fill[j as usize] += 1;
            ws.col_rows[slot] = r as u32;
            ws.col_vals[slot] = c.coeffs()[j as usize];
        }
    }

    // ---- Block classification ------------------------------------------
    let declared = problem.block_starts();
    ws.col_block.clear();
    ws.col_block.resize(n, 0);
    let n_blocks = if declared.len() >= 2
        && declared[0] == 0
        && *declared.last().expect("declared.len() >= 2 checked above") < n
    {
        for (bi, w) in declared.windows(2).enumerate() {
            for cb in &mut ws.col_block[w[0]..w[1]] {
                *cb = bi as u32;
            }
        }
        let last = declared.len() - 1;
        for cb in &mut ws.col_block[declared[last]..n] {
            *cb = last as u32;
        }
        declared.len()
    } else {
        1
    };
    ws.row_local.clear();
    for c in problem.constraints() {
        let local = match c.support().first() {
            None => COUPLING, // an empty row constrains nothing structural
            Some(&j0) => {
                let b0 = ws.col_block[j0 as usize];
                if c.support().iter().all(|&j| ws.col_block[j as usize] == b0) {
                    b0
                } else {
                    COUPLING
                }
            }
        };
        ws.row_local.push(local);
    }

    // ---- Pricing sections over 0..art_start -----------------------------
    ws.sections.clear();
    if art_start > 0 {
        if n_blocks > 1 {
            // Block-aligned: merge consecutive blocks into ≥ MIN_SECTION
            // chunks so each section prices whole per-flow blocks.
            let mut lo = 0usize;
            for w in declared.windows(2) {
                if w[1] - lo >= MIN_SECTION {
                    ws.sections.push((lo, w[1]));
                    lo = w[1];
                }
            }
            if n > lo {
                ws.sections.push((lo, n));
            }
            if art_start > n {
                ws.sections.push((n, art_start)); // logical columns
            }
        } else {
            let section = (art_start.div_ceil(PRICE_SECTIONS)).max(MIN_SECTION);
            let mut lo = 0usize;
            while lo < art_start {
                let hi = (lo + section).min(art_start);
                ws.sections.push((lo, hi));
                lo = hi;
            }
        }
    }

    ws.face_fresh = false;
    Dims {
        m,
        n,
        art_start,
        ncols,
        n_art,
    }
}

/// Gathers the normalized column `j` into the dense buffer `out` via the
/// CSC view (only actual nonzeros are written; `out` must be zeroed).
fn gather_col(ws: &SparseWorkspace, dims: &Dims, j: usize, out: &mut [f64]) {
    if j < dims.n {
        for idx in ws.col_ptr[j]..ws.col_ptr[j + 1] {
            let r = ws.col_rows[idx] as usize;
            out[r] = ws.col_vals[idx] * ws.row_factor[r];
        }
    } else {
        let l = j - dims.n;
        out[ws.logical_row[l]] = ws.logical_val[l];
    }
}

/// FTRAN: `v ← B⁻¹ v` — the sparse eta file applied in append order,
/// skipping etas whose pivot entry is zero.
fn ftran(ws: &SparseWorkspace, v: &mut [f64]) {
    for k in 0..ws.eta_pivot.len() {
        let r = ws.eta_pivot[k] as usize;
        let vr = v[r];
        // dmc-lint: allow(float-exact) eta transform skip: an exactly-zero pivot component leaves the vector unchanged
        if vr != 0.0 {
            for idx in ws.eta_ptr[k]..ws.eta_ptr[k + 1] {
                v[ws.eta_rows[idx] as usize] += ws.eta_vals[idx] * vr;
            }
            v[r] = ws.eta_pivot_val[k] * vr;
        }
    }
}

/// BTRAN: `v ← vᵀ B⁻¹` — the sparse eta file applied in reverse.
fn btran(ws: &SparseWorkspace, v: &mut [f64]) {
    for k in (0..ws.eta_pivot.len()).rev() {
        let r = ws.eta_pivot[k] as usize;
        let mut s = ws.eta_pivot_val[k] * v[r];
        for idx in ws.eta_ptr[k]..ws.eta_ptr[k + 1] {
            s += ws.eta_vals[idx] * v[ws.eta_rows[idx] as usize];
        }
        v[r] = s;
    }
}

/// Loads `x_basic = B⁻¹ b` (slot `k` holds the value of `basis[k]`,
/// which after factorization is the column pivoted at row `k`).
fn load_x_basic(ws: &mut SparseWorkspace, m: usize) {
    ws.x_basic.clear();
    ws.x_basic.extend_from_slice(&ws.b);
    let mut xb = std::mem::take(&mut ws.x_basic);
    ftran(ws, &mut xb);
    for v in &mut xb {
        *v = v.max(0.0);
    }
    debug_assert_eq!(xb.len(), m);
    ws.x_basic = xb;
}

/// Slack basis where available, artificial basis elsewhere (`B = I`).
fn install_initial_basis(ws: &mut SparseWorkspace, dims: &Dims) {
    ws.basis.clear();
    ws.in_basis.clear();
    ws.in_basis.resize(dims.ncols, false);
    for r in 0..dims.m {
        let c = if ws.art_col[r] != NONE_COL {
            ws.art_col[r]
        } else {
            ws.slack_col[r]
        };
        debug_assert_ne!(c, NONE_COL);
        ws.basis.push(c);
        ws.in_basis[c] = true;
    }
}

/// Validates and installs a caller-provided warm [`Basis`]; returns
/// `true` when it is well-formed, nonsingular and primal feasible.
fn try_warm_basis(ws: &mut SparseWorkspace, dims: &Dims, basis: &Basis, tol: f64) -> bool {
    if basis.len() != dims.m {
        return false;
    }
    ws.basis.clear();
    ws.in_basis.clear();
    ws.in_basis.resize(dims.ncols, false);
    for slot in basis.slots() {
        let c = match *slot {
            BasisVar::Structural(j) if j < dims.n => j,
            BasisVar::Slack(r) if r < dims.m && ws.slack_col[r] != NONE_COL => ws.slack_col[r],
            _ => return false,
        };
        if ws.in_basis[c] {
            return false; // duplicate
        }
        ws.basis.push(c);
        ws.in_basis[c] = true;
    }
    if !factor(ws, dims) {
        return false; // singular under the new coefficients
    }
    ws.x_basic.clear();
    ws.x_basic.extend_from_slice(&ws.b);
    let mut xb = std::mem::take(&mut ws.x_basic);
    ftran(ws, &mut xb);
    ws.x_basic = xb;
    if ws.x_basic.iter().any(|&v| v < -tol) {
        return false; // primal infeasible for the new RHS
    }
    for v in &mut ws.x_basic {
        *v = v.max(0.0);
    }
    true
}

/// Sparse product-form factorization of the current basis, built in
/// block order; clears the eta file and re-permutes `ws.basis` so slot
/// `k` holds the column pivoted at row `k`. Returns `false` on a
/// numerically singular basis.
///
/// The pivot ordering is a function of the basis *set* only (logical
/// singletons by row, then structural columns grouped by block in column
/// order, deferrals appended in that same order), so two solves landing
/// on the same final basis factorize identically — the keystone of the
/// bit-identical warm/cold guarantee.
fn factor(ws: &mut SparseWorkspace, dims: &Dims) -> bool {
    let m = dims.m;
    ws.stats.refactorizations += 1;
    ws.stats
        .eta_lengths
        .push(ws.eta_ptr.len().saturating_sub(1) as u64);
    ws.eta_pivot.clear();
    ws.eta_pivot_val.clear();
    ws.eta_rows.clear();
    ws.eta_vals.clear();
    ws.eta_ptr.clear();
    ws.eta_ptr.push(0);
    ws.factor_etas = 0;
    if m == 0 {
        return true;
    }
    debug_assert_eq!(ws.basis.len(), m);

    ws.pivoted.clear();
    ws.pivoted.resize(m, false);
    ws.new_basis.clear();
    ws.new_basis.resize(m, usize::MAX);
    ws.work.clear();
    ws.work.resize(m, 0.0);
    ws.mark.clear();
    ws.mark.resize(m, false);
    ws.touched.clear();
    ws.deferred.clear();

    // Deterministic block-local elimination order.
    ws.order.clear();
    ws.order.extend_from_slice(&ws.basis);
    let (n, logical_row, col_block) = (dims.n, &ws.logical_row, &ws.col_block);
    ws.order.sort_unstable_by_key(|&c| {
        if c >= n {
            (0u8, logical_row[c - n], c)
        } else {
            (1u8, col_block[c] as usize, c)
        }
    });

    let mut order = std::mem::take(&mut ws.order);
    let mut deferred = std::mem::take(&mut ws.deferred);
    for &col in &order {
        if !eliminate_column(ws, dims, col, true) {
            deferred.push(col);
        }
    }
    let mut ok = true;
    for &col in &deferred {
        if !eliminate_column(ws, dims, col, false) {
            ok = false;
            break;
        }
    }
    deferred.clear();
    ws.deferred = deferred;
    order.clear();
    ws.order = order;
    if !ok {
        return false;
    }
    debug_assert!(ws.pivoted.iter().all(|&p| p));
    std::mem::swap(&mut ws.basis, &mut ws.new_basis);
    ws.factor_etas = ws.eta_pivot.len();
    true
}

/// One factorization step: FTRANs column `col` through the etas built so
/// far and pivots it at the best eligible row. With `local_only` the
/// pivot must sit on the column's home rows (its own block for
/// structural columns, its own row for logicals) *and* pass the
/// threshold test against the best pivot anywhere; otherwise any
/// unpivoted row qualifies. Returns `false` when no acceptable pivot
/// exists (the caller defers or declares the basis singular).
fn eliminate_column(ws: &mut SparseWorkspace, dims: &Dims, col: usize, local_only: bool) -> bool {
    // Gather the column and apply the existing etas, tracking touched
    // rows so the dense work vector is cleared in O(nnz).
    let mut work = std::mem::take(&mut ws.work);
    let mut touched = std::mem::take(&mut ws.touched);
    touched.clear();
    if col < dims.n {
        for idx in ws.col_ptr[col]..ws.col_ptr[col + 1] {
            let r = ws.col_rows[idx] as usize;
            work[r] = ws.col_vals[idx] * ws.row_factor[r];
            if !ws.mark[r] {
                ws.mark[r] = true;
                touched.push(r as u32);
            }
        }
    } else {
        let l = col - dims.n;
        let r = ws.logical_row[l];
        work[r] = ws.logical_val[l];
        if !ws.mark[r] {
            ws.mark[r] = true;
            touched.push(r as u32);
        }
    }
    for k in 0..ws.eta_pivot.len() {
        let r = ws.eta_pivot[k] as usize;
        let vr = work[r];
        // dmc-lint: allow(float-exact) eta transform skip: an exactly-zero pivot component leaves the vector unchanged
        if vr != 0.0 {
            for idx in ws.eta_ptr[k]..ws.eta_ptr[k + 1] {
                let i = ws.eta_rows[idx] as usize;
                work[i] += ws.eta_vals[idx] * vr;
                if !ws.mark[i] {
                    ws.mark[i] = true;
                    touched.push(i as u32);
                }
            }
            work[r] = ws.eta_pivot_val[k] * vr;
        }
    }

    // Pick the pivot row: best local vs. best anywhere, lowest row index
    // breaking ties deterministically.
    let home = if col < dims.n {
        ws.col_block[col]
    } else {
        COUPLING // logicals: home is their own row, matched below
    };
    let logical_home = if col >= dims.n {
        Some(ws.logical_row[col - dims.n])
    } else {
        None
    };
    let mut best_any = 0.0f64;
    let mut best_local = 0.0f64;
    let mut local_row = usize::MAX;
    let mut any_row = usize::MAX;
    for &t in &touched {
        let r = t as usize;
        if ws.pivoted[r] {
            continue;
        }
        let a = work[r].abs();
        if a > best_any || (a == best_any && r < any_row) {
            best_any = a;
            any_row = r;
        }
        let is_home = match logical_home {
            Some(lr) => r == lr,
            None => ws.row_local[r] == home,
        };
        if is_home && (a > best_local || (a == best_local && r < local_row)) {
            best_local = a;
            local_row = r;
        }
    }
    let pivot_row = if local_only {
        if local_row != usize::MAX
            && best_local >= SINGULAR_TOL
            && best_local >= LOCAL_PIVOT_THRESHOLD * best_any
        {
            local_row
        } else {
            usize::MAX
        }
    } else if any_row != usize::MAX && best_any >= SINGULAR_TOL {
        any_row
    } else {
        usize::MAX
    };

    let accepted = pivot_row != usize::MAX;
    if accepted {
        let inv = 1.0 / work[pivot_row];
        ws.eta_pivot.push(pivot_row as u32);
        ws.eta_pivot_val.push(inv);
        for &t in &touched {
            let i = t as usize;
            // dmc-lint: allow(float-exact) elimination skip: an exactly-zero work entry produces no fill
            if i != pivot_row && work[i] != 0.0 {
                ws.eta_rows.push(t);
                ws.eta_vals.push(-work[i] * inv);
            }
        }
        ws.eta_ptr.push(ws.eta_rows.len());
        ws.pivoted[pivot_row] = true;
        ws.new_basis[pivot_row] = col;
    }
    // Clear the work vector for the next column.
    for &t in &touched {
        work[t as usize] = 0.0;
        ws.mark[t as usize] = false;
    }
    ws.work = work;
    ws.touched = touched;
    accepted
}

/// Premultiplies `y[r]·row_factor[r]` into the reusable scratch buffer.
#[inline]
fn premultiply<'a>(buf: &'a mut Vec<f64>, y: &[f64], row_factor: &[f64]) -> &'a [f64] {
    buf.clear();
    buf.extend(y.iter().zip(row_factor).map(|(a, b)| a * b));
    buf
}

/// Reduced cost of a single column via the CSC view (`yf` is the
/// premultiplied `y[r]·row_factor[r]` vector).
#[inline]
fn reduced_cost_col(ws: &SparseWorkspace, dims: &Dims, yf: &[f64], y: &[f64], j: usize) -> f64 {
    if j < dims.n {
        let mut dot = 0.0;
        for idx in ws.col_ptr[j]..ws.col_ptr[j + 1] {
            dot += yf[ws.col_rows[idx] as usize] * ws.col_vals[idx];
        }
        ws.cost[j] - dot
    } else {
        let l = j - dims.n;
        ws.cost[j] - y[ws.logical_row[l]] * ws.logical_val[l]
    }
}

/// Fills `rc[lo..hi]` (`hi ≤ n`) with reduced costs by streaming each
/// row's support restricted to the range — `O(nnz in range)` instead of
/// the dense backends' `O(m·(hi−lo))`.
fn fill_rc_structural(
    rows: &[Constraint],
    row_factor: &[f64],
    cost: &[f64],
    y: &[f64],
    lo: usize,
    hi: usize,
    rc: &mut [f64],
) {
    rc[lo..hi].copy_from_slice(&cost[lo..hi]);
    for (r, c) in rows.iter().enumerate() {
        let mult = y[r] * row_factor[r];
        // dmc-lint: allow(float-exact) axpy skip: an exactly-zero multiplier contributes nothing; a tolerance here would change results
        if mult != 0.0 {
            let sup = c.support();
            let start = sup.partition_point(|&j| (j as usize) < lo);
            for &j in &sup[start..] {
                let j = j as usize;
                if j >= hi {
                    break;
                }
                rc[j] -= mult * c.coeffs()[j];
            }
        }
    }
}

/// Pricing mode for one iteration.
#[derive(Clone, Copy, PartialEq)]
enum Pricing {
    Bland,
    Full,
    Partial,
}

/// Which phase [`run_phase`] is executing.
#[derive(Clone, Copy, PartialEq)]
enum Phase {
    One,
    Two,
}

/// Selects the entering column, or `None` when the current basis is
/// optimal for the phase objective. Mirrors the revised backend's
/// candidate-list partial pricing, with sections aligned to the declared
/// blocks; face collection semantics are identical.
#[allow(clippy::too_many_arguments)]
fn price(
    rows: &[Constraint],
    ws: &mut SparseWorkspace,
    dims: &Dims,
    y: &[f64],
    tol: f64,
    mode: Pricing,
    collect_face: bool,
) -> Option<usize> {
    let enter_limit = dims.art_start;
    if enter_limit == 0 {
        ws.face.clear();
        ws.face_fresh = collect_face;
        return None;
    }
    // Candidate re-pricing only applies to Partial mode.
    if mode == Pricing::Partial && !ws.candidates.is_empty() {
        let mut yf_buf = std::mem::take(&mut ws.yf_scratch);
        let yf = premultiply(&mut yf_buf, y, &ws.row_factor);
        let mut best = tol;
        let mut pick = None;
        let candidates = std::mem::take(&mut ws.candidates);
        for &j in &candidates {
            if j >= enter_limit || ws.in_basis[j] {
                continue;
            }
            let rc = reduced_cost_col(ws, dims, yf, y, j);
            if rc > best {
                best = rc;
                pick = Some(j);
            }
        }
        ws.candidates = candidates;
        ws.yf_scratch = yf_buf;
        if pick.is_some() {
            return pick;
        }
        ws.candidates.clear();
    }

    let mut face = std::mem::take(&mut ws.face);
    let mut rc_buf = std::mem::take(&mut ws.rc);
    if rc_buf.len() < enter_limit {
        rc_buf.resize(enter_limit, 0.0);
    }
    let n_sections = ws.sections.len();
    let start_section = if mode == Pricing::Partial {
        ws.cursor % n_sections
    } else {
        0
    };
    let mut scanned = 0usize;
    let mut best = tol;
    let mut pick = None;
    if collect_face && face.len() < enter_limit {
        // Branchless face collection into a pre-sized buffer (truncated
        // below), exactly like the revised backend.
        face.resize(enter_limit, 0);
    }
    let mut face_w = 0usize;
    'sections: for step in 0..n_sections {
        let s = (start_section + step) % n_sections;
        let (lo, hi) = ws.sections[s];
        let s_hi = hi.min(dims.n);
        if lo < s_hi {
            fill_rc_structural(rows, &ws.row_factor, &ws.cost, y, lo, s_hi, &mut rc_buf);
        }
        for (j, rc) in rc_buf.iter_mut().enumerate().take(hi).skip(lo.max(dims.n)) {
            let l = j - dims.n;
            *rc = ws.cost[j] - y[ws.logical_row[l]] * ws.logical_val[l];
        }
        for (j, &rc) in rc_buf.iter().enumerate().take(hi).skip(lo) {
            let nonbasic = !ws.in_basis[j];
            if collect_face {
                face[face_w] = j;
                face_w += (nonbasic & (rc.abs() <= tol)) as usize;
            }
            if nonbasic && rc > best {
                best = rc;
                pick = Some(j);
                if mode == Pricing::Bland {
                    scanned += hi - lo;
                    break 'sections;
                }
            }
            if nonbasic
                && rc > tol
                && mode == Pricing::Partial
                && ws.candidates.len() < CANDIDATE_LIMIT
            {
                ws.candidates.push(j);
            }
        }
        scanned += hi - lo;
        if mode == Pricing::Partial && pick.is_some() {
            ws.cursor = (s + 1) % n_sections;
            break;
        }
    }
    face.truncate(face_w);
    ws.rc = rc_buf;
    ws.face_fresh = collect_face && pick.is_none() && scanned == enter_limit;
    ws.face = face;
    pick
}

/// Ratio test, identical to the revised backend's (smallest basic column
/// index on near-ties; zero-valued basic artificials forced out on any
/// nonzero direction component).
fn ratio_test(ws: &SparseWorkspace, dims: &Dims, d: &[f64], tol: f64) -> Option<(usize, f64)> {
    let mut leave: Option<usize> = None;
    let mut best_ratio = f64::INFINITY;
    for (i, &a) in d.iter().enumerate().take(dims.m) {
        let candidate = if a > tol {
            Some(ws.x_basic[i].max(0.0) / a)
        } else if ws.basis[i] >= dims.art_start && a < -tol && ws.x_basic[i] <= tol {
            Some(0.0)
        } else {
            None
        };
        if let Some(ratio) = candidate {
            let better = ratio < best_ratio - tol
                || (ratio < best_ratio + tol
                    && leave.is_some_and(|cur| ws.basis[i] < ws.basis[cur]));
            if leave.is_none() || better {
                if ratio < best_ratio {
                    best_ratio = ratio;
                }
                leave = Some(i);
            }
        }
    }
    leave.map(|r| (r, best_ratio.max(0.0)))
}

/// Applies the pivot: updates basic values, appends a sparse eta, and
/// refactorizes once the iteration-eta budget is spent. Returns `false`
/// when a due refactorization found the basis singular.
fn pivot(ws: &mut SparseWorkspace, dims: &Dims, q: usize, r: usize, d: &[f64], t: f64) -> bool {
    for (i, (xb, &di)) in ws.x_basic.iter_mut().zip(d).enumerate() {
        if i != r {
            *xb = (*xb - t * di).max(0.0);
        }
    }
    ws.x_basic[r] = t;

    let leaving = ws.basis[r];
    ws.in_basis[leaving] = false;
    ws.in_basis[q] = true;
    ws.basis[r] = q;

    let inv = 1.0 / d[r];
    ws.eta_pivot.push(r as u32);
    ws.eta_pivot_val.push(inv);
    for (i, &di) in d.iter().enumerate().take(dims.m) {
        // dmc-lint: allow(float-exact) the eta column stores exact nonzeros only: a zero entry is structurally absent
        if i != r && di != 0.0 {
            ws.eta_rows.push(i as u32);
            ws.eta_vals.push(-di * inv);
        }
    }
    ws.eta_ptr.push(ws.eta_rows.len());

    if ws.eta_pivot.len() - ws.factor_etas >= REFACTOR_INTERVAL {
        if !factor(ws, dims) {
            return false;
        }
        // Recompute basic values from scratch to shed accumulated drift
        // (and to follow the refactorization's slot re-permutation).
        load_x_basic(ws, dims.m);
    }
    true
}

/// Runs simplex iterations on the phase objective in `ws.cost` until
/// optimality, unboundedness or the iteration limit (same control flow
/// as the revised backend).
#[allow(clippy::too_many_arguments)]
fn run_phase(
    rows: &[Constraint],
    ws: &mut SparseWorkspace,
    dims: &Dims,
    options: &SolverOptions,
    phase: Phase,
    y: &mut [f64],
    d: &mut [f64],
    iterations: &mut usize,
) -> Result<(), SolveError> {
    let tol = options.tolerance;
    let collect_face = phase == Phase::Two;
    let mut degenerate_run = 0usize;
    ws.cursor = 0;
    ws.candidates.clear();
    let mut basic_arts = if phase == Phase::One {
        (0..dims.m)
            .filter(|&i| ws.basis[i] >= dims.art_start)
            .count()
    } else {
        0
    };
    if phase == Phase::One && basic_arts == 0 {
        ws.stats.phase1_early_exit = true;
        return Ok(());
    }
    for _ in 0..options.max_iterations {
        let mode = match options.pivot_rule {
            PivotRule::Bland => Pricing::Bland,
            PivotRule::Dantzig => Pricing::Full,
            PivotRule::Adaptive => {
                if degenerate_run >= options.degenerate_switch {
                    Pricing::Bland
                } else {
                    Pricing::Partial
                }
            }
        };
        for (yi, &b) in y.iter_mut().zip(&ws.basis) {
            *yi = ws.cost[b];
        }
        btran(ws, y);
        let Some(q) = price(rows, ws, dims, y, tol, mode, collect_face) else {
            return Ok(()); // optimal
        };
        d.fill(0.0);
        gather_col(ws, dims, q, d);
        ftran(ws, d);
        let Some((r, step)) = ratio_test(ws, dims, d, tol) else {
            return Err(SolveError::Unbounded);
        };
        if step.abs() <= tol {
            degenerate_run += 1;
        } else {
            degenerate_run = 0;
        }
        let leaving_art = ws.basis[r] >= dims.art_start;
        if !pivot(ws, dims, q, r, d, step) {
            return Err(SolveError::Singular);
        }
        *iterations += 1;
        if phase == Phase::One && leaving_art {
            basic_arts -= 1;
            if basic_arts == 0 {
                ws.stats.phase1_early_exit = true;
                return Ok(());
            }
        }
    }
    Err(SolveError::IterationLimit {
        limit: options.max_iterations,
    })
}

/// After phase 1, pivots basic artificials out where possible; rows
/// whose artificial cannot leave are linearly dependent and keep it
/// basic at zero (identical semantics to the revised backend).
#[allow(clippy::too_many_arguments)]
fn drive_out_artificials(
    ws: &mut SparseWorkspace,
    dims: &Dims,
    tol: f64,
    e: &mut [f64],
    d: &mut [f64],
    iterations: &mut usize,
) {
    let pivot_tol = tol.max(1e-10);
    for r in 0..dims.m {
        if ws.basis[r] < dims.art_start {
            continue;
        }
        e.fill(0.0);
        e[r] = 1.0;
        btran(ws, e);
        let mut ef_buf = std::mem::take(&mut ws.yf_scratch);
        let ef = premultiply(&mut ef_buf, e, &ws.row_factor);
        let entering = (0..dims.art_start).find(|&j| {
            !ws.in_basis[j] && {
                let dot = if j < dims.n {
                    (ws.col_ptr[j]..ws.col_ptr[j + 1])
                        .map(|idx| ef[ws.col_rows[idx] as usize] * ws.col_vals[idx])
                        .sum::<f64>()
                } else {
                    let l = j - dims.n;
                    e[ws.logical_row[l]] * ws.logical_val[l]
                };
                dot.abs() > pivot_tol
            }
        });
        ws.yf_scratch = ef_buf;
        if let Some(q) = entering {
            d.fill(0.0);
            gather_col(ws, dims, q, d);
            ftran(ws, d);
            if d[r].abs() <= SINGULAR_TOL {
                continue; // numerically vanished; treat as dependent
            }
            let step = ws.x_basic[r] / d[r];
            if !pivot(ws, dims, q, r, d, step) {
                return; // refactorization breakdown; extraction refactors anyway
            }
            *iterations += 1;
        }
    }
}

/// Phase 3: walks the optimal face to the least-capacity canonical
/// vertex — the same secondary objective, jitter, duplicate pruning and
/// candidate queue as the revised backend, with the bulk passes running
/// over row supports and CSC columns instead of dense rows.
#[allow(clippy::too_many_arguments)]
fn canonicalize(
    rows: &[Constraint],
    ws: &mut SparseWorkspace,
    dims: &Dims,
    options: &SolverOptions,
    y: &mut [f64],
    y2: &mut [f64],
    d: &mut [f64],
    iterations: &mut usize,
) {
    let tol = options.tolerance;
    let mut face = std::mem::take(&mut ws.face);
    if !ws.face_fresh {
        // Fallback: recompute the face from the phase-2 duals.
        for (yi, &b) in y.iter_mut().zip(&ws.basis) {
            *yi = ws.cost[b];
        }
        btran(ws, y);
        let mut yf_buf = std::mem::take(&mut ws.yf_scratch);
        let yf = premultiply(&mut yf_buf, y, &ws.row_factor);
        face.clear();
        for j in 0..dims.art_start {
            if !ws.in_basis[j] && reduced_cost_col(ws, dims, yf, y, j).abs() <= tol {
                face.push(j);
            }
        }
        ws.yf_scratch = yf_buf;
    }
    if face.is_empty() {
        ws.face = face;
        return;
    }
    // Secondary weights: prefer the least-capacity optimal vertex.
    ws.w2.clear();
    ws.w2.resize(dims.art_start, 0.0);
    for j in 0..dims.n {
        let mut mass = 0.0;
        for idx in ws.col_ptr[j]..ws.col_ptr[j + 1] {
            mass += ws.row_factor[ws.col_rows[idx] as usize].abs() * ws.col_vals[idx].abs();
        }
        ws.w2[j] = mass;
    }
    for l in 0..dims.art_start - dims.n {
        ws.w2[dims.n + l] = ws.logical_val[l].abs();
    }
    let jitter_step = 1e-6 / (dims.art_start + 1) as f64;
    let mut jitter = 1e-6;
    for w in ws.w2.iter_mut() {
        *w = 1.0 / (1.0 + *w) + jitter;
        jitter -= jitter_step;
    }
    let mut rc2 = std::mem::take(&mut ws.face_w2);
    let mut queue: Vec<(usize, f64)> = Vec::new();
    let mut table: Vec<(u64, u32)> = Vec::new();
    let refill = |ws: &SparseWorkspace,
                  face: &[usize],
                  y2: &[f64],
                  rc2: &mut Vec<f64>,
                  queue: &mut Vec<(usize, f64)>,
                  table: &mut Vec<(u64, u32)>| {
        if rc2.len() < dims.art_start {
            rc2.resize(dims.art_start, 0.0);
        }
        rc2[..dims.art_start].copy_from_slice(&ws.w2[..dims.art_start]);
        for (r, c) in rows.iter().enumerate() {
            let mult = y2[r] * ws.row_factor[r];
            // dmc-lint: allow(float-exact) axpy skip: an exactly-zero multiplier contributes nothing; a tolerance here would change results
            if mult != 0.0 {
                for &j in c.support() {
                    let j = j as usize;
                    rc2[j] -= mult * c.coeffs()[j];
                }
            }
        }
        for l in 0..dims.art_start - dims.n {
            rc2[dims.n + l] -= y2[ws.logical_row[l]] * ws.logical_val[l];
        }
        queue.clear();
        // Dedup table keyed by the dot bits (w2 − rc2), as in the revised
        // backend: duplicate columns produce identical dots.
        let cap = (face.len().max(1) * 2).next_power_of_two();
        let mask = cap - 1;
        table.clear();
        table.resize(cap, (0, u32::MAX));
        for &j in face {
            if ws.in_basis[j] || rc2[j] <= tol {
                continue;
            }
            let key = (ws.w2[j] - rc2[j]).to_bits().max(1);
            let mut slot = ((key >> 3) as usize) & mask;
            loop {
                let (sk, si) = table[slot];
                if sk == 0 {
                    table[slot] = (key, j as u32);
                    break;
                }
                if sk == key {
                    if ws.w2[j] > ws.w2[si as usize] {
                        table[slot] = (key, j as u32);
                    }
                    break;
                }
                slot = (slot + 1) & mask;
            }
        }
        for &(sk, si) in table.iter() {
            if sk != 0 {
                let j = si as usize;
                queue.push((j, rc2[j]));
            }
        }
        queue.sort_unstable_by_key(|&(j, _)| j);
    };
    let mut degenerate_run = 0usize;
    let mut stale = true;
    for _ in 0..options.max_iterations {
        for (y2i, &b) in y2.iter_mut().zip(&ws.basis) {
            *y2i = if b < dims.art_start { ws.w2[b] } else { 0.0 };
        }
        btran(ws, y2);
        let bland = degenerate_run >= options.degenerate_switch;
        let mut pick: Option<usize> = None;
        let mut best = tol;
        if !stale {
            let mut yf_buf = std::mem::take(&mut ws.yf_scratch);
            let yf = premultiply(&mut yf_buf, y2, &ws.row_factor);
            for &(j, _) in &queue {
                if ws.in_basis[j] {
                    continue;
                }
                let rc2j = if j < dims.n {
                    let mut dot = 0.0;
                    for idx in ws.col_ptr[j]..ws.col_ptr[j + 1] {
                        dot += yf[ws.col_rows[idx] as usize] * ws.col_vals[idx];
                    }
                    ws.w2[j] - dot
                } else {
                    let l = j - dims.n;
                    ws.w2[j] - y2[ws.logical_row[l]] * ws.logical_val[l]
                };
                if rc2j > best {
                    best = rc2j;
                    pick = Some(j);
                }
            }
            ws.yf_scratch = yf_buf;
        }
        if pick.is_none() {
            refill(ws, &face, y2, &mut rc2, &mut queue, &mut table);
            stale = false;
            for &(j, rc2j) in &queue {
                if rc2j > best {
                    best = rc2j;
                    pick = Some(j);
                    if bland {
                        break;
                    }
                }
            }
        }
        let Some(q) = pick else {
            break; // canonical vertex reached
        };
        d.fill(0.0);
        gather_col(ws, dims, q, d);
        ftran(ws, d);
        let Some((r, step)) = ratio_test(ws, dims, d, tol) else {
            break; // face unbounded in the secondary direction: keep x
        };
        if step.abs() <= tol {
            degenerate_run += 1;
        } else {
            degenerate_run = 0;
        }
        let leaving = ws.basis[r];
        let pivot_ok = pivot(ws, dims, q, r, d, step);
        *iterations += 1;
        if leaving < dims.art_start && !face.contains(&leaving) {
            face.push(leaving);
        }
        if !pivot_ok {
            break; // refactorization breakdown: keep the current optimum
        }
    }
    face.clear();
    ws.face = face;
    ws.face_w2 = rc2;
}

/// Maps the final basis to the public [`Basis`] type (`None` when an
/// artificial stayed basic).
fn export_basis(ws: &SparseWorkspace, dims: &Dims) -> Option<Basis> {
    let mut slots = Vec::with_capacity(dims.m);
    for &c in &ws.basis {
        if c < dims.n {
            slots.push(BasisVar::Structural(c));
        } else if c < dims.art_start {
            let row = ws.slack_col.iter().position(|&s| s == c)?;
            slots.push(BasisVar::Slack(row));
        } else {
            return None;
        }
    }
    Some(Basis::new(slots))
}

#[cfg(test)]
mod tests {
    use crate::{Backend, PivotRule, Problem, SolveError, SolverOptions, Workspace};

    fn opts() -> SolverOptions {
        SolverOptions {
            backend: Backend::Sparse,
            ..SolverOptions::default()
        }
    }

    #[test]
    fn simple_maximize() {
        let mut p = Problem::maximize(vec![3.0, 2.0]);
        p.add_le(vec![1.0, 1.0], 4.0).unwrap();
        p.add_le(vec![1.0, 3.0], 6.0).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 12.0).abs() < 1e-9);
        assert!((s.x()[0] - 4.0).abs() < 1e-9);
        assert!(s.x()[1].abs() < 1e-9);
        assert!(s.basis().is_some());
        assert!(!s.used_warm_start());
    }

    #[test]
    fn equality_constraint() {
        let mut p = Problem::maximize(vec![1.0, 2.0]);
        p.add_eq(vec![1.0, 1.0], 1.0).unwrap();
        p.add_le(vec![0.0, 1.0], 0.6).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 1.6).abs() < 1e-9);
        assert!((s.x()[0] - 0.4).abs() < 1e-9);
        assert!((s.x()[1] - 0.6).abs() < 1e-9);
    }

    #[test]
    fn minimize_works() {
        let mut p = Problem::minimize(vec![2.0, 3.0]);
        p.add_ge(vec![1.0, 1.0], 2.0).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 4.0).abs() < 1e-9);
        assert!((s.x()[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::maximize(vec![1.0]);
        p.add_le(vec![1.0], 1.0).unwrap();
        p.add_ge(vec![1.0], 2.0).unwrap();
        match p.solve(&opts()) {
            Err(SolveError::Infeasible { residual }) => assert!(residual > 0.0),
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::maximize(vec![1.0, 0.0]);
        p.add_le(vec![0.0, 1.0], 1.0).unwrap();
        assert!(matches!(p.solve(&opts()), Err(SolveError::Unbounded)));
    }

    #[test]
    fn beale_cycling_guard_all_rules() {
        for rule in [PivotRule::Adaptive, PivotRule::Bland, PivotRule::Dantzig] {
            let mut p = Problem::maximize(vec![0.75, -150.0, 0.02, -6.0]);
            p.add_le(vec![0.25, -60.0, -1.0 / 25.0, 9.0], 0.0).unwrap();
            p.add_le(vec![0.5, -90.0, -1.0 / 50.0, 3.0], 0.0).unwrap();
            p.add_le(vec![0.0, 0.0, 1.0, 0.0], 1.0).unwrap();
            let mut o = opts();
            o.pivot_rule = rule;
            let s = p.solve(&o).unwrap();
            assert!((s.objective() - 0.05).abs() < 1e-9, "{rule:?}");
        }
    }

    #[test]
    fn redundant_equality_rows_are_handled() {
        let mut p = Problem::maximize(vec![1.0, 1.0]);
        p.add_eq(vec![1.0, 1.0], 1.0).unwrap();
        p.add_eq(vec![2.0, 2.0], 2.0).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 1.0).abs() < 1e-9);
        assert!(s.basis().is_none());
    }

    #[test]
    fn duals_match_known_shadow_prices() {
        let mut p = Problem::maximize(vec![3.0, 5.0]);
        p.add_le(vec![1.0, 0.0], 4.0).unwrap();
        p.add_le(vec![0.0, 2.0], 12.0).unwrap();
        p.add_le(vec![3.0, 2.0], 18.0).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 36.0).abs() < 1e-9);
        let d = s.duals();
        assert!(d[0].abs() < 1e-9, "dual0 {}", d[0]);
        assert!((d[1] - 1.5).abs() < 1e-9, "dual1 {}", d[1]);
        assert!((d[2] - 1.0).abs() < 1e-9, "dual2 {}", d[2]);
    }

    #[test]
    fn badly_scaled_rows_are_equilibrated() {
        let mut p = Problem::maximize(vec![3.0, 2.0]);
        p.add_le(vec![1e8, 1e8], 4e8).unwrap();
        p.add_le(vec![1e8, 3e8], 6e8).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 12.0).abs() < 1e-6);
        assert!((s.x()[0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_le_becomes_feasible_via_artificials() {
        let mut p = Problem::maximize(vec![1.0, 0.0]);
        p.add_le(vec![1.0, -1.0], -1.0).unwrap();
        p.add_le(vec![0.0, 1.0], 3.0).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 2.0).abs() < 1e-9);
        assert!((s.x()[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rhs_equality() {
        let mut p = Problem::maximize(vec![5.0, 7.0]);
        p.add_eq(vec![1.0, 1.0], 0.0).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!(s.objective().abs() < 1e-9);
    }

    #[test]
    fn eta_refactorization_survives_many_pivots() {
        let n = 120usize;
        let c: Vec<f64> = (0..n)
            .map(|j| 1.0 + (j as f64 * 0.37).sin().abs())
            .collect();
        let mut p = Problem::maximize(c.clone());
        for i in 0..n / 2 {
            let mut row = vec![0.0; n];
            row[2 * i] = 1.0;
            row[2 * i + 1] = 1.0;
            p.add_le(row, 1.0 + i as f64 * 0.01).unwrap();
        }
        let s = p.solve(&opts()).unwrap();
        assert!(p.max_violation(s.x()) < 1e-7);
        let mut want = 0.0;
        for i in 0..n / 2 {
            want += (1.0 + i as f64 * 0.01) * c[2 * i].max(c[2 * i + 1]);
        }
        assert!((s.objective() - want).abs() < 1e-7, "{}", s.objective());
    }

    #[test]
    fn warm_start_skips_phase_one_and_matches_cold_bitwise() {
        let o = opts();
        let make = |rhs: f64| {
            let mut p = Problem::maximize(vec![3.0, 2.0]);
            p.add_le(vec![1.0, 1.0], rhs).unwrap();
            p.add_le(vec![1.0, 3.0], rhs + 2.0).unwrap();
            p.add_eq(vec![1.0, 1.0], rhs).unwrap();
            p
        };
        let first = make(4.0).solve(&o).unwrap();
        let basis = first.basis().expect("exportable basis").clone();
        let p2 = make(5.0);
        let warm = p2.solve_warm(&o, &basis).unwrap();
        let cold = p2.solve(&o).unwrap();
        assert!(warm.used_warm_start());
        assert_eq!(warm.x(), cold.x());
        assert_eq!(warm.objective(), cold.objective());
        assert_eq!(warm.duals(), cold.duals());
        assert!(warm.iterations() <= cold.iterations());
    }

    #[test]
    fn infeasible_warm_basis_falls_back_to_phase_one() {
        let o = opts();
        let mut loose = Problem::maximize(vec![2.0, 1.0]);
        loose.add_le(vec![1.0, 0.0], 10.0).unwrap();
        loose.add_le(vec![0.0, 1.0], 10.0).unwrap();
        loose.add_eq(vec![1.0, 1.0], 12.0).unwrap();
        let basis = loose.solve(&o).unwrap().basis().unwrap().clone();
        let mut tight = Problem::maximize(vec![2.0, 1.0]);
        tight.add_le(vec![1.0, 0.0], 2.0).unwrap();
        tight.add_le(vec![0.0, 1.0], 2.0).unwrap();
        tight.add_eq(vec![1.0, 1.0], 1.0).unwrap();
        let warm = tight.solve_warm(&o, &basis).unwrap();
        let cold = tight.solve(&o).unwrap();
        assert!(!warm.used_warm_start(), "stale basis must fall back");
        assert_eq!(warm.x(), cold.x());
        assert_eq!(warm.objective(), cold.objective());
        assert!((warm.objective() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn workspace_reuse_is_equivalent_to_fresh_solves() {
        let o = opts();
        let mut ws = Workspace::new();
        let shapes: &[(usize, usize)] = &[(3, 2), (8, 5), (2, 1), (6, 9)];
        for &(n, m) in shapes {
            let mut p = Problem::maximize((0..n).map(|j| 1.0 + j as f64).collect());
            for i in 0..m {
                let row: Vec<f64> = (0..n).map(|j| ((i + j) % 3) as f64 + 0.5).collect();
                p.add_le(row, 2.0 + i as f64).unwrap();
            }
            p.add_eq(vec![1.0; n], 1.0).unwrap();
            let fresh = p.solve(&o).unwrap();
            let reused = p.solve_with(&o, &mut ws).unwrap();
            assert_eq!(fresh.x(), reused.x(), "n={n} m={m}");
            assert_eq!(fresh.objective(), reused.objective());
            assert_eq!(fresh.duals(), reused.duals());
        }
    }

    #[test]
    fn no_constraint_rows() {
        let p = Problem::minimize(vec![1.0, 2.0]);
        let s = p.solve(&opts()).unwrap();
        assert!(s.objective().abs() < 1e-12);
        let p = Problem::maximize(vec![1.0]);
        assert!(matches!(p.solve(&opts()), Err(SolveError::Unbounded)));
    }

    /// A block-angular LP in the exact fleet shape: per-block `Σx = 1`
    /// and floor rows, two coupling capacity rows over everything.
    fn block_angular(blocks: usize, width: usize) -> Problem {
        let n = blocks * width;
        let mut c = Vec::with_capacity(n);
        for j in 0..n {
            c.push(0.3 + 0.6 * ((j as f64 * 0.7389).sin() * 0.5 + 0.5));
        }
        let mut p = Problem::maximize(c);
        for k in 0..2usize {
            let row: Vec<f64> = (0..n)
                .map(|j| 0.1 + ((j + 7 * k) as f64 * 0.4243).cos().abs())
                .collect();
            p.add_le(row, 0.4 * blocks as f64 + k as f64 * 0.2).unwrap();
        }
        for f in 0..blocks {
            let mut row = vec![0.0; n];
            for v in &mut row[f * width..(f + 1) * width] {
                *v = 1.0;
            }
            p.add_eq(row, 1.0).unwrap();
        }
        p.set_block_starts((0..blocks).map(|f| f * width).collect())
            .unwrap();
        p
    }

    #[test]
    fn block_angular_matches_revised_backend() {
        for (blocks, width) in [(1usize, 9usize), (4, 9), (16, 5), (24, 9)] {
            let p = block_angular(blocks, width);
            let sparse = p.solve(&opts()).unwrap();
            let revised = p
                .solve(&SolverOptions {
                    backend: Backend::Revised,
                    ..SolverOptions::default()
                })
                .unwrap();
            assert!(
                (sparse.objective() - revised.objective()).abs() < 1e-9,
                "{blocks}x{width}: {} vs {}",
                sparse.objective(),
                revised.objective()
            );
            for (j, (a, b)) in sparse.x().iter().zip(revised.x()).enumerate() {
                assert!((a - b).abs() < 1e-9, "{blocks}x{width} x[{j}]: {a} vs {b}");
            }
            assert!(p.max_violation(sparse.x()) < 1e-7);
        }
    }

    #[test]
    fn block_angular_warm_start_is_bit_identical_to_cold() {
        let p = block_angular(12, 9);
        let o = opts();
        let cold = p.solve(&o).unwrap();
        let basis = cold.basis().expect("exportable").clone();
        let warm = p.solve_warm(&o, &basis).unwrap();
        assert!(warm.used_warm_start());
        assert_eq!(warm.x(), cold.x());
        assert_eq!(warm.objective(), cold.objective());
        assert_eq!(warm.duals(), cold.duals());
    }

    #[test]
    fn tombstoned_block_forces_zero_and_stays_warm_startable() {
        // The fleet's departure pattern: a block's Σx row drops to 0 and
        // its objective is zeroed; the shape (and a cached basis of the
        // shape) survives.
        let mut p = block_angular(6, 5);
        let o = opts();
        let before = p.solve(&o).unwrap();
        let basis = before.basis().expect("exportable").clone();
        let dead = 2usize; // tombstone block 2
        p.set_rhs(2 + dead, 0.0).unwrap(); // its Σx row (after 2 coupling rows)
        p.set_objective_range(dead * 5, &[0.0; 5]).unwrap();
        let warm = p.solve_warm(&o, &basis).unwrap();
        let cold = p.solve(&o).unwrap();
        assert_eq!(warm.x(), cold.x());
        for j in dead * 5..(dead + 1) * 5 {
            assert!(cold.x()[j].abs() <= 1e-12, "zombie var x[{j}] nonzero");
        }
        assert!(p.max_violation(cold.x()) < 1e-7);
    }
}
