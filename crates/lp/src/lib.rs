//! Dense linear-programming solver for deadline-aware multipath scheduling.
//!
//! The DSN 2017 paper ("Deadline-Aware Multipath Communication: An
//! Optimization Problem") solves its packet-to-path-combination assignment
//! with an off-the-shelf LP library (CGAL). The Rust optimization-solver
//! ecosystem is thin, and the paper's problems are *small and dense*
//! (at most a few thousand variables and a dozen rows), so this crate
//! implements a robust two-phase primal simplex with anti-cycling, which
//! finds exact optimal vertices for problems of this size in microseconds
//! to milliseconds.
//!
//! # Problem form
//!
//! Problems are expressed in the paper's "standard form" (Equation 10):
//!
//! ```text
//! maximize   cᵀx
//! subject to A x ≤ b      (inequality rows)
//!            E x = f      (equality rows)
//!            x ≥ 0
//! ```
//!
//! Minimization is supported by negating the objective
//! ([`Problem::minimize`]).
//!
//! # Example
//!
//! Solve `max x0 + 2 x1` subject to `x0 + x1 ≤ 3`, `x1 ≤ 2`, `x ≥ 0`:
//!
//! ```
//! use dmc_lp::{Problem, SolverOptions};
//!
//! # fn main() -> Result<(), dmc_lp::SolveError> {
//! let mut problem = Problem::maximize(vec![1.0, 2.0]);
//! problem.add_le(vec![1.0, 1.0], 3.0)?;
//! problem.add_le(vec![0.0, 1.0], 2.0)?;
//! let solution = problem.solve(&SolverOptions::default())?;
//! assert!((solution.objective() - 5.0).abs() < 1e-9);
//! assert!((solution.x()[0] - 1.0).abs() < 1e-9);
//! assert!((solution.x()[1] - 2.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```
//!
//! # Guarantees
//!
//! * Terminates: Bland's rule is engaged automatically after a run of
//!   degenerate pivots, which guarantees no cycling.
//! * Detects and reports infeasible and unbounded problems as typed errors.
//! * Returns dual values (shadow prices) for every constraint row, enabling
//!   sensitivity analysis on bandwidth/cost bounds (paper §IX-C).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod problem;
mod simplex;
mod solution;

pub use error::{ProblemError, SolveError};
pub use problem::{Constraint, ConstraintKind, Problem};
pub use simplex::{PivotRule, SolverOptions, Workspace};
pub use solution::Solution;
