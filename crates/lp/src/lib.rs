//! Linear-programming solvers for deadline-aware multipath scheduling.
//!
//! The DSN 2017 paper ("Deadline-Aware Multipath Communication: An
//! Optimization Problem") solves its packet-to-path-combination assignment
//! with an off-the-shelf LP library (CGAL). The Rust optimization-solver
//! ecosystem is thin, and the paper's problems have a very particular
//! shape — one variable per path×retransmission combination (`(n+1)^m`,
//! hundreds to thousands) but only a handful of rows (bandwidth, cost,
//! quality, `Σx = 1`) — so this crate implements two exact primal simplex
//! backends tuned for exactly that shape:
//!
//! * [`Backend::Revised`] (the default): revised simplex with a
//!   product-form (eta-file) basis inverse refactorized every ~64 pivots
//!   and **partial candidate-list pricing**. The constraint matrix is
//!   used in place (normalization absorbed into per-row multipliers);
//!   bulk pricing runs as vectorized row passes and per-column accesses
//!   gather `m` strided elements. A pivot costs `O(m²)` plus the columns
//!   actually priced instead of the dense tableau's `O(m·n)` rewrite (see
//!   `BENCH_lp.json`). This is also the only backend that honors **warm
//!   starts**: [`Solution::basis`] exposes the optimal basis and
//!   [`Problem::solve_warm`] re-enters phase 2 from it, which is what
//!   makes λ/δ parameter sweeps and an adaptive sender's periodic
//!   re-solves cheap.
//! * [`Backend::DenseTableau`]: the original two-phase dense-tableau
//!   simplex. Simpler and hard to beat below ~50 variables; kept as the
//!   reference oracle the other backends are differentially tested
//!   against (`tests/proptest_backends.rs`).
//! * [`Backend::Sparse`]: block-structured sparse revised simplex for the
//!   fleet layer's block-angular joint LPs (one assignment block per
//!   admitted flow, coupled only through the shared capacity rows). CSC
//!   columns + per-row nonzero lists, a sparse product-form basis inverse
//!   whose refactorization pivots block-local rows first (elimination
//!   confined to the coupling rows plus the basic columns of active
//!   blocks), sparse eta-file FTRAN/BTRAN, and partial pricing sectioned
//!   along [`Problem::block_starts`]. Same canonicalization and warm-start
//!   contract as the revised backend.
//!
//! Both backends share the anti-cycling scheme (automatic switch to
//! Bland's rule after a run of degenerate pivots) and produce identical
//! objectives, primal points and duals to 1e-9. The revised backend
//! additionally canonicalizes its answer across alternate optima, so its
//! result is a pure function of the problem — warm and cold solves of the
//! same problem report bit-identical vertices.
//!
//! # Problem form
//!
//! Problems are expressed in the paper's "standard form" (Equation 10):
//!
//! ```text
//! maximize   cᵀx
//! subject to A x ≤ b      (inequality rows)
//!            E x = f      (equality rows)
//!            x ≥ 0
//! ```
//!
//! Minimization is supported by negating the objective
//! ([`Problem::minimize`]).
//!
//! # Example
//!
//! Solve `max x0 + 2 x1` subject to `x0 + x1 ≤ 3`, `x1 ≤ 2`, `x ≥ 0`:
//!
//! ```
//! use dmc_lp::{Problem, SolverOptions};
//!
//! # fn main() -> Result<(), dmc_lp::SolveError> {
//! let mut problem = Problem::maximize(vec![1.0, 2.0]);
//! problem.add_le(vec![1.0, 1.0], 3.0)?;
//! problem.add_le(vec![0.0, 1.0], 2.0)?;
//! let solution = problem.solve(&SolverOptions::default())?;
//! assert!((solution.objective() - 5.0).abs() < 1e-9);
//! assert!((solution.x()[0] - 1.0).abs() < 1e-9);
//! assert!((solution.x()[1] - 2.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```
//!
//! # Warm starts
//!
//! Re-solving after a small parameter change (a sweep point, an adaptive
//! sender's refreshed estimates) usually leaves the optimal basis valid
//! or nearly so; restarting phase 2 from it skips most pivots:
//!
//! ```
//! use dmc_lp::{Problem, SolverOptions, Workspace};
//!
//! # fn main() -> Result<(), dmc_lp::SolveError> {
//! let mut ws = Workspace::new();
//! let opts = SolverOptions::default();
//! let mut basis = None;
//! for rhs in [3.0, 3.5, 4.0] {
//!     let mut p = Problem::maximize(vec![1.0, 2.0]);
//!     p.add_le(vec![1.0, 1.0], rhs)?;
//!     let s = match &basis {
//!         Some(b) => p.solve_warm_with(&opts, &mut ws, b)?,
//!         None => p.solve_with(&opts, &mut ws)?,
//!     };
//!     assert!((s.objective() - 2.0 * rhs).abs() < 1e-9);
//!     basis = s.basis().cloned();
//! }
//! # Ok(())
//! # }
//! ```
//!
//! # Guarantees
//!
//! * Terminates: Bland's rule is engaged automatically after a run of
//!   degenerate pivots, which guarantees no cycling.
//! * Detects and reports infeasible and unbounded problems as typed errors.
//! * Returns dual values (shadow prices) for every constraint row, enabling
//!   sensitivity analysis on bandwidth/cost bounds (paper §IX-C).
//! * A stale warm basis can never corrupt a result: it is validated and,
//!   if unusable, the solver falls back to the cold path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod problem;
mod revised;
mod simplex;
mod solution;
mod sparse;

pub use error::{ProblemError, SolveError, SolveStatus};
pub use problem::{Constraint, ConstraintKind, Problem};
pub use simplex::{Backend, PivotRule, SolverOptions, Workspace};
pub use solution::{Basis, BasisVar, Solution};
