//! Problem representation: dense objective plus inequality/equality rows.

use crate::error::{ProblemError, SolveError};
use crate::revised;
use crate::simplex::{self, Backend, SolverOptions, Workspace};
use crate::solution::{Basis, Solution};
use crate::sparse;

/// Whether a [`Constraint`] is `≤` or `=`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintKind {
    /// `coeffs · x ≤ rhs`
    LessEq,
    /// `coeffs · x = rhs`
    Eq,
}

/// A single dense constraint row.
///
/// Alongside the dense coefficient vector the row carries its *support*
/// — the sorted list of nonzero column indices — maintained on every
/// construction and mutation, so the sparse backend can stream rows
/// without re-scanning for zeros per solve.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    pub(crate) coeffs: Vec<f64>,
    pub(crate) rhs: f64,
    pub(crate) kind: ConstraintKind,
    /// Sorted column indices of the nonzero coefficients.
    pub(crate) support: Vec<u32>,
}

impl Constraint {
    fn new(coeffs: Vec<f64>, rhs: f64, kind: ConstraintKind) -> Self {
        let support = compute_support(&coeffs);
        Constraint {
            coeffs,
            rhs,
            kind,
            support,
        }
    }

    /// The row coefficients.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// The right-hand side.
    pub fn rhs(&self) -> f64 {
        self.rhs
    }

    /// Whether the row is an inequality or an equality.
    pub fn kind(&self) -> ConstraintKind {
        self.kind
    }

    /// Sorted column indices of the nonzero coefficients (the row's
    /// sparsity pattern, kept current across incremental mutation).
    pub fn support(&self) -> &[u32] {
        &self.support
    }

    /// Number of nonzero coefficients.
    pub fn nnz(&self) -> usize {
        self.support.len()
    }

    /// Evaluates `coeffs · x - rhs` (positive means violated for `≤` rows).
    pub fn violation(&self, x: &[f64]) -> f64 {
        let lhs: f64 = self.coeffs.iter().zip(x).map(|(a, v)| a * v).sum();
        match self.kind {
            ConstraintKind::LessEq => lhs - self.rhs,
            ConstraintKind::Eq => (lhs - self.rhs).abs(),
        }
    }
}

/// Sorted nonzero column indices of a dense coefficient row.
fn compute_support(coeffs: &[f64]) -> Vec<u32> {
    coeffs
        .iter()
        .enumerate()
        // dmc-lint: allow(float-exact) exact-zero sparsity filter: a stored 0.0 means structurally absent, not approximately small
        .filter(|(_, &v)| v != 0.0)
        .map(|(j, _)| j as u32)
        .collect()
}

/// A dense linear program over non-negative variables.
///
/// See the [crate-level documentation](crate) for the problem form and a
/// worked example.
///
/// # Incremental assembly and block structure
///
/// Callers that maintain one long-lived LP across small shape changes —
/// the fleet layer's joint admission LP grows a per-flow block on every
/// admitted flow — can mutate a `Problem` in place instead of rebuilding
/// it: [`Problem::append_block`] adds variables (zero-extending every
/// existing row), the `add_*_sparse` constructors add rows from nonzero
/// entries, and [`Problem::set_row_range`] / [`Problem::set_rhs`] /
/// [`Problem::set_objective_range`] patch coefficients while keeping each
/// row's sparsity [`Constraint::support`] current. The recorded block
/// boundaries ([`Problem::block_starts`]) tell the sparse backend which
/// columns belong together: rows whose support stays inside one block are
/// *local* rows, rows spanning blocks are *coupling* rows, and the
/// factorization/pricing exploit that split.
#[derive(Debug, Clone, PartialEq)]
pub struct Problem {
    /// Objective coefficients, always stored in *maximization* sense.
    pub(crate) objective: Vec<f64>,
    /// `true` if the user asked for minimization (objective already negated);
    /// reported objective values are negated back.
    pub(crate) minimize: bool,
    pub(crate) constraints: Vec<Constraint>,
    /// Declared block boundaries: start column of each block, strictly
    /// increasing, first entry 0. Empty = no declared structure (one
    /// block).
    pub(crate) block_starts: Vec<usize>,
}

impl Problem {
    /// Creates a maximization problem `max cᵀx` with `c = objective`.
    ///
    /// The number of variables is fixed to `objective.len()`.
    pub fn maximize(objective: Vec<f64>) -> Self {
        Problem {
            objective,
            minimize: false,
            constraints: Vec::new(),
            block_starts: Vec::new(),
        }
    }

    /// Creates a minimization problem `min cᵀx` with `c = objective`.
    pub fn minimize(objective: Vec<f64>) -> Self {
        Problem {
            objective: objective.into_iter().map(|c| -c).collect(),
            minimize: true,
            constraints: Vec::new(),
            block_starts: Vec::new(),
        }
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraint rows (inequalities plus equalities).
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The constraint rows in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The objective in the caller's sense (un-negated for minimization).
    pub fn objective(&self) -> Vec<f64> {
        if self.minimize {
            self.objective.iter().map(|c| -c).collect()
        } else {
            self.objective.clone()
        }
    }

    /// Whether this problem was created with [`Problem::minimize`].
    pub fn is_minimize(&self) -> bool {
        self.minimize
    }

    fn check_row(&self, coeffs: &[f64], rhs: f64) -> Result<(), ProblemError> {
        if self.objective.is_empty() {
            return Err(ProblemError::Empty);
        }
        if coeffs.len() != self.objective.len() {
            return Err(ProblemError::DimensionMismatch {
                expected: self.objective.len(),
                found: coeffs.len(),
            });
        }
        if !rhs.is_finite() || coeffs.iter().any(|c| !c.is_finite()) {
            return Err(ProblemError::NonFiniteCoefficient);
        }
        Ok(())
    }

    /// Adds an inequality `coeffs · x ≤ rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError::DimensionMismatch`] if `coeffs` has the wrong
    /// length and [`ProblemError::NonFiniteCoefficient`] on NaN/∞ input.
    pub fn add_le(&mut self, coeffs: Vec<f64>, rhs: f64) -> Result<&mut Self, ProblemError> {
        self.check_row(&coeffs, rhs)?;
        self.constraints
            .push(Constraint::new(coeffs, rhs, ConstraintKind::LessEq));
        Ok(self)
    }

    /// Adds an inequality `coeffs · x ≥ rhs` (stored as `-coeffs · x ≤ -rhs`).
    ///
    /// # Errors
    ///
    /// Same as [`Problem::add_le`].
    pub fn add_ge(&mut self, coeffs: Vec<f64>, rhs: f64) -> Result<&mut Self, ProblemError> {
        self.check_row(&coeffs, rhs)?;
        self.constraints.push(Constraint::new(
            coeffs.into_iter().map(|c| -c).collect(),
            -rhs,
            ConstraintKind::LessEq,
        ));
        Ok(self)
    }

    /// Adds an equality `coeffs · x = rhs`.
    ///
    /// # Errors
    ///
    /// Same as [`Problem::add_le`].
    pub fn add_eq(&mut self, coeffs: Vec<f64>, rhs: f64) -> Result<&mut Self, ProblemError> {
        self.check_row(&coeffs, rhs)?;
        self.constraints
            .push(Constraint::new(coeffs, rhs, ConstraintKind::Eq));
        Ok(self)
    }

    /// Validates a sparse entry list: sorted strictly increasing column
    /// indices, all in range, all values finite, finite rhs.
    fn check_sparse(&self, entries: &[(usize, f64)], rhs: f64) -> Result<(), ProblemError> {
        if self.objective.is_empty() {
            return Err(ProblemError::Empty);
        }
        let n = self.objective.len();
        let mut last: Option<usize> = None;
        for &(j, v) in entries {
            if j >= n {
                return Err(ProblemError::OutOfRange {
                    what: "sparse entry column",
                    index: j,
                    limit: n,
                });
            }
            if last.is_some_and(|l| j <= l) {
                return Err(ProblemError::UnsortedSparseColumn { column: j });
            }
            if !v.is_finite() {
                return Err(ProblemError::NonFiniteCoefficient);
            }
            last = Some(j);
        }
        if !rhs.is_finite() {
            return Err(ProblemError::NonFiniteCoefficient);
        }
        Ok(())
    }

    /// Expands sorted sparse entries into a dense row (zero-filled).
    fn densify(&self, entries: &[(usize, f64)], negate: bool) -> Vec<f64> {
        let mut coeffs = vec![0.0; self.objective.len()];
        for &(j, v) in entries {
            coeffs[j] = if negate { -v } else { v };
        }
        coeffs
    }

    /// Adds `entries · x ≤ rhs` from sorted sparse `(column, value)`
    /// entries (equivalent to [`Problem::add_le`] on the zero-filled dense
    /// row, without materializing the zeros at the call site).
    ///
    /// # Errors
    ///
    /// [`ProblemError::OutOfRange`] on unsorted/duplicate/out-of-range
    /// columns, [`ProblemError::NonFiniteCoefficient`] on NaN/∞.
    pub fn add_le_sparse(
        &mut self,
        entries: &[(usize, f64)],
        rhs: f64,
    ) -> Result<&mut Self, ProblemError> {
        self.check_sparse(entries, rhs)?;
        let coeffs = self.densify(entries, false);
        self.constraints
            .push(Constraint::new(coeffs, rhs, ConstraintKind::LessEq));
        Ok(self)
    }

    /// Adds `entries · x ≥ rhs` from sorted sparse entries (stored
    /// negated, exactly like [`Problem::add_ge`]).
    ///
    /// # Errors
    ///
    /// Same as [`Problem::add_le_sparse`].
    pub fn add_ge_sparse(
        &mut self,
        entries: &[(usize, f64)],
        rhs: f64,
    ) -> Result<&mut Self, ProblemError> {
        self.check_sparse(entries, rhs)?;
        let coeffs = self.densify(entries, true);
        self.constraints
            .push(Constraint::new(coeffs, -rhs, ConstraintKind::LessEq));
        Ok(self)
    }

    /// Adds `entries · x = rhs` from sorted sparse entries.
    ///
    /// # Errors
    ///
    /// Same as [`Problem::add_le_sparse`].
    pub fn add_eq_sparse(
        &mut self,
        entries: &[(usize, f64)],
        rhs: f64,
    ) -> Result<&mut Self, ProblemError> {
        self.check_sparse(entries, rhs)?;
        let coeffs = self.densify(entries, false);
        self.constraints
            .push(Constraint::new(coeffs, rhs, ConstraintKind::Eq));
        Ok(self)
    }

    /// Appends `objective.len()` new variables as a **new block**:
    /// existing rows are zero-extended, the objective grows by the given
    /// coefficients (maximization sense of the problem as created), and a
    /// block boundary is recorded at the old variable count. Returns the
    /// new columns' index range.
    ///
    /// Incremental callers **tombstone rather than remove** departed
    /// blocks (set the block's `Σx = 1` row to `Σx = 0` via
    /// [`Problem::set_rhs`]) so every surviving column and row keeps its
    /// index; a later arrival of the same shape reclaims the dead
    /// columns in place with [`Problem::set_row_range`] /
    /// [`Problem::set_objective_range`] instead of appending. Only
    /// rollback of the **most recent** block may physically shrink the
    /// problem ([`Problem::truncate_vars`] / [`Problem::truncate_rows`]).
    ///
    /// # Errors
    ///
    /// [`ProblemError::NonFiniteCoefficient`] on NaN/∞ objective entries
    /// (the problem is left unchanged); [`ProblemError::Empty`] on an
    /// empty block.
    pub fn append_block(
        &mut self,
        objective: &[f64],
    ) -> Result<std::ops::Range<usize>, ProblemError> {
        if objective.is_empty() {
            return Err(ProblemError::Empty);
        }
        if objective.iter().any(|c| !c.is_finite()) {
            return Err(ProblemError::NonFiniteCoefficient);
        }
        let start = self.objective.len();
        if self.minimize {
            self.objective.extend(objective.iter().map(|c| -c));
        } else {
            self.objective.extend_from_slice(objective);
        }
        for c in &mut self.constraints {
            c.coeffs.resize(self.objective.len(), 0.0);
        }
        if self.block_starts.is_empty() && start > 0 {
            // Declaring structure on a previously unstructured problem:
            // everything before this block is block 0.
            self.block_starts.push(0);
        }
        if self.block_starts.is_empty() {
            self.block_starts.push(0);
        } else if *self
            .block_starts
            .last()
            .expect("else-branch: block_starts is non-empty")
            != start
        {
            self.block_starts.push(start);
        }
        Ok(start..self.objective.len())
    }

    /// Declared block boundaries (start column per block, first 0);
    /// empty when no structure was declared.
    pub fn block_starts(&self) -> &[usize] {
        &self.block_starts
    }

    /// Declares the block boundaries wholesale: strictly increasing start
    /// columns, first entry 0, all within the variable count. An empty
    /// vector clears the declared structure.
    ///
    /// # Errors
    ///
    /// [`ProblemError::OutOfRange`] when the boundary list is malformed.
    pub fn set_block_starts(&mut self, starts: Vec<usize>) -> Result<&mut Self, ProblemError> {
        let n = self.objective.len();
        for (i, &s) in starts.iter().enumerate() {
            let ok = s < n.max(1) && if i == 0 { s == 0 } else { s > starts[i - 1] };
            if !ok {
                return Err(ProblemError::OutOfRange {
                    what: "block start",
                    index: s,
                    limit: n,
                });
            }
        }
        self.block_starts = starts;
        Ok(self)
    }

    /// Overwrites the stored coefficients of row `row` over the column
    /// range `start..start + vals.len()`, updating the row's support.
    ///
    /// The values are written **as stored**: a row added with
    /// [`Problem::add_ge`] is stored negated, and callers patching such a
    /// row must supply the negated values themselves.
    ///
    /// # Errors
    ///
    /// [`ProblemError::OutOfRange`] / [`ProblemError::NonFiniteCoefficient`]
    /// on bad indices or values (the row is left unchanged).
    pub fn set_row_range(
        &mut self,
        row: usize,
        start: usize,
        vals: &[f64],
    ) -> Result<&mut Self, ProblemError> {
        let m = self.constraints.len();
        if row >= m {
            return Err(ProblemError::OutOfRange {
                what: "row",
                index: row,
                limit: m,
            });
        }
        let n = self.objective.len();
        let end = start + vals.len();
        if end > n {
            return Err(ProblemError::OutOfRange {
                what: "column range end",
                index: end,
                limit: n,
            });
        }
        if vals.iter().any(|v| !v.is_finite()) {
            return Err(ProblemError::NonFiniteCoefficient);
        }
        let c = &mut self.constraints[row];
        c.coeffs[start..end].copy_from_slice(vals);
        // Splice the support: keep entries outside the range, rebuild the
        // inside from the new values.
        let lo = c.support.partition_point(|&j| (j as usize) < start);
        let hi = c.support.partition_point(|&j| (j as usize) < end);
        let fresh = vals
            .iter()
            .enumerate()
            // dmc-lint: allow(float-exact) exact-zero sparsity filter: a stored 0.0 means structurally absent, not approximately small
            .filter(|(_, &v)| v != 0.0)
            .map(|(o, _)| (start + o) as u32);
        c.support.splice(lo..hi, fresh);
        Ok(self)
    }

    /// Overwrites row `row`'s right-hand side **as stored** (a
    /// [`Problem::add_ge`] row stores `-rhs`).
    ///
    /// # Tombstone invariant
    ///
    /// This is the **deactivation** op of the block-incremental idiom:
    /// setting a block's convexity row `Σx = 1` to `Σx = 0` forces every
    /// variable of the block to zero (they are non-negative and must sum
    /// to the rhs — with carry variables the balance rows telescope the
    /// same way), so the block drops out of the optimum **without any
    /// shape change** — no rows or columns move, and the tombstoned
    /// columns can later be reclaimed in place by a same-shape arrival
    /// (see [`Problem::append_block`]).
    ///
    /// Callers that key warm-start basis caches on problem shape must
    /// fold exactly the rhs's **zero-ness** (`rhs == 0.0`), never its
    /// magnitude, into the key: retuning a capacity row's rhs keeps the
    /// cached basis reusable, while tombstoning/reviving a block flips
    /// the tag and correctly maps to a different cached basis. This is
    /// what `dmc-fleet`'s joint assemblies do.
    ///
    /// # Errors
    ///
    /// [`ProblemError::OutOfRange`] / [`ProblemError::NonFiniteCoefficient`].
    pub fn set_rhs(&mut self, row: usize, rhs: f64) -> Result<&mut Self, ProblemError> {
        let m = self.constraints.len();
        if row >= m {
            return Err(ProblemError::OutOfRange {
                what: "row",
                index: row,
                limit: m,
            });
        }
        if !rhs.is_finite() {
            return Err(ProblemError::NonFiniteCoefficient);
        }
        self.constraints[row].rhs = rhs;
        Ok(self)
    }

    /// Overwrites objective coefficients over `start..start + vals.len()`
    /// in the **caller's sense** (minimization problems negate
    /// internally, matching [`Problem::minimize`]).
    ///
    /// # Errors
    ///
    /// [`ProblemError::OutOfRange`] / [`ProblemError::NonFiniteCoefficient`].
    pub fn set_objective_range(
        &mut self,
        start: usize,
        vals: &[f64],
    ) -> Result<&mut Self, ProblemError> {
        let n = self.objective.len();
        let end = start + vals.len();
        if end > n {
            return Err(ProblemError::OutOfRange {
                what: "objective range end",
                index: end,
                limit: n,
            });
        }
        if vals.iter().any(|v| !v.is_finite()) {
            return Err(ProblemError::NonFiniteCoefficient);
        }
        if self.minimize {
            for (slot, &v) in self.objective[start..end].iter_mut().zip(vals) {
                *slot = -v;
            }
        } else {
            self.objective[start..end].copy_from_slice(vals);
        }
        Ok(self)
    }

    /// Drops every variable with index ≥ `n` (undoing
    /// [`Problem::append_block`]s): truncates the objective, every row's
    /// coefficients and support, and the block boundaries. No-op when `n`
    /// is not smaller than the current variable count.
    pub fn truncate_vars(&mut self, n: usize) {
        if n >= self.objective.len() {
            return;
        }
        self.objective.truncate(n);
        for c in &mut self.constraints {
            c.coeffs.truncate(n);
            let keep = c.support.partition_point(|&j| (j as usize) < n);
            c.support.truncate(keep);
        }
        let keep = self.block_starts.partition_point(|&s| s < n.max(1));
        self.block_starts.truncate(keep);
    }

    /// Drops every constraint row with index ≥ `m` (undoing appended
    /// rows). No-op when `m` is not smaller than the current row count.
    ///
    /// With [`Problem::set_rhs`] this is the **horizon-advance** pair of
    /// the time-expanded idiom: ring-indexed shared rows are *recycled*
    /// (`set_rhs` retunes or zeroes them in place, so surviving rows
    /// never move), while per-block rows past a rollback point are
    /// physically truncated. Truncating rows that an active block still
    /// references leaves the problem well-formed but semantically
    /// unconstrained — callers own that invariant.
    pub fn truncate_rows(&mut self, m: usize) {
        self.constraints.truncate(m);
    }

    /// Solves the problem with the two-phase simplex method.
    ///
    /// # Errors
    ///
    /// * [`SolveError::Infeasible`] if no point satisfies the constraints.
    /// * [`SolveError::Unbounded`] if the objective can grow without bound.
    /// * [`SolveError::IterationLimit`] on hostile numerics (see
    ///   [`SolverOptions::max_iterations`]).
    pub fn solve(&self, options: &SolverOptions) -> Result<Solution, SolveError> {
        self.solve_with(options, &mut Workspace::new())
    }

    /// Solves the problem reusing the caller's [`Workspace`] buffers.
    ///
    /// Identical result to [`Problem::solve`]; repeated solves through one
    /// workspace skip the per-call tableau allocation, which is what makes
    /// parameter sweeps and adaptive re-solves cheap (see the
    /// `planner_reuse` benchmark).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Problem::solve`]. The workspace stays valid
    /// and reusable after an error.
    pub fn solve_with(
        &self,
        options: &SolverOptions,
        workspace: &mut Workspace,
    ) -> Result<Solution, SolveError> {
        self.dispatch(options, workspace, None)
    }

    /// Solves the problem warm-started from a prior optimal [`Basis`]
    /// (obtained via [`Solution::basis`] on a related problem — same
    /// variable and row counts, typically a parameter sweep or an
    /// adaptive re-solve where only objective/RHS coefficients moved).
    ///
    /// When the basis is still primal feasible the solver skips phase 1
    /// and re-enters phase 2 directly
    /// ([`Solution::used_warm_start`] reports `true`); a stale basis —
    /// wrong shape, singular, or infeasible under the new RHS — silently
    /// falls back to the cold two-phase path, so `solve_warm` never
    /// returns a worse outcome than [`Problem::solve`].
    ///
    /// Only [`Backend::Revised`] honors the hint; the dense oracle
    /// ignores it and solves cold.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Problem::solve`].
    pub fn solve_warm(
        &self,
        options: &SolverOptions,
        basis: &Basis,
    ) -> Result<Solution, SolveError> {
        self.solve_warm_with(options, &mut Workspace::new(), basis)
    }

    /// [`Problem::solve_warm`] reusing the caller's [`Workspace`] buffers.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Problem::solve`].
    pub fn solve_warm_with(
        &self,
        options: &SolverOptions,
        workspace: &mut Workspace,
        basis: &Basis,
    ) -> Result<Solution, SolveError> {
        self.dispatch(options, workspace, Some(basis))
    }

    /// Validates and routes to the configured [`Backend`].
    fn dispatch(
        &self,
        options: &SolverOptions,
        workspace: &mut Workspace,
        warm: Option<&Basis>,
    ) -> Result<Solution, SolveError> {
        if self.objective.is_empty() {
            return Err(ProblemError::Empty.into());
        }
        if self.objective.iter().any(|c| !c.is_finite()) {
            return Err(ProblemError::NonFiniteCoefficient.into());
        }
        let obs = &options.obs;
        // The span closes after the pivot-count advance below, so its
        // tick extent equals this solve's pivots.
        let span = obs.span(match options.backend {
            Backend::DenseTableau => "lp.solve.dense",
            Backend::Revised => "lp.solve.revised",
            Backend::Sparse => "lp.solve.sparse",
        });
        let result = match options.backend {
            Backend::DenseTableau => simplex::solve(self, options, workspace),
            Backend::Revised => revised::solve(self, options, workspace, warm),
            Backend::Sparse => sparse::solve(self, options, workspace, warm),
        };
        if obs.is_enabled() {
            obs.counter("lp.solves").inc();
            if warm.is_some() {
                obs.counter("lp.warm_attempts").inc();
            }
            match &result {
                Ok(s) => {
                    let pivots = s.iterations() as u64;
                    obs.counter("lp.pivots").add(pivots);
                    obs.advance(pivots);
                    if s.used_warm_start() {
                        obs.counter("lp.warm_used").inc();
                    }
                }
                Err(_) => obs.counter("lp.errors").inc(),
            }
            let stats = match options.backend {
                Backend::DenseTableau => None,
                Backend::Revised => Some(&workspace.revised.stats),
                Backend::Sparse => Some(&workspace.sparse.stats),
            };
            if let Some(stats) = stats {
                obs.counter("lp.refactorizations")
                    .add(stats.refactorizations);
                if stats.phase1_early_exit {
                    obs.counter("lp.phase1_early_exits").inc();
                }
                let eta_len = obs.histogram("lp.eta_len");
                for &len in &stats.eta_lengths {
                    eta_len.record(len);
                }
            }
        }
        drop(span);
        result
    }

    /// Checks a candidate point against every constraint and the
    /// non-negativity bounds.
    ///
    /// Returns the largest violation (`≤ tol` means feasible within `tol`).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mut worst = 0.0f64;
        for c in &self.constraints {
            worst = worst.max(c.violation(x));
        }
        for &v in x {
            worst = worst.max(-v);
        }
        worst
    }

    /// Evaluates the objective at `x` in the caller's sense.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        let v: f64 = self.objective.iter().zip(x).map(|(c, v)| c * v).sum();
        if self.minimize {
            -v
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mut p = Problem::maximize(vec![1.0, 1.0]);
        let err = p.add_le(vec![1.0], 1.0).unwrap_err();
        assert_eq!(
            err,
            ProblemError::DimensionMismatch {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn non_finite_is_rejected() {
        let mut p = Problem::maximize(vec![1.0]);
        assert_eq!(
            p.add_le(vec![f64::NAN], 1.0).unwrap_err(),
            ProblemError::NonFiniteCoefficient
        );
        assert_eq!(
            p.add_le(vec![1.0], f64::INFINITY).unwrap_err(),
            ProblemError::NonFiniteCoefficient
        );
    }

    #[test]
    fn ge_is_stored_negated() {
        let mut p = Problem::maximize(vec![1.0]);
        p.add_ge(vec![2.0], 4.0).unwrap();
        let c = &p.constraints()[0];
        assert_eq!(c.coeffs(), &[-2.0]);
        assert_eq!(c.rhs(), -4.0);
        assert_eq!(c.kind(), ConstraintKind::LessEq);
    }

    #[test]
    fn minimize_reports_original_sense() {
        let p = Problem::minimize(vec![3.0, -1.0]);
        assert_eq!(p.objective(), vec![3.0, -1.0]);
        assert!((p.objective_value(&[2.0, 1.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_rows_match_their_dense_equivalents() {
        let mut dense = Problem::maximize(vec![1.0; 4]);
        dense.add_le(vec![0.0, 2.0, 0.0, 3.0], 5.0).unwrap();
        dense.add_ge(vec![1.0, 0.0, 0.0, 0.0], 2.0).unwrap();
        dense.add_eq(vec![0.0, 0.0, 4.0, 0.0], 1.0).unwrap();
        let mut sparse = Problem::maximize(vec![1.0; 4]);
        sparse.add_le_sparse(&[(1, 2.0), (3, 3.0)], 5.0).unwrap();
        sparse.add_ge_sparse(&[(0, 1.0)], 2.0).unwrap();
        sparse.add_eq_sparse(&[(2, 4.0)], 1.0).unwrap();
        assert_eq!(dense, sparse);
        assert_eq!(sparse.constraints()[0].support(), &[1, 3]);
        assert_eq!(sparse.constraints()[0].nnz(), 2);
    }

    #[test]
    fn sparse_entry_validation() {
        let mut p = Problem::maximize(vec![1.0; 3]);
        // Duplicate / backwards columns get the dedicated error.
        assert_eq!(
            p.add_le_sparse(&[(1, 1.0), (1, 2.0)], 1.0).unwrap_err(),
            ProblemError::UnsortedSparseColumn { column: 1 }
        );
        assert_eq!(
            p.add_le_sparse(&[(2, 1.0), (0, 2.0)], 1.0).unwrap_err(),
            ProblemError::UnsortedSparseColumn { column: 0 }
        );
        assert!(matches!(
            p.add_le_sparse(&[(3, 1.0)], 1.0).unwrap_err(),
            ProblemError::OutOfRange { index: 3, .. }
        ));
        assert_eq!(
            p.add_le_sparse(&[(0, f64::NAN)], 1.0).unwrap_err(),
            ProblemError::NonFiniteCoefficient
        );
        assert_eq!(p.num_constraints(), 0, "failed adds leave no rows");
    }

    #[test]
    fn horizon_advance_tombstones_recycles_and_rolls_back() {
        // The time-expanded idiom from the mutator docs, end to end on a
        // 2-slot × 1-path horizon: capacity rows first (ring-indexed, row
        // s = slot s), then per-flow [serve, blackhole] blocks with a
        // Σx = 1 convexity row each.
        let opts = SolverOptions::default();
        let mut p = Problem::maximize(vec![]);
        let a = p.append_block(&[1.0, 0.0]).unwrap();
        p.add_le_sparse(&[(a.start, 1.0)], 0.8).unwrap(); // slot 0 capacity (ring 0); A serves in it
        p.add_le_sparse(&[], 0.8).unwrap(); // slot 1 capacity (ring 1)
        p.add_eq_sparse(&[(a.start, 1.0), (a.start + 1, 1.0)], 1.0)
            .unwrap();
        let b = p.append_block(&[0.6, 0.0]).unwrap();
        p.set_row_range(1, b.start, &[1.0]).unwrap(); // B serves in slot 1
        p.add_eq_sparse(&[(b.start, 1.0), (b.start + 1, 1.0)], 1.0)
            .unwrap();
        let full = p.solve(&opts).unwrap();
        assert!((full.objective() - (0.8 + 0.6 * 0.8)).abs() < 1e-9);

        // Advance: slot 0 expired. Tombstone A (Σx = 1 → 0) and recycle
        // its ring row in place as the incoming slot 2 — here a
        // zero-capacity maintenance slot. No rows or columns move.
        p.set_rhs(2, 0.0).unwrap(); // A's convexity row
        p.set_rhs(0, 0.0).unwrap(); // ring 0 is now slot 2
        p.set_row_range(0, a.start, &[0.0]).unwrap(); // A leaves the ring row
        let advanced = p.solve(&opts).unwrap();
        // The tombstone pins the whole dead block at zero ...
        let x = advanced.x();
        assert!(x[a.start].abs() < 1e-12 && x[a.start + 1].abs() < 1e-12);
        // ... and the optimum equals a fresh build of the truncated
        // horizon (flow B alone on slots 1–2).
        let mut fresh = Problem::maximize(vec![]);
        let fb = fresh.append_block(&[0.6, 0.0]).unwrap();
        fresh.add_le_sparse(&[], 0.0).unwrap();
        fresh.add_le_sparse(&[(fb.start, 1.0)], 0.8).unwrap();
        fresh
            .add_eq_sparse(&[(fb.start, 1.0), (fb.start + 1, 1.0)], 1.0)
            .unwrap();
        let rebuilt = fresh.solve(&opts).unwrap();
        assert!((advanced.objective() - rebuilt.objective()).abs() < 1e-9);

        // Rolling back the newest block really shrinks the problem back
        // to its pre-arrival state (truncate_rows then truncate_vars).
        let before = p.clone();
        let c = p.append_block(&[0.9, 0.0]).unwrap();
        p.set_row_range(1, c.start, &[1.0]).unwrap();
        p.add_eq_sparse(&[(c.start, 1.0), (c.start + 1, 1.0)], 1.0)
            .unwrap();
        p.truncate_rows(4);
        p.set_row_range(1, c.start, &[0.0]).unwrap();
        p.truncate_vars(c.start);
        assert_eq!(p, before);
    }

    #[test]
    fn violation_measures_both_kinds() {
        let mut p = Problem::maximize(vec![1.0, 1.0]);
        p.add_le(vec![1.0, 1.0], 1.0).unwrap();
        p.add_eq(vec![1.0, -1.0], 0.0).unwrap();
        // x = (1, 0): row0 lhs = 1 (ok), row1 |1 - 0| = 1 violated.
        assert!((p.max_violation(&[1.0, 0.0]) - 1.0).abs() < 1e-12);
        // x = (0.5, 0.5): both satisfied.
        assert!(p.max_violation(&[0.5, 0.5]) < 1e-12);
        // negative coordinate violates x >= 0
        assert!((p.max_violation(&[-0.25, 0.25]) - 0.5).abs() < 1e-12);
    }
}
