//! Problem representation: dense objective plus inequality/equality rows.

use crate::error::{ProblemError, SolveError};
use crate::revised;
use crate::simplex::{self, Backend, SolverOptions, Workspace};
use crate::solution::{Basis, Solution};

/// Whether a [`Constraint`] is `≤` or `=`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintKind {
    /// `coeffs · x ≤ rhs`
    LessEq,
    /// `coeffs · x = rhs`
    Eq,
}

/// A single dense constraint row.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    pub(crate) coeffs: Vec<f64>,
    pub(crate) rhs: f64,
    pub(crate) kind: ConstraintKind,
}

impl Constraint {
    /// The row coefficients.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// The right-hand side.
    pub fn rhs(&self) -> f64 {
        self.rhs
    }

    /// Whether the row is an inequality or an equality.
    pub fn kind(&self) -> ConstraintKind {
        self.kind
    }

    /// Evaluates `coeffs · x - rhs` (positive means violated for `≤` rows).
    pub fn violation(&self, x: &[f64]) -> f64 {
        let lhs: f64 = self.coeffs.iter().zip(x).map(|(a, v)| a * v).sum();
        match self.kind {
            ConstraintKind::LessEq => lhs - self.rhs,
            ConstraintKind::Eq => (lhs - self.rhs).abs(),
        }
    }
}

/// A dense linear program over non-negative variables.
///
/// See the [crate-level documentation](crate) for the problem form and a
/// worked example.
#[derive(Debug, Clone, PartialEq)]
pub struct Problem {
    /// Objective coefficients, always stored in *maximization* sense.
    pub(crate) objective: Vec<f64>,
    /// `true` if the user asked for minimization (objective already negated);
    /// reported objective values are negated back.
    pub(crate) minimize: bool,
    pub(crate) constraints: Vec<Constraint>,
}

impl Problem {
    /// Creates a maximization problem `max cᵀx` with `c = objective`.
    ///
    /// The number of variables is fixed to `objective.len()`.
    pub fn maximize(objective: Vec<f64>) -> Self {
        Problem {
            objective,
            minimize: false,
            constraints: Vec::new(),
        }
    }

    /// Creates a minimization problem `min cᵀx` with `c = objective`.
    pub fn minimize(objective: Vec<f64>) -> Self {
        Problem {
            objective: objective.into_iter().map(|c| -c).collect(),
            minimize: true,
            constraints: Vec::new(),
        }
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraint rows (inequalities plus equalities).
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The constraint rows in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The objective in the caller's sense (un-negated for minimization).
    pub fn objective(&self) -> Vec<f64> {
        if self.minimize {
            self.objective.iter().map(|c| -c).collect()
        } else {
            self.objective.clone()
        }
    }

    /// Whether this problem was created with [`Problem::minimize`].
    pub fn is_minimize(&self) -> bool {
        self.minimize
    }

    fn check_row(&self, coeffs: &[f64], rhs: f64) -> Result<(), ProblemError> {
        if self.objective.is_empty() {
            return Err(ProblemError::Empty);
        }
        if coeffs.len() != self.objective.len() {
            return Err(ProblemError::DimensionMismatch {
                expected: self.objective.len(),
                found: coeffs.len(),
            });
        }
        if !rhs.is_finite() || coeffs.iter().any(|c| !c.is_finite()) {
            return Err(ProblemError::NonFiniteCoefficient);
        }
        Ok(())
    }

    /// Adds an inequality `coeffs · x ≤ rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError::DimensionMismatch`] if `coeffs` has the wrong
    /// length and [`ProblemError::NonFiniteCoefficient`] on NaN/∞ input.
    pub fn add_le(&mut self, coeffs: Vec<f64>, rhs: f64) -> Result<&mut Self, ProblemError> {
        self.check_row(&coeffs, rhs)?;
        self.constraints.push(Constraint {
            coeffs,
            rhs,
            kind: ConstraintKind::LessEq,
        });
        Ok(self)
    }

    /// Adds an inequality `coeffs · x ≥ rhs` (stored as `-coeffs · x ≤ -rhs`).
    ///
    /// # Errors
    ///
    /// Same as [`Problem::add_le`].
    pub fn add_ge(&mut self, coeffs: Vec<f64>, rhs: f64) -> Result<&mut Self, ProblemError> {
        self.check_row(&coeffs, rhs)?;
        self.constraints.push(Constraint {
            coeffs: coeffs.into_iter().map(|c| -c).collect(),
            rhs: -rhs,
            kind: ConstraintKind::LessEq,
        });
        Ok(self)
    }

    /// Adds an equality `coeffs · x = rhs`.
    ///
    /// # Errors
    ///
    /// Same as [`Problem::add_le`].
    pub fn add_eq(&mut self, coeffs: Vec<f64>, rhs: f64) -> Result<&mut Self, ProblemError> {
        self.check_row(&coeffs, rhs)?;
        self.constraints.push(Constraint {
            coeffs,
            rhs,
            kind: ConstraintKind::Eq,
        });
        Ok(self)
    }

    /// Solves the problem with the two-phase simplex method.
    ///
    /// # Errors
    ///
    /// * [`SolveError::Infeasible`] if no point satisfies the constraints.
    /// * [`SolveError::Unbounded`] if the objective can grow without bound.
    /// * [`SolveError::IterationLimit`] on hostile numerics (see
    ///   [`SolverOptions::max_iterations`]).
    pub fn solve(&self, options: &SolverOptions) -> Result<Solution, SolveError> {
        self.solve_with(options, &mut Workspace::new())
    }

    /// Solves the problem reusing the caller's [`Workspace`] buffers.
    ///
    /// Identical result to [`Problem::solve`]; repeated solves through one
    /// workspace skip the per-call tableau allocation, which is what makes
    /// parameter sweeps and adaptive re-solves cheap (see the
    /// `planner_reuse` benchmark).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Problem::solve`]. The workspace stays valid
    /// and reusable after an error.
    pub fn solve_with(
        &self,
        options: &SolverOptions,
        workspace: &mut Workspace,
    ) -> Result<Solution, SolveError> {
        self.dispatch(options, workspace, None)
    }

    /// Solves the problem warm-started from a prior optimal [`Basis`]
    /// (obtained via [`Solution::basis`] on a related problem — same
    /// variable and row counts, typically a parameter sweep or an
    /// adaptive re-solve where only objective/RHS coefficients moved).
    ///
    /// When the basis is still primal feasible the solver skips phase 1
    /// and re-enters phase 2 directly
    /// ([`Solution::used_warm_start`] reports `true`); a stale basis —
    /// wrong shape, singular, or infeasible under the new RHS — silently
    /// falls back to the cold two-phase path, so `solve_warm` never
    /// returns a worse outcome than [`Problem::solve`].
    ///
    /// Only [`Backend::Revised`] honors the hint; the dense oracle
    /// ignores it and solves cold.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Problem::solve`].
    pub fn solve_warm(
        &self,
        options: &SolverOptions,
        basis: &Basis,
    ) -> Result<Solution, SolveError> {
        self.solve_warm_with(options, &mut Workspace::new(), basis)
    }

    /// [`Problem::solve_warm`] reusing the caller's [`Workspace`] buffers.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Problem::solve`].
    pub fn solve_warm_with(
        &self,
        options: &SolverOptions,
        workspace: &mut Workspace,
        basis: &Basis,
    ) -> Result<Solution, SolveError> {
        self.dispatch(options, workspace, Some(basis))
    }

    /// Validates and routes to the configured [`Backend`].
    fn dispatch(
        &self,
        options: &SolverOptions,
        workspace: &mut Workspace,
        warm: Option<&Basis>,
    ) -> Result<Solution, SolveError> {
        if self.objective.is_empty() {
            return Err(ProblemError::Empty.into());
        }
        if self.objective.iter().any(|c| !c.is_finite()) {
            return Err(ProblemError::NonFiniteCoefficient.into());
        }
        match options.backend {
            Backend::DenseTableau => simplex::solve(self, options, workspace),
            Backend::Revised => revised::solve(self, options, workspace, warm),
        }
    }

    /// Checks a candidate point against every constraint and the
    /// non-negativity bounds.
    ///
    /// Returns the largest violation (`≤ tol` means feasible within `tol`).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mut worst = 0.0f64;
        for c in &self.constraints {
            worst = worst.max(c.violation(x));
        }
        for &v in x {
            worst = worst.max(-v);
        }
        worst
    }

    /// Evaluates the objective at `x` in the caller's sense.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        let v: f64 = self.objective.iter().zip(x).map(|(c, v)| c * v).sum();
        if self.minimize {
            -v
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mut p = Problem::maximize(vec![1.0, 1.0]);
        let err = p.add_le(vec![1.0], 1.0).unwrap_err();
        assert_eq!(
            err,
            ProblemError::DimensionMismatch {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn non_finite_is_rejected() {
        let mut p = Problem::maximize(vec![1.0]);
        assert_eq!(
            p.add_le(vec![f64::NAN], 1.0).unwrap_err(),
            ProblemError::NonFiniteCoefficient
        );
        assert_eq!(
            p.add_le(vec![1.0], f64::INFINITY).unwrap_err(),
            ProblemError::NonFiniteCoefficient
        );
    }

    #[test]
    fn ge_is_stored_negated() {
        let mut p = Problem::maximize(vec![1.0]);
        p.add_ge(vec![2.0], 4.0).unwrap();
        let c = &p.constraints()[0];
        assert_eq!(c.coeffs(), &[-2.0]);
        assert_eq!(c.rhs(), -4.0);
        assert_eq!(c.kind(), ConstraintKind::LessEq);
    }

    #[test]
    fn minimize_reports_original_sense() {
        let p = Problem::minimize(vec![3.0, -1.0]);
        assert_eq!(p.objective(), vec![3.0, -1.0]);
        assert!((p.objective_value(&[2.0, 1.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn violation_measures_both_kinds() {
        let mut p = Problem::maximize(vec![1.0, 1.0]);
        p.add_le(vec![1.0, 1.0], 1.0).unwrap();
        p.add_eq(vec![1.0, -1.0], 0.0).unwrap();
        // x = (1, 0): row0 lhs = 1 (ok), row1 |1 - 0| = 1 violated.
        assert!((p.max_violation(&[1.0, 0.0]) - 1.0).abs() < 1e-12);
        // x = (0.5, 0.5): both satisfied.
        assert!(p.max_violation(&[0.5, 0.5]) < 1e-12);
        // negative coordinate violates x >= 0
        assert!((p.max_violation(&[-0.25, 0.25]) - 0.5).abs() < 1e-12);
    }
}
