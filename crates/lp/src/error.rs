//! Error types for problem construction and solving.

use std::error::Error;
use std::fmt;

/// Error raised while *constructing* a [`crate::Problem`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProblemError {
    /// A constraint row has a different number of coefficients than the
    /// problem has variables.
    DimensionMismatch {
        /// Number of variables declared by the objective.
        expected: usize,
        /// Number of coefficients supplied in the offending row.
        found: usize,
    },
    /// A coefficient or bound is NaN or infinite.
    NonFiniteCoefficient,
    /// The problem has zero variables.
    Empty,
    /// A row/column index passed to an incremental mutator (or a block
    /// boundary) is out of range or out of order.
    OutOfRange {
        /// What the offending index refers to.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive upper bound it had to stay below.
        limit: usize,
    },
    /// A sparse entry list is not strictly increasing in column index
    /// (a duplicate or out-of-order column).
    UnsortedSparseColumn {
        /// The column that repeats or goes backwards.
        column: usize,
    },
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::DimensionMismatch { expected, found } => write!(
                f,
                "constraint has {found} coefficients but the problem has {expected} variables"
            ),
            ProblemError::NonFiniteCoefficient => {
                write!(f, "coefficient or bound is NaN or infinite")
            }
            ProblemError::Empty => write!(f, "problem has no variables"),
            ProblemError::OutOfRange { what, index, limit } => {
                write!(f, "{what} index {index} out of range (limit {limit})")
            }
            ProblemError::UnsortedSparseColumn { column } => {
                write!(
                    f,
                    "sparse entries must have strictly increasing column indices \
                     (column {column} repeats or goes backwards)"
                )
            }
        }
    }
}

impl Error for ProblemError {}

/// Error raised while *solving* a [`crate::Problem`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolveError {
    /// The constraint set admits no feasible point.
    ///
    /// Carries the residual infeasibility (phase-1 objective) for
    /// diagnostics.
    Infeasible {
        /// Sum of artificial variables at the phase-1 optimum; how far the
        /// closest point is from satisfying all constraints.
        residual: f64,
    },
    /// The objective is unbounded above on the feasible region.
    Unbounded,
    /// The pivot-iteration limit was exceeded (should not happen with the
    /// default anti-cycling configuration; indicates numerically hostile
    /// input).
    IterationLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// The basis matrix became numerically singular (a factorization
    /// failed); indicates numerically hostile input. Only the revised
    /// backend reports this.
    Singular,
    /// The problem itself is malformed.
    Problem(ProblemError),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible { residual } => {
                write!(f, "problem is infeasible (residual {residual:.3e})")
            }
            SolveError::Unbounded => write!(f, "objective is unbounded"),
            SolveError::IterationLimit { limit } => {
                write!(f, "simplex exceeded {limit} pivot iterations")
            }
            SolveError::Singular => {
                write!(f, "basis matrix is numerically singular")
            }
            SolveError::Problem(e) => write!(f, "malformed problem: {e}"),
        }
    }
}

impl Error for SolveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SolveError::Problem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProblemError> for SolveError {
    fn from(e: ProblemError) -> Self {
        SolveError::Problem(e)
    }
}

/// Coarse classification of a solve outcome, for callers (fault-injection
/// harnesses, fleet degradation logic) that must branch on *what kind* of
/// abort happened — in particular distinguishing an iteration-cap abort
/// (retryable: drop the warm basis and re-solve cold) from a genuine
/// infeasibility (not retryable: the constraint set itself must change).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveStatus {
    /// An optimal solution was found.
    Optimal,
    /// The constraint set admits no feasible point.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
    /// The pivot-iteration cap was hit before optimality; a numerical
    /// anomaly, not a statement about the problem. Retry cold.
    IterationLimit,
    /// A basis factorization failed; a numerical anomaly. Retry cold.
    Singular,
    /// The problem itself is malformed.
    Malformed,
}

impl SolveStatus {
    /// Classifies the result of a solve call.
    pub fn of(result: &Result<crate::Solution, SolveError>) -> SolveStatus {
        match result {
            Ok(_) => SolveStatus::Optimal,
            Err(e) => SolveStatus::of_error(e),
        }
    }

    /// Classifies a [`SolveError`].
    pub fn of_error(error: &SolveError) -> SolveStatus {
        match error {
            SolveError::Infeasible { .. } => SolveStatus::Infeasible,
            SolveError::Unbounded => SolveStatus::Unbounded,
            SolveError::IterationLimit { .. } => SolveStatus::IterationLimit,
            SolveError::Singular => SolveStatus::Singular,
            SolveError::Problem(_) => SolveStatus::Malformed,
        }
    }

    /// Whether the outcome is a numerical anomaly (stale/singular basis or
    /// iteration cap) rather than a verdict about the problem — the cases
    /// where dropping the warm basis and re-solving cold can succeed.
    pub fn is_anomaly(self) -> bool {
        matches!(self, SolveStatus::IterationLimit | SolveStatus::Singular)
    }
}

impl fmt::Display for SolveStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SolveStatus::Optimal => "optimal",
            SolveStatus::Infeasible => "infeasible",
            SolveStatus::Unbounded => "unbounded",
            SolveStatus::IterationLimit => "iteration-limit",
            SolveStatus::Singular => "singular",
            SolveStatus::Malformed => "malformed",
        };
        f.write_str(s)
    }
}
