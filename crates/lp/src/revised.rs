//! Revised simplex with partial pricing and warm starts.
//!
//! The paper's LPs (Eq. 10/12, 20–23, 28/34) have one variable per
//! path×retransmission combination but only a handful of rows (bandwidth,
//! cost, quality, Σx = 1) — few rows, many columns. A dense tableau pivot
//! rewrites all `n` columns (`O(m·n)`); the revised method instead keeps
//! the constraint matrix fixed and maintains only a representation of
//! `B⁻¹`:
//!
//! * **The matrix is used in place.** Row equilibration and sign flips
//!   are absorbed into per-row multipliers (`row_factor`), so no
//!   normalized copy is ever materialized: bulk pricing streams the
//!   problem's own row-major coefficient rows (`m` vectorized axpy
//!   passes per scan), while the occasional per-column access — the
//!   entering column's FTRAN, basis factorization — gathers `m` strided
//!   elements. With `m` at most a dozen this beats both a dense tableau
//!   and index-chasing sparse storage.
//! * **Eta file / product form**: each pivot appends one eta vector
//!   (`B_k⁻¹ = E_k · … · E_1 · B_0⁻¹`); `B_0⁻¹` is a dense LU
//!   factorization of the basis matrix, rebuilt after
//!   [`REFACTOR_INTERVAL`] etas for numerical stability (and the eta file
//!   reset).
//! * **Partial pricing with a candidate list**: a pricing pass scans the
//!   columns section by section from a rotating cursor and banks every
//!   improving column it sees; subsequent iterations re-price only the
//!   banked candidates until the bank runs dry, so most iterations touch
//!   a few dozen columns instead of all `n`. Optimality still requires a
//!   clean full wrap. [`PivotRule::Dantzig`] forces full pricing and
//!   [`PivotRule::Bland`] first-index pricing; the default
//!   [`PivotRule::Adaptive`] uses the candidate list with the usual Bland
//!   fallback after a run of degenerate pivots.
//! * **Warm starts**: [`Problem::solve_warm`](crate::Problem::solve_warm)
//!   re-enters phase 2 directly from a caller-provided [`Basis`] when that
//!   basis is still primal feasible (a λ/δ sweep or an adaptive re-solve
//!   moves only objective/RHS coefficients); an infeasible or singular
//!   warm basis silently falls back to the cold two-phase path.
//!
//! # Determinism and the canonical vertex
//!
//! Many of the paper's LPs have *alternate optima* (whole faces of equally
//! good vertices). A warm-started solve would naturally stop at whichever
//! optimal vertex is closest to its starting basis, making results depend
//! on solve history. To keep the solver a pure function of the problem,
//! phase 2 is followed by a cheap canonicalization phase: among the
//! zero-reduced-cost columns (moves that stay on the optimal face), it
//! maximizes a secondary objective that prefers **the vertex using the
//! least capacity** (weights decreasing in column mass, with a tiny
//! deterministic jitter for strictness), walking every optimal start to
//! the same canonical vertex. Preferring light columns is not only
//! deterministic but operationally sensible: of two equally good
//! assignments, the one sending less traffic builds smaller queues. The
//! final solution is then extracted from a fresh factorization of the
//! final basis, so identical bases yield bit-identical results
//! regardless of the pivot path taken.

use crate::error::SolveError;
use crate::problem::{Constraint, ConstraintKind, Problem};
use crate::simplex::{PivotRule, SolverOptions, Workspace};
use crate::solution::{Basis, BasisVar, Solution};

/// Etas accumulated before the basis is refactorized from scratch.
const REFACTOR_INTERVAL: usize = 64;

/// Number of pricing sections for partial pricing (a full scan is split
/// into this many chunks; optimality still requires a clean full wrap).
const PRICE_SECTIONS: usize = 8;

/// Minimum section width, so tiny problems degrade to full pricing.
const MIN_SECTION: usize = 32;

/// Cap on the pricing candidate list banked during a section scan.
const CANDIDATE_LIMIT: usize = 24;

/// Pivot magnitude below which an LU factorization counts as singular.
const SINGULAR_TOL: f64 = 1e-12;

/// Sentinel for "row has no slack/artificial column".
const NONE_COL: usize = usize::MAX;

/// Reusable buffers of the revised backend, owned by
/// [`Workspace`](crate::Workspace).
#[derive(Debug, Default)]
pub(crate) struct RevisedWorkspace {
    /// Per-row normalization multiplier `sign/scale` — bulk pricing uses
    /// the problem's own row storage in place, scaled by this on the fly.
    row_factor: Vec<f64>,
    /// Canonicalization weights per column, refilled per solve: among
    /// equally optimal vertices the solver prefers the one using the
    /// least capacity, so `w2[j] = 1/(1 + Σᵣ|Aᵣⱼ|)` plus a tiny
    /// index-hash jitter that makes the preference generically strict.
    w2: Vec<f64>,
    /// Row/value of each logical (slack or artificial) singleton column,
    /// indexed by `column − n`.
    logical_row: Vec<usize>,
    logical_val: Vec<f64>,
    /// Normalized right-hand side (non-negative).
    b: Vec<f64>,
    // --- per-row layout metadata ---
    slack_col: Vec<usize>,
    art_col: Vec<usize>,
    // --- basis state ---
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    x_basic: Vec<f64>,
    // --- dense LU of the basis matrix (row-major m×m) ---
    lu: Vec<f64>,
    lu_piv: Vec<usize>,
    // --- eta file: one row index + m-vector per pivot since refactor ---
    eta_rows: Vec<usize>,
    eta_data: Vec<f64>,
    /// Cost vector over all columns for the running phase.
    cost: Vec<f64>,
    /// Reduced-cost scratch for bulk pricing passes.
    rc: Vec<f64>,
    /// Rotating partial-pricing cursor.
    cursor: usize,
    /// Banked improving columns from the last section scan.
    candidates: Vec<usize>,
    /// Scratch for premultiplied row vectors (`y[r]·row_factor[r]`).
    yf_scratch: Vec<f64>,
    /// Zero-reduced-cost columns collected during the final (optimal)
    /// pricing wrap — the optimal face, consumed by canonicalization.
    face: Vec<usize>,
    /// Whether `face` was completed by a full optimality wrap.
    face_fresh: bool,
    /// Bulk secondary-reduced-cost buffer for canonicalization.
    face_w2: Vec<f64>,
    /// Per-solve telemetry, published by the dispatcher.
    pub(crate) stats: crate::simplex::SolveStats,
}

/// Column layout of the assembled matrix.
#[derive(Debug, Clone, Copy)]
struct Dims {
    /// Rows.
    m: usize,
    /// Structural variables.
    n: usize,
    /// First artificial column (slacks live in `n..art_start`).
    art_start: usize,
    /// Total columns.
    ncols: usize,
    /// Number of artificial columns.
    n_art: usize,
}

/// Entry point used by `Problem::{solve, solve_with, solve_warm}` when
/// [`Backend::Revised`](crate::Backend::Revised) is selected.
pub(crate) fn solve(
    problem: &Problem,
    options: &SolverOptions,
    workspace: &mut Workspace,
    warm: Option<&Basis>,
) -> Result<Solution, SolveError> {
    let ws = &mut workspace.revised;
    ws.stats.reset();
    let rows = problem.constraints();
    let dims = build(problem, ws);
    let tol = options.tolerance;
    let mut iterations = 0usize;

    // Per-solve dense scratch (length m — negligible next to the matrix).
    let mut y = vec![0.0; dims.m];
    let mut y2 = vec![0.0; dims.m];
    let mut d = vec![0.0; dims.m];

    // ---- Warm start: try to re-enter phase 2 directly -------------------
    let warm_ok = warm.is_some_and(|basis| try_warm_basis(rows, ws, &dims, basis, tol));

    if !warm_ok {
        // Cold start: slack basis where possible, artificials elsewhere.
        install_initial_basis(ws, &dims);
        if !factor(rows, ws, &dims) {
            return Err(SolveError::Singular);
        }
        ws.x_basic.clear();
        ws.x_basic.extend_from_slice(&ws.b);

        // ---- Phase 1: drive artificials to zero -------------------------
        if dims.n_art > 0 {
            ws.cost.clear();
            ws.cost.resize(dims.ncols, 0.0);
            for r in 0..dims.m {
                if ws.art_col[r] != NONE_COL {
                    ws.cost[ws.art_col[r]] = -1.0; // maximize −Σ artificials
                }
            }
            run_phase(
                rows,
                ws,
                &dims,
                options,
                Phase::One,
                &mut y,
                &mut d,
                &mut iterations,
            )?;
            let residual: f64 = (0..dims.m)
                .filter(|&i| ws.basis[i] >= dims.art_start)
                .map(|i| ws.x_basic[i].max(0.0))
                .sum();
            if residual > tol.max(1e-7) {
                return Err(SolveError::Infeasible { residual });
            }
            drive_out_artificials(rows, ws, &dims, tol, &mut y, &mut d, &mut iterations);
        }
    }

    // ---- Phase 2: user objective ----------------------------------------
    ws.cost.clear();
    ws.cost.resize(dims.ncols, 0.0);
    ws.cost[..dims.n].copy_from_slice(&problem.objective);
    run_phase(
        rows,
        ws,
        &dims,
        options,
        Phase::Two,
        &mut y,
        &mut d,
        &mut iterations,
    )?;

    // ---- Phase 3: canonicalize over the optimal face --------------------
    canonicalize(
        rows,
        ws,
        &dims,
        options,
        &mut y,
        &mut y2,
        &mut d,
        &mut iterations,
    );

    // ---- Extraction from a fresh factorization of the final basis -------
    // Refactorizing here makes the result a function of the final basis
    // alone: any pivot path (warm or cold) reaching the same basis yields
    // bit-identical primal values, objective and duals.
    if !factor(rows, ws, &dims) {
        return Err(SolveError::Singular);
    }
    ws.x_basic.clear();
    ws.x_basic.extend_from_slice(&ws.b);
    let xb: &mut [f64] = &mut ws.x_basic;
    lu_solve(&ws.lu, &ws.lu_piv, dims.m, xb);

    let mut x = vec![0.0; dims.n];
    for i in 0..dims.m {
        let bcol = ws.basis[i];
        if bcol < dims.n {
            // Clamp tiny negatives produced by roundoff.
            x[bcol] = ws.x_basic[i].max(0.0);
        }
    }
    let objective_internal: f64 = problem.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
    let objective = if problem.minimize {
        -objective_internal
    } else {
        objective_internal
    };

    // Duals: y = c_B·B⁻¹ in the normalized row space, un-normalized per
    // row (the same sign/scale algebra as the dense backend).
    for (yi, &b) in y.iter_mut().zip(&ws.basis) {
        *yi = ws.cost[b];
    }
    lu_solve_t(&ws.lu, &ws.lu_piv, dims.m, &mut y);
    let mut duals = vec![0.0; dims.m];
    for (dual, (&yr, &f)) in duals.iter_mut().zip(y.iter().zip(&ws.row_factor)) {
        let mut v = yr * f;
        if problem.minimize {
            v = -v;
        }
        *dual = v;
    }

    // Exported basis (artificial-free bases only).
    let basis = export_basis(ws, &dims);

    Ok(Solution::new(
        x, objective, duals, iterations, basis, warm_ok,
    ))
}

/// Computes the row normalization and column layout; the matrix itself
/// stays in the problem's row storage.
fn build(problem: &Problem, ws: &mut RevisedWorkspace) -> Dims {
    let m = problem.num_constraints();
    let n = problem.num_vars();

    ws.row_factor.clear();
    ws.slack_col.clear();
    ws.art_col.clear();
    ws.b.clear();
    ws.logical_row.clear();
    ws.logical_val.clear();

    let mut n_slack = 0usize;
    let mut n_art = 0usize;
    for c in problem.constraints() {
        // Identical normalization arithmetic to the dense backend: scale
        // by the row max, negate rows with negative RHS. The factor
        // `sign/scale` multiplies the raw row on every access.
        let scale = c
            .coeffs()
            .iter()
            .fold(c.rhs().abs(), |acc, v| acc.max(v.abs()))
            .max(1e-300);
        let negated = c.rhs() / scale < 0.0;
        if c.kind() == ConstraintKind::LessEq {
            n_slack += 1;
        }
        if c.kind() == ConstraintKind::Eq || negated {
            n_art += 1;
        }
        let sign = if negated { -1.0 } else { 1.0 };
        ws.row_factor.push(sign / scale);
        ws.slack_col.push(NONE_COL);
        ws.art_col.push(NONE_COL);
        ws.b.push(sign * c.rhs() / scale);
    }
    let art_start = n + n_slack;
    let ncols = art_start + n_art;

    // Slack singletons, in row order; the slack carries the row's sign
    // (−1 on negated rows), exactly like the dense layout.
    for (r, c) in problem.constraints().iter().enumerate() {
        if c.kind() == ConstraintKind::LessEq {
            ws.slack_col[r] = n + ws.logical_row.len();
            ws.logical_row.push(r);
            ws.logical_val
                .push(if ws.row_factor[r] < 0.0 { -1.0 } else { 1.0 });
        }
    }
    // Artificial singletons (+1), in row order.
    for (r, c) in problem.constraints().iter().enumerate() {
        if c.kind() == ConstraintKind::Eq || ws.row_factor[r] < 0.0 {
            ws.art_col[r] = n + ws.logical_row.len();
            ws.logical_row.push(r);
            ws.logical_val.push(1.0);
        }
    }
    debug_assert_eq!(n + ws.logical_row.len(), ncols);

    ws.face_fresh = false;
    Dims {
        m,
        n,
        art_start,
        ncols,
        n_art,
    }
}

/// Gathers (normalized) column `j` into the dense buffer `out` — `m`
/// strided reads from the original rows; rare enough (one per pivot plus
/// factorizations) that no column-major copy pays for itself.
fn gather_col(rows: &[Constraint], ws: &RevisedWorkspace, dims: &Dims, j: usize, out: &mut [f64]) {
    if j < dims.n {
        for (r, c) in rows.iter().enumerate() {
            out[r] = c.coeffs()[j] * ws.row_factor[r];
        }
    } else {
        out.fill(0.0);
        let l = j - dims.n;
        out[ws.logical_row[l]] = ws.logical_val[l];
    }
}

/// Premultiplies `y[r]·row_factor[r]` into the reusable scratch buffer,
/// so per-column dots read the original rows with one multiply per
/// element.
#[inline]
fn premultiply<'a>(buf: &'a mut Vec<f64>, y: &[f64], row_factor: &[f64]) -> &'a [f64] {
    buf.clear();
    buf.extend(y.iter().zip(row_factor).map(|(a, b)| a * b));
    buf
}

/// Reduced cost of a single column (used for candidate re-pricing; bulk
/// scans go through [`fill_rc_structural`] instead). `yf` is the
/// premultiplied `y[r]·row_factor[r]` vector, so the original rows are
/// read directly.
#[inline]
fn reduced_cost_col(
    rows: &[Constraint],
    ws: &RevisedWorkspace,
    dims: &Dims,
    yf: &[f64],
    y: &[f64],
    j: usize,
) -> f64 {
    if j < dims.n {
        let mut dot = 0.0;
        for (r, c) in rows.iter().enumerate() {
            dot += yf[r] * c.coeffs()[j];
        }
        ws.cost[j] - dot
    } else {
        let l = j - dims.n;
        ws.cost[j] - y[ws.logical_row[l]] * ws.logical_val[l]
    }
}

/// Fills `rc[lo..hi]` (absolute structural indices, `hi ≤ n`) with the
/// reduced costs `c_j − y·A_j` via one vectorized axpy pass per row —
/// the fast path that makes bulk pricing cheap despite `n` being large.
fn fill_rc_structural(
    rows: &[Constraint],
    row_factor: &[f64],
    cost: &[f64],
    y: &[f64],
    lo: usize,
    hi: usize,
    rc: &mut [f64],
) {
    rc[lo..hi].copy_from_slice(&cost[lo..hi]);
    for (r, c) in rows.iter().enumerate() {
        let mult = y[r] * row_factor[r];
        // dmc-lint: allow(float-exact) axpy skip: an exactly-zero multiplier contributes nothing; a tolerance here would change results
        if mult != 0.0 {
            let seg = &c.coeffs()[lo..hi];
            for (acc, &v) in rc[lo..hi].iter_mut().zip(seg) {
                *acc -= mult * v;
            }
        }
    }
}

/// Pricing mode for one iteration.
#[derive(Clone, Copy, PartialEq)]
enum Pricing {
    /// First improving column (anti-cycling).
    Bland,
    /// Full Dantzig scan: most positive reduced cost.
    Full,
    /// Candidate list backed by sectioned partial scans.
    Partial,
}

/// Which phase [`run_phase`] is executing.
#[derive(Clone, Copy, PartialEq)]
enum Phase {
    /// Feasibility: artificials priced out, early exit once none is
    /// basic, no face collection.
    One,
    /// Optimality: structural + slack columns, face collected on the
    /// final wrap.
    Two,
}

/// Selects the entering column among `0..enter_limit`, or `None` when the
/// current basis is optimal for the phase objective.
///
/// When `collect_face` is set and a call completes a full wrap without
/// finding an improving column (the optimality proof), it leaves the
/// zero-reduced-cost columns in `ws.face` with `ws.face_fresh = true` —
/// the canonicalization phase consumes them without re-scanning the
/// matrix.
#[allow(clippy::too_many_arguments)]
fn price(
    rows: &[Constraint],
    ws: &mut RevisedWorkspace,
    dims: &Dims,
    enter_limit: usize,
    y: &[f64],
    tol: f64,
    mode: Pricing,
    collect_face: bool,
) -> Option<usize> {
    if enter_limit == 0 {
        ws.face.clear();
        ws.face_fresh = collect_face;
        return None;
    }
    // Candidate re-pricing only applies to Partial mode.
    if mode == Pricing::Partial && !ws.candidates.is_empty() {
        let mut yf_buf = std::mem::take(&mut ws.yf_scratch);
        let yf = premultiply(&mut yf_buf, y, &ws.row_factor);
        let mut best = tol;
        let mut pick = None;
        let candidates = std::mem::take(&mut ws.candidates);
        for &j in &candidates {
            if j >= enter_limit || ws.in_basis[j] {
                continue;
            }
            let rc = reduced_cost_col(rows, ws, dims, yf, y, j);
            if rc > best {
                best = rc;
                pick = Some(j);
            }
        }
        ws.candidates = candidates;
        ws.yf_scratch = yf_buf;
        if pick.is_some() {
            return pick;
        }
        ws.candidates.clear();
    }

    // Section scan (Partial) or one full section (Bland/Full), driven by
    // bulk rc fills. Each chunk is a contiguous range clamped at the end
    // of the column space; the cursor wraps between chunks, so a clean
    // full wrap visits every column exactly once.
    let mut face = std::mem::take(&mut ws.face);
    let mut rc_buf = std::mem::take(&mut ws.rc);
    if rc_buf.len() < enter_limit {
        rc_buf.resize(enter_limit, 0.0);
    }
    let section = match mode {
        Pricing::Partial => (enter_limit.div_ceil(PRICE_SECTIONS)).max(MIN_SECTION),
        Pricing::Bland | Pricing::Full => enter_limit,
    };
    let mut scanned = 0usize;
    let mut pos = if mode == Pricing::Partial {
        ws.cursor % enter_limit
    } else {
        0
    };
    let mut best = tol;
    let mut pick = None;
    if collect_face && face.len() < enter_limit {
        // Branchless face collection writes unconditionally into a
        // pre-sized buffer (truncated below): the ~50 % taken-rate of the
        // on-face test would otherwise cost a mispredict per column.
        // Slots are always written before being counted, so the buffer
        // only ever grows and is never re-zeroed.
        face.resize(enter_limit, 0);
    }
    let mut face_w = 0usize;
    while scanned < enter_limit {
        let span = section.min(enter_limit - scanned).min(enter_limit - pos);
        let (lo, hi) = (pos, pos + span);
        // Bulk-fill reduced costs for the chunk: the structural part via
        // vectorized row passes, logical singletons directly.
        let s_hi = hi.min(dims.n);
        if lo < s_hi {
            fill_rc_structural(rows, &ws.row_factor, &ws.cost, y, lo, s_hi, &mut rc_buf);
        }
        for (j, rc) in rc_buf.iter_mut().enumerate().take(hi).skip(lo.max(dims.n)) {
            let l = j - dims.n;
            *rc = ws.cost[j] - y[ws.logical_row[l]] * ws.logical_val[l];
        }
        for (j, &rc) in rc_buf.iter().enumerate().take(hi).skip(lo) {
            let nonbasic = !ws.in_basis[j];
            if collect_face {
                face[face_w] = j;
                face_w += (nonbasic & (rc.abs() <= tol)) as usize;
            }
            if nonbasic && rc > best {
                best = rc;
                pick = Some(j);
                if mode == Pricing::Bland {
                    break;
                }
            }
            if nonbasic
                && rc > tol
                && mode == Pricing::Partial
                && ws.candidates.len() < CANDIDATE_LIMIT
            {
                ws.candidates.push(j);
            }
        }
        if mode == Pricing::Bland && pick.is_some() {
            break;
        }
        scanned += span;
        pos = hi;
        if pos == enter_limit {
            pos = 0;
        }
        if mode == Pricing::Partial && pick.is_some() {
            ws.cursor = pos;
            break;
        }
    }
    face.truncate(face_w);
    ws.rc = rc_buf;
    // The face is complete only when the scan visited every column and
    // found nothing improving (the optimality proof).
    ws.face_fresh = collect_face && pick.is_none() && scanned == enter_limit;
    ws.face = face;
    pick
}

/// Ratio test: picks the leaving row for entering direction `d`, mirroring
/// the dense backend's tie-break (smallest basic column index on
/// near-ties). Basic artificials sitting at zero are forced out on any
/// nonzero direction component so they cannot turn positive.
///
/// Returns `None` when the direction is unbounded.
fn ratio_test(ws: &RevisedWorkspace, dims: &Dims, d: &[f64], tol: f64) -> Option<(usize, f64)> {
    let mut leave: Option<usize> = None;
    let mut best_ratio = f64::INFINITY;
    for (i, &a) in d.iter().enumerate().take(dims.m) {
        let candidate = if a > tol {
            Some(ws.x_basic[i].max(0.0) / a)
        } else if ws.basis[i] >= dims.art_start && a < -tol && ws.x_basic[i] <= tol {
            // Degenerate exit of a zero-valued artificial: the pivot keeps
            // all basic values unchanged, so a negative direction
            // component is acceptable.
            Some(0.0)
        } else {
            None
        };
        if let Some(ratio) = candidate {
            let better = ratio < best_ratio - tol
                || (ratio < best_ratio + tol
                    && leave.is_some_and(|cur| ws.basis[i] < ws.basis[cur]));
            if leave.is_none() || better {
                if ratio < best_ratio {
                    best_ratio = ratio;
                }
                leave = Some(i);
            }
        }
    }
    leave.map(|r| (r, best_ratio.max(0.0)))
}

/// Slack basis where available, artificial basis elsewhere (`B = I`).
fn install_initial_basis(ws: &mut RevisedWorkspace, dims: &Dims) {
    ws.basis.clear();
    ws.in_basis.clear();
    ws.in_basis.resize(dims.ncols, false);
    for r in 0..dims.m {
        let c = if ws.art_col[r] != NONE_COL {
            ws.art_col[r]
        } else {
            ws.slack_col[r]
        };
        debug_assert_ne!(c, NONE_COL);
        ws.basis.push(c);
        ws.in_basis[c] = true;
    }
}

/// Validates and installs a caller-provided warm [`Basis`]; returns
/// `true` when the basis is well-formed, nonsingular and primal feasible
/// (in which case `x_basic` is loaded and phase 1 can be skipped).
fn try_warm_basis(
    rows: &[Constraint],
    ws: &mut RevisedWorkspace,
    dims: &Dims,
    basis: &Basis,
    tol: f64,
) -> bool {
    if basis.len() != dims.m {
        return false;
    }
    ws.basis.clear();
    ws.in_basis.clear();
    ws.in_basis.resize(dims.ncols, false);
    for slot in basis.slots() {
        let c = match *slot {
            BasisVar::Structural(j) if j < dims.n => j,
            BasisVar::Slack(r) if r < dims.m && ws.slack_col[r] != NONE_COL => ws.slack_col[r],
            _ => return false,
        };
        if ws.in_basis[c] {
            return false; // duplicate
        }
        ws.basis.push(c);
        ws.in_basis[c] = true;
    }
    if !factor(rows, ws, dims) {
        return false; // singular under the new coefficients
    }
    ws.x_basic.clear();
    ws.x_basic.extend_from_slice(&ws.b);
    let xb: &mut [f64] = &mut ws.x_basic;
    lu_solve(&ws.lu, &ws.lu_piv, dims.m, xb);
    if ws.x_basic.iter().any(|&v| v < -tol) {
        return false; // primal infeasible for the new RHS
    }
    for v in &mut ws.x_basic {
        *v = v.max(0.0);
    }
    true
}

/// Dense LU factorization (partial pivoting) of the current basis matrix;
/// clears the eta file. Returns `false` on a numerically singular basis.
fn factor(rows: &[Constraint], ws: &mut RevisedWorkspace, dims: &Dims) -> bool {
    let m = dims.m;
    ws.stats.refactorizations += 1;
    ws.stats.eta_lengths.push(ws.eta_rows.len() as u64);
    ws.eta_rows.clear();
    ws.eta_data.clear();
    ws.lu.clear();
    ws.lu.resize(m * m, 0.0);
    ws.lu_piv.clear();
    ws.lu_piv.resize(m, 0);
    for k in 0..m {
        let bcol = ws.basis[k];
        if bcol < dims.n {
            for (r, c) in rows.iter().enumerate() {
                ws.lu[r * m + k] = c.coeffs()[bcol] * ws.row_factor[r];
            }
        } else {
            let l = bcol - dims.n;
            ws.lu[ws.logical_row[l] * m + k] = ws.logical_val[l];
        }
    }
    for k in 0..m {
        // Partial pivot: largest magnitude in column k at or below the
        // diagonal.
        let mut p = k;
        let mut best = ws.lu[k * m + k].abs();
        for i in k + 1..m {
            let v = ws.lu[i * m + k].abs();
            if v > best {
                best = v;
                p = i;
            }
        }
        if best < SINGULAR_TOL {
            return false;
        }
        ws.lu_piv[k] = p;
        if p != k {
            for j in 0..m {
                ws.lu.swap(k * m + j, p * m + j);
            }
        }
        let inv = 1.0 / ws.lu[k * m + k];
        for i in k + 1..m {
            let f = ws.lu[i * m + k] * inv;
            ws.lu[i * m + k] = f;
            // dmc-lint: allow(float-exact) an exactly-zero LU factor generates no eta entry; the skip is lossless
            if f != 0.0 {
                for j in k + 1..m {
                    ws.lu[i * m + j] -= f * ws.lu[k * m + j];
                }
            }
        }
    }
    true
}

/// Solves `B₀ z = v` in place using the LU factors (`PA = LU` layout:
/// interchanges forward, then `L`, then `U`).
fn lu_solve(lu: &[f64], piv: &[usize], m: usize, v: &mut [f64]) {
    for (k, &p) in piv.iter().enumerate().take(m) {
        v.swap(k, p);
    }
    for i in 1..m {
        let mut s = v[i];
        for j in 0..i {
            s -= lu[i * m + j] * v[j];
        }
        v[i] = s;
    }
    for i in (0..m).rev() {
        let mut s = v[i];
        for j in i + 1..m {
            s -= lu[i * m + j] * v[j];
        }
        v[i] = s / lu[i * m + i];
    }
}

/// Solves `B₀ᵀ y = v` in place (`Uᵀ`, then `Lᵀ`, then interchanges in
/// reverse).
fn lu_solve_t(lu: &[f64], piv: &[usize], m: usize, v: &mut [f64]) {
    for i in 0..m {
        let mut s = v[i];
        for j in 0..i {
            s -= lu[j * m + i] * v[j];
        }
        v[i] = s / lu[i * m + i];
    }
    for i in (0..m).rev() {
        let mut s = v[i];
        for j in i + 1..m {
            s -= lu[j * m + i] * v[j];
        }
        v[i] = s;
    }
    for k in (0..m).rev() {
        v.swap(k, piv[k]);
    }
}

/// FTRAN: `v ← B⁻¹ v` (LU solve, then the eta file in append order).
fn ftran(ws: &RevisedWorkspace, m: usize, v: &mut [f64]) {
    lu_solve(&ws.lu, &ws.lu_piv, m, v);
    for (k, &r) in ws.eta_rows.iter().enumerate() {
        let eta = &ws.eta_data[k * m..(k + 1) * m];
        let vr = v[r];
        // dmc-lint: allow(float-exact) eta transform skip: an exactly-zero pivot component leaves the vector unchanged
        if vr != 0.0 {
            for i in 0..m {
                if i == r {
                    v[i] = eta[r] * vr;
                } else {
                    v[i] += eta[i] * vr;
                }
            }
        }
    }
}

/// BTRAN: `v ← vᵀ B⁻¹` (eta file in reverse order, then the transposed LU
/// solve).
fn btran(ws: &RevisedWorkspace, m: usize, v: &mut [f64]) {
    for (k, &r) in ws.eta_rows.iter().enumerate().rev() {
        let eta = &ws.eta_data[k * m..(k + 1) * m];
        let mut s = 0.0;
        for i in 0..m {
            s += v[i] * eta[i];
        }
        v[r] = s;
    }
    lu_solve_t(&ws.lu, &ws.lu_piv, m, v);
}

/// Applies the pivot `(entering q, leaving row r, direction d, step t)`:
/// updates the basic values, appends the eta vector and refactorizes when
/// the eta file is full. Returns `false` when a due refactorization found
/// the basis numerically singular — the factors are then unusable and the
/// caller must stop iterating.
fn pivot(
    rows: &[Constraint],
    ws: &mut RevisedWorkspace,
    dims: &Dims,
    q: usize,
    r: usize,
    d: &[f64],
    t: f64,
) -> bool {
    for (i, (xb, &di)) in ws.x_basic.iter_mut().zip(d).enumerate() {
        if i != r {
            *xb = (*xb - t * di).max(0.0);
        }
    }
    ws.x_basic[r] = t;

    let leaving = ws.basis[r];
    ws.in_basis[leaving] = false;
    ws.in_basis[q] = true;
    ws.basis[r] = q;

    // Eta column: E replaces column r of the identity.
    let inv = 1.0 / d[r];
    ws.eta_rows.push(r);
    let base = ws.eta_data.len();
    ws.eta_data.reserve(dims.m);
    for (i, &di) in d.iter().enumerate().take(dims.m) {
        ws.eta_data.push(if i == r { inv } else { -di * inv });
    }
    debug_assert_eq!(ws.eta_data.len(), base + dims.m);

    if ws.eta_rows.len() >= REFACTOR_INTERVAL {
        if !factor(rows, ws, dims) {
            return false;
        }
        // Recompute the basic values from scratch to shed accumulated
        // floating-point drift.
        ws.x_basic.clear();
        ws.x_basic.extend_from_slice(&ws.b);
        let xb: &mut [f64] = &mut ws.x_basic;
        lu_solve(&ws.lu, &ws.lu_piv, dims.m, xb);
        for v in &mut ws.x_basic {
            *v = v.max(0.0);
        }
    }
    true
}

/// Runs simplex iterations on the phase objective in `ws.cost` until
/// optimality, unboundedness or the iteration limit.
///
/// Phase 1 never prices artificial columns (they start basic and only
/// leave) and exits as soon as no artificial is basic — the phase-1
/// objective is then exactly zero, its optimum, with no need for a final
/// pricing wrap. Phase 2 locks artificials out via the same enter limit
/// and collects the optimal face on its final wrap.
#[allow(clippy::too_many_arguments)]
fn run_phase(
    rows: &[Constraint],
    ws: &mut RevisedWorkspace,
    dims: &Dims,
    options: &SolverOptions,
    phase: Phase,
    y: &mut [f64],
    d: &mut [f64],
    iterations: &mut usize,
) -> Result<(), SolveError> {
    let tol = options.tolerance;
    let enter_limit = dims.art_start;
    let collect_face = phase == Phase::Two;
    let mut degenerate_run = 0usize;
    ws.cursor = 0;
    ws.candidates.clear();
    let mut basic_arts = if phase == Phase::One {
        (0..dims.m)
            .filter(|&i| ws.basis[i] >= dims.art_start)
            .count()
    } else {
        0
    };
    if phase == Phase::One && basic_arts == 0 {
        ws.stats.phase1_early_exit = true;
        return Ok(());
    }
    for _ in 0..options.max_iterations {
        let mode = match options.pivot_rule {
            PivotRule::Bland => Pricing::Bland,
            PivotRule::Dantzig => Pricing::Full,
            PivotRule::Adaptive => {
                if degenerate_run >= options.degenerate_switch {
                    Pricing::Bland
                } else {
                    Pricing::Partial
                }
            }
        };
        for (yi, &b) in y.iter_mut().zip(&ws.basis) {
            *yi = ws.cost[b];
        }
        btran(ws, dims.m, y);
        let Some(q) = price(rows, ws, dims, enter_limit, y, tol, mode, collect_face) else {
            return Ok(()); // optimal
        };
        gather_col(rows, ws, dims, q, d);
        ftran(ws, dims.m, d);
        let Some((r, step)) = ratio_test(ws, dims, d, tol) else {
            return Err(SolveError::Unbounded);
        };
        if step.abs() <= tol {
            degenerate_run += 1;
        } else {
            degenerate_run = 0;
        }
        let leaving_art = ws.basis[r] >= dims.art_start;
        if !pivot(rows, ws, dims, q, r, d, step) {
            return Err(SolveError::Singular);
        }
        *iterations += 1;
        if phase == Phase::One && leaving_art {
            basic_arts -= 1;
            if basic_arts == 0 {
                // All artificials are nonbasic (at zero): Σ artificials is
                // 0, the unimprovable phase-1 optimum.
                ws.stats.phase1_early_exit = true;
                return Ok(());
            }
        }
    }
    Err(SolveError::IterationLimit {
        limit: options.max_iterations,
    })
}

/// After phase 1, pivots basic artificials out where possible (degenerate
/// pivots on any nonzero direction component). Rows whose artificial
/// cannot leave are linearly dependent; their artificial stays basic at
/// zero and — its row being a combination of the others — never moves
/// again.
#[allow(clippy::too_many_arguments)]
fn drive_out_artificials(
    rows: &[Constraint],
    ws: &mut RevisedWorkspace,
    dims: &Dims,
    tol: f64,
    e: &mut [f64],
    d: &mut [f64],
    iterations: &mut usize,
) {
    let pivot_tol = tol.max(1e-10);
    for r in 0..dims.m {
        if ws.basis[r] < dims.art_start {
            continue;
        }
        // Row r of B⁻¹A, probed column by column: e = eᵣᵀB⁻¹, then a
        // short dot per candidate column.
        e.fill(0.0);
        e[r] = 1.0;
        btran(ws, dims.m, e);
        let mut ef_buf = std::mem::take(&mut ws.yf_scratch);
        let ef = premultiply(&mut ef_buf, e, &ws.row_factor);
        let entering = (0..dims.art_start).find(|&j| {
            !ws.in_basis[j] && {
                let dot = if j < dims.n {
                    rows.iter()
                        .enumerate()
                        .map(|(ri, c)| ef[ri] * c.coeffs()[j])
                        .sum::<f64>()
                } else {
                    let l = j - dims.n;
                    e[ws.logical_row[l]] * ws.logical_val[l]
                };
                dot.abs() > pivot_tol
            }
        });
        ws.yf_scratch = ef_buf;
        if let Some(q) = entering {
            gather_col(rows, ws, dims, q, d);
            ftran(ws, dims.m, d);
            if d[r].abs() <= SINGULAR_TOL {
                continue; // numerically vanished; treat as dependent
            }
            let step = ws.x_basic[r] / d[r];
            if !pivot(rows, ws, dims, q, r, d, step) {
                // Refactorization broke down; stop driving out — the
                // remaining artificials stay basic at zero and the final
                // extraction refactorizes from scratch anyway.
                return;
            }
            *iterations += 1;
        }
    }
}

/// Phase 3: walks the optimal face (columns with zero phase-2 reduced
/// cost) to the vertex maximizing the secondary weights (least total
/// capacity use, jitter-broken ties), so every optimal start — warm or
/// cold — reports the same vertex. A determinism device with a sensible
/// bias: it never changes the phase-2 objective value, and
/// bails out (keeping the current optimum) on an unbounded face direction
/// or when the iteration budget is exhausted.
///
/// Pivoting on a zero-reduced-cost column leaves the duals `y` unchanged
/// (`y' = y + (rc_q/d_r)·eᵣB⁻¹` with `rc_q = 0`), so the face — the set
/// of zero-reduced-cost columns — is **fixed** for the whole phase; the
/// final pricing wrap of phase 2 collected it (`ws.face`). Secondary
/// reduced costs are computed in bulk (one vectorized axpy pass per row)
/// and improving candidates are **deduplicated by their dot-product bit
/// pattern**: these LPs carry many identical columns (every
/// blackhole-truncated combination shares one), duplicates produce
/// bit-identical `y₂·A_j`, and only the highest-weight representative of
/// a duplicate group can ever enter. The pruning is deterministic, so
/// warm and cold solves still agree. A candidate queue then keeps full
/// re-scans to the occasional refill. When the phase-2 endpoint is
/// already canonical (every warm re-solve after the first), the whole
/// phase is one bulk pass that finds nothing.
#[allow(clippy::too_many_arguments)]
fn canonicalize(
    rows: &[Constraint],
    ws: &mut RevisedWorkspace,
    dims: &Dims,
    options: &SolverOptions,
    y: &mut [f64],
    y2: &mut [f64],
    d: &mut [f64],
    iterations: &mut usize,
) {
    let tol = options.tolerance;
    let m = dims.m;
    let mut face = std::mem::take(&mut ws.face);
    if !ws.face_fresh {
        // Fallback (phase 2 normally ends on an optimality wrap that
        // collected the face): recompute it from the phase-2 duals.
        for (yi, &b) in y.iter_mut().zip(&ws.basis) {
            *yi = ws.cost[b];
        }
        btran(ws, m, y);
        let mut yf_buf = std::mem::take(&mut ws.yf_scratch);
        let yf = premultiply(&mut yf_buf, y, &ws.row_factor);
        face.clear();
        for j in 0..dims.art_start {
            if !ws.in_basis[j] && reduced_cost_col(rows, ws, dims, yf, y, j).abs() <= tol {
                face.push(j);
            }
        }
        ws.yf_scratch = yf_buf;
    }
    if face.is_empty() {
        ws.face = face;
        return;
    }
    // Secondary weights: prefer the optimal vertex that uses the least
    // capacity — `w2[j]` decreases with the column's total (normalized)
    // mass — with a tiny deterministic jitter for strictness. One
    // vectorized |A| pass per row, like the pricing fills.
    ws.w2.clear();
    ws.w2.resize(dims.art_start, 0.0);
    for (r, c) in rows.iter().enumerate() {
        let fac = ws.row_factor[r].abs();
        for (acc, &v) in ws.w2[..dims.n].iter_mut().zip(c.coeffs()) {
            *acc += fac * v.abs();
        }
    }
    for l in 0..dims.art_start - dims.n {
        ws.w2[dims.n + l] = ws.logical_val[l].abs();
    }
    // Jitter strictly decreasing in the column index: among equally
    // light columns the lowest index wins, deterministically.
    let jitter_step = 1e-6 / (dims.art_start + 1) as f64;
    let mut jitter = 1e-6;
    for w in ws.w2.iter_mut() {
        *w = 1.0 / (1.0 + *w) + jitter;
        jitter -= jitter_step;
    }
    let mut rc2 = std::mem::take(&mut ws.face_w2); // reused buffer
    let mut queue: Vec<(usize, f64)> = Vec::new();
    let mut table: Vec<(u64, u32)> = Vec::new();
    // Refill: bulk secondary reduced costs over all columns (rc2 = w2 −
    // y₂ᵀA via vectorized row passes), then collect the improving face
    // members deduplicated by dot-product bits (keep max weight, then
    // lowest index).
    let refill = |ws: &RevisedWorkspace,
                  face: &[usize],
                  y2: &[f64],
                  rc2: &mut Vec<f64>,
                  queue: &mut Vec<(usize, f64)>,
                  table: &mut Vec<(u64, u32)>| {
        if rc2.len() < dims.art_start {
            rc2.resize(dims.art_start, 0.0);
        }
        rc2[..dims.art_start].copy_from_slice(&ws.w2[..dims.art_start]);
        for (r, c) in rows.iter().enumerate() {
            let mult = y2[r] * ws.row_factor[r];
            // dmc-lint: allow(float-exact) axpy skip: an exactly-zero multiplier contributes nothing; a tolerance here would change results
            if mult != 0.0 {
                for (acc, &v) in rc2[..dims.n].iter_mut().zip(c.coeffs()) {
                    *acc -= mult * v;
                }
            }
        }
        for l in 0..dims.art_start - dims.n {
            rc2[dims.n + l] -= y2[ws.logical_row[l]] * ws.logical_val[l];
        }
        queue.clear();
        // Dedup table keyed by the dot bits (w2 − rc2): duplicates of a
        // column produce identical dots; 0 is the empty sentinel.
        let cap = (face.len().max(1) * 2).next_power_of_two();
        let mask = cap - 1;
        table.clear();
        table.resize(cap, (0, u32::MAX));
        for &j in face {
            if ws.in_basis[j] || rc2[j] <= tol {
                continue;
            }
            let key = (ws.w2[j] - rc2[j]).to_bits().max(1);
            let mut slot = ((key >> 3) as usize) & mask;
            loop {
                let (sk, si) = table[slot];
                if sk == 0 {
                    table[slot] = (key, j as u32);
                    break;
                }
                if sk == key {
                    // Duplicate group: keep the higher weight (ties: the
                    // lower index, which was seen first).
                    if ws.w2[j] > ws.w2[si as usize] {
                        table[slot] = (key, j as u32);
                    }
                    break;
                }
                slot = (slot + 1) & mask;
            }
        }
        for &(sk, si) in table.iter() {
            if sk != 0 {
                let j = si as usize;
                queue.push((j, rc2[j]));
            }
        }
        // Table order depends on hashing; sort for a deterministic queue.
        queue.sort_unstable_by_key(|&(j, _)| j);
    };
    let mut degenerate_run = 0usize;
    let mut stale = true; // queue needs a refill
    for _ in 0..options.max_iterations {
        for (y2i, &b) in y2.iter_mut().zip(&ws.basis) {
            // Basic artificials (redundant rows) never move in this
            // phase; any fixed weight works — use zero.
            *y2i = if b < dims.art_start { ws.w2[b] } else { 0.0 };
        }
        btran(ws, m, y2);
        let bland = degenerate_run >= options.degenerate_switch;
        let mut pick: Option<usize> = None;
        let mut best = tol;
        if !stale {
            // Re-price the queued candidates (strided dots on the few
            // survivors) before paying for a bulk refill.
            let mut yf_buf = std::mem::take(&mut ws.yf_scratch);
            let yf = premultiply(&mut yf_buf, y2, &ws.row_factor);
            for &(j, _) in &queue {
                if ws.in_basis[j] {
                    continue;
                }
                let rc2j = if j < dims.n {
                    let mut dot = 0.0;
                    for (r, c) in rows.iter().enumerate() {
                        dot += yf[r] * c.coeffs()[j];
                    }
                    ws.w2[j] - dot
                } else {
                    let l = j - dims.n;
                    ws.w2[j] - y2[ws.logical_row[l]] * ws.logical_val[l]
                };
                if rc2j > best {
                    best = rc2j;
                    pick = Some(j);
                }
            }
            ws.yf_scratch = yf_buf;
        }
        if pick.is_none() {
            refill(ws, &face, y2, &mut rc2, &mut queue, &mut table);
            stale = false;
            for &(j, rc2j) in &queue {
                if rc2j > best {
                    best = rc2j;
                    pick = Some(j);
                    if bland {
                        break;
                    }
                }
            }
        }
        let Some(q) = pick else {
            break; // canonical vertex reached
        };
        gather_col(rows, ws, dims, q, d);
        ftran(ws, m, d);
        let Some((r, step)) = ratio_test(ws, dims, d, tol) else {
            break; // face unbounded in the secondary direction: keep x
        };
        if step.abs() <= tol {
            degenerate_run += 1;
        } else {
            degenerate_run = 0;
        }
        // The leaving variable keeps zero reduced cost (it left on a
        // zero-rc pivot), so it joins the face.
        let leaving = ws.basis[r];
        let pivot_ok = pivot(rows, ws, dims, q, r, d, step);
        *iterations += 1;
        if leaving < dims.art_start && !face.contains(&leaving) {
            face.push(leaving);
        }
        if !pivot_ok {
            break; // refactorization breakdown: keep the current optimum
        }
    }
    face.clear();
    ws.face = face;
    ws.face_w2 = rc2;
}

/// Maps the final basis to the public [`Basis`] type (`None` when an
/// artificial stayed basic — such a basis cannot restart another solve).
fn export_basis(ws: &RevisedWorkspace, dims: &Dims) -> Option<Basis> {
    let mut slots = Vec::with_capacity(dims.m);
    for &c in &ws.basis {
        if c < dims.n {
            slots.push(BasisVar::Structural(c));
        } else if c < dims.art_start {
            let row = ws.slack_col.iter().position(|&s| s == c)?;
            slots.push(BasisVar::Slack(row));
        } else {
            return None;
        }
    }
    Some(Basis::new(slots))
}

#[cfg(test)]
mod tests {
    use crate::{Backend, PivotRule, Problem, SolveError, SolverOptions, Workspace};

    fn opts() -> SolverOptions {
        SolverOptions {
            backend: Backend::Revised,
            ..SolverOptions::default()
        }
    }

    #[test]
    fn simple_maximize() {
        // max 3x + 2y ; x + y <= 4 ; x + 3y <= 6 → x=4,y=0, obj 12
        let mut p = Problem::maximize(vec![3.0, 2.0]);
        p.add_le(vec![1.0, 1.0], 4.0).unwrap();
        p.add_le(vec![1.0, 3.0], 6.0).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 12.0).abs() < 1e-9);
        assert!((s.x()[0] - 4.0).abs() < 1e-9);
        assert!(s.x()[1].abs() < 1e-9);
        assert!(s.basis().is_some());
        assert!(!s.used_warm_start());
    }

    #[test]
    fn equality_constraint() {
        // max x + 2y ; x + y = 1 ; y <= 0.6 → x=0.4, y=0.6, obj 1.6
        let mut p = Problem::maximize(vec![1.0, 2.0]);
        p.add_eq(vec![1.0, 1.0], 1.0).unwrap();
        p.add_le(vec![0.0, 1.0], 0.6).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 1.6).abs() < 1e-9);
        assert!((s.x()[0] - 0.4).abs() < 1e-9);
        assert!((s.x()[1] - 0.6).abs() < 1e-9);
    }

    #[test]
    fn minimize_works() {
        let mut p = Problem::minimize(vec![2.0, 3.0]);
        p.add_ge(vec![1.0, 1.0], 2.0).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 4.0).abs() < 1e-9);
        assert!((s.x()[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::maximize(vec![1.0]);
        p.add_le(vec![1.0], 1.0).unwrap();
        p.add_ge(vec![1.0], 2.0).unwrap();
        match p.solve(&opts()) {
            Err(SolveError::Infeasible { residual }) => assert!(residual > 0.0),
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::maximize(vec![1.0, 0.0]);
        p.add_le(vec![0.0, 1.0], 1.0).unwrap();
        assert!(matches!(p.solve(&opts()), Err(SolveError::Unbounded)));
    }

    #[test]
    fn beale_cycling_guard_all_rules() {
        for rule in [PivotRule::Adaptive, PivotRule::Bland, PivotRule::Dantzig] {
            let mut p = Problem::maximize(vec![0.75, -150.0, 0.02, -6.0]);
            p.add_le(vec![0.25, -60.0, -1.0 / 25.0, 9.0], 0.0).unwrap();
            p.add_le(vec![0.5, -90.0, -1.0 / 50.0, 3.0], 0.0).unwrap();
            p.add_le(vec![0.0, 0.0, 1.0, 0.0], 1.0).unwrap();
            let mut o = opts();
            o.pivot_rule = rule;
            let s = p.solve(&o).unwrap();
            assert!((s.objective() - 0.05).abs() < 1e-9, "{rule:?}");
        }
    }

    #[test]
    fn redundant_equality_rows_are_handled() {
        let mut p = Problem::maximize(vec![1.0, 1.0]);
        p.add_eq(vec![1.0, 1.0], 1.0).unwrap();
        p.add_eq(vec![2.0, 2.0], 2.0).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 1.0).abs() < 1e-9);
        // An artificial stays basic for the dependent row, so no basis is
        // exported.
        assert!(s.basis().is_none());
    }

    #[test]
    fn duals_match_known_shadow_prices() {
        let mut p = Problem::maximize(vec![3.0, 5.0]);
        p.add_le(vec![1.0, 0.0], 4.0).unwrap();
        p.add_le(vec![0.0, 2.0], 12.0).unwrap();
        p.add_le(vec![3.0, 2.0], 18.0).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 36.0).abs() < 1e-9);
        let d = s.duals();
        assert!(d[0].abs() < 1e-9, "dual0 {}", d[0]);
        assert!((d[1] - 1.5).abs() < 1e-9, "dual1 {}", d[1]);
        assert!((d[2] - 1.0).abs() < 1e-9, "dual2 {}", d[2]);
    }

    #[test]
    fn badly_scaled_rows_are_equilibrated() {
        let mut p = Problem::maximize(vec![3.0, 2.0]);
        p.add_le(vec![1e8, 1e8], 4e8).unwrap();
        p.add_le(vec![1e8, 3e8], 6e8).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 12.0).abs() < 1e-6);
        assert!((s.x()[0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_le_becomes_feasible_via_artificials() {
        let mut p = Problem::maximize(vec![1.0, 0.0]);
        p.add_le(vec![1.0, -1.0], -1.0).unwrap();
        p.add_le(vec![0.0, 1.0], 3.0).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 2.0).abs() < 1e-9);
        assert!((s.x()[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rhs_equality() {
        let mut p = Problem::maximize(vec![5.0, 7.0]);
        p.add_eq(vec![1.0, 1.0], 0.0).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!(s.objective().abs() < 1e-9);
    }

    #[test]
    fn eta_refactorization_survives_many_pivots() {
        // A problem needing well over REFACTOR_INTERVAL pivots: a long
        // assignment chain forces the solver through many bases.
        let n = 120usize;
        let c: Vec<f64> = (0..n)
            .map(|j| 1.0 + (j as f64 * 0.37).sin().abs())
            .collect();
        let mut p = Problem::maximize(c.clone());
        for i in 0..n / 2 {
            let mut row = vec![0.0; n];
            row[2 * i] = 1.0;
            row[2 * i + 1] = 1.0;
            p.add_le(row, 1.0 + i as f64 * 0.01).unwrap();
        }
        let s = p.solve(&opts()).unwrap();
        assert!(p.max_violation(s.x()) < 1e-7);
        // Optimum: each pair contributes its bound times its best cost.
        let mut want = 0.0;
        for i in 0..n / 2 {
            want += (1.0 + i as f64 * 0.01) * c[2 * i].max(c[2 * i + 1]);
        }
        assert!((s.objective() - want).abs() < 1e-7, "{}", s.objective());
    }

    #[test]
    fn warm_start_skips_phase_one_and_matches_cold_bitwise() {
        let o = opts();
        let make = |rhs: f64| {
            let mut p = Problem::maximize(vec![3.0, 2.0]);
            p.add_le(vec![1.0, 1.0], rhs).unwrap();
            p.add_le(vec![1.0, 3.0], rhs + 2.0).unwrap();
            p.add_eq(vec![1.0, 1.0], rhs).unwrap();
            p
        };
        let first = make(4.0).solve(&o).unwrap();
        let basis = first.basis().expect("exportable basis").clone();
        let p2 = make(5.0);
        let warm = p2.solve_warm(&o, &basis).unwrap();
        let cold = p2.solve(&o).unwrap();
        assert!(warm.used_warm_start());
        assert_eq!(warm.x(), cold.x());
        assert_eq!(warm.objective(), cold.objective());
        assert_eq!(warm.duals(), cold.duals());
        assert!(warm.iterations() <= cold.iterations());
    }

    #[test]
    fn infeasible_warm_basis_falls_back_to_phase_one() {
        let o = opts();
        // Unique optimum x=10, y=2: basis {x, y, slack of the y-row}, with
        // the x-bound row binding (its slack nonbasic).
        let mut loose = Problem::maximize(vec![2.0, 1.0]);
        loose.add_le(vec![1.0, 0.0], 10.0).unwrap();
        loose.add_le(vec![0.0, 1.0], 10.0).unwrap();
        loose.add_eq(vec![1.0, 1.0], 12.0).unwrap();
        let basis = loose.solve(&o).unwrap().basis().unwrap().clone();
        // New RHS: the carried basis forces x = 2 (binding x-row), hence
        // y = 1 − 2 < 0 — primal infeasible, so the solver must fall back
        // to phase 1. The problem itself is feasible (x=1, y=0).
        let mut tight = Problem::maximize(vec![2.0, 1.0]);
        tight.add_le(vec![1.0, 0.0], 2.0).unwrap();
        tight.add_le(vec![0.0, 1.0], 2.0).unwrap();
        tight.add_eq(vec![1.0, 1.0], 1.0).unwrap();
        let warm = tight.solve_warm(&o, &basis).unwrap();
        let cold = tight.solve(&o).unwrap();
        assert!(!warm.used_warm_start(), "stale basis must fall back");
        assert_eq!(warm.x(), cold.x());
        assert_eq!(warm.objective(), cold.objective());
        assert!((warm.objective() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn wrong_shape_warm_basis_falls_back() {
        let o = opts();
        let mut small = Problem::maximize(vec![1.0]);
        small.add_le(vec![1.0], 1.0).unwrap();
        let basis = small.solve(&o).unwrap().basis().unwrap().clone();
        let mut big = Problem::maximize(vec![1.0, 2.0]);
        big.add_le(vec![1.0, 0.0], 1.0).unwrap();
        big.add_le(vec![0.0, 1.0], 1.0).unwrap();
        let warm = big.solve_warm(&o, &basis).unwrap();
        assert!(!warm.used_warm_start());
        assert!((warm.objective() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn workspace_reuse_is_equivalent_to_fresh_solves() {
        let o = opts();
        let mut ws = Workspace::new();
        let shapes: &[(usize, usize)] = &[(3, 2), (8, 5), (2, 1), (6, 9)];
        for &(n, m) in shapes {
            let mut p = Problem::maximize((0..n).map(|j| 1.0 + j as f64).collect());
            for i in 0..m {
                let row: Vec<f64> = (0..n).map(|j| ((i + j) % 3) as f64 + 0.5).collect();
                p.add_le(row, 2.0 + i as f64).unwrap();
            }
            p.add_eq(vec![1.0; n], 1.0).unwrap();
            let fresh = p.solve(&o).unwrap();
            let reused = p.solve_with(&o, &mut ws).unwrap();
            assert_eq!(fresh.x(), reused.x(), "n={n} m={m}");
            assert_eq!(fresh.objective(), reused.objective());
            assert_eq!(fresh.duals(), reused.duals());
        }
    }

    #[test]
    fn workspace_survives_error_outcomes() {
        let o = opts();
        let mut ws = Workspace::new();
        let mut bad = Problem::maximize(vec![1.0]);
        bad.add_le(vec![1.0], 1.0).unwrap();
        bad.add_ge(vec![1.0], 2.0).unwrap();
        assert!(matches!(
            bad.solve_with(&o, &mut ws),
            Err(SolveError::Infeasible { .. })
        ));
        let mut unbounded = Problem::maximize(vec![1.0, 0.0]);
        unbounded.add_le(vec![0.0, 1.0], 1.0).unwrap();
        assert!(matches!(
            unbounded.solve_with(&o, &mut ws),
            Err(SolveError::Unbounded)
        ));
        let mut good = Problem::maximize(vec![3.0, 2.0]);
        good.add_le(vec![1.0, 1.0], 4.0).unwrap();
        let s = good.solve_with(&o, &mut ws).unwrap();
        assert!((s.objective() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn many_rows_solve_without_panicking() {
        // Regression: per-row scratch buffers must not be capped at a
        // fixed stack size — a 71-row LP (> 64) through the default
        // backend used to panic. Transportation-style structure keeps it
        // feasible and bounded.
        let n = 70usize;
        let mut p = Problem::maximize((0..n).map(|j| 1.0 + (j % 7) as f64).collect());
        for j in 0..n {
            let mut row = vec![0.0; n];
            row[j] = 1.0;
            p.add_le(row, 1.0 + (j % 3) as f64).unwrap();
        }
        p.add_eq(vec![1.0; n], 5.0).unwrap(); // 71 rows total
        let s = p.solve(&opts()).unwrap();
        assert!(p.max_violation(s.x()) < 1e-7);
        assert!(s.objective() > 0.0);
        // And the warm path over the same shape.
        let basis = s.basis().expect("basis").clone();
        let warm = p.solve_warm(&opts(), &basis).unwrap();
        assert_eq!(warm.x(), s.x());
        assert!(warm.used_warm_start());
    }

    #[test]
    fn no_constraint_rows() {
        // Zero rows: x = 0 is optimal for a non-positive objective and
        // unbounded otherwise.
        let p = Problem::minimize(vec![1.0, 2.0]);
        let s = p.solve(&opts()).unwrap();
        assert!(s.objective().abs() < 1e-12);
        let p = Problem::maximize(vec![1.0]);
        assert!(matches!(p.solve(&opts()), Err(SolveError::Unbounded)));
    }
}
