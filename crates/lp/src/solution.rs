//! Optimal solution returned by the solver.

/// An optimal vertex of the linear program.
///
/// Produced by [`crate::Problem::solve`]; infeasible/unbounded outcomes are
/// reported as [`crate::SolveError`] instead, so a `Solution` is always
/// optimal within the solver tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    x: Vec<f64>,
    objective: f64,
    duals: Vec<f64>,
    iterations: usize,
}

impl Solution {
    pub(crate) fn new(x: Vec<f64>, objective: f64, duals: Vec<f64>, iterations: usize) -> Self {
        Solution {
            x,
            objective,
            duals,
            iterations,
        }
    }

    /// Optimal values of the structural variables.
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// Optimal objective value, in the caller's sense (minimization
    /// problems report the minimized value, not its negation).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Dual value (shadow price) per constraint row, in insertion order.
    ///
    /// For a `≤` row of a maximization problem this is the marginal
    /// objective gain per unit of extra right-hand side — e.g. extra
    /// communication quality per extra bit/s of bandwidth (paper §IX-C).
    /// Redundant rows dropped during presolve report `0`.
    pub fn duals(&self) -> &[f64] {
        &self.duals
    }

    /// Number of simplex pivots performed across both phases.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Consumes the solution and returns the variable vector.
    pub fn into_x(self) -> Vec<f64> {
        self.x
    }
}
