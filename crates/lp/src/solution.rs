//! Optimal solution returned by the solver, plus the [`Basis`] type that
//! lets one solve warm-start the next.

use std::fmt;

/// One basic variable of a simplex [`Basis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BasisVar {
    /// A structural (user) variable, by column index.
    Structural(usize),
    /// The slack of an inequality row, by *original row* index.
    Slack(usize),
}

/// The basis of an optimal vertex: which variable is basic in each
/// constraint row, in row order.
///
/// Obtained from [`crate::Solution::basis`] and fed to
/// [`crate::Problem::solve_warm`] to re-enter phase 2 directly on a
/// related problem (same variable and row counts, e.g. a parameter sweep
/// or an adaptive re-solve where only objective/RHS coefficients moved).
/// Artificial variables are never part of an exposed basis.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Basis {
    slots: Vec<BasisVar>,
}

impl Basis {
    pub(crate) fn new(slots: Vec<BasisVar>) -> Self {
        Basis { slots }
    }

    /// The basic variable of each constraint row, in row order.
    pub fn slots(&self) -> &[BasisVar] {
        &self.slots
    }

    /// Number of rows the basis spans.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the basis spans zero rows.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

impl fmt::Display for Basis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.slots.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match s {
                BasisVar::Structural(j) => write!(f, "x{j}")?,
                BasisVar::Slack(r) => write!(f, "s{r}")?,
            }
        }
        write!(f, "]")
    }
}

/// An optimal vertex of the linear program.
///
/// Produced by [`crate::Problem::solve`]; infeasible/unbounded outcomes are
/// reported as [`crate::SolveError`] instead, so a `Solution` is always
/// optimal within the solver tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    x: Vec<f64>,
    objective: f64,
    duals: Vec<f64>,
    iterations: usize,
    basis: Option<Basis>,
    warm: bool,
}

impl Solution {
    pub(crate) fn new(
        x: Vec<f64>,
        objective: f64,
        duals: Vec<f64>,
        iterations: usize,
        basis: Option<Basis>,
        warm: bool,
    ) -> Self {
        Solution {
            x,
            objective,
            duals,
            iterations,
            basis,
            warm,
        }
    }

    /// Optimal values of the structural variables.
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// Optimal objective value, in the caller's sense (minimization
    /// problems report the minimized value, not its negation).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Dual value (shadow price) per constraint row, in insertion order.
    ///
    /// For a `≤` row of a maximization problem this is the marginal
    /// objective gain per unit of extra right-hand side — e.g. extra
    /// communication quality per extra bit/s of bandwidth (paper §IX-C).
    /// Redundant rows dropped during presolve report `0`.
    pub fn duals(&self) -> &[f64] {
        &self.duals
    }

    /// Number of simplex pivots performed across both phases.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The optimal basis, suitable for [`crate::Problem::solve_warm`] on a
    /// related problem.
    ///
    /// `None` when the basis is not re-usable: a redundant row was dropped
    /// during presolve, or an artificial variable remained basic.
    pub fn basis(&self) -> Option<&Basis> {
        self.basis.as_ref()
    }

    /// Whether this solve actually re-entered phase 2 from a caller-
    /// provided warm basis (`false` for cold solves and for warm attempts
    /// that fell back to phase 1).
    pub fn used_warm_start(&self) -> bool {
        self.warm
    }

    /// Consumes the solution and returns the variable vector.
    pub fn into_x(self) -> Vec<f64> {
        self.x
    }
}
