//! Optimal solution returned by the solver, plus the [`Basis`] type that
//! lets one solve warm-start the next.

use crate::problem::Problem;
use std::fmt;

/// One basic variable of a simplex [`Basis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BasisVar {
    /// A structural (user) variable, by column index.
    Structural(usize),
    /// The slack of an inequality row, by *original row* index.
    Slack(usize),
}

/// The basis of an optimal vertex: which variable is basic in each
/// constraint row, in row order.
///
/// Obtained from [`crate::Solution::basis`] and fed to
/// [`crate::Problem::solve_warm`] to re-enter phase 2 directly on a
/// related problem (same variable and row counts, e.g. a parameter sweep
/// or an adaptive re-solve where only objective/RHS coefficients moved).
/// Artificial variables are never part of an exposed basis.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Basis {
    slots: Vec<BasisVar>,
}

impl Basis {
    pub(crate) fn new(slots: Vec<BasisVar>) -> Self {
        Basis { slots }
    }

    /// The basic variable of each constraint row, in row order.
    pub fn slots(&self) -> &[BasisVar] {
        &self.slots
    }

    /// Number of rows the basis spans.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the basis spans zero rows.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

impl fmt::Display for Basis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.slots.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match s {
                BasisVar::Structural(j) => write!(f, "x{j}")?,
                BasisVar::Slack(r) => write!(f, "s{r}")?,
            }
        }
        write!(f, "]")
    }
}

/// An optimal vertex of the linear program.
///
/// Produced by [`crate::Problem::solve`]; infeasible/unbounded outcomes are
/// reported as [`crate::SolveError`] instead, so a `Solution` is always
/// optimal within the solver tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    x: Vec<f64>,
    objective: f64,
    duals: Vec<f64>,
    iterations: usize,
    basis: Option<Basis>,
    warm: bool,
}

impl Solution {
    pub(crate) fn new(
        x: Vec<f64>,
        objective: f64,
        duals: Vec<f64>,
        iterations: usize,
        basis: Option<Basis>,
        warm: bool,
    ) -> Self {
        Solution {
            x,
            objective,
            duals,
            iterations,
            basis,
            warm,
        }
    }

    /// Optimal values of the structural variables.
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// Optimal objective value, in the caller's sense (minimization
    /// problems report the minimized value, not its negation).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Dual value (shadow price) per constraint row, in insertion order.
    ///
    /// For a `≤` row of a maximization problem this is the marginal
    /// objective gain per unit of extra right-hand side — e.g. extra
    /// communication quality per extra bit/s of bandwidth (paper §IX-C).
    /// Redundant rows dropped during presolve report `0`.
    pub fn duals(&self) -> &[f64] {
        &self.duals
    }

    /// Number of simplex pivots performed across both phases.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The optimal basis, suitable for [`crate::Problem::solve_warm`] on a
    /// related problem.
    ///
    /// `None` when the basis is not re-usable: a redundant row was dropped
    /// during presolve, or an artificial variable remained basic.
    pub fn basis(&self) -> Option<&Basis> {
        self.basis.as_ref()
    }

    /// Whether this solve actually re-entered phase 2 from a caller-
    /// provided warm basis (`false` for cold solves and for warm attempts
    /// that fell back to phase 1).
    pub fn used_warm_start(&self) -> bool {
        self.warm
    }

    /// Consumes the solution and returns the variable vector.
    pub fn into_x(self) -> Vec<f64> {
        self.x
    }

    /// Certifies this solution against the problem it claims to solve:
    /// replays every [`Constraint::violation`](crate::Constraint::violation)
    /// and the objective value against the returned `x`.
    ///
    /// This is the independent half of a solve — it touches none of the
    /// solver's internal state (tableau, basis, eta file), only the raw
    /// problem rows — so a passing certificate means the reported vertex
    /// is genuinely feasible and the reported objective genuinely matches
    /// `x`, whatever path (cold, warm-started, either backend) produced
    /// it. Intended for debug builds and tests: assert it after every
    /// solve whose result feeds further computation (the fleet LP
    /// decomposition path does exactly that).
    ///
    /// Tolerances are scale-aware: a row may violate by at most
    /// `tol × max(1, ‖row‖∞, |rhs|)` and the objective by
    /// `tol × max(1, |objective|)`, with `tol = 1e-7` (looser than the
    /// solver's 1e-9 pivot tolerance because violations are evaluated on
    /// the *unequilibrated* rows).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first failure: a
    /// dimension mismatch, a negative coordinate, a violated row (with
    /// its index and violation magnitude), or an objective mismatch.
    pub fn certify(&self, problem: &Problem) -> Result<(), String> {
        const TOL: f64 = 1e-7;
        if self.x.len() != problem.num_vars() {
            return Err(format!(
                "solution has {} variables, problem has {}",
                self.x.len(),
                problem.num_vars()
            ));
        }
        for (j, &v) in self.x.iter().enumerate() {
            if !v.is_finite() {
                return Err(format!("x[{j}] = {v} is not finite"));
            }
            if v < -TOL {
                return Err(format!("x[{j}] = {v} violates x ≥ 0"));
            }
        }
        for (i, c) in problem.constraints().iter().enumerate() {
            let scale = c
                .coeffs()
                .iter()
                .fold(c.rhs().abs().max(1.0), |m, a| m.max(a.abs()));
            let violation = c.violation(&self.x);
            if violation > TOL * scale {
                return Err(format!(
                    "row {i} ({:?}) violated by {violation:.3e} (scale {scale:.3e})",
                    c.kind()
                ));
            }
        }
        let replayed = problem.objective_value(&self.x);
        let obj_scale = self.objective.abs().max(1.0);
        if (replayed - self.objective).abs() > TOL * obj_scale {
            return Err(format!(
                "objective mismatch: reported {}, replayed {replayed}",
                self.objective
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_problem() -> Problem {
        let mut p = Problem::maximize(vec![3.0, 2.0]);
        p.add_le(vec![1.0, 1.0], 4.0).unwrap();
        p.add_le(vec![1.0, 0.0], 2.0).unwrap();
        p.add_eq(vec![0.0, 1.0], 1.0).unwrap();
        p
    }

    #[test]
    fn certify_accepts_a_real_solve() {
        let p = sample_problem();
        let s = p.solve(&crate::SolverOptions::default()).unwrap();
        s.certify(&p).expect("optimal solution must certify");
    }

    #[test]
    fn certify_rejects_forged_solutions() {
        let p = sample_problem();
        // Wrong dimension.
        let s = Solution::new(vec![1.0], 3.0, vec![], 0, None, false);
        assert!(s.certify(&p).unwrap_err().contains("variables"));
        // Negative coordinate.
        let s = Solution::new(vec![-1.0, 1.0], -1.0, vec![], 0, None, false);
        assert!(s.certify(&p).unwrap_err().contains("x ≥ 0"));
        // Violated inequality row (x0 = 3 > 2).
        let s = Solution::new(vec![3.0, 1.0], 11.0, vec![], 0, None, false);
        assert!(s.certify(&p).unwrap_err().contains("row 1"));
        // Violated equality row (x1 = 0 ≠ 1).
        let s = Solution::new(vec![1.0, 0.0], 3.0, vec![], 0, None, false);
        assert!(s.certify(&p).unwrap_err().contains("row 2"));
        // Feasible point, lied-about objective (true value 3·2 + 2·1 = 8).
        let s = Solution::new(vec![2.0, 1.0], 42.0, vec![], 0, None, false);
        assert!(s.certify(&p).unwrap_err().contains("objective"));
        // Non-finite coordinate.
        let s = Solution::new(vec![f64::NAN, 1.0], 0.0, vec![], 0, None, false);
        assert!(s.certify(&p).unwrap_err().contains("finite"));
    }

    #[test]
    fn certify_respects_minimization_sense() {
        let mut p = Problem::minimize(vec![1.0, 4.0]);
        p.add_ge(vec![1.0, 1.0], 2.0).unwrap();
        let s = p.solve(&crate::SolverOptions::default()).unwrap();
        s.certify(&p).expect("minimization optimum must certify");
        assert!((s.objective() - 2.0).abs() < 1e-9);
    }
}
