//! Two-phase primal simplex on a dense tableau.
//!
//! Phase 1 minimizes the sum of artificial variables to find a basic
//! feasible solution; phase 2 optimizes the user objective. Redundant rows
//! discovered at the end of phase 1 are dropped. Anti-cycling is handled by
//! switching from Dantzig to Bland pivoting after a run of degenerate
//! pivots (see [`PivotRule`]).
//!
//! All scratch memory (the tableau, basis, objective rows and row
//! metadata) lives in a [`Workspace`] so repeated solves — λ/δ sweeps, an
//! adaptive sender's periodic re-solves — reuse one allocation instead of
//! reallocating per call ([`crate::Problem::solve_with`]).

use crate::error::SolveError;
use crate::problem::{ConstraintKind, Problem};
use crate::solution::{Basis, BasisVar, Solution};

/// Pivot-column selection rule.
///
/// For the [`Backend::Revised`] backend the rules map onto pricing
/// strategies: `Dantzig` prices every column each iteration, `Bland`
/// takes the first improving column, and `Adaptive` uses partial
/// (sectioned candidate-list) pricing with the same automatic Bland
/// fallback on degeneracy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PivotRule {
    /// Most-negative reduced cost. Fast in practice; can cycle on
    /// degenerate problems.
    Dantzig,
    /// Smallest-index improving column (Bland). Guaranteed to terminate;
    /// slower.
    Bland,
    /// Dantzig, switching to Bland after a run of degenerate pivots.
    /// This is the default and combines speed with guaranteed termination.
    #[default]
    Adaptive,
}

/// Which simplex implementation [`Problem::solve`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Two-phase primal simplex on a dense row-major tableau. Every pivot
    /// rewrites the whole tableau (`O(m·n)`), which is robust and simple —
    /// kept as the reference oracle the revised backend is differentially
    /// tested against.
    DenseTableau,
    /// Revised simplex with a dense-LU basis inverse, a product-form
    /// (eta-file) update and partial pricing. The matrix is used in place
    /// (row-major); a pivot costs `O(m²)` plus the columns actually
    /// priced, which wins decisively on the paper's few-rows/many-columns
    /// LPs; honors warm starts ([`Problem::solve_warm`]). The default.
    #[default]
    Revised,
    /// Block-structured **sparse** revised simplex: CSC columns plus
    /// per-row nonzero lists, a sparse product-form basis inverse whose
    /// refactorization pivots block-local rows first (so elimination work
    /// and fill stay confined to the coupling rows plus the basic columns
    /// of active blocks), sparse eta-file FTRAN/BTRAN, and partial
    /// pricing sectioned along the declared block boundaries
    /// ([`Problem::block_starts`]). Built for the fleet layer's
    /// block-angular joint admission LPs — per-flow assignment blocks
    /// coupled only by the shared capacity rows — where it replaces the
    /// dense backends' `O(m³)` refactorizations and `O(m·n)` pricing with
    /// work proportional to the nonzeros. Honors warm starts, and
    /// canonicalizes its reported vertex exactly like
    /// [`Backend::Revised`], so warm and cold solves are bit-identical.
    Sparse,
}

/// Tuning knobs for [`Problem::solve`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolverOptions {
    /// Feasibility/optimality tolerance (default `1e-9`).
    ///
    /// Rows are equilibrated (scaled by their largest coefficient) before
    /// solving, so this tolerance is meaningful regardless of input scale.
    pub tolerance: f64,
    /// Hard cap on pivot iterations per phase (default `50_000`).
    pub max_iterations: usize,
    /// Pivot-column selection rule (default [`PivotRule::Adaptive`]).
    pub pivot_rule: PivotRule,
    /// Number of consecutive degenerate pivots before [`PivotRule::Adaptive`]
    /// falls back to Bland's rule (default `64`).
    pub degenerate_switch: usize,
    /// Simplex implementation (default [`Backend::Revised`]).
    pub backend: Backend,
    /// Telemetry registry (default [`dmc_obs::Obs::disabled`]: every
    /// recording is a no-op branch). When enabled, each solve records
    /// `lp.solves`, `lp.pivots`, `lp.refactorizations`,
    /// `lp.phase1_early_exits`, warm-start counters, the `lp.eta_len`
    /// histogram, and a per-backend `lp.solve.*` span; the logical clock
    /// advances by one tick per pivot.
    pub obs: dmc_obs::Obs,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            tolerance: 1e-9,
            max_iterations: 50_000,
            pivot_rule: PivotRule::Adaptive,
            degenerate_switch: 64,
            backend: Backend::default(),
            obs: dmc_obs::Obs::disabled(),
        }
    }
}

/// Per-solve instrumentation filled in by the revised/sparse backends and
/// published to [`SolverOptions::obs`] by the dispatcher — the kernels
/// themselves never touch the registry.
#[derive(Debug, Default)]
pub(crate) struct SolveStats {
    /// Basis (re)factorizations, the cold-start build included.
    pub(crate) refactorizations: u64,
    /// Eta-file length observed at each refactorization.
    pub(crate) eta_lengths: Vec<u64>,
    /// Whether phase 1 exited as soon as the last artificial left the
    /// basis, skipping the final pricing wrap.
    pub(crate) phase1_early_exit: bool,
}

impl SolveStats {
    /// Clears the stats at the start of a solve (buffers retained).
    pub(crate) fn reset(&mut self) {
        self.refactorizations = 0;
        self.eta_lengths.clear();
        self.phase1_early_exit = false;
    }
}

/// Reusable solver scratch memory.
///
/// A `Workspace` owns the dense tableau and every auxiliary buffer one
/// solve needs. Creating one per call (what [`Problem::solve`] does) is
/// correct but pays an allocation + zeroing cost proportional to
/// `(rows + 1) × (cols + 1)`; callers that solve many similarly-shaped
/// problems — sweeps, re-solves, the planner in `dmc-core` — should hold
/// one `Workspace` and call [`Problem::solve_with`].
///
/// ```
/// use dmc_lp::{Problem, SolverOptions, Workspace};
///
/// # fn main() -> Result<(), dmc_lp::SolveError> {
/// let mut ws = Workspace::new();
/// let opts = SolverOptions::default();
/// for rhs in [1.0, 2.0, 3.0] {
///     let mut p = Problem::maximize(vec![1.0, 2.0]);
///     p.add_le(vec![1.0, 1.0], rhs)?;
///     let s = p.solve_with(&opts, &mut ws)?;
///     assert!((s.objective() - 2.0 * rhs).abs() < 1e-9);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    /// Row-major tableau storage, `(rows + 1) * (cols + 1)` entries.
    data: Vec<f64>,
    /// Basic variable (column index) per constraint row.
    basis: Vec<usize>,
    /// Objective buffer shared by phase 1 and phase 2.
    cost: Vec<f64>,
    /// Per-original-row normalization metadata.
    row_info: Vec<RowInfo>,
    /// Buffers of the revised backend ([`Backend::Revised`]).
    pub(crate) revised: crate::revised::RevisedWorkspace,
    /// Buffers of the sparse backend ([`Backend::Sparse`]).
    pub(crate) sparse: crate::sparse::SparseWorkspace,
}

impl Workspace {
    /// Creates an empty workspace; buffers grow to fit the first solve and
    /// are retained afterwards.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Current tableau capacity in `f64` slots (diagnostic; useful to
    /// verify reuse in benchmarks).
    pub fn tableau_capacity(&self) -> usize {
        self.data.capacity()
    }
}

/// Dense tableau view over workspace buffers: `rows` constraint rows plus
/// one objective row, each of width `cols + 1` (last column is the RHS).
struct Tableau<'a> {
    data: &'a mut Vec<f64>,
    rows: usize,
    cols: usize,
    basis: &'a mut Vec<usize>,
}

impl Tableau<'_> {
    fn width(&self) -> usize {
        self.cols + 1
    }

    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * (self.cols + 1) + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * (self.cols + 1) + c] = v;
    }

    fn rhs(&self, r: usize) -> f64 {
        self.at(r, self.cols)
    }

    /// The objective row is stored at index `rows`.
    fn obj(&self, c: usize) -> f64 {
        self.at(self.rows, c)
    }

    fn rhs_obj(&self) -> f64 {
        self.at(self.rows, self.cols)
    }

    /// Gauss-Jordan pivot on `(pr, pc)`, including the objective row.
    fn pivot(&mut self, pr: usize, pc: usize) {
        let w = self.width();
        let pivot = self.at(pr, pc);
        debug_assert!(pivot.abs() > 0.0, "pivot on zero element");
        let inv = 1.0 / pivot;
        let prow_start = pr * w;
        for j in 0..w {
            self.data[prow_start + j] *= inv;
        }
        // Pivot column becomes exactly the unit vector; set explicitly to
        // avoid drift.
        self.data[prow_start + pc] = 1.0;
        for r in 0..=self.rows {
            if r == pr {
                continue;
            }
            let factor = self.at(r, pc);
            // dmc-lint: allow(float-exact) row-elimination skip: an exactly-zero pivot-column entry leaves the row unchanged
            if factor == 0.0 {
                continue;
            }
            let row_start = r * w;
            for j in 0..w {
                let delta = factor * self.data[prow_start + j];
                self.data[row_start + j] -= delta;
            }
            self.data[row_start + pc] = 0.0;
        }
        self.basis[pr] = pc;
    }

    /// Rebuilds the objective row for cost vector `cost` (length `cols`)
    /// given the current basis: `obj[j] = c_B·B⁻¹A_j − c_j`,
    /// `obj[rhs] = c_B·B⁻¹b`.
    fn install_objective(&mut self, cost: &[f64]) {
        let w = self.width();
        // Zero the row first.
        for j in 0..w {
            self.set(self.rows, j, 0.0);
        }
        let obj_start = self.rows * w;
        for (j, &c) in cost.iter().enumerate().take(self.cols) {
            self.data[obj_start + j] = -c;
        }
        for r in 0..self.rows {
            let cb = cost[self.basis[r]];
            // dmc-lint: allow(float-exact) pricing skip: an exactly-zero basic cost contributes nothing to the reduced costs
            if cb == 0.0 {
                continue;
            }
            let row_start = r * w;
            for j in 0..w {
                let delta = cb * self.data[row_start + j];
                self.data[self.rows * w + j] += delta;
            }
        }
        // Basic columns must have exactly zero reduced cost.
        for r in 0..self.rows {
            let b = self.basis[r];
            self.set(self.rows, b, 0.0);
        }
    }

    /// Removes constraint row `r` (used for redundant rows after phase 1).
    fn remove_row(&mut self, r: usize) {
        let w = self.width();
        let start = r * w;
        self.data.drain(start..start + w);
        self.basis.remove(r);
        self.rows -= 1;
    }
}

/// Per-original-row bookkeeping recorded during normalization.
#[derive(Debug, Clone, Copy, Default)]
struct RowInfo {
    /// Column holding this row's slack variable, if it is an inequality.
    slack_col: Option<usize>,
    /// Column holding this row's artificial variable, if one was created.
    art_col: Option<usize>,
    /// Whether the row was multiplied by −1 to make its RHS non-negative.
    negated: bool,
    /// Scale factor the row was divided by during equilibration.
    scale: f64,
}

/// Entry point used by [`Problem::solve`] / [`Problem::solve_with`].
pub(crate) fn solve(
    problem: &Problem,
    options: &SolverOptions,
    ws: &mut Workspace,
) -> Result<Solution, SolveError> {
    let tol = options.tolerance;
    let m = problem.num_constraints();
    let n = problem.num_vars();

    // ---- Row normalization metadata ------------------------------------
    // Equilibrate each row by its max |coeff| so tolerances are scale-free;
    // negate rows with negative RHS. Only metadata is computed here — the
    // normalized coefficients are written straight into the tableau below,
    // avoiding a per-row temporary allocation.
    ws.row_info.clear();
    let mut n_slack = 0usize;
    let mut n_art = 0usize;
    for c in problem.constraints() {
        let scale = c
            .coeffs()
            .iter()
            .fold(c.rhs().abs(), |acc, v| acc.max(v.abs()))
            .max(1e-300);
        let negated = c.rhs() / scale < 0.0;
        if c.kind() == ConstraintKind::LessEq {
            n_slack += 1;
        }
        if c.kind() == ConstraintKind::Eq || negated {
            n_art += 1;
        }
        ws.row_info.push(RowInfo {
            slack_col: None,
            art_col: None,
            negated,
            scale,
        });
    }

    // ---- Column layout -------------------------------------------------
    // structural | slacks (one per inequality) | artificials
    let art_start = n + n_slack;
    let cols = art_start + n_art;

    ws.data.clear();
    ws.data.resize((m + 1) * (cols + 1), 0.0);
    ws.basis.clear();
    ws.basis.resize(m, usize::MAX);
    let mut tab = Tableau {
        data: &mut ws.data,
        rows: m,
        cols,
        basis: &mut ws.basis,
    };

    let mut next_slack = n;
    let mut next_art = art_start;
    for (r, c) in problem.constraints().iter().enumerate() {
        let info = &mut ws.row_info[r];
        let sign = if info.negated { -1.0 } else { 1.0 };
        // Identical arithmetic to the pre-workspace solver (divide, then
        // negate): keeps results bit-for-bit stable across the refactor.
        for (j, &v) in c.coeffs().iter().enumerate() {
            let mut val = v / info.scale;
            if info.negated {
                val = -val;
            }
            tab.data[r * (cols + 1) + j] = val;
        }
        let mut rhs = c.rhs() / info.scale;
        if info.negated {
            rhs = -rhs;
        }
        tab.data[r * (cols + 1) + cols] = rhs;
        if c.kind() == ConstraintKind::LessEq {
            // Slack carries the sign of the (possibly negated) row: for a
            // normalized row `−a·x ≤ −b` → `−a·x + s = −b` becomes, after
            // negation, `a·x − s = b`.
            tab.data[r * (cols + 1) + next_slack] = sign;
            info.slack_col = Some(next_slack);
            next_slack += 1;
        }
        if c.kind() == ConstraintKind::Eq || info.negated {
            tab.data[r * (cols + 1) + next_art] = 1.0;
            info.art_col = Some(next_art);
            tab.basis[r] = next_art;
            next_art += 1;
        } else {
            // Plain `≤` row with non-negative RHS: slack is basic.
            tab.basis[r] = info.slack_col.expect("LessEq row has a slack");
        }
    }
    debug_assert_eq!(next_art, cols);

    let mut iterations = 0usize;

    // ---- Phase 1: drive artificials to zero ----------------------------
    if n_art > 0 {
        ws.cost.clear();
        ws.cost.resize(cols, 0.0);
        for c in &mut ws.cost[art_start..cols] {
            *c = -1.0; // maximize −Σ artificials
        }
        tab.install_objective(&ws.cost);
        iterate(&mut tab, options, cols, &mut iterations)?;
        let residual = -tab.rhs_obj();
        if residual > tol.max(1e-7) {
            return Err(SolveError::Infeasible { residual });
        }
        drive_out_artificials(&mut tab, art_start, tol);
    }

    // ---- Phase 2: user objective ---------------------------------------
    ws.cost.clear();
    ws.cost.resize(cols, 0.0);
    // Internal objective is always maximization (Problem negates for min).
    // Structural costs are scaled like the rows were NOT: structural
    // variables are untouched by row equilibration, so plain copy works.
    ws.cost[..n].copy_from_slice(&problem.objective);
    tab.install_objective(&ws.cost);
    // Artificials must never re-enter.
    iterate(&mut tab, options, art_start, &mut iterations)?;

    // ---- Extract primal solution ---------------------------------------
    let mut x = vec![0.0; n];
    for r in 0..tab.rows {
        let b = tab.basis[r];
        if b < n {
            // Clamp tiny negatives produced by roundoff.
            x[b] = tab.rhs(r).max(0.0);
        }
    }
    let objective_internal: f64 = problem.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
    let objective = if problem.minimize {
        -objective_internal
    } else {
        objective_internal
    };

    // ---- Extract dual values -------------------------------------------
    // For row i with slack column s: y_i = obj_row[s] (phase-2 cost of the
    // slack is 0). For equality rows the artificial column plays the same
    // role. Negated rows flip the dual's sign; equilibration divides it by
    // the row scale.
    let mut duals = vec![0.0; m];
    for (orig, info) in ws.row_info.iter().enumerate() {
        // For inequality rows the slack column's sign (−1 on negated rows)
        // already encodes the normalization flip, so `y = obj[slack]/scale`
        // holds in both cases. Equality rows read the dual off their
        // artificial column, which is always +1, so negated equalities flip.
        let (col, flip) = match (info.slack_col, info.art_col) {
            (Some(s), _) => (s, false),
            (None, Some(a)) => (a, info.negated),
            (None, None) => continue,
        };
        let mut y = tab.obj(col);
        if flip {
            y = -y;
        }
        y /= info.scale;
        // In the caller's sense: for minimization the internal objective was
        // negated, so duals flip too.
        if problem.minimize {
            y = -y;
        }
        duals[orig] = y;
    }

    // ---- Extract the final basis (for warm-start callers) ---------------
    // Only expressible when no redundant row was dropped (a shorter basis
    // cannot restart an m-row problem) and no artificial stayed basic.
    let basis = if tab.rows == m {
        let mut slots = Vec::with_capacity(m);
        for &b in tab.basis.iter() {
            if b < n {
                slots.push(BasisVar::Structural(b));
            } else if b < art_start {
                let row = ws
                    .row_info
                    .iter()
                    .position(|info| info.slack_col == Some(b))
                    .expect("slack column maps to a row");
                slots.push(BasisVar::Slack(row));
            } else {
                slots.clear();
                break;
            }
        }
        (slots.len() == m).then(|| Basis::new(slots))
    } else {
        None
    };

    Ok(Solution::new(x, objective, duals, iterations, basis, false))
}

/// Runs simplex iterations until optimality on the current objective row.
///
/// `enter_limit` caps which columns may enter the basis (used to lock out
/// artificial columns during phase 2).
fn iterate(
    tab: &mut Tableau<'_>,
    options: &SolverOptions,
    enter_limit: usize,
    iterations: &mut usize,
) -> Result<(), SolveError> {
    let tol = options.tolerance;
    let mut degenerate_run = 0usize;
    for _ in 0..options.max_iterations {
        let use_bland = match options.pivot_rule {
            PivotRule::Bland => true,
            PivotRule::Dantzig => false,
            PivotRule::Adaptive => degenerate_run >= options.degenerate_switch,
        };

        // --- entering column ---
        // Price off a contiguous slice of the objective row: one bounds
        // check instead of a `tab.obj(j)` index computation per column.
        let obj_start = tab.rows * tab.width();
        let obj_row = &tab.data[obj_start..obj_start + enter_limit];
        let enter: Option<usize> = if use_bland {
            obj_row.iter().position(|&rc| rc < -tol)
        } else {
            let mut best = -tol;
            let mut enter = None;
            for (j, &rc) in obj_row.iter().enumerate() {
                if rc < best {
                    best = rc;
                    enter = Some(j);
                }
            }
            enter
        };
        let Some(pc) = enter else {
            return Ok(()); // optimal
        };

        // --- leaving row (ratio test) ---
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for r in 0..tab.rows {
            let a = tab.at(r, pc);
            if a > tol {
                let ratio = tab.rhs(r) / a;
                let better = ratio < best_ratio - tol
                    || (ratio < best_ratio + tol
                        && leave.is_some_and(|cur| tab.basis[r] < tab.basis[cur]));
                if leave.is_none() || better {
                    if ratio < best_ratio {
                        best_ratio = ratio;
                    }
                    leave = Some(r);
                }
            }
        }
        let Some(pr) = leave else {
            return Err(SolveError::Unbounded);
        };

        if best_ratio.abs() <= tol {
            degenerate_run += 1;
        } else {
            degenerate_run = 0;
        }
        tab.pivot(pr, pc);
        *iterations += 1;
    }
    Err(SolveError::IterationLimit {
        limit: options.max_iterations,
    })
}

/// After phase 1, pivots basic artificials out of the basis (degenerate
/// pivots) or removes their rows when linearly dependent.
///
/// `art_start` is the first artificial column; slacks and structural
/// variables live below it.
fn drive_out_artificials(tab: &mut Tableau<'_>, art_start: usize, tol: f64) {
    let mut r = 0;
    while r < tab.rows {
        if tab.basis[r] >= art_start {
            // Try to pivot in any non-artificial column with a nonzero
            // entry in this row (the RHS is ~0, so the pivot is degenerate
            // and preserves feasibility regardless of sign).
            let mut pivot_col = None;
            for j in 0..art_start {
                if tab.at(r, j).abs() > tol.max(1e-10) {
                    pivot_col = Some(j);
                    break;
                }
            }
            match pivot_col {
                Some(pc) => {
                    tab.pivot(r, pc);
                    r += 1;
                }
                None => {
                    // Row is a linear combination of others: drop it.
                    tab.remove_row(r);
                }
            }
        } else {
            r += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Problem;

    fn opts() -> SolverOptions {
        // These tests exercise the dense oracle specifically.
        SolverOptions {
            backend: Backend::DenseTableau,
            ..SolverOptions::default()
        }
    }

    #[test]
    fn simple_maximize() {
        // max 3x + 2y ; x + y <= 4 ; x + 3y <= 6 ; x,y >= 0 → x=4,y=0, obj 12
        let mut p = Problem::maximize(vec![3.0, 2.0]);
        p.add_le(vec![1.0, 1.0], 4.0).unwrap();
        p.add_le(vec![1.0, 3.0], 6.0).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 12.0).abs() < 1e-9);
        assert!((s.x()[0] - 4.0).abs() < 1e-9);
        assert!(s.x()[1].abs() < 1e-9);
    }

    #[test]
    fn equality_constraint() {
        // max x + 2y ; x + y = 1 ; y <= 0.6 → x=0.4, y=0.6, obj 1.6
        let mut p = Problem::maximize(vec![1.0, 2.0]);
        p.add_eq(vec![1.0, 1.0], 1.0).unwrap();
        p.add_le(vec![0.0, 1.0], 0.6).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 1.6).abs() < 1e-9);
        assert!((s.x()[0] - 0.4).abs() < 1e-9);
        assert!((s.x()[1] - 0.6).abs() < 1e-9);
    }

    #[test]
    fn minimize_works() {
        // min 2x + 3y ; x + y >= 2 ; x,y >= 0 → x=2,y=0, obj 4
        let mut p = Problem::minimize(vec![2.0, 3.0]);
        p.add_ge(vec![1.0, 1.0], 2.0).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 4.0).abs() < 1e-9);
        assert!((s.x()[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2
        let mut p = Problem::maximize(vec![1.0]);
        p.add_le(vec![1.0], 1.0).unwrap();
        p.add_ge(vec![1.0], 2.0).unwrap();
        match p.solve(&opts()) {
            Err(SolveError::Infeasible { residual }) => assert!(residual > 0.0),
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::maximize(vec![1.0, 0.0]);
        p.add_le(vec![0.0, 1.0], 1.0).unwrap();
        assert!(matches!(p.solve(&opts()), Err(SolveError::Unbounded)));
    }

    #[test]
    fn degenerate_cycling_guard() {
        // Beale's classic cycling example (cycles under pure Dantzig without
        // safeguards). The adaptive rule must terminate with the optimum.
        let mut p = Problem::maximize(vec![0.75, -150.0, 0.02, -6.0]);
        p.add_le(vec![0.25, -60.0, -1.0 / 25.0, 9.0], 0.0).unwrap();
        p.add_le(vec![0.5, -90.0, -1.0 / 50.0, 3.0], 0.0).unwrap();
        p.add_le(vec![0.0, 0.0, 1.0, 0.0], 1.0).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn bland_rule_terminates_on_beale() {
        let mut p = Problem::maximize(vec![0.75, -150.0, 0.02, -6.0]);
        p.add_le(vec![0.25, -60.0, -1.0 / 25.0, 9.0], 0.0).unwrap();
        p.add_le(vec![0.5, -90.0, -1.0 / 50.0, 3.0], 0.0).unwrap();
        p.add_le(vec![0.0, 0.0, 1.0, 0.0], 1.0).unwrap();
        let mut o = opts();
        o.pivot_rule = PivotRule::Bland;
        let s = p.solve(&o).unwrap();
        assert!((s.objective() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn redundant_equality_rows_are_handled() {
        // Same equality twice: rank-deficient.
        let mut p = Problem::maximize(vec![1.0, 1.0]);
        p.add_eq(vec![1.0, 1.0], 1.0).unwrap();
        p.add_eq(vec![2.0, 2.0], 2.0).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn duals_match_known_shadow_prices() {
        // max 3x + 5y ; x <= 4 ; 2y <= 12 ; 3x + 2y <= 18
        // classic: optimum (2,6) obj 36, duals (0, 1.5, 1).
        let mut p = Problem::maximize(vec![3.0, 5.0]);
        p.add_le(vec![1.0, 0.0], 4.0).unwrap();
        p.add_le(vec![0.0, 2.0], 12.0).unwrap();
        p.add_le(vec![3.0, 2.0], 18.0).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 36.0).abs() < 1e-9);
        let d = s.duals();
        assert!(d[0].abs() < 1e-9, "dual0 {}", d[0]);
        assert!((d[1] - 1.5).abs() < 1e-9, "dual1 {}", d[1]);
        assert!((d[2] - 1.0).abs() < 1e-9, "dual2 {}", d[2]);
    }

    #[test]
    fn badly_scaled_rows_are_equilibrated() {
        // Same geometry as simple_maximize but scaled by 1e8 (bits/sec).
        let mut p = Problem::maximize(vec![3.0, 2.0]);
        p.add_le(vec![1e8, 1e8], 4e8).unwrap();
        p.add_le(vec![1e8, 3e8], 6e8).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 12.0).abs() < 1e-6);
        assert!((s.x()[0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_le_becomes_feasible_via_artificials() {
        // x0 - x1 <= -1  (i.e. x1 >= x0 + 1), maximize x0 with x1 <= 3.
        let mut p = Problem::maximize(vec![1.0, 0.0]);
        p.add_le(vec![1.0, -1.0], -1.0).unwrap();
        p.add_le(vec![0.0, 1.0], 3.0).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 2.0).abs() < 1e-9);
        assert!((s.x()[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rhs_equality() {
        // Σx = 0 with x ≥ 0 forces x = 0.
        let mut p = Problem::maximize(vec![5.0, 7.0]);
        p.add_eq(vec![1.0, 1.0], 0.0).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!(s.objective().abs() < 1e-9);
    }

    #[test]
    fn workspace_reuse_is_equivalent_to_fresh_solves() {
        // The same problem solved through one reused workspace and through
        // fresh per-call workspaces must agree bit-for-bit, including after
        // shape changes (growing/shrinking the tableau between calls).
        let mut ws = Workspace::new();
        let shapes: &[(usize, usize)] = &[(3, 2), (8, 5), (2, 1), (6, 9)];
        for &(n, m) in shapes {
            let mut p = Problem::maximize((0..n).map(|j| 1.0 + j as f64).collect());
            for i in 0..m {
                let row: Vec<f64> = (0..n).map(|j| ((i + j) % 3) as f64 + 0.5).collect();
                p.add_le(row, 2.0 + i as f64).unwrap();
            }
            p.add_eq(vec![1.0; n], 1.0).unwrap();
            let fresh = p.solve(&opts()).unwrap();
            let reused = p.solve_with(&opts(), &mut ws).unwrap();
            assert_eq!(fresh.x(), reused.x(), "n={n} m={m}");
            assert_eq!(fresh.objective(), reused.objective());
            assert_eq!(fresh.duals(), reused.duals());
        }
        assert!(ws.tableau_capacity() > 0);
    }

    #[test]
    fn workspace_survives_error_outcomes() {
        // Infeasible and unbounded solves must leave the workspace usable.
        let mut ws = Workspace::new();
        let mut bad = Problem::maximize(vec![1.0]);
        bad.add_le(vec![1.0], 1.0).unwrap();
        bad.add_ge(vec![1.0], 2.0).unwrap();
        assert!(matches!(
            bad.solve_with(&opts(), &mut ws),
            Err(SolveError::Infeasible { .. })
        ));
        let mut unbounded = Problem::maximize(vec![1.0, 0.0]);
        unbounded.add_le(vec![0.0, 1.0], 1.0).unwrap();
        assert!(matches!(
            unbounded.solve_with(&opts(), &mut ws),
            Err(SolveError::Unbounded)
        ));
        let mut good = Problem::maximize(vec![3.0, 2.0]);
        good.add_le(vec![1.0, 1.0], 4.0).unwrap();
        let s = good.solve_with(&opts(), &mut ws).unwrap();
        assert!((s.objective() - 12.0).abs() < 1e-9);
    }
}
