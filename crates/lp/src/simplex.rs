//! Two-phase primal simplex on a dense tableau.
//!
//! Phase 1 minimizes the sum of artificial variables to find a basic
//! feasible solution; phase 2 optimizes the user objective. Redundant rows
//! discovered at the end of phase 1 are dropped. Anti-cycling is handled by
//! switching from Dantzig to Bland pivoting after a run of degenerate
//! pivots (see [`PivotRule`]).

use crate::error::SolveError;
use crate::problem::{ConstraintKind, Problem};
use crate::solution::Solution;

/// Pivot-column selection rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PivotRule {
    /// Most-negative reduced cost. Fast in practice; can cycle on
    /// degenerate problems.
    Dantzig,
    /// Smallest-index improving column (Bland). Guaranteed to terminate;
    /// slower.
    Bland,
    /// Dantzig, switching to Bland after a run of degenerate pivots.
    /// This is the default and combines speed with guaranteed termination.
    #[default]
    Adaptive,
}

/// Tuning knobs for [`Problem::solve`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolverOptions {
    /// Feasibility/optimality tolerance (default `1e-9`).
    ///
    /// Rows are equilibrated (scaled by their largest coefficient) before
    /// solving, so this tolerance is meaningful regardless of input scale.
    pub tolerance: f64,
    /// Hard cap on pivot iterations per phase (default `50_000`).
    pub max_iterations: usize,
    /// Pivot-column selection rule (default [`PivotRule::Adaptive`]).
    pub pivot_rule: PivotRule,
    /// Number of consecutive degenerate pivots before [`PivotRule::Adaptive`]
    /// falls back to Bland's rule (default `64`).
    pub degenerate_switch: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            tolerance: 1e-9,
            max_iterations: 50_000,
            pivot_rule: PivotRule::Adaptive,
            degenerate_switch: 64,
        }
    }
}

/// Dense tableau: `rows` constraint rows plus one objective row, each of
/// width `cols + 1` (last column is the RHS).
struct Tableau {
    /// Row-major storage, `(rows + 1) * (cols + 1)` entries.
    data: Vec<f64>,
    rows: usize,
    cols: usize,
    /// Basic variable (column index) for each constraint row.
    basis: Vec<usize>,
}

impl Tableau {
    fn width(&self) -> usize {
        self.cols + 1
    }

    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * (self.cols + 1) + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * (self.cols + 1) + c] = v;
    }

    fn rhs(&self, r: usize) -> f64 {
        self.at(r, self.cols)
    }

    /// The objective row is stored at index `rows`.
    fn obj(&self, c: usize) -> f64 {
        self.at(self.rows, c)
    }

    /// Gauss-Jordan pivot on `(pr, pc)`, including the objective row.
    fn pivot(&mut self, pr: usize, pc: usize) {
        let w = self.width();
        let pivot = self.at(pr, pc);
        debug_assert!(pivot.abs() > 0.0, "pivot on zero element");
        let inv = 1.0 / pivot;
        let prow_start = pr * w;
        for j in 0..w {
            self.data[prow_start + j] *= inv;
        }
        // Pivot column becomes exactly the unit vector; set explicitly to
        // avoid drift.
        self.data[prow_start + pc] = 1.0;
        for r in 0..=self.rows {
            if r == pr {
                continue;
            }
            let factor = self.at(r, pc);
            if factor == 0.0 {
                continue;
            }
            let row_start = r * w;
            for j in 0..w {
                let delta = factor * self.data[prow_start + j];
                self.data[row_start + j] -= delta;
            }
            self.data[row_start + pc] = 0.0;
        }
        self.basis[pr] = pc;
    }

    /// Rebuilds the objective row for cost vector `cost` (length `cols`)
    /// given the current basis: `obj[j] = c_B·B⁻¹A_j − c_j`,
    /// `obj[rhs] = c_B·B⁻¹b`.
    fn install_objective(&mut self, cost: &[f64]) {
        let w = self.width();
        // Zero the row first.
        for j in 0..w {
            self.set(self.rows, j, 0.0);
        }
        for j in 0..self.cols {
            self.set(self.rows, j, -cost[j]);
        }
        for r in 0..self.rows {
            let cb = cost[self.basis[r]];
            if cb == 0.0 {
                continue;
            }
            let row_start = r * w;
            for j in 0..w {
                let delta = cb * self.data[row_start + j];
                self.data[self.rows * w + j] += delta;
            }
        }
        // Basic columns must have exactly zero reduced cost.
        for r in 0..self.rows {
            let b = self.basis[r];
            self.set(self.rows, b, 0.0);
        }
    }

    /// Removes constraint row `r` (used for redundant rows after phase 1).
    fn remove_row(&mut self, r: usize) {
        let w = self.width();
        let start = r * w;
        self.data.drain(start..start + w);
        self.basis.remove(r);
        self.rows -= 1;
    }
}

/// Column classification for the assembled tableau.
struct Layout {
    /// Number of structural variables.
    n_struct: usize,
    /// First artificial column (slacks live in `n_struct..art_start`).
    art_start: usize,
    /// For each original constraint row: the column of its slack
    /// (inequalities) and whether the row was negated during normalization.
    row_info: Vec<RowInfo>,
}

#[derive(Clone, Copy)]
struct RowInfo {
    /// Column holding this row's slack variable, if it is an inequality.
    slack_col: Option<usize>,
    /// Column holding this row's artificial variable, if one was created.
    art_col: Option<usize>,
    /// Whether the row was multiplied by −1 to make its RHS non-negative.
    negated: bool,
    /// Scale factor the row was divided by during equilibration.
    scale: f64,
}

/// Entry point used by [`Problem::solve`].
pub(crate) fn solve(problem: &Problem, options: &SolverOptions) -> Result<Solution, SolveError> {
    let tol = options.tolerance;
    let m = problem.num_constraints();
    let n = problem.num_vars();

    // ---- Assemble normalized rows -------------------------------------
    // Equilibrate each row by its max |coeff| so tolerances are scale-free.
    let mut norm_rows: Vec<(Vec<f64>, f64, ConstraintKind, bool, f64)> = Vec::with_capacity(m);
    for c in problem.constraints() {
        let scale = c
            .coeffs()
            .iter()
            .fold(c.rhs().abs(), |acc, v| acc.max(v.abs()))
            .max(1e-300);
        let mut coeffs: Vec<f64> = c.coeffs().iter().map(|v| v / scale).collect();
        let mut rhs = c.rhs() / scale;
        let mut negated = false;
        if rhs < 0.0 {
            for v in &mut coeffs {
                *v = -*v;
            }
            rhs = -rhs;
            negated = true;
        }
        norm_rows.push((coeffs, rhs, c.kind(), negated, scale));
    }

    // ---- Column layout -------------------------------------------------
    // structural | slacks (one per inequality) | artificials
    let n_slack = norm_rows
        .iter()
        .filter(|r| r.2 == ConstraintKind::LessEq)
        .count();
    let art_start = n + n_slack;
    // An inequality that was NOT negated starts with its slack basic and
    // needs no artificial. Negated inequalities (originally `≥` after
    // normalization) and equalities need an artificial.
    let n_art = norm_rows
        .iter()
        .filter(|r| r.2 == ConstraintKind::Eq || r.3)
        .count();
    let cols = art_start + n_art;

    let mut tab = Tableau {
        data: vec![0.0; (m + 1) * (cols + 1)],
        rows: m,
        cols,
        basis: vec![usize::MAX; m],
    };
    let mut row_info = Vec::with_capacity(m);
    let mut next_slack = n;
    let mut next_art = art_start;
    for (r, (coeffs, rhs, kind, negated, scale)) in norm_rows.iter().enumerate() {
        for (j, &v) in coeffs.iter().enumerate() {
            tab.set(r, j, v);
        }
        tab.set(r, cols, *rhs);
        let mut info = RowInfo {
            slack_col: None,
            art_col: None,
            negated: *negated,
            scale: *scale,
        };
        if *kind == ConstraintKind::LessEq {
            // Slack carries the sign of the (possibly negated) row: for a
            // normalized row `−a·x ≤ −b` → `−a·x + s = −b` becomes, after
            // negation, `a·x − s = b`.
            let sign = if *negated { -1.0 } else { 1.0 };
            tab.set(r, next_slack, sign);
            info.slack_col = Some(next_slack);
            next_slack += 1;
        }
        if *kind == ConstraintKind::Eq || *negated {
            tab.set(r, next_art, 1.0);
            info.art_col = Some(next_art);
            tab.basis[r] = next_art;
            next_art += 1;
        } else {
            // Plain `≤` row with non-negative RHS: slack is basic.
            tab.basis[r] = info.slack_col.expect("LessEq row has a slack");
        }
        row_info.push(info);
    }
    debug_assert_eq!(next_art, cols);
    let layout = Layout {
        n_struct: n,
        art_start,
        row_info,
    };

    let mut iterations = 0usize;

    // ---- Phase 1: drive artificials to zero ----------------------------
    if n_art > 0 {
        let mut phase1_cost = vec![0.0; cols];
        for c in art_start..cols {
            phase1_cost[c] = -1.0; // maximize −Σ artificials
        }
        tab.install_objective(&phase1_cost);
        iterate(&mut tab, options, cols, &mut iterations)?;
        let residual = -tab.rhs_obj();
        if residual > tol.max(1e-7) {
            return Err(SolveError::Infeasible { residual });
        }
        drive_out_artificials(&mut tab, &layout, tol);
    }

    // ---- Phase 2: user objective ---------------------------------------
    let mut phase2_cost = vec![0.0; cols];
    // Internal objective is always maximization (Problem negates for min).
    // Structural costs are scaled like the rows were NOT: structural
    // variables are untouched by row equilibration, so plain copy works.
    phase2_cost[..n].copy_from_slice(&problem.objective);
    tab.install_objective(&phase2_cost);
    // Artificials must never re-enter.
    iterate(&mut tab, options, art_start, &mut iterations)?;

    // ---- Extract primal solution ---------------------------------------
    let mut x = vec![0.0; n];
    for r in 0..tab.rows {
        let b = tab.basis[r];
        if b < n {
            // Clamp tiny negatives produced by roundoff.
            x[b] = tab.rhs(r).max(0.0);
        }
    }
    let objective_internal: f64 = problem.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
    let objective = if problem.minimize {
        -objective_internal
    } else {
        objective_internal
    };

    // ---- Extract dual values -------------------------------------------
    // For row i with slack column s: y_i = obj_row[s] (phase-2 cost of the
    // slack is 0). For equality rows the artificial column plays the same
    // role. Negated rows flip the dual's sign; equilibration divides it by
    // the row scale.
    let mut duals = vec![0.0; m];
    // Map surviving tableau rows back to original rows: removed rows were
    // redundant and keep dual 0. We track via the basis-independent
    // row_info: recompute by matching slack/artificial columns is not
    // possible after removal, so `drive_out_artificials` records removals.
    for (orig, info) in layout.row_info.iter().enumerate() {
        // For inequality rows the slack column's sign (−1 on negated rows)
        // already encodes the normalization flip, so `y = obj[slack]/scale`
        // holds in both cases. Equality rows read the dual off their
        // artificial column, which is always +1, so negated equalities flip.
        let (col, flip) = match (info.slack_col, info.art_col) {
            (Some(s), _) => (s, false),
            (None, Some(a)) => (a, info.negated),
            (None, None) => continue,
        };
        let mut y = tab.obj(col);
        if flip {
            y = -y;
        }
        y /= info.scale;
        // In the caller's sense: for minimization the internal objective was
        // negated, so duals flip too.
        if problem.minimize {
            y = -y;
        }
        duals[orig] = y;
    }

    Ok(Solution::new(x, objective, duals, iterations))
}

impl Tableau {
    fn rhs_obj(&self) -> f64 {
        self.at(self.rows, self.cols)
    }
}

/// Runs simplex iterations until optimality on the current objective row.
///
/// `enter_limit` caps which columns may enter the basis (used to lock out
/// artificial columns during phase 2).
fn iterate(
    tab: &mut Tableau,
    options: &SolverOptions,
    enter_limit: usize,
    iterations: &mut usize,
) -> Result<(), SolveError> {
    let tol = options.tolerance;
    let mut degenerate_run = 0usize;
    for _ in 0..options.max_iterations {
        let use_bland = match options.pivot_rule {
            PivotRule::Bland => true,
            PivotRule::Dantzig => false,
            PivotRule::Adaptive => degenerate_run >= options.degenerate_switch,
        };

        // --- entering column ---
        let mut enter: Option<usize> = None;
        if use_bland {
            for j in 0..enter_limit {
                if tab.obj(j) < -tol {
                    enter = Some(j);
                    break;
                }
            }
        } else {
            let mut best = -tol;
            for j in 0..enter_limit {
                let rc = tab.obj(j);
                if rc < best {
                    best = rc;
                    enter = Some(j);
                }
            }
        }
        let Some(pc) = enter else {
            return Ok(()); // optimal
        };

        // --- leaving row (ratio test) ---
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for r in 0..tab.rows {
            let a = tab.at(r, pc);
            if a > tol {
                let ratio = tab.rhs(r) / a;
                let better = ratio < best_ratio - tol
                    || (ratio < best_ratio + tol
                        && leave.is_some_and(|cur| tab.basis[r] < tab.basis[cur]));
                if leave.is_none() || better {
                    if ratio < best_ratio {
                        best_ratio = ratio;
                    }
                    leave = Some(r);
                }
            }
        }
        let Some(pr) = leave else {
            return Err(SolveError::Unbounded);
        };

        if best_ratio.abs() <= tol {
            degenerate_run += 1;
        } else {
            degenerate_run = 0;
        }
        tab.pivot(pr, pc);
        *iterations += 1;
    }
    Err(SolveError::IterationLimit {
        limit: options.max_iterations,
    })
}

/// After phase 1, pivots basic artificials out of the basis (degenerate
/// pivots) or removes their rows when linearly dependent.
fn drive_out_artificials(tab: &mut Tableau, layout: &Layout, tol: f64) {
    let mut r = 0;
    while r < tab.rows {
        if tab.basis[r] >= layout.art_start {
            // Try to pivot in any non-artificial column with a nonzero
            // entry in this row (the RHS is ~0, so the pivot is degenerate
            // and preserves feasibility regardless of sign).
            let mut pivot_col = None;
            for j in 0..layout.art_start {
                if tab.at(r, j).abs() > tol.max(1e-10) {
                    pivot_col = Some(j);
                    break;
                }
            }
            match pivot_col {
                Some(pc) => {
                    tab.pivot(r, pc);
                    r += 1;
                }
                None => {
                    // Row is a linear combination of others: drop it.
                    tab.remove_row(r);
                }
            }
        } else {
            r += 1;
        }
    }
    let _ = layout.n_struct;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Problem;

    fn opts() -> SolverOptions {
        SolverOptions::default()
    }

    #[test]
    fn simple_maximize() {
        // max 3x + 2y ; x + y <= 4 ; x + 3y <= 6 ; x,y >= 0 → x=4,y=0, obj 12
        let mut p = Problem::maximize(vec![3.0, 2.0]);
        p.add_le(vec![1.0, 1.0], 4.0).unwrap();
        p.add_le(vec![1.0, 3.0], 6.0).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 12.0).abs() < 1e-9);
        assert!((s.x()[0] - 4.0).abs() < 1e-9);
        assert!(s.x()[1].abs() < 1e-9);
    }

    #[test]
    fn equality_constraint() {
        // max x + 2y ; x + y = 1 ; y <= 0.6 → x=0.4, y=0.6, obj 1.6
        let mut p = Problem::maximize(vec![1.0, 2.0]);
        p.add_eq(vec![1.0, 1.0], 1.0).unwrap();
        p.add_le(vec![0.0, 1.0], 0.6).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 1.6).abs() < 1e-9);
        assert!((s.x()[0] - 0.4).abs() < 1e-9);
        assert!((s.x()[1] - 0.6).abs() < 1e-9);
    }

    #[test]
    fn minimize_works() {
        // min 2x + 3y ; x + y >= 2 ; x,y >= 0 → x=2,y=0, obj 4
        let mut p = Problem::minimize(vec![2.0, 3.0]);
        p.add_ge(vec![1.0, 1.0], 2.0).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 4.0).abs() < 1e-9);
        assert!((s.x()[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2
        let mut p = Problem::maximize(vec![1.0]);
        p.add_le(vec![1.0], 1.0).unwrap();
        p.add_ge(vec![1.0], 2.0).unwrap();
        match p.solve(&opts()) {
            Err(SolveError::Infeasible { residual }) => assert!(residual > 0.0),
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::maximize(vec![1.0, 0.0]);
        p.add_le(vec![0.0, 1.0], 1.0).unwrap();
        assert!(matches!(p.solve(&opts()), Err(SolveError::Unbounded)));
    }

    #[test]
    fn degenerate_cycling_guard() {
        // Beale's classic cycling example (cycles under pure Dantzig without
        // safeguards). The adaptive rule must terminate with the optimum.
        let mut p = Problem::maximize(vec![0.75, -150.0, 0.02, -6.0]);
        p.add_le(vec![0.25, -60.0, -1.0 / 25.0, 9.0], 0.0).unwrap();
        p.add_le(vec![0.5, -90.0, -1.0 / 50.0, 3.0], 0.0).unwrap();
        p.add_le(vec![0.0, 0.0, 1.0, 0.0], 1.0).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn bland_rule_terminates_on_beale() {
        let mut p = Problem::maximize(vec![0.75, -150.0, 0.02, -6.0]);
        p.add_le(vec![0.25, -60.0, -1.0 / 25.0, 9.0], 0.0).unwrap();
        p.add_le(vec![0.5, -90.0, -1.0 / 50.0, 3.0], 0.0).unwrap();
        p.add_le(vec![0.0, 0.0, 1.0, 0.0], 1.0).unwrap();
        let mut o = opts();
        o.pivot_rule = PivotRule::Bland;
        let s = p.solve(&o).unwrap();
        assert!((s.objective() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn redundant_equality_rows_are_handled() {
        // Same equality twice: rank-deficient.
        let mut p = Problem::maximize(vec![1.0, 1.0]);
        p.add_eq(vec![1.0, 1.0], 1.0).unwrap();
        p.add_eq(vec![2.0, 2.0], 2.0).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn duals_match_known_shadow_prices() {
        // max 3x + 5y ; x <= 4 ; 2y <= 12 ; 3x + 2y <= 18
        // classic: optimum (2,6) obj 36, duals (0, 1.5, 1).
        let mut p = Problem::maximize(vec![3.0, 5.0]);
        p.add_le(vec![1.0, 0.0], 4.0).unwrap();
        p.add_le(vec![0.0, 2.0], 12.0).unwrap();
        p.add_le(vec![3.0, 2.0], 18.0).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 36.0).abs() < 1e-9);
        let d = s.duals();
        assert!(d[0].abs() < 1e-9, "dual0 {}", d[0]);
        assert!((d[1] - 1.5).abs() < 1e-9, "dual1 {}", d[1]);
        assert!((d[2] - 1.0).abs() < 1e-9, "dual2 {}", d[2]);
    }

    #[test]
    fn badly_scaled_rows_are_equilibrated() {
        // Same geometry as simple_maximize but scaled by 1e8 (bits/sec).
        let mut p = Problem::maximize(vec![3.0, 2.0]);
        p.add_le(vec![1e8, 1e8], 4e8).unwrap();
        p.add_le(vec![1e8, 3e8], 6e8).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 12.0).abs() < 1e-6);
        assert!((s.x()[0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_le_becomes_feasible_via_artificials() {
        // x0 - x1 <= -1  (i.e. x1 >= x0 + 1), maximize x0 with x1 <= 3.
        let mut p = Problem::maximize(vec![1.0, 0.0]);
        p.add_le(vec![1.0, -1.0], -1.0).unwrap();
        p.add_le(vec![0.0, 1.0], 3.0).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!((s.objective() - 2.0).abs() < 1e-9);
        assert!((s.x()[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rhs_equality() {
        // Σx = 0 with x ≥ 0 forces x = 0.
        let mut p = Problem::maximize(vec![5.0, 7.0]);
        p.add_eq(vec![1.0, 1.0], 0.0).unwrap();
        let s = p.solve(&opts()).unwrap();
        assert!(s.objective().abs() < 1e-9);
    }
}
