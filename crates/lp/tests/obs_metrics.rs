//! Telemetry contract of the solver: metrics recorded per solve, spans
//! measured in pivots, and identical numerics with obs on or off.

use dmc_lp::{Backend, Problem, SolverOptions, Workspace};
use dmc_obs::Obs;

fn sample_problem() -> Problem {
    let mut p = Problem::maximize(vec![3.0, 5.0]);
    p.add_le(vec![1.0, 0.0], 4.0).expect("valid row");
    p.add_le(vec![0.0, 2.0], 12.0).expect("valid row");
    p.add_le(vec![3.0, 2.0], 18.0).expect("valid row");
    p
}

#[test]
fn solve_records_counters_and_span() {
    for (backend, span_name) in [
        (Backend::DenseTableau, "lp.solve.dense"),
        (Backend::Revised, "lp.solve.revised"),
        (Backend::Sparse, "lp.solve.sparse"),
    ] {
        let obs = Obs::enabled();
        let opts = SolverOptions {
            backend,
            obs: obs.clone(),
            ..SolverOptions::default()
        };
        let s = sample_problem()
            .solve(&opts)
            .expect("sample LP is feasible");
        let snap = obs.snapshot();
        assert_eq!(snap.counter("lp.solves"), Some(1), "{span_name}");
        assert_eq!(
            snap.counter("lp.pivots"),
            Some(s.iterations() as u64),
            "{span_name}"
        );
        assert_eq!(snap.clock, s.iterations() as u64, "clock ticks = pivots");
        let span = snap.span(span_name).expect("solve span recorded");
        assert_eq!(span.count, 1);
        assert_eq!(span.total_ticks, s.iterations() as u64);
        if backend != Backend::DenseTableau {
            assert!(
                snap.counter("lp.refactorizations").unwrap_or(0) >= 1,
                "cold start factorizes at least once"
            );
            assert!(snap.histogram("lp.eta_len").is_some());
        }
    }
}

#[test]
fn warm_start_counters_and_unchanged_numerics() {
    let obs = Obs::enabled();
    let opts = SolverOptions {
        obs: obs.clone(),
        ..SolverOptions::default()
    };
    let plain = SolverOptions::default();
    let p = sample_problem();
    let mut ws = Workspace::new();

    let cold_plain = p.solve(&plain).expect("cold solve");
    let cold = p.solve_with(&opts, &mut ws).expect("cold solve");
    assert_eq!(cold.x(), cold_plain.x(), "obs must not change results");
    assert_eq!(cold.objective(), cold_plain.objective());

    let basis = cold.basis().expect("optimal basis exported");
    let warm = p
        .solve_warm_with(&opts, &mut ws, basis)
        .expect("warm solve");
    assert!(warm.used_warm_start());
    let snap = obs.snapshot();
    assert_eq!(snap.counter("lp.solves"), Some(2));
    assert_eq!(snap.counter("lp.warm_attempts"), Some(1));
    assert_eq!(snap.counter("lp.warm_used"), Some(1));
}

#[test]
fn infeasible_solves_count_as_errors() {
    let obs = Obs::enabled();
    let opts = SolverOptions {
        obs: obs.clone(),
        ..SolverOptions::default()
    };
    let mut p = Problem::maximize(vec![1.0]);
    p.add_le(vec![1.0], 1.0).expect("valid row");
    p.add_ge(vec![1.0], 2.0).expect("valid row");
    assert!(p.solve(&opts).is_err());
    let snap = obs.snapshot();
    assert_eq!(snap.counter("lp.errors"), Some(1));
    assert_eq!(snap.counter("lp.solves"), Some(1));
}
