//! Differential testing: the revised and sparse backends against the
//! dense oracle.
//!
//! Random LPs — feasible by construction, infeasible by construction,
//! unbounded by construction, and unconstrained-outcome mixes — must
//! produce the same outcome class from [`Backend::Revised`],
//! [`Backend::Sparse`] and [`Backend::DenseTableau`], and on success
//! agree on objective, primal point and duals to 1e-9. Coefficients are
//! drawn from continuous distributions, so optima (and duals) are unique
//! almost surely and the pointwise comparison is meaningful.
//!
//! The block-angular properties generate random fleet-shaped LPs (per
//! block: a `Σx = 1` row and an optional floor row; a few coupling
//! capacity rows over everything) with declared block boundaries, and
//! additionally run warm-started churn sequences (tombstone a block,
//! revive it) asserting sparse warm ≡ sparse cold **bitwise** and both
//! ≡ dense to 1e-9.

use dmc_lp::{Backend, Problem, SolveError, SolverOptions};
use proptest::prelude::*;

fn dense_opts() -> SolverOptions {
    SolverOptions {
        backend: Backend::DenseTableau,
        ..SolverOptions::default()
    }
}

fn revised_opts() -> SolverOptions {
    SolverOptions {
        backend: Backend::Revised,
        ..SolverOptions::default()
    }
}

fn sparse_opts() -> SolverOptions {
    SolverOptions {
        backend: Backend::Sparse,
        ..SolverOptions::default()
    }
}

/// Deterministic pseudo-random f64 in [0, 1) from a seed counter
/// (SplitMix64, same scheme as `proptest_simplex.rs`).
fn mix(seed: &mut u64) -> f64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = z ^ (z >> 31);
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A bounded-feasible LP with a known interior point: `≤` rows through
/// the point plus box bounds, optionally one equality row through it.
fn build_feasible_lp(n: usize, m: usize, with_eq: bool, seed0: u64) -> Problem {
    let mut seed = seed0;
    let x0: Vec<f64> = (0..n).map(|_| mix(&mut seed) * 5.0).collect();
    let c: Vec<f64> = (0..n).map(|_| mix(&mut seed) * 4.0 - 2.0).collect();
    let mut p = Problem::maximize(c);
    for _ in 0..m {
        let a: Vec<f64> = (0..n).map(|_| mix(&mut seed) * 2.0 - 0.5).collect();
        let lhs: f64 = a.iter().zip(&x0).map(|(ai, xi)| ai * xi).sum();
        let slack = mix(&mut seed) * 3.0;
        p.add_le(a, lhs + slack).unwrap();
    }
    if with_eq {
        let a: Vec<f64> = (0..n).map(|_| mix(&mut seed) + 0.1).collect();
        let lhs: f64 = a.iter().zip(&x0).map(|(ai, xi)| ai * xi).sum();
        p.add_eq(a, lhs).unwrap();
    }
    for j in 0..n {
        let mut row = vec![0.0; n];
        row[j] = 1.0;
        p.add_le(row, 10.0 + mix(&mut seed)).unwrap();
    }
    p
}

fn assert_backends_agree(p: &Problem) -> Result<(), TestCaseError> {
    let dense = p.solve(&dense_opts());
    for (name, opts) in [("revised", revised_opts()), ("sparse", sparse_opts())] {
        let other = p.solve(&opts);
        match (&dense, &other) {
            (Ok(d), Ok(r)) => {
                prop_assert!(
                    (d.objective() - r.objective()).abs() < 1e-9,
                    "objective: dense {} vs {name} {}",
                    d.objective(),
                    r.objective()
                );
                for (j, (a, b)) in d.x().iter().zip(r.x()).enumerate() {
                    prop_assert!((a - b).abs() < 1e-9, "x[{j}]: dense {a} vs {name} {b}");
                }
                for (i, (a, b)) in d.duals().iter().zip(r.duals()).enumerate() {
                    prop_assert!((a - b).abs() < 1e-9, "dual[{i}]: dense {a} vs {name} {b}");
                }
                // Both must actually be feasible for the original problem.
                prop_assert!(p.max_violation(d.x()) < 1e-6);
                prop_assert!(p.max_violation(r.x()) < 1e-6);
            }
            (Err(SolveError::Infeasible { .. }), Err(SolveError::Infeasible { .. })) => {}
            (Err(SolveError::Unbounded), Err(SolveError::Unbounded)) => {}
            (d, r) => {
                return Err(TestCaseError(format!(
                    "outcome mismatch: dense {d:?} vs {name} {r:?}"
                )))
            }
        }
    }
    Ok(())
}

/// A random block-angular LP in the fleet's joint shape: `blocks` blocks
/// of `width` columns (per block a `Σx = 1` row and, for odd blocks, a
/// floor row), plus `couplings` capacity rows over all columns. With
/// `declare` the block boundaries are recorded on the problem.
fn build_block_angular(
    blocks: usize,
    width: usize,
    couplings: usize,
    declare: bool,
    seed0: u64,
) -> Problem {
    let mut seed = seed0;
    let n = blocks * width;
    let c: Vec<f64> = (0..n).map(|_| 0.2 + mix(&mut seed)).collect();
    let mut p = Problem::maximize(c.clone());
    for k in 0..couplings {
        let row: Vec<f64> = (0..n).map(|_| 0.05 + mix(&mut seed)).collect();
        // Roomy enough to be feasible most of the time, tight enough to
        // bind: between 30% and 110% of the per-block average demand.
        let rhs = (0.3 + 0.8 * mix(&mut seed)) * blocks as f64 * 0.55;
        p.add_le(row, rhs).unwrap();
        let _ = k;
    }
    for f in 0..blocks {
        if f % 2 == 1 {
            // Floor row: p_f · x^f ≥ q with q below the best coefficient,
            // so the block alone can satisfy it.
            let mut row = vec![0.0; n];
            let mut best: f64 = 0.0;
            for j in f * width..(f + 1) * width {
                row[j] = c[j];
                best = best.max(c[j]);
            }
            p.add_ge(row, best * 0.5 * mix(&mut seed)).unwrap();
        }
        let mut row = vec![0.0; n];
        for v in &mut row[f * width..(f + 1) * width] {
            *v = 1.0;
        }
        p.add_eq(row, 1.0).unwrap();
    }
    if declare {
        p.set_block_starts((0..blocks).map(|f| f * width).collect())
            .unwrap();
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Feasible bounded LPs (with and without an equality row): identical
    /// optima from both backends.
    #[test]
    fn feasible_lps_agree(
        n in 1usize..8,
        m in 1usize..9,
        with_eq in proptest::prelude::any::<bool>(),
        seed in any::<u64>(),
    ) {
        let p = build_feasible_lp(n, m, with_eq, seed);
        assert_backends_agree(&p)?;
    }

    /// Infeasible-by-construction LPs (`a·x ≤ t` and `a·x ≥ t + gap`):
    /// both backends must report infeasibility.
    #[test]
    fn infeasible_lps_agree(n in 1usize..6, seed in any::<u64>(), gap in 0.5f64..5.0) {
        let mut seed = seed;
        let a: Vec<f64> = (0..n).map(|_| mix(&mut seed) + 0.1).collect();
        let t = mix(&mut seed) * 4.0;
        let mut p = Problem::maximize((0..n).map(|_| mix(&mut seed)).collect());
        p.add_le(a.clone(), t).unwrap();
        p.add_ge(a, t + gap).unwrap();
        assert_backends_agree(&p)?;
    }

    /// Unbounded-by-construction LPs (one variable unconstrained above
    /// with positive objective): both backends must report unboundedness.
    #[test]
    fn unbounded_lps_agree(n in 2usize..6, seed in any::<u64>()) {
        let mut seed = seed;
        let mut c: Vec<f64> = (0..n).map(|_| mix(&mut seed)).collect();
        c[0] = 1.0 + mix(&mut seed); // strictly improving direction
        let mut p = Problem::maximize(c);
        // Constrain every variable except x0.
        for j in 1..n {
            let mut row = vec![0.0; n];
            row[j] = 1.0;
            p.add_le(row, 1.0 + mix(&mut seed)).unwrap();
        }
        assert_backends_agree(&p)?;
    }

    /// Paper-shaped LPs (`Σx = 1` distribution rows plus capacity rows):
    /// the exact structure the planner emits.
    #[test]
    fn paper_shaped_lps_agree(n in 2usize..40, rows in 1usize..6, seed in any::<u64>()) {
        let mut seed = seed;
        let pvec: Vec<f64> = (0..n).map(|_| mix(&mut seed)).collect();
        let mut p = Problem::maximize(pvec);
        for _ in 0..rows {
            let usage: Vec<f64> = (0..n).map(|_| mix(&mut seed) * 2.0).collect();
            p.add_le(usage, 0.5 + mix(&mut seed) * 2.0).unwrap();
        }
        p.add_eq(vec![1.0; n], 1.0).unwrap();
        assert_backends_agree(&p)?;
    }

    /// Warm-starting from the previous point of a RHS sweep must agree
    /// with the dense oracle at every point (warm results are still
    /// exact optima, not approximations).
    #[test]
    fn warm_sweep_agrees_with_dense(n in 2usize..20, seed in any::<u64>()) {
        let mut seed = seed;
        let pvec: Vec<f64> = (0..n).map(|_| mix(&mut seed)).collect();
        let usage: Vec<f64> = (0..n).map(|_| 0.2 + mix(&mut seed)).collect();
        // Start just above the minimum feasible capacity (all mass on the
        // cheapest column), so every sweep point is feasible.
        let min_usage = usage.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut basis = None;
        for step in 0..6 {
            let rhs = min_usage + 0.05 + 0.25 * step as f64;
            let mut p = Problem::maximize(pvec.clone());
            p.add_le(usage.clone(), rhs).unwrap();
            p.add_eq(vec![1.0; n], 1.0).unwrap();
            let revised = match &basis {
                Some(b) => p.solve_warm(&revised_opts(), b).unwrap(),
                None => p.solve(&revised_opts()).unwrap(),
            };
            let dense = p.solve(&dense_opts()).unwrap();
            prop_assert!(
                (revised.objective() - dense.objective()).abs() < 1e-9,
                "step {step}: warm {} vs dense {}",
                revised.objective(),
                dense.objective()
            );
            for (j, (a, b)) in revised.x().iter().zip(dense.x()).enumerate() {
                prop_assert!((a - b).abs() < 1e-9, "step {step} x[{j}]: {a} vs {b}");
            }
            basis = revised.basis().cloned();
        }
    }

    /// Random block-angular fleet LPs: all three backends agree to 1e-9,
    /// with and without declared block boundaries (declaring structure
    /// changes pivot orders, never answers).
    #[test]
    fn block_angular_lps_agree(
        blocks in 1usize..10,
        width in 2usize..8,
        couplings in 1usize..4,
        declare in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let p = build_block_angular(blocks, width, couplings, declare, seed);
        assert_backends_agree(&p)?;
    }

    /// Warm-started churn over a block-angular LP: tombstone a block
    /// (`Σx = 1 → 0`, objective zeroed), then revive it, warm-starting
    /// every re-solve from the previous basis. Sparse warm must equal
    /// sparse cold **bitwise** at every step, and both must match the
    /// dense oracle to 1e-9.
    #[test]
    fn block_angular_churn_warm_equals_cold(
        blocks in 2usize..8,
        width in 2usize..6,
        victim_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let base = build_block_angular(blocks, width, 2, true, seed);
        let victim = (victim_seed % blocks as u64) as usize;
        let eq_row_of = |f: usize| {
            // Rows: 2 couplings, then per block (floor for odd blocks)
            // followed by its Σx row.
            let mut row = 2;
            for g in 0..f {
                row += if g % 2 == 1 { 2 } else { 1 };
            }
            row + if f % 2 == 1 { 1 } else { 0 }
        };
        let zeros = vec![0.0; width];
        let objective = base.objective();

        let mut tombstoned = base.clone();
        tombstoned.set_rhs(eq_row_of(victim), 0.0).unwrap();
        tombstoned.set_objective_range(victim * width, &zeros).unwrap();
        if victim % 2 == 1 {
            // Relax the tombstoned block's floor row (stored negated).
            tombstoned.set_rhs(eq_row_of(victim) - 1, 0.0).unwrap();
        }
        let mut revived = tombstoned.clone();
        revived.set_rhs(eq_row_of(victim), 1.0).unwrap();
        revived
            .set_objective_range(victim * width, &objective[victim * width..(victim + 1) * width])
            .unwrap();

        let sparse = sparse_opts();
        let mut basis = None;
        for (step, p) in [&base, &tombstoned, &revived].into_iter().enumerate() {
            let cold = p.solve(&sparse);
            let warm = match (&basis, &cold) {
                (Some(b), Ok(_)) => Some(p.solve_warm(&sparse, b).unwrap()),
                _ => None,
            };
            match cold {
                Ok(cold) => {
                    if let Some(warm) = warm {
                        prop_assert_eq!(warm.x(), cold.x(), "step {}: warm != cold", step);
                        prop_assert_eq!(warm.objective(), cold.objective());
                        prop_assert_eq!(warm.duals(), cold.duals());
                    }
                    let dense = p.solve(&dense_opts()).unwrap();
                    prop_assert!(
                        (cold.objective() - dense.objective()).abs() < 1e-9,
                        "step {step}: sparse {} vs dense {}",
                        cold.objective(),
                        dense.objective()
                    );
                    for (j, (a, b)) in cold.x().iter().zip(dense.x()).enumerate() {
                        prop_assert!((a - b).abs() < 1e-9, "step {step} x[{j}]: {a} vs {b}");
                    }
                    basis = cold.basis().cloned();
                }
                Err(_) => {
                    prop_assert!(p.solve(&dense_opts()).is_err(), "outcome class mismatch");
                    basis = None;
                }
            }
        }
    }
}
