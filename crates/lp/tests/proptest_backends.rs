//! Differential testing: the revised backend against the dense oracle.
//!
//! Random LPs — feasible by construction, infeasible by construction,
//! unbounded by construction, and unconstrained-outcome mixes — must
//! produce the same outcome class from [`Backend::Revised`] and
//! [`Backend::DenseTableau`], and on success agree on objective, primal
//! point and duals to 1e-9. Coefficients are drawn from continuous
//! distributions, so optima (and duals) are unique almost surely and the
//! pointwise comparison is meaningful.

use dmc_lp::{Backend, Problem, SolveError, SolverOptions};
use proptest::prelude::*;

fn dense_opts() -> SolverOptions {
    SolverOptions {
        backend: Backend::DenseTableau,
        ..SolverOptions::default()
    }
}

fn revised_opts() -> SolverOptions {
    SolverOptions {
        backend: Backend::Revised,
        ..SolverOptions::default()
    }
}

/// Deterministic pseudo-random f64 in [0, 1) from a seed counter
/// (SplitMix64, same scheme as `proptest_simplex.rs`).
fn mix(seed: &mut u64) -> f64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = z ^ (z >> 31);
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A bounded-feasible LP with a known interior point: `≤` rows through
/// the point plus box bounds, optionally one equality row through it.
fn build_feasible_lp(n: usize, m: usize, with_eq: bool, seed0: u64) -> Problem {
    let mut seed = seed0;
    let x0: Vec<f64> = (0..n).map(|_| mix(&mut seed) * 5.0).collect();
    let c: Vec<f64> = (0..n).map(|_| mix(&mut seed) * 4.0 - 2.0).collect();
    let mut p = Problem::maximize(c);
    for _ in 0..m {
        let a: Vec<f64> = (0..n).map(|_| mix(&mut seed) * 2.0 - 0.5).collect();
        let lhs: f64 = a.iter().zip(&x0).map(|(ai, xi)| ai * xi).sum();
        let slack = mix(&mut seed) * 3.0;
        p.add_le(a, lhs + slack).unwrap();
    }
    if with_eq {
        let a: Vec<f64> = (0..n).map(|_| mix(&mut seed) + 0.1).collect();
        let lhs: f64 = a.iter().zip(&x0).map(|(ai, xi)| ai * xi).sum();
        p.add_eq(a, lhs).unwrap();
    }
    for j in 0..n {
        let mut row = vec![0.0; n];
        row[j] = 1.0;
        p.add_le(row, 10.0 + mix(&mut seed)).unwrap();
    }
    p
}

fn assert_backends_agree(p: &Problem) -> Result<(), TestCaseError> {
    let dense = p.solve(&dense_opts());
    let revised = p.solve(&revised_opts());
    match (dense, revised) {
        (Ok(d), Ok(r)) => {
            prop_assert!(
                (d.objective() - r.objective()).abs() < 1e-9,
                "objective: dense {} vs revised {}",
                d.objective(),
                r.objective()
            );
            for (j, (a, b)) in d.x().iter().zip(r.x()).enumerate() {
                prop_assert!((a - b).abs() < 1e-9, "x[{j}]: dense {a} vs revised {b}");
            }
            for (i, (a, b)) in d.duals().iter().zip(r.duals()).enumerate() {
                prop_assert!((a - b).abs() < 1e-9, "dual[{i}]: dense {a} vs revised {b}");
            }
            // Both must actually be feasible for the original problem.
            prop_assert!(p.max_violation(d.x()) < 1e-6);
            prop_assert!(p.max_violation(r.x()) < 1e-6);
        }
        (Err(SolveError::Infeasible { .. }), Err(SolveError::Infeasible { .. })) => {}
        (Err(SolveError::Unbounded), Err(SolveError::Unbounded)) => {}
        (d, r) => {
            return Err(TestCaseError(format!(
                "outcome mismatch: dense {d:?} vs revised {r:?}"
            )))
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Feasible bounded LPs (with and without an equality row): identical
    /// optima from both backends.
    #[test]
    fn feasible_lps_agree(
        n in 1usize..8,
        m in 1usize..9,
        with_eq in proptest::prelude::any::<bool>(),
        seed in any::<u64>(),
    ) {
        let p = build_feasible_lp(n, m, with_eq, seed);
        assert_backends_agree(&p)?;
    }

    /// Infeasible-by-construction LPs (`a·x ≤ t` and `a·x ≥ t + gap`):
    /// both backends must report infeasibility.
    #[test]
    fn infeasible_lps_agree(n in 1usize..6, seed in any::<u64>(), gap in 0.5f64..5.0) {
        let mut seed = seed;
        let a: Vec<f64> = (0..n).map(|_| mix(&mut seed) + 0.1).collect();
        let t = mix(&mut seed) * 4.0;
        let mut p = Problem::maximize((0..n).map(|_| mix(&mut seed)).collect());
        p.add_le(a.clone(), t).unwrap();
        p.add_ge(a, t + gap).unwrap();
        assert_backends_agree(&p)?;
    }

    /// Unbounded-by-construction LPs (one variable unconstrained above
    /// with positive objective): both backends must report unboundedness.
    #[test]
    fn unbounded_lps_agree(n in 2usize..6, seed in any::<u64>()) {
        let mut seed = seed;
        let mut c: Vec<f64> = (0..n).map(|_| mix(&mut seed)).collect();
        c[0] = 1.0 + mix(&mut seed); // strictly improving direction
        let mut p = Problem::maximize(c);
        // Constrain every variable except x0.
        for j in 1..n {
            let mut row = vec![0.0; n];
            row[j] = 1.0;
            p.add_le(row, 1.0 + mix(&mut seed)).unwrap();
        }
        assert_backends_agree(&p)?;
    }

    /// Paper-shaped LPs (`Σx = 1` distribution rows plus capacity rows):
    /// the exact structure the planner emits.
    #[test]
    fn paper_shaped_lps_agree(n in 2usize..40, rows in 1usize..6, seed in any::<u64>()) {
        let mut seed = seed;
        let pvec: Vec<f64> = (0..n).map(|_| mix(&mut seed)).collect();
        let mut p = Problem::maximize(pvec);
        for _ in 0..rows {
            let usage: Vec<f64> = (0..n).map(|_| mix(&mut seed) * 2.0).collect();
            p.add_le(usage, 0.5 + mix(&mut seed) * 2.0).unwrap();
        }
        p.add_eq(vec![1.0; n], 1.0).unwrap();
        assert_backends_agree(&p)?;
    }

    /// Warm-starting from the previous point of a RHS sweep must agree
    /// with the dense oracle at every point (warm results are still
    /// exact optima, not approximations).
    #[test]
    fn warm_sweep_agrees_with_dense(n in 2usize..20, seed in any::<u64>()) {
        let mut seed = seed;
        let pvec: Vec<f64> = (0..n).map(|_| mix(&mut seed)).collect();
        let usage: Vec<f64> = (0..n).map(|_| 0.2 + mix(&mut seed)).collect();
        // Start just above the minimum feasible capacity (all mass on the
        // cheapest column), so every sweep point is feasible.
        let min_usage = usage.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut basis = None;
        for step in 0..6 {
            let rhs = min_usage + 0.05 + 0.25 * step as f64;
            let mut p = Problem::maximize(pvec.clone());
            p.add_le(usage.clone(), rhs).unwrap();
            p.add_eq(vec![1.0; n], 1.0).unwrap();
            let revised = match &basis {
                Some(b) => p.solve_warm(&revised_opts(), b).unwrap(),
                None => p.solve(&revised_opts()).unwrap(),
            };
            let dense = p.solve(&dense_opts()).unwrap();
            prop_assert!(
                (revised.objective() - dense.objective()).abs() < 1e-9,
                "step {step}: warm {} vs dense {}",
                revised.objective(),
                dense.objective()
            );
            for (j, (a, b)) in revised.x().iter().zip(dense.x()).enumerate() {
                prop_assert!((a - b).abs() < 1e-9, "step {step} x[{j}]: {a} vs {b}");
            }
            basis = revised.basis().cloned();
        }
    }
}
