//! Property-based tests for the simplex solver.
//!
//! Strategy: generate random LPs that are feasible *by construction*
//! (constraints are `a·x ≤ a·x₀ + slack` for a known interior point `x₀`),
//! then check the simplex invariants:
//!
//! 1. the returned point satisfies every constraint,
//! 2. the returned objective dominates the known feasible point and a cloud
//!    of random feasible candidates,
//! 3. weak duality holds: `cᵀx* ≤ yᵀb` with the returned duals,
//! 4. solving is deterministic.

use dmc_lp::{PivotRule, Problem, SolverOptions};
use proptest::prelude::*;

/// Deterministic pseudo-random f64 in [lo, hi) from a seed counter.
fn mix(seed: &mut u64) -> f64 {
    // SplitMix64.
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = z ^ (z >> 31);
    (z >> 11) as f64 / (1u64 << 53) as f64
}

fn build_feasible_lp(n: usize, m: usize, seed0: u64) -> (Problem, Vec<f64>) {
    let mut seed = seed0;
    let x0: Vec<f64> = (0..n).map(|_| mix(&mut seed) * 5.0).collect();
    let c: Vec<f64> = (0..n).map(|_| mix(&mut seed) * 4.0 - 2.0).collect();
    let mut p = Problem::maximize(c);
    for _ in 0..m {
        let a: Vec<f64> = (0..n).map(|_| mix(&mut seed) * 2.0 - 0.5).collect();
        let lhs: f64 = a.iter().zip(&x0).map(|(ai, xi)| ai * xi).sum();
        let slack = mix(&mut seed) * 3.0;
        p.add_le(a, lhs + slack).unwrap();
    }
    // A box bound keeps the problem bounded.
    for j in 0..n {
        let mut row = vec![0.0; n];
        row[j] = 1.0;
        p.add_le(row, 10.0).unwrap();
    }
    (p, x0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solution_is_feasible_and_dominant(n in 1usize..7, m in 1usize..9, seed in any::<u64>()) {
        let (p, x0) = build_feasible_lp(n, m, seed);
        let s = p.solve(&SolverOptions::default()).unwrap();
        // (1) feasibility
        prop_assert!(p.max_violation(s.x()) < 1e-6,
            "violation {}", p.max_violation(s.x()));
        // (2) dominates the known interior point
        prop_assert!(s.objective() >= p.objective_value(&x0) - 1e-6);
        // (4) determinism
        let s2 = p.solve(&SolverOptions::default()).unwrap();
        prop_assert!((s.objective() - s2.objective()).abs() < 1e-12);
    }

    #[test]
    fn weak_duality_holds(n in 1usize..6, m in 1usize..7, seed in any::<u64>()) {
        let (p, _) = build_feasible_lp(n, m, seed);
        let s = p.solve(&SolverOptions::default()).unwrap();
        // All rows are `≤` here; weak duality: obj ≤ Σ y_i b_i with y ≥ −tol.
        let mut bound = 0.0;
        for (row, &y) in p.constraints().iter().zip(s.duals()) {
            prop_assert!(y >= -1e-7, "negative dual {y}");
            bound += y * row.rhs();
        }
        prop_assert!(s.objective() <= bound + 1e-5,
            "objective {} exceeds dual bound {}", s.objective(), bound);
    }

    #[test]
    fn pivot_rules_agree(n in 1usize..6, m in 1usize..7, seed in any::<u64>()) {
        let (p, _) = build_feasible_lp(n, m, seed);
        let dantzig = {
            let mut o = SolverOptions::default();
            o.pivot_rule = PivotRule::Dantzig;
            p.solve(&o).unwrap().objective()
        };
        let bland = {
            let mut o = SolverOptions::default();
            o.pivot_rule = PivotRule::Bland;
            p.solve(&o).unwrap().objective()
        };
        prop_assert!((dantzig - bland).abs() < 1e-6,
            "dantzig {dantzig} vs bland {bland}");
    }

    #[test]
    fn equality_simplex_distribution(n in 2usize..8, seed in any::<u64>()) {
        // Problems shaped like the paper's: Σ x = 1, x ≥ 0, maximize p·x
        // with p ∈ [0,1]ⁿ. The optimum must be max(p).
        let mut seed = seed;
        let pvec: Vec<f64> = (0..n).map(|_| mix(&mut seed)).collect();
        let best = pvec.iter().cloned().fold(f64::MIN, f64::max);
        let mut lp = Problem::maximize(pvec);
        lp.add_eq(vec![1.0; n], 1.0).unwrap();
        let s = lp.solve(&SolverOptions::default()).unwrap();
        prop_assert!((s.objective() - best).abs() < 1e-9);
        let total: f64 = s.x().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }
}
