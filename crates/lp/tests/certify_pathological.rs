//! [`Solution::certify`] on pathological inputs: infeasible and
//! unbounded problems, degenerate zero-capacity rows, zero rows, and the
//! tombstoned (`Σx = 0`) blocks the fleet's incremental assembly
//! produces — the certificate must accept exactly the genuinely feasible
//! points and reject everything else with a usable message, on every
//! backend.
//!
//! Forged candidate points are produced by a *pinning solve* (an LP
//! whose equality rows fix `x = v` exactly), so the `Solution` under
//! test is a real solver artifact; `certify` checks rows before the
//! objective, so row-violation messages are still the first failure.

use dmc_lp::{Backend, Problem, Solution, SolveError, SolverOptions};

fn all_backends() -> [SolverOptions; 3] {
    [Backend::DenseTableau, Backend::Revised, Backend::Sparse].map(|backend| SolverOptions {
        backend,
        ..SolverOptions::default()
    })
}

/// A `Solution` whose `x` is (up to solver roundoff) the given point,
/// obtained by solving `max 0` s.t. `x_j = v_j`.
fn pinned(v: &[f64]) -> Solution {
    let mut q = Problem::maximize(vec![0.0; v.len()]);
    for (j, &val) in v.iter().enumerate() {
        let mut row = vec![0.0; v.len()];
        row[j] = 1.0;
        q.add_eq(row, val).unwrap();
    }
    q.solve(&SolverOptions::default())
        .expect("pinning LP solves")
}

#[test]
fn infeasible_problems_never_yield_a_certifiable_point() {
    // x ≤ 1 and x ≥ 2: every backend reports infeasibility, and no
    // candidate x can certify — whatever a buggy solver might return.
    let mut p = Problem::maximize(vec![1.0]);
    p.add_le(vec![1.0], 1.0).unwrap();
    p.add_ge(vec![1.0], 2.0).unwrap();
    for opts in all_backends() {
        assert!(matches!(p.solve(&opts), Err(SolveError::Infeasible { .. })));
    }
    for x in [0.0, 1.0, 1.5, 2.0, 3.0] {
        let err = pinned(&[x]).certify(&p).unwrap_err();
        assert!(err.contains("row"), "x={x}: {err}");
    }
}

#[test]
fn unbounded_problems_still_certify_feasible_points() {
    // Certification is a *feasibility* certificate: an unbounded problem
    // has no optimum for a solver to return, but a feasible point (here
    // produced by solving a bounded variant of the same objective) must
    // still certify against it.
    let mut p = Problem::maximize(vec![1.0, 0.0]);
    p.add_le(vec![0.0, 1.0], 1.0).unwrap();
    for opts in all_backends() {
        assert!(matches!(p.solve(&opts), Err(SolveError::Unbounded)));
    }
    let mut bounded = Problem::maximize(vec![1.0, 0.0]);
    bounded.add_le(vec![0.0, 1.0], 1.0).unwrap();
    bounded.add_le(vec![1.0, 0.0], 7.0).unwrap();
    let s = bounded.solve(&SolverOptions::default()).unwrap();
    s.certify(&p)
        .expect("feasible point of an unbounded problem certifies");
    // …while an infeasible point of the same problem does not.
    assert!(pinned(&[7.0, 2.0]).certify(&p).is_err());
}

#[test]
fn zero_capacity_rows_pin_their_variables() {
    // A zero-capacity row (b_k = 0) is the fleet's "failed path" shape:
    // feasible, but only with nothing assigned to the path.
    let mut p = Problem::maximize(vec![0.6, 0.4]);
    p.add_le(vec![1.0, 0.0], 0.0).unwrap(); // dead path: x0 ≤ 0
    p.add_le(vec![0.0, 1.0], 1.0).unwrap();
    p.add_eq(vec![1.0, 1.0], 1.0).unwrap();
    for opts in all_backends() {
        let s = p.solve(&opts).unwrap();
        s.certify(&p).expect("solver optimum certifies");
        assert!(s.x()[0].abs() <= 1e-9, "dead-path mass: {}", s.x()[0]);
        assert!((s.x()[1] - 1.0).abs() <= 1e-9);
    }
    // Any mass on the dead path is flagged, however small the row norm.
    let err = pinned(&[0.5, 0.5]).certify(&p).unwrap_err();
    assert!(err.contains("row 0"), "{err}");
}

#[test]
fn all_zero_rows_certify_by_rhs_sign() {
    // A degenerate all-zero row is satisfiable iff its RHS admits 0.
    let mut sat = Problem::maximize(vec![1.0]);
    sat.add_le(vec![0.0], 0.0).unwrap(); // 0 ≤ 0: vacuous
    sat.add_le(vec![1.0], 2.0).unwrap();
    for opts in all_backends() {
        let s = sat.solve(&opts).unwrap();
        s.certify(&sat).expect("vacuous zero row certifies");
        assert!((s.objective() - 2.0).abs() < 1e-9);
    }
    let mut unsat = Problem::maximize(vec![1.0]);
    unsat.add_ge(vec![0.0], 1.0).unwrap(); // 0 ≥ 1: impossible
    unsat.add_le(vec![1.0], 2.0).unwrap();
    for opts in all_backends() {
        assert!(matches!(
            unsat.solve(&opts),
            Err(SolveError::Infeasible { .. })
        ));
    }
    assert!(pinned(&[0.0]).certify(&unsat).is_err());
}

#[test]
fn tombstoned_blocks_certify_only_at_zero() {
    // The incremental fleet's departure pattern: Σx = 0 forces a block
    // to zero. The solver's answer must certify; any lingering mass in
    // the tombstoned block must not.
    let mut p = Problem::maximize(vec![0.0, 0.0, 0.5, 0.7]);
    p.add_le(vec![0.3, 0.4, 0.5, 0.2], 1.0).unwrap();
    p.add_eq(vec![1.0, 1.0, 0.0, 0.0], 0.0).unwrap(); // tombstoned block
    p.add_eq(vec![0.0, 0.0, 1.0, 1.0], 1.0).unwrap(); // live block
    p.set_block_starts(vec![0, 2]).unwrap();
    for opts in all_backends() {
        let s = p.solve(&opts).unwrap();
        s.certify(&p).expect("tombstoned optimum certifies");
        assert!(s.x()[0].abs() <= 1e-9 && s.x()[1].abs() <= 1e-9);
    }
    let err = pinned(&[0.5, 0.0, 0.0, 1.0]).certify(&p).unwrap_err();
    assert!(err.contains("row 1"), "{err}");
}
