//! A battery of classic linear programs with known optima, exercising
//! corner cases the multipath models also hit (degeneracy, redundancy,
//! equality constraints, unbounded rays, alternate optima).

use dmc_lp::{PivotRule, Problem, SolveError, SolverOptions};

fn opts() -> SolverOptions {
    SolverOptions::default()
}

#[test]
fn transportation_problem() {
    // Two supplies (20, 30), three demands (10, 25, 15); unit costs:
    //   s1: [8, 6, 10]
    //   s2: [9, 12, 13]
    // Known minimum cost: 10·8+10·6+15·10 … solve and verify against a
    // hand-checked optimum of 470 (s1→d2:20? let's verify by duality
    // inside the test instead): we assert feasibility + optimality via
    // comparison with an exhaustive corner check on this small problem.
    // Variables x[i][j] flattened row-major (2×3 = 6 vars).
    let c = vec![8.0, 6.0, 10.0, 9.0, 12.0, 13.0];
    let mut p = Problem::minimize(c.clone());
    // Supply rows (≤).
    p.add_le(vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0], 20.0).unwrap();
    p.add_le(vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0], 30.0).unwrap();
    // Demand rows (=).
    p.add_eq(vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0], 10.0).unwrap();
    p.add_eq(vec![0.0, 1.0, 0.0, 0.0, 1.0, 0.0], 25.0).unwrap();
    p.add_eq(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0], 15.0).unwrap();
    let s = p.solve(&opts()).unwrap();
    assert!(p.max_violation(s.x()) < 1e-9);
    // Optimal: s1 ships d2 (20 @6); s2 ships d1 (10 @9), d2 (5 @12),
    // d3 (15 @13) → 120+90+60+195 = 465.
    assert!(
        (s.objective() - 465.0).abs() < 1e-7,
        "obj {}",
        s.objective()
    );
}

#[test]
fn diet_problem() {
    // Minimize cost of foods meeting nutrient minima.
    // foods: (cost, protein, vitamin): A(2, 3, 1), B(3, 1, 2)
    // need protein ≥ 9, vitamin ≥ 8 → optimum x_A = 2, x_B = 3 → 13.
    let mut p = Problem::minimize(vec![2.0, 3.0]);
    p.add_ge(vec![3.0, 1.0], 9.0).unwrap();
    p.add_ge(vec![1.0, 2.0], 8.0).unwrap();
    let s = p.solve(&opts()).unwrap();
    assert!((s.objective() - 13.0).abs() < 1e-9);
    assert!((s.x()[0] - 2.0).abs() < 1e-9);
    assert!((s.x()[1] - 3.0).abs() < 1e-9);
}

#[test]
fn klee_minty_3d_terminates_quickly() {
    // The 3-D Klee–Minty cube: worst case for Dantzig, trivial size here;
    // just verify the exact optimum 10⁴ on x3… standard form:
    // max 100x1 + 10x2 + x3
    //  s.t. x1 ≤ 1; 20x1 + x2 ≤ 100; 200x1 + 20x2 + x3 ≤ 10000.
    let mut p = Problem::maximize(vec![100.0, 10.0, 1.0]);
    p.add_le(vec![1.0, 0.0, 0.0], 1.0).unwrap();
    p.add_le(vec![20.0, 1.0, 0.0], 100.0).unwrap();
    p.add_le(vec![200.0, 20.0, 1.0], 10_000.0).unwrap();
    for rule in [PivotRule::Dantzig, PivotRule::Bland, PivotRule::Adaptive] {
        let mut o = opts();
        o.pivot_rule = rule;
        let s = p.solve(&o).unwrap();
        assert!((s.objective() - 10_000.0).abs() < 1e-6, "{rule:?}");
    }
}

#[test]
fn alternate_optima_report_same_value() {
    // max x + y ; x + y ≤ 1 — an entire edge is optimal.
    let mut p = Problem::maximize(vec![1.0, 1.0]);
    p.add_le(vec![1.0, 1.0], 1.0).unwrap();
    let s = p.solve(&opts()).unwrap();
    assert!((s.objective() - 1.0).abs() < 1e-9);
    assert!((s.x()[0] + s.x()[1] - 1.0).abs() < 1e-9);
}

#[test]
fn fully_degenerate_origin() {
    // All constraints tight at the origin; optimum at origin.
    let mut p = Problem::maximize(vec![-1.0, -1.0]);
    p.add_le(vec![1.0, 0.0], 0.0).unwrap();
    p.add_le(vec![0.0, 1.0], 0.0).unwrap();
    p.add_le(vec![1.0, 1.0], 0.0).unwrap();
    let s = p.solve(&opts()).unwrap();
    assert!(s.objective().abs() < 1e-12);
    assert!(s.x().iter().all(|&v| v.abs() < 1e-12));
}

#[test]
fn free_direction_detected_unbounded() {
    // max x - y with x - y ≤ … nothing bounding x.
    let mut p = Problem::maximize(vec![1.0, -1.0]);
    p.add_le(vec![-1.0, 1.0], 2.0).unwrap();
    assert!(matches!(p.solve(&opts()), Err(SolveError::Unbounded)));
}

#[test]
fn equality_system_with_unique_point() {
    // x + y = 2 ; x − y = 0 → x = y = 1 regardless of objective.
    let mut p = Problem::maximize(vec![5.0, -3.0]);
    p.add_eq(vec![1.0, 1.0], 2.0).unwrap();
    p.add_eq(vec![1.0, -1.0], 0.0).unwrap();
    let s = p.solve(&opts()).unwrap();
    assert!((s.x()[0] - 1.0).abs() < 1e-9);
    assert!((s.x()[1] - 1.0).abs() < 1e-9);
    assert!((s.objective() - 2.0).abs() < 1e-9);
}

#[test]
fn conflicting_equalities_infeasible() {
    let mut p = Problem::maximize(vec![1.0, 1.0]);
    p.add_eq(vec![1.0, 1.0], 1.0).unwrap();
    p.add_eq(vec![1.0, 1.0], 2.0).unwrap();
    assert!(matches!(
        p.solve(&opts()),
        Err(SolveError::Infeasible { .. })
    ));
}

#[test]
fn blending_with_many_redundant_rows() {
    // The same bound repeated at different scales must not confuse the
    // presolve/equilibration.
    let mut p = Problem::maximize(vec![3.0, 5.0]);
    for scale in [1.0, 10.0, 1e3, 1e6] {
        p.add_le(vec![scale, 0.0], 4.0 * scale).unwrap();
        p.add_le(vec![0.0, 2.0 * scale], 12.0 * scale).unwrap();
        p.add_le(vec![3.0 * scale, 2.0 * scale], 18.0 * scale)
            .unwrap();
    }
    let s = p.solve(&opts()).unwrap();
    assert!((s.objective() - 36.0).abs() < 1e-6);
}

#[test]
fn paper_shaped_assignment_problem() {
    // The exact structure of the paper's Eq. 10 at n=3 (with blackhole),
    // hand-solvable: p = [0, 0.5, 1, …] with one bandwidth row.
    // max Σ p_l x_l, Σ x = 1, usage·x ≤ cap.
    let p_coeffs = vec![0.0, 0.5, 1.0, 0.9];
    let usage = vec![0.0, 1.0, 1.0, 1.2];
    let cap = 0.5;
    let mut lp = Problem::maximize(p_coeffs);
    lp.add_le(usage, cap).unwrap();
    lp.add_eq(vec![1.0; 4], 1.0).unwrap();
    let s = lp.solve(&opts()).unwrap();
    // Best: put 0.5 on combo 2 (p=1), rest on combo 0 (blackhole):
    // Q = 0.5. (Combo 3 is strictly worse per unit of capacity.)
    assert!((s.objective() - 0.5).abs() < 1e-9);
    assert!((s.x()[2] - 0.5).abs() < 1e-9);
    assert!((s.x()[0] - 0.5).abs() < 1e-9);
}

#[test]
fn iteration_limit_is_reported() {
    let mut p = Problem::maximize(vec![1.0, 2.0, 3.0]);
    p.add_le(vec![1.0, 1.0, 1.0], 10.0).unwrap();
    p.add_le(vec![1.0, 2.0, 0.0], 8.0).unwrap();
    let mut o = opts();
    o.max_iterations = 0;
    assert!(matches!(
        p.solve(&o),
        Err(SolveError::IterationLimit { limit: 0 })
    ));
}
