//! Criterion benchmark crate for deadline-multipath.
//!
//! The benches live under `benches/`:
//!
//! * `solve_times` — Figure 4: LP build+solve vs. paths × transmissions;
//! * `pivot_rules` — Dantzig/Bland/adaptive simplex pivoting ablation;
//! * `scheduler` — Algorithm 1 vs. weighted-random assignment;
//! * `sim_engine` — full-stack simulation throughput;
//! * `model_build` — matrix assembly cost in isolation;
//! * `timeout_opt` — Eq.-34 grid-resolution ablation.
//!
//! Run with `cargo bench -p dmc-bench`.

#![forbid(unsafe_code)]
