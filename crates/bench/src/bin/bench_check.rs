//! CI bench-regression gate.
//!
//! Compares a fresh benchmark run against the committed `BENCH_*.json`
//! baselines and fails (exit 1) on any regression beyond a generous
//! threshold — CI hardware varies, so the default only trips on a more
//! than 1.5x slowdown, which is the kind a real algorithmic regression
//! (a lost warm start, a dense fallback in the sparse path) produces.
//!
//! Usage:
//!
//! ```text
//! CRITERION_OUTPUT_JSON=1 cargo bench -p dmc-bench --bench lp_backends \
//!     --bench fleet_admission --bench planner_reuse | tee bench_current.txt
//! cargo run -p dmc-bench --bin bench_check -- \
//!     --current bench_current.txt \
//!     BENCH_lp.json BENCH_fleet.json BENCH_planner.json
//! ```
//!
//! The current-run file is whatever the criterion stub printed: the JSON
//! lines emitted under `CRITERION_OUTPUT_JSON=1` are picked out, any
//! other output is ignored. Baseline files are the committed
//! `BENCH_*.json` artifacts (their `results` arrays use the same
//! `id`/`ns_per_iter_median` fields). Both are parsed with a
//! dependency-free field scanner — this repo builds offline, so no JSON
//! crate is available.
//!
//! Exit status: 0 when every baseline id was measured and none regressed
//! beyond the threshold; 1 otherwise (regression, or a baseline id that
//! the current run never produced — which is how a silently bit-rotted
//! or renamed bench fails the gate instead of skating through).
//!
//! `--ratio <num-id> <den-id> <max>` adds a **same-run** gate: the two
//! ids are taken from the current measurements, so machine speed cancels
//! and the budget can be tight. CI uses it to cap telemetry overhead:
//!
//! ```text
//! cargo run -p dmc-bench --bin bench_check -- --current bench_current.txt \
//!     --ratio obs_overhead/churn/enabled obs_overhead/churn/disabled 1.05 \
//!     BENCH_obs.json
//! ```

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One parsed measurement.
#[derive(Debug, Clone, Copy)]
struct Sample {
    median_ns: f64,
}

/// Scans `text` for `"id": "<name>"` / `"ns_per_iter_median": <num>`
/// pairs, in order. Works for both the single-line JSON the criterion
/// stub prints and the pretty-printed committed baselines. The median
/// search is bounded at the *next* `"id"` occurrence, so a record
/// missing its median is dropped (and later reported as MISSING)
/// instead of silently pairing with the following record's number.
fn scan_samples(text: &str) -> BTreeMap<String, Sample> {
    let mut out = BTreeMap::new();
    let mut rest = text;
    while let Some(idx) = rest.find("\"id\"") {
        rest = &rest[idx + 4..];
        let Some(id) = scan_string_value(rest) else {
            continue;
        };
        let record = &rest[..rest.find("\"id\"").unwrap_or(rest.len())];
        let Some(m_idx) = record.find("\"ns_per_iter_median\"") else {
            continue;
        };
        let after = &record[m_idx + "\"ns_per_iter_median\"".len()..];
        let Some(median_ns) = scan_number_value(after) else {
            continue;
        };
        out.insert(id, Sample { median_ns });
    }
    out
}

/// Reads the string literal after the next `:`.
fn scan_string_value(s: &str) -> Option<String> {
    let colon = s.find(':')?;
    let s = s[colon + 1..].trim_start();
    let s = s.strip_prefix('"')?;
    let end = s.find('"')?;
    Some(s[..end].to_string())
}

/// Reads the number after the next `:`.
fn scan_number_value(s: &str) -> Option<f64> {
    let colon = s.find(':')?;
    let s = s[colon + 1..].trim_start();
    let end = s
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(s.len());
    s[..end].parse().ok()
}

fn main() -> ExitCode {
    let mut threshold = 1.5f64;
    let mut current_path: Option<String> = None;
    let mut baseline_paths: Vec<String> = Vec::new();
    let mut ratios: Vec<(String, String, f64)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--threshold needs a number");
                    return ExitCode::FAILURE;
                };
                threshold = v;
            }
            "--current" => current_path = args.next(),
            "--ratio" => {
                let (Some(num), Some(den), Some(max)) = (args.next(), args.next(), args.next())
                else {
                    eprintln!("--ratio needs <numerator-id> <denominator-id> <max>");
                    return ExitCode::FAILURE;
                };
                let Ok(max) = max.parse::<f64>() else {
                    eprintln!("--ratio max {max:?} is not a number");
                    return ExitCode::FAILURE;
                };
                ratios.push((num, den, max));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_check --current <run-output> [--threshold 1.5] \
                     [--ratio <id> <id> <max>]... <BENCH_*.json>...\n\
                     --ratio gates two ids of the *same* run against each other \
                     (median A ≤ max × median B) — immune to machine-speed drift, \
                     which is how tight budgets like the 1.05x telemetry-overhead \
                     cap stay meaningful on varied CI hardware"
                );
                return ExitCode::SUCCESS;
            }
            other => baseline_paths.push(other.to_string()),
        }
    }
    let Some(current_path) = current_path else {
        eprintln!("bench_check: missing --current <file> (the bench run's output)");
        return ExitCode::FAILURE;
    };
    if baseline_paths.is_empty() && ratios.is_empty() {
        eprintln!("bench_check: no baseline files or --ratio gates given");
        return ExitCode::FAILURE;
    }

    let current_text = match std::fs::read_to_string(&current_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_check: cannot read {current_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let current = scan_samples(&current_text);
    if current.is_empty() {
        eprintln!(
            "bench_check: {current_path} contains no measurements — was the bench run \
             with CRITERION_OUTPUT_JSON=1?"
        );
        return ExitCode::FAILURE;
    }

    let mut baseline = BTreeMap::new();
    for path in &baseline_paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench_check: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let samples = scan_samples(&text);
        if samples.is_empty() {
            eprintln!("bench_check: baseline {path} contains no measurements");
            return ExitCode::FAILURE;
        }
        baseline.extend(samples);
    }

    let mut regressions = Vec::new();
    let mut missing = Vec::new();
    println!(
        "{:<55} {:>12} {:>12} {:>8}",
        "benchmark", "baseline ns", "current ns", "ratio"
    );
    for (id, base) in &baseline {
        match current.get(id) {
            Some(cur) => {
                let ratio = cur.median_ns / base.median_ns;
                let flag = if ratio > threshold {
                    regressions.push((id.clone(), ratio));
                    "  << REGRESSION"
                } else if ratio < 1.0 / threshold {
                    "  (improved — consider refreshing the baseline)"
                } else {
                    ""
                };
                println!(
                    "{:<55} {:>12.1} {:>12.1} {:>7.2}x{flag}",
                    id, base.median_ns, cur.median_ns, ratio
                );
            }
            None => {
                missing.push(id.clone());
                println!(
                    "{:<55} {:>12.1} {:>12} {:>8}",
                    id, base.median_ns, "-", "MISSING"
                );
            }
        }
    }
    for id in current.keys() {
        if !baseline.contains_key(id) {
            println!("note: {id} measured but has no baseline entry (new bench?)");
        }
    }

    // Same-run ratio gates: both ids come from the current measurements,
    // so machine speed cancels and the budget can be tight.
    let mut ratio_failures = Vec::new();
    for (num_id, den_id, max) in &ratios {
        let (Some(num), Some(den)) = (current.get(num_id), current.get(den_id)) else {
            ratio_failures.push(format!(
                "ratio gate {num_id} / {den_id}: one or both ids missing from the current run"
            ));
            continue;
        };
        let ratio = num.median_ns / den.median_ns;
        let verdict = if ratio > *max { "  << OVER BUDGET" } else { "" };
        println!("ratio {num_id} / {den_id} = {ratio:.3}x (budget {max}x){verdict}");
        if ratio > *max {
            ratio_failures.push(format!(
                "{num_id} is {ratio:.3}x of {den_id} (budget {max}x)"
            ));
        }
    }

    if !regressions.is_empty() || !missing.is_empty() || !ratio_failures.is_empty() {
        eprintln!();
        for (id, ratio) in &regressions {
            eprintln!("bench_check: {id} regressed {ratio:.2}x (> {threshold}x threshold)");
        }
        for id in &missing {
            eprintln!("bench_check: {id} is in the baseline but was not measured");
        }
        for f in &ratio_failures {
            eprintln!("bench_check: {f}");
        }
        return ExitCode::FAILURE;
    }
    println!(
        "\nbench_check: {} benchmarks within {threshold}x of their baselines, \
         {} ratio gate(s) within budget",
        baseline.len(),
        ratios.len()
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scans_stub_lines_and_pretty_baselines() {
        let stub = r#"
group/a  time: [1 2 3]
{"id":"group/a","ns_per_iter_median":123.4,"ns_per_iter_min":100.0,"ns_per_iter_max":150.0}
{"id":"group/b","ns_per_iter_median":50.0,"ns_per_iter_min":49.0,"ns_per_iter_max":51.0}
"#;
        let got = scan_samples(stub);
        assert_eq!(got.len(), 2);
        assert!((got["group/a"].median_ns - 123.4).abs() < 1e-9);
        let pretty = r#"{
  "bench": "x",
  "results": [
    { "id": "group/a", "ns_per_iter_median": 100.0, "ns_per_iter_min": 90.0 }
  ]
}"#;
        let got = scan_samples(pretty);
        assert_eq!(got.len(), 1);
        assert!((got["group/a"].median_ns - 100.0).abs() < 1e-9);
    }

    #[test]
    fn a_record_missing_its_median_is_dropped_not_mispaired() {
        // `group/a` has no median: it must be dropped (→ MISSING later),
        // not paired with `group/b`'s number.
        let text = r#"
{"id":"group/a","ns_per_iter_min":1.0}
{"id":"group/b","ns_per_iter_median":50.0}
"#;
        let got = scan_samples(text);
        assert_eq!(got.len(), 1);
        assert!(!got.contains_key("group/a"));
        assert!((got["group/b"].median_ns - 50.0).abs() < 1e-9);
    }

    #[test]
    fn number_scanner_handles_scientific_and_negative() {
        assert_eq!(scan_number_value(": 1.5e3,"), Some(1500.0));
        assert_eq!(scan_number_value(" : -2,"), Some(-2.0));
        assert_eq!(scan_number_value(": x"), None);
    }
}
