//! CI telemetry-export gate.
//!
//! Validates a dmc-obs JSON-lines metrics file (the artifact a driver
//! writes under `--metrics`): every line must be a single-line JSON
//! object of a known record type, the records must appear in the
//! exporter's canonical order (one `meta` line first, then counters,
//! gauges, histograms, spans, events, warnings), and names must be
//! strictly ascending within each kind — the properties the snapshot
//! hash relies on. Optional `--require NAME` flags additionally demand
//! that a counter of that name is present with a nonzero value, which is
//! how CI asserts a driver actually recorded telemetry rather than
//! writing an empty-but-well-formed file.
//!
//! Usage:
//!
//! ```text
//! cargo run -p dmc-experiments --bin chaos -- --metrics /tmp/chaos.jsonl
//! cargo run -p dmc-bench --bin obs_check -- /tmp/chaos.jsonl \
//!     --require lp.solves --require fleet.sheds
//! ```
//!
//! Parsed with a dependency-free field scanner — this repo builds
//! offline, so no JSON crate is available.
//!
//! Exit status: 0 when the file validates (and every required counter is
//! present and nonzero); 1 otherwise, with one line per problem.

#![forbid(unsafe_code)]

use std::process::ExitCode;

/// Record kinds in the exporter's canonical emission order.
const KIND_ORDER: &[&str] = &[
    "meta",
    "counter",
    "gauge",
    "histogram",
    "span",
    "event",
    "warning",
];

fn kind_rank(kind: &str) -> Option<usize> {
    KIND_ORDER.iter().position(|k| *k == kind)
}

/// Reads the JSON string immediately following `"<key>":` in `line`.
/// Handles the exporter's escapes (`\"`, `\\`, `\u00XX`) conservatively:
/// the raw escaped text is returned, which is fine for ordering checks
/// because the exporter escapes deterministically.
fn string_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let idx = line.find(&pat)?;
    let rest = line[idx + pat.len()..].strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => {
                out.push('\\');
                out.push(chars.next()?);
            }
            _ => out.push(c),
        }
    }
    None
}

/// Reads the number (or `null`) immediately following `"<key>":`.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let idx = line.find(&pat)?;
    let rest = &line[idx + pat.len()..];
    if rest.starts_with("null") {
        return Some(f64::NAN);
    }
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> ExitCode {
    let mut path: Option<String> = None;
    let mut required: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--require" => {
                let Some(name) = args.next() else {
                    eprintln!("--require needs a counter name");
                    return ExitCode::FAILURE;
                };
                required.push(name);
            }
            "--help" | "-h" => {
                eprintln!("usage: obs_check <metrics.jsonl> [--require counter.name]...");
                return ExitCode::SUCCESS;
            }
            other => path = Some(other.to_string()),
        }
    }
    let Some(path) = path else {
        eprintln!("obs_check: missing metrics file path (see --help)");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs_check: reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut problems: Vec<String> = Vec::new();
    let mut last_rank = 0usize;
    let mut last_name: Option<(usize, String)> = None;
    let mut counters: Vec<(String, f64)> = Vec::new();
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        lines += 1;
        if !(line.starts_with('{') && line.ends_with('}')) {
            problems.push(format!("line {n}: not a single-line JSON object"));
            continue;
        }
        let Some(kind) = string_field(line, "type") else {
            problems.push(format!("line {n}: missing \"type\" field"));
            continue;
        };
        let Some(rank) = kind_rank(&kind) else {
            problems.push(format!("line {n}: unknown record type {kind:?}"));
            continue;
        };
        if i == 0 && kind != "meta" {
            problems.push(format!(
                "line 1: expected the \"meta\" record, got {kind:?}"
            ));
        }
        if i > 0 && kind == "meta" {
            problems.push(format!("line {n}: duplicate \"meta\" record"));
        }
        if rank < last_rank {
            problems.push(format!(
                "line {n}: {kind:?} record after {:?} (canonical order is {})",
                KIND_ORDER[last_rank],
                KIND_ORDER.join(", ")
            ));
        }
        if rank != last_rank {
            last_name = None;
        }
        last_rank = rank;
        // Per-kind field checks.
        let needed: &[&str] = match kind.as_str() {
            "meta" => &["clock", "events_dropped"],
            "counter" | "gauge" => &["value"],
            "histogram" => &["count", "sum", "max"],
            "span" => &["count", "total_ticks", "max_ticks"],
            "event" => &["enter", "exit"],
            "warning" => &["count"],
            _ => &[],
        };
        for key in needed {
            if number_field(line, key).is_none() {
                problems.push(format!("line {n}: {kind} record missing numeric {key:?}"));
            }
        }
        if kind != "meta" {
            let name_key = if kind == "warning" { "key" } else { "name" };
            match string_field(line, name_key) {
                None => problems.push(format!("line {n}: {kind} record missing {name_key:?}")),
                Some(name) => {
                    // Span *events* repeat names (one line per enter/exit
                    // pair); aggregates and scalars must be strictly
                    // ascending — ties mean a duplicated metric.
                    if kind != "event" {
                        if let Some((prev_rank, prev)) = &last_name {
                            if *prev_rank == rank && *prev >= name {
                                problems.push(format!(
                                    "line {n}: {kind} name {name:?} not above {prev:?} \
                                     (names must be unique and ascending per kind)"
                                ));
                            }
                        }
                        last_name = Some((rank, name.clone()));
                    }
                    if kind == "counter" {
                        let value = number_field(line, "value").unwrap_or(f64::NAN);
                        counters.push((name, value));
                    }
                }
            }
        }
    }
    if lines == 0 {
        problems.push("file is empty (no meta record)".to_string());
    }
    for want in &required {
        match counters.iter().find(|(name, _)| name == want) {
            None => problems.push(format!("required counter {want:?} is missing")),
            Some((_, v)) if !(*v > 0.0) => {
                problems.push(format!("required counter {want:?} is {v} (want > 0)"));
            }
            Some(_) => {}
        }
    }

    if problems.is_empty() {
        println!(
            "obs_check: OK — {lines} record(s), {} counter(s), {} required counter(s) present",
            counters.len(),
            required.len()
        );
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("obs_check: {p}");
        }
        eprintln!("obs_check: {} problem(s) in {path}", problems.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_scanners_read_the_exporter_shapes() {
        let line = r#"{"type":"counter","name":"lp.solves","value":42}"#;
        assert_eq!(string_field(line, "type").as_deref(), Some("counter"));
        assert_eq!(string_field(line, "name").as_deref(), Some("lp.solves"));
        assert_eq!(number_field(line, "value"), Some(42.0));
        let hist = r#"{"type":"histogram","name":"h","count":2,"sum":12,"min":null,"max":8,"buckets":[[3,1],[4,1]]}"#;
        assert!(number_field(hist, "min").is_some_and(f64::is_nan));
        assert_eq!(number_field(hist, "count"), Some(2.0));
    }

    #[test]
    fn kind_order_matches_exporter() {
        assert!(kind_rank("meta") < kind_rank("counter"));
        assert!(kind_rank("counter") < kind_rank("warning"));
        assert_eq!(kind_rank("bogus"), None);
    }
}
