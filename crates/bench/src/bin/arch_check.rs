//! Fails when `ARCHITECTURE.md`'s crate map drifts from the workspace:
//! every `[workspace] members` path of `Cargo.toml` must appear as a
//! backtick-quoted `crates/...` path inside the "## Crate map" section,
//! and every such path in the section must be a member. Run from CI as
//! `cargo run -p dmc-bench --bin arch_check` (exit 1 on drift).

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The workspace root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the root")
        .to_path_buf()
}

/// The `members = [ ... ]` paths of the root manifest.
fn workspace_members(manifest: &str) -> BTreeSet<String> {
    let mut members = BTreeSet::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with("members") && line.contains('[') {
            in_members = true;
            continue;
        }
        if in_members {
            if line.starts_with(']') {
                break;
            }
            if let Some(member) = line.split('"').nth(1) {
                members.insert(member.to_string());
            }
        }
    }
    members
}

/// Backtick-quoted `crates/...` paths in the table rows (`|`-prefixed
/// lines) of the "## Crate map" section, up to the next `## ` heading —
/// prose around the table may cite source files without tripping the
/// drift check.
fn documented_crates(architecture: &str) -> BTreeSet<String> {
    let mut documented = BTreeSet::new();
    let mut in_section = false;
    for line in architecture.lines() {
        if line.starts_with("## ") {
            in_section = line.trim() == "## Crate map";
            continue;
        }
        if !in_section || !line.trim_start().starts_with('|') {
            continue;
        }
        for token in line.split('`').skip(1).step_by(2) {
            if token.starts_with("crates/") {
                documented.insert(token.to_string());
            }
        }
    }
    documented
}

fn main() -> ExitCode {
    let root = workspace_root();
    let manifest = match std::fs::read_to_string(root.join("Cargo.toml")) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("arch_check: cannot read Cargo.toml: {e}");
            return ExitCode::from(2);
        }
    };
    let architecture = match std::fs::read_to_string(root.join("ARCHITECTURE.md")) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("arch_check: cannot read ARCHITECTURE.md: {e}");
            return ExitCode::from(2);
        }
    };

    let members = workspace_members(&manifest);
    let documented = documented_crates(&architecture);
    if members.is_empty() || documented.is_empty() {
        eprintln!(
            "arch_check: parsed {} workspace member(s) and {} documented crate path(s) — \
             at least one side came up empty, refusing to vacuously pass",
            members.len(),
            documented.len()
        );
        return ExitCode::from(2);
    }

    let missing: Vec<_> = members.difference(&documented).collect();
    let stale: Vec<_> = documented.difference(&members).collect();
    for m in &missing {
        eprintln!("arch_check: workspace member `{m}` is missing from ARCHITECTURE.md's crate map");
    }
    for s in &stale {
        eprintln!("arch_check: ARCHITECTURE.md documents `{s}`, which is not a workspace member");
    }
    if !missing.is_empty() || !stale.is_empty() {
        return ExitCode::FAILURE;
    }
    println!(
        "arch_check: ARCHITECTURE.md crate map matches the {} workspace members",
        members.len()
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_parser_reads_the_real_manifest_shape() {
        let manifest = "[workspace]\nmembers = [\n    \"crates/a\",\n    \"crates/b/c\",\n]\n";
        let members = workspace_members(manifest);
        assert_eq!(
            members.into_iter().collect::<Vec<_>>(),
            vec!["crates/a".to_string(), "crates/b/c".to_string()]
        );
    }

    #[test]
    fn documented_crates_only_counts_the_crate_map_section() {
        let md = "## Crate map\n| `x` | `crates/a` |\n## Data flow\nsee `crates/zzz/file.rs`\n";
        let documented = documented_crates(md);
        assert_eq!(
            documented.into_iter().collect::<Vec<_>>(),
            vec!["crates/a".to_string()]
        );
    }
}
