//! Fault-recovery hot paths: what one outage/recovery cycle costs a
//! loaded fleet.
//!
//! * `outage_cycle` — a correlated two-link failure sheds the floored
//!   bulk into the re-admission queue, recovery revives it: four
//!   priority-ordered re-settles (two shed sweeps, two revival sweeps)
//!   per iteration. `warm` runs the default warm-start cache — after the
//!   first cycle every post-fault LP shape has a cached basis; `cold`
//!   disables it and pays two-phase simplex from scratch each time.
//! * `certified_cycle` — the same cycle with [`FleetConfig::certify`]
//!   on: every joint solution re-verified against its constraint system,
//!   the chaos harness's always-on configuration. Bounds the price of
//!   running chaos suites with certification enabled.
//!
//! Measured numbers are recorded in `BENCH_chaos.json` (regenerate with
//! `CRITERION_OUTPUT_JSON=1 cargo bench -p dmc-bench --bench chaos_recovery`).

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use dmc_core::{PlannerConfig, ScenarioPath};
use dmc_fleet::{FleetConfig, FleetPlanner, FlowRequest};
use dmc_sim::LinkChange;
use std::hint::black_box;

fn chaos_paths() -> Vec<ScenarioPath> {
    vec![
        ScenarioPath::constant(80e6, 0.450, 0.2).expect("valid"),
        ScenarioPath::constant(20e6, 0.150, 0.0).expect("valid"),
        ScenarioPath::constant(40e6, 0.250, 0.05).expect("valid"),
    ]
}

/// Mixed-priority population: the 8.0-priority flow fits the surviving
/// clean path alone, the low-priority floored flows are shed by the
/// outage and revived on recovery (the chaos acceptance population).
fn populate(fleet: &mut FleetPlanner) {
    for (rate, delta, floor, priority) in [
        (30e6, 0.8, 0.8, 1.0),
        (25e6, 0.8, 0.7, 2.0),
        (10e6, 0.9, 0.9, 8.0),
        (15e6, 1.2, 0.0, 1.0),
    ] {
        let d = fleet
            .offer(
                FlowRequest::new(rate, delta)
                    .expect("valid")
                    .with_min_quality(floor)
                    .with_priority(priority),
            )
            .expect("offer");
        assert!(d.is_admitted());
    }
}

/// One correlated outage/recovery cycle; returns to steady state so
/// iterations are uniform.
fn cycle(fleet: &mut FleetPlanner) -> f64 {
    let mut shed = fleet.apply_link_change(0, &LinkChange::Fail).expect("fail");
    shed.extend(fleet.apply_link_change(2, &LinkChange::Fail).expect("fail"));
    assert!(!shed.is_empty(), "the outage must shed the floored bulk");
    fleet
        .apply_link_change(0, &LinkChange::Recover)
        .expect("recover");
    fleet
        .apply_link_change(2, &LinkChange::Recover)
        .expect("recover");
    assert_eq!(fleet.num_flows(), 4, "recovery must revive everything");
    fleet.aggregate_quality()
}

fn outage_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("chaos_recovery/outage_cycle");
    for (name, warm_start) in [("warm", true), ("cold", false)] {
        group.bench_function(name, |b| {
            let mut fleet = FleetPlanner::new(
                chaos_paths(),
                FleetConfig {
                    planner: PlannerConfig {
                        warm_start,
                        ..PlannerConfig::default()
                    },
                    ..FleetConfig::default()
                },
            )
            .expect("valid");
            populate(&mut fleet);
            b.iter(|| black_box(cycle(&mut fleet)));
            if warm_start {
                assert!(
                    fleet.warm_stats().hits > 0,
                    "outage cycles never warm-started: {}",
                    fleet.warm_stats()
                );
            }
        });
    }
    group.finish();
}

fn certified_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("chaos_recovery/certified_cycle");
    group.bench_function("certify", |b| {
        let mut fleet = FleetPlanner::new(
            chaos_paths(),
            FleetConfig {
                certify: true,
                ..FleetConfig::default()
            },
        )
        .expect("valid");
        populate(&mut fleet);
        b.iter(|| black_box(cycle(&mut fleet)));
    });
    group.finish();
}

criterion_group!(benches, outage_cycle, certified_cycle);
criterion_main!(benches);
