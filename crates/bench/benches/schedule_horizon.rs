//! Time-expanded scheduling hot path: the rolling-horizon churn cycle
//! of a 16-slot [`SchedulePlanner`] — each iteration advances the
//! origin one slot (completing the flows whose windows closed,
//! tombstoning their expired slots) and offers one replacement flow at
//! the tail of the horizon.
//!
//! * `incremental` — the default pipeline: ring-indexed capacity rows
//!   are recycled in place, expired blocks are tombstoned (shape
//!   preserved, so the warm-basis cache keeps hitting), and the
//!   replacement flow reuses a tombstoned slot when one matches.
//! * `rebuild` — the differential baseline (`incremental = false`):
//!   the whole time-expanded assembly is rebuilt from scratch on every
//!   solve.
//!
//! The issue's acceptance bar is `incremental` ≥ 2× faster on this
//! cycle. Measured numbers live in `BENCH_schedule.json` (regenerate
//! with `CRITERION_OUTPUT_JSON=1 cargo bench -p dmc-bench --bench
//! schedule_horizon`).

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use dmc_core::ScenarioPath;
use dmc_fleet::{FleetConfig, FlowRequest, SchedulePlanner, ScheduleRequest, SlotWindow, TimeGrid};
use std::hint::black_box;

const HORIZON: usize = 16;
const SLOT_WIDTH_S: f64 = 0.5;

fn shared_paths() -> Vec<ScenarioPath> {
    vec![
        ScenarioPath::constant(80e6, 0.450, 0.2).expect("valid"),
        ScenarioPath::constant(20e6, 0.150, 0.0).expect("valid"),
    ]
}

fn config(incremental: bool) -> FleetConfig {
    FleetConfig {
        incremental,
        ..FleetConfig::default()
    }
}

/// A three-slot flow placed at the tail of the horizon starting at
/// `origin` — the steady-state arrival of a rolling schedule. Varying
/// the rate by slot parity keeps consecutive offers from being
/// identical without changing the LP's shape.
fn tail_request(origin: u64) -> ScheduleRequest {
    let rate = if origin % 2 == 0 { 20e6 } else { 24e6 };
    let window_end = origin + HORIZON as u64;
    ScheduleRequest::new(
        FlowRequest::new(rate, 0.8)
            .expect("valid")
            .with_min_quality(0.6),
        SlotWindow::new(window_end - 3, window_end).expect("valid"),
    )
}

/// Populates the horizon with one three-slot flow ending at each slot
/// boundary, so every advance completes exactly one flow.
fn populate(s: &mut SchedulePlanner) {
    for end in 3..=HORIZON as u64 {
        let d = s
            .offer(ScheduleRequest::new(
                FlowRequest::new(18e6, 0.8)
                    .expect("valid")
                    .with_min_quality(0.6),
                SlotWindow::new(end - 3, end).expect("valid"),
            ))
            .expect("offer");
        assert!(d.is_admitted());
    }
}

fn rolling_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_horizon/rolling_churn_16slots");
    for (name, incremental) in [("incremental", true), ("rebuild", false)] {
        group.bench_function(name, |b| {
            let grid = TimeGrid::new(SLOT_WIDTH_S, HORIZON).expect("valid grid");
            let mut s =
                SchedulePlanner::new(shared_paths(), grid, config(incremental)).expect("valid");
            populate(&mut s);
            let mut origin = 0u64;
            b.iter(|| {
                // One rolling cycle: the horizon slides one slot, the
                // flow whose window just closed completes, and a
                // replacement arrives at the new tail.
                origin += 1;
                let advance = s.advance_to(origin).expect("advance");
                assert!(advance.dropped.is_empty(), "steady state never drops");
                let d = s.offer(tail_request(origin)).expect("offer");
                assert!(d.is_admitted());
                black_box(s.aggregate_quality())
            });
            if incremental {
                assert!(
                    s.warm_stats().hits > 0,
                    "rolling churn never warm-started: {}",
                    s.warm_stats()
                );
            }
        });
    }
    group.finish();
}

criterion_group!(benches, rolling_churn);
criterion_main!(benches);
