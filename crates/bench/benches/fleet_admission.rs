//! Fleet admission/allocation hot paths:
//!
//! * `churn_resolve` — the steady-state pattern of a long-lived fleet:
//!   one flow departs and an equivalent one arrives. Every re-solve
//!   lands on a joint-LP *shape* the fleet has seen before, so the
//!   warm-start cache re-enters phase 2 from the cached basis
//!   (`warm`) instead of running two-phase simplex from scratch per
//!   arrival (`cold`, `warm_start = false`).
//! * `admission_8flows` — batched arrivals vs. one-at-a-time: the batch
//!   fast path admits all eight flows with a **single** joint solve when
//!   they are collectively feasible, vs. eight incremental solves of
//!   growing LPs.
//!
//! Measured numbers are recorded in `BENCH_fleet.json` (regenerate with
//! `CRITERION_OUTPUT_JSON=1 cargo bench -p dmc-bench --bench fleet_admission`).

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use dmc_core::{PlannerConfig, ScenarioPath};
use dmc_fleet::{FleetConfig, FleetPlanner, FlowRequest};
use dmc_lp::Backend;
use std::hint::black_box;

fn shared_paths() -> Vec<ScenarioPath> {
    vec![
        ScenarioPath::constant(80e6, 0.450, 0.2).expect("valid"),
        ScenarioPath::constant(20e6, 0.150, 0.0).expect("valid"),
    ]
}

fn config(warm_start: bool) -> FleetConfig {
    FleetConfig {
        planner: PlannerConfig {
            warm_start,
            ..PlannerConfig::default()
        },
        ..FleetConfig::default()
    }
}

/// The churn flow: modest with a floor, so its LP has the full row set.
fn churn_request() -> FlowRequest {
    FlowRequest::new(20e6, 0.8)
        .expect("valid")
        .with_min_quality(0.7)
}

/// A base population of 4 long-lived flows.
fn populate(fleet: &mut FleetPlanner) {
    for (rate, delta, floor) in [
        (25e6, 0.8, 0.8),
        (15e6, 0.6, 0.5),
        (10e6, 1.2, 0.0),
        (20e6, 0.9, 0.6),
    ] {
        let d = fleet
            .offer(
                FlowRequest::new(rate, delta)
                    .expect("valid")
                    .with_min_quality(floor),
            )
            .expect("offer");
        assert!(d.is_admitted());
    }
}

fn churn_resolve(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_admission/churn_resolve");
    for (name, warm_start) in [("warm", true), ("cold", false)] {
        group.bench_function(name, |b| {
            let mut fleet = FleetPlanner::new(shared_paths(), config(warm_start)).expect("valid");
            populate(&mut fleet);
            let mut current = fleet.offer(churn_request()).expect("offer").id();
            b.iter(|| {
                // One churn cycle: the flow leaves, an equivalent arrives.
                fleet.depart(current).expect("admitted");
                let d = fleet.offer(churn_request()).expect("offer");
                assert!(d.is_admitted());
                current = d.id();
                black_box(fleet.aggregate_quality())
            });
            if warm_start {
                assert!(
                    fleet.warm_stats().hits > 0,
                    "churn never warm-started: {}",
                    fleet.warm_stats()
                );
            }
        });
    }
    group.finish();
}

fn admission_8flows(c: &mut Criterion) {
    let requests = || -> Vec<FlowRequest> {
        (0..8)
            .map(|i| {
                FlowRequest::new(8e6 + i as f64 * 1e6, 0.5 + 0.1 * i as f64)
                    .expect("valid")
                    .with_min_quality(if i % 2 == 0 { 0.6 } else { 0.0 })
            })
            .collect()
    };
    let mut group = c.benchmark_group("fleet_admission/admission_8flows");
    group.bench_function("batched", |b| {
        b.iter(|| {
            let mut fleet =
                FleetPlanner::new(shared_paths(), FleetConfig::default()).expect("valid");
            let decisions = fleet.offer_batch(requests()).expect("batch");
            assert!(decisions.iter().all(|d| d.is_admitted()));
            black_box(fleet.aggregate_quality())
        });
    });
    group.bench_function("one_at_a_time", |b| {
        b.iter(|| {
            let mut fleet =
                FleetPlanner::new(shared_paths(), FleetConfig::default()).expect("valid");
            for r in requests() {
                assert!(fleet.offer(r).expect("offer").is_admitted());
            }
            black_box(fleet.aggregate_quality())
        });
    });
    group.finish();
}

/// The fleet-scale subjects behind the issue's acceptance bar: at 64
/// admitted flows, one steady-state churn cycle (depart + equivalent
/// arrival, i.e. two joint solves) through
///
/// * `incremental_sparse` — the default pipeline: tombstoning/slot-reuse
///   incremental assembly + the block-structured sparse backend;
/// * `rebuild_revised` — the pre-sparse pipeline: joint `Problem`
///   rebuilt from scratch per solve + the revised backend's dense-LU
///   refactorizations.
fn fleet64_paths() -> Vec<ScenarioPath> {
    vec![
        ScenarioPath::constant(80e6, 0.450, 0.2).expect("valid"),
        ScenarioPath::constant(20e6, 0.150, 0.0).expect("valid"),
        ScenarioPath::constant(40e6, 0.250, 0.05).expect("valid"),
    ]
}

/// 64 mixed flows: mostly best-effort trickles, every fourth with a
/// modest floor (so the joint LP carries floor rows like a real fleet).
fn fleet64_requests() -> Vec<FlowRequest> {
    (0..64)
        .map(|i| {
            let r = FlowRequest::new(1.0e6 + (i % 7) as f64 * 0.2e6, 0.6 + 0.05 * (i % 5) as f64)
                .expect("valid");
            if i % 4 == 0 {
                r.with_min_quality(0.2)
            } else {
                r
            }
        })
        .collect()
}

fn fleet64_config(incremental: bool, joint_backend: Backend) -> FleetConfig {
    FleetConfig {
        incremental,
        joint_backend,
        ..FleetConfig::default()
    }
}

fn churn_cycle_64(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_admission/churn_cycle_64flows");
    let churn = || {
        FlowRequest::new(1.5e6, 0.8)
            .expect("valid")
            .with_min_quality(0.2)
    };
    for (name, incremental, backend) in [
        ("incremental_sparse", true, Backend::Sparse),
        ("rebuild_revised", false, Backend::Revised),
    ] {
        group.bench_function(name, |b| {
            let mut fleet =
                FleetPlanner::new(fleet64_paths(), fleet64_config(incremental, backend))
                    .expect("valid");
            let decisions = fleet.offer_batch(fleet64_requests()).expect("batch");
            assert!(
                decisions.iter().all(|d| d.is_admitted()),
                "{name}: populate"
            );
            let mut current = fleet.offer(churn()).expect("offer").id();
            b.iter(|| {
                fleet.depart(current).expect("admitted");
                let d = fleet.offer(churn()).expect("offer");
                assert!(d.is_admitted());
                current = d.id();
                black_box(fleet.aggregate_quality())
            });
            assert_eq!(fleet.num_flows(), 65);
        });
    }
    group.finish();
}

/// Admitting the 64-flow population from empty: the batch fast path
/// proves the whole set feasible with one joint solve on each pipeline.
fn admission_64flows(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_admission/admission_64flows");
    for (name, incremental, backend) in [
        ("incremental_sparse", true, Backend::Sparse),
        ("rebuild_revised", false, Backend::Revised),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut fleet =
                    FleetPlanner::new(fleet64_paths(), fleet64_config(incremental, backend))
                        .expect("valid");
                let decisions = fleet.offer_batch(fleet64_requests()).expect("batch");
                assert!(decisions.iter().all(|d| d.is_admitted()));
                black_box(fleet.aggregate_quality())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    churn_resolve,
    admission_8flows,
    churn_cycle_64,
    admission_64flows
);
criterion_main!(benches);
