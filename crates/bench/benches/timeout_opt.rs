//! Ablation: Eq.-34 timeout-optimization cost vs. discretization grid
//! resolution (finer grids cost quadratically in the convolution but only
//! linearly in the argmax scan).

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmc_core::{RandomDelayConfig, RandomDelayModel};
use dmc_experiments::scenarios;
use std::hint::black_box;

fn timeout_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("timeout_optimization");
    let net = scenarios::table5(90e6, 0.750);
    for step_ms in [4.0f64, 2.0, 1.0, 0.5, 0.25] {
        group.bench_with_input(
            BenchmarkId::new("grid_step_ms", format!("{step_ms}")),
            &step_ms,
            |b, &step_ms| {
                let mut cfg = RandomDelayConfig::default();
                cfg.grid_step = step_ms / 1e3;
                b.iter(|| black_box(RandomDelayModel::new(&net, &cfg)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, timeout_grid);
criterion_main!(benches);
