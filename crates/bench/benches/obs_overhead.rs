//! Telemetry overhead: the cost of the dmc-obs instrumentation compiled
//! into the fleet-service churn path.
//!
//! Two subjects, each measured with a **disabled** registry (the default
//! every library config ships with: each metric op is a branch on a
//! `None`) and an **enabled** one (real atomic counters, histograms and
//! spans):
//!
//! * `churn` — the `fleet_service` steady-state churn workload (2,048
//!   flows through a 16-shard service, 128 offers per tick, cohorts
//!   departing two ticks later), end to end through submit → tick →
//!   decision. This is the number CI gates: `bench_check --ratio`
//!   demands `enabled ≤ 1.05× disabled` — even switched-on telemetry
//!   may tax the service by at most 5 %, and the disabled default by
//!   construction costs less than that.
//! * `sink` — the raw metric operations in a tight loop (counter add,
//!   histogram record, span enter/exit, clock advance), keeping the
//!   per-op cost visible rather than buried in a churn run.
//!
//! Measured numbers are recorded in `BENCH_obs.json` (regenerate with
//! `CRITERION_OUTPUT_JSON=1 cargo bench -p dmc-bench --bench obs_overhead`).

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use dmc_experiments::service::region_paths;
use dmc_fleet::{FleetConfig, FleetService, FlowRequest, ServiceConfig, ServiceEvent};
use dmc_obs::Obs;
use std::collections::VecDeque;
use std::hint::black_box;

const FLOWS: u64 = 2_048;
const SHARDS: usize = 16;
const PER_TICK: u64 = 128;

fn service(obs: Obs) -> FleetService {
    let (paths, groups) = region_paths(SHARDS);
    FleetService::new(
        paths,
        &groups,
        ServiceConfig {
            workers: 1,
            fleet: FleetConfig {
                obs,
                ..FleetConfig::default()
            },
            grid: None,
        },
    )
    .expect("bench service parameters are valid")
}

/// A cheap single-transmission request pinned to one region's paths.
fn request(groups: &[Vec<usize>], region: usize, i: u64) -> FlowRequest {
    let rate = 2e6 + 1e6 * ((i % 5) as f64);
    FlowRequest::new(rate, 0.8)
        .expect("bench request parameters are valid")
        .with_transmissions(1)
        .with_paths(groups[region].clone())
}

/// The `fleet_service` bench's steady-state churn, with telemetry wired
/// through the service config. Returns the decision hash so the whole
/// run is observable.
fn churn(obs: &Obs) -> u64 {
    let mut svc = service(obs.clone());
    let (_, groups) = region_paths(SHARDS);
    let mut live: VecDeque<Vec<u64>> = VecDeque::new();
    let mut offered = 0u64;
    while offered < FLOWS || live.iter().any(|c| !c.is_empty()) {
        let batch = PER_TICK.min(FLOWS - offered);
        for k in 0..batch {
            let region = ((offered + k) % SHARDS as u64) as usize;
            svc.submit(request(&groups, region, offered + k))
                .expect("bench offer is valid");
        }
        offered += batch;
        if live.len() >= 2 {
            for flow in live.pop_front().expect("cohort present") {
                svc.submit_depart(flow);
            }
        }
        let events = svc.tick().expect("bench tick succeeds");
        let mut cohort = Vec::new();
        for event in &events {
            if let ServiceEvent::Decision { seq, admitted, .. } = event {
                if *admitted {
                    cohort.push(*seq);
                }
            }
        }
        live.push_back(cohort);
    }
    svc.decision_hash()
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");

    for (label, obs) in [("disabled", Obs::disabled()), ("enabled", Obs::enabled())] {
        group.bench_function(format!("churn/{label}"), |b| {
            b.iter(|| black_box(churn(&obs)));
        });
    }

    for (label, obs) in [("disabled", Obs::disabled()), ("enabled", Obs::enabled())] {
        group.bench_function(format!("sink/{label}"), |b| {
            b.iter(|| {
                for i in 0..64u64 {
                    obs.counter("bench.counter").add(i);
                    obs.histogram("bench.hist").record(i);
                    obs.advance(1);
                    drop(obs.span("bench.span"));
                }
                black_box(obs.tick())
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
