//! Ablation: Algorithm 1 (deficit selector) vs. weighted random
//! assignment — per-selection cost and convergence error after N packets.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmc_core::{ComboScheduler, RandomScheduler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn target(k: usize) -> Vec<f64> {
    // A spread of shares like a solved strategy: geometric weights.
    let raw: Vec<f64> = (0..k).map(|i| 0.5f64.powi(i as i32 + 1)).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|v| v / total).collect()
}

fn selection_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_selection");
    for k in [9usize, 121, 1331] {
        // k = (n+1)^m for n=2,10 paths at m=2 and n=10 at m=3.
        group.bench_with_input(BenchmarkId::new("algorithm1", k), &k, |b, &k| {
            let mut s = ComboScheduler::new(target(k)).expect("valid");
            b.iter(|| black_box(s.next_combo()));
        });
        group.bench_with_input(BenchmarkId::new("weighted_random", k), &k, |b, &k| {
            let s = RandomScheduler::new(target(k)).expect("valid");
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(s.next_combo(&mut rng)));
        });
    }
    group.finish();
}

fn convergence_error(c: &mut Criterion) {
    // Not a speed benchmark: measures work to reach a given empirical
    // accuracy. Algorithm 1 converges as O(1/N); random sampling as
    // O(1/√N) — at N = 10_000, Algorithm 1 is ~100× tighter.
    let mut group = c.benchmark_group("scheduler_convergence_10k_packets");
    let x = target(16);
    group.bench_function("algorithm1_max_dev", |b| {
        b.iter(|| {
            let mut s = ComboScheduler::new(x.clone()).expect("valid");
            for _ in 0..10_000 {
                s.next_combo();
            }
            black_box(s.max_deviation())
        });
    });
    group.bench_function("weighted_random_max_dev", |b| {
        b.iter(|| {
            let s = RandomScheduler::new(x.clone()).expect("valid");
            let mut rng = StdRng::seed_from_u64(7);
            let mut counts = vec![0u64; x.len()];
            for _ in 0..10_000 {
                counts[s.next_combo(&mut rng)] += 1;
            }
            let dev = counts
                .iter()
                .zip(&x)
                .map(|(&c, &xi)| (c as f64 / 10_000.0 - xi).abs())
                .fold(0.0f64, f64::max);
            black_box(dev)
        });
    });
    group.finish();
}

criterion_group!(benches, selection_throughput, convergence_error);
criterion_main!(benches);
