//! Does planner workspace reuse pay? A 20-point λ sweep over the Table
//! III scenario, solved three ways:
//!
//! * `planner_reused` — one `Planner` across the sweep: the LP tableau,
//!   basis and coefficient buffers are allocated once and reused;
//! * `planner_fresh` — a new `Planner` per solve: every point pays the
//!   allocation cost (what a naive caller would write);
//! * `legacy_fresh` — the pre-pipeline `optimal_strategy` free function,
//!   which rebuilds a `DeterministicModel` and a fresh tableau per call.
//!
//! The measured numbers are recorded in `BENCH_planner.json`
//! (regenerate with `CRITERION_OUTPUT_JSON=1 cargo bench -p dmc-bench
//! --bench planner_reuse`). A larger synthetic scenario (8 paths,
//! m = 3 → 729 LP variables) shows the gap growing with problem size.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmc_core::{optimal_strategy, ModelConfig, Objective, Planner, Scenario, ScenarioPath};
use dmc_experiments::figure4::synthetic_network;
use dmc_experiments::scenarios;
use std::hint::black_box;

/// The 20 rate points (Mbps) of the sweep.
fn lambda_points() -> Vec<f64> {
    (1..=20).map(|i| i as f64 * 7.5).collect()
}

fn table3_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_reuse/table3_20pt_lambda_sweep");
    let base = scenarios::table3_model_scenario(90e6, 0.800);
    let points = lambda_points();

    group.bench_function("planner_reused", |b| {
        let mut planner = Planner::new();
        b.iter(|| {
            let mut total = 0.0;
            for &l in &points {
                let plan = planner
                    .plan(&base.with_data_rate(l * 1e6), Objective::MaxQuality)
                    .expect("feasible");
                total += plan.quality();
            }
            black_box(total)
        });
    });

    group.bench_function("planner_fresh", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for &l in &points {
                let mut planner = Planner::new();
                let plan = planner
                    .plan(&base.with_data_rate(l * 1e6), Objective::MaxQuality)
                    .expect("feasible");
                total += plan.quality();
            }
            black_box(total)
        });
    });

    group.bench_function("legacy_fresh", |b| {
        let cfg = ModelConfig::default();
        b.iter(|| {
            let mut total = 0.0;
            for &l in &points {
                let net = scenarios::table3_model(l * 1e6, 0.800);
                let s = optimal_strategy(&net, &cfg).expect("feasible");
                total += s.quality();
            }
            black_box(total)
        });
    });

    group.finish();
}

fn large_model_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_reuse/synthetic_8path_m3");
    // 8 paths + blackhole, 3 transmissions → 729 LP variables: the
    // tableau is ~100 KB, so per-solve allocation is material.
    let net = synthetic_network(8);
    let base = Scenario::from_network(&net).with_transmissions(3);
    let rates: Vec<f64> = (1..=10)
        .map(|i| net.data_rate() * i as f64 / 10.0)
        .collect();

    group.bench_with_input(BenchmarkId::new("planner_reused", 729), &(), |b, ()| {
        let mut planner = Planner::new();
        b.iter(|| {
            let mut total = 0.0;
            for &r in &rates {
                total += planner
                    .plan(&base.with_data_rate(r), Objective::MaxQuality)
                    .expect("feasible")
                    .quality();
            }
            black_box(total)
        });
    });

    group.bench_with_input(BenchmarkId::new("planner_fresh", 729), &(), |b, ()| {
        b.iter(|| {
            let mut total = 0.0;
            for &r in &rates {
                total += Planner::new()
                    .plan(&base.with_data_rate(r), Objective::MaxQuality)
                    .expect("feasible")
                    .quality();
            }
            black_box(total)
        });
    });

    group.finish();
}

fn adaptive_resolve(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_reuse/adaptive_single_resolve");
    // The AdaptiveSender pattern: re-plan the *same-shaped* scenario with
    // slightly different characteristics each time (estimator updates).
    let loss_steps: Vec<f64> = (0..20).map(|i| 0.05 + 0.01 * i as f64).collect();
    let scenario_for = |loss: f64| -> Scenario {
        Scenario::builder()
            .path(ScenarioPath::constant(80e6, 0.450, loss).expect("valid"))
            .path(ScenarioPath::constant(20e6, 0.150, 0.0).expect("valid"))
            .data_rate(90e6)
            .lifetime(0.8)
            .build()
            .expect("valid")
    };

    group.bench_function("planner_reused", |b| {
        let mut planner = Planner::new();
        b.iter(|| {
            let mut total = 0.0;
            for &loss in &loss_steps {
                total += planner
                    .plan(&scenario_for(loss), Objective::MaxQuality)
                    .expect("feasible")
                    .quality();
            }
            black_box(total)
        });
    });

    group.bench_function("planner_fresh", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for &loss in &loss_steps {
                total += Planner::new()
                    .plan(&scenario_for(loss), Objective::MaxQuality)
                    .expect("feasible")
                    .quality();
            }
            black_box(total)
        });
    });

    group.finish();
}

criterion_group!(benches, table3_sweep, large_model_sweep, adaptive_resolve);
criterion_main!(benches);
