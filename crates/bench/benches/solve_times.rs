//! Figure 4: LP build+solve time vs. number of paths, for 2 and 3
//! transmissions per data unit (the paper reports ~458 µs for 2 paths +
//! blackhole / 2 transmissions on a 2.8 GHz i5, growing toward seconds at
//! 10 paths / 3 transmissions).

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmc_core::{DeterministicModel, SolverOptions};
use dmc_experiments::figure4::synthetic_network;
use std::hint::black_box;

fn solve_times(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure4_solve_times");
    for &m in &[2usize, 3] {
        for n in 2..=10usize {
            group.bench_with_input(
                BenchmarkId::new(format!("{m}_transmissions"), n),
                &(n, m),
                |b, &(n, m)| {
                    let net = synthetic_network(n);
                    let opts = SolverOptions::default();
                    b.iter(|| {
                        let model = DeterministicModel::new(black_box(&net), m, true);
                        model.solve_quality(&opts).expect("feasible")
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, solve_times);
criterion_main!(benches);
