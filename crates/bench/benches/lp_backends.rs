//! Dense tableau vs. revised simplex vs. warm-started revised simplex on
//! the paper's LP shapes.
//!
//! Three benchmark subjects:
//!
//! * `dense` — `Backend::DenseTableau`, the original two-phase tableau;
//! * `revised` — `Backend::Revised`, cold (two-phase) solves;
//! * `warm_revised` — `Backend::Revised` with each solve warm-started
//!   from the previous solve's optimal basis (`Problem::solve_warm_with`),
//!   the pattern the `Planner` and `AdaptiveSender` use.
//!
//! Two instances:
//!
//! * the 20-point Table III λ sweep (9 variables × 3 rows each — small;
//!   the dense tableau is competitive here), and
//! * the `synthetic_8path_m3` instance (8 paths + blackhole, m = 3 → 729
//!   variables × 9 rows — the few-rows/many-columns regime the revised
//!   method targets; `warm_revised` re-solves it from its own optimal
//!   basis, the adaptive-sender pattern).
//!
//! Measured numbers are recorded in `BENCH_lp.json` (regenerate with
//! `CRITERION_OUTPUT_JSON=1 cargo bench -p dmc-bench --bench lp_backends`).

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmc_core::{DeterministicModel, Objective, Planner, PlannerConfig};
use dmc_experiments::figure4::synthetic_network;
use dmc_experiments::scenarios;
use dmc_lp::{Backend, Basis, Problem, SolverOptions, Workspace};
use std::hint::black_box;

fn dense_opts() -> SolverOptions {
    SolverOptions {
        backend: Backend::DenseTableau,
        ..SolverOptions::default()
    }
}

fn revised_opts() -> SolverOptions {
    SolverOptions {
        backend: Backend::Revised,
        ..SolverOptions::default()
    }
}

fn sparse_opts() -> SolverOptions {
    SolverOptions {
        backend: Backend::Sparse,
        ..SolverOptions::default()
    }
}

/// The quality LPs of the 20-point Table III λ sweep.
fn table3_sweep_problems() -> Vec<Problem> {
    (1..=20)
        .map(|i| {
            let net = scenarios::table3_model(i as f64 * 7.5 * 1e6, 0.800);
            DeterministicModel::new(&net, 2, true).quality_lp()
        })
        .collect()
}

/// The 729-variable quality LP of the synthetic 8-path, m = 3 scenario.
fn synthetic_729_problem() -> Problem {
    DeterministicModel::new(&synthetic_network(8), 3, true).quality_lp()
}

fn solve_all(problems: &[Problem], opts: &SolverOptions, ws: &mut Workspace) -> f64 {
    let mut total = 0.0;
    for p in problems {
        total += p.solve_with(opts, ws).expect("feasible").objective();
    }
    total
}

fn solve_all_warm(problems: &[Problem], opts: &SolverOptions, ws: &mut Workspace) -> f64 {
    let mut total = 0.0;
    let mut basis: Option<Basis> = None;
    for p in problems {
        let s = match &basis {
            Some(b) => p.solve_warm_with(opts, ws, b).expect("feasible"),
            None => p.solve_with(opts, ws).expect("feasible"),
        };
        total += s.objective();
        basis = s.basis().cloned();
    }
    total
}

fn table3_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_backends/table3_20pt_lambda_sweep");
    let problems = table3_sweep_problems();

    group.bench_function("dense", |b| {
        let opts = dense_opts();
        let mut ws = Workspace::new();
        b.iter(|| black_box(solve_all(&problems, &opts, &mut ws)));
    });
    group.bench_function("revised", |b| {
        let opts = revised_opts();
        let mut ws = Workspace::new();
        b.iter(|| black_box(solve_all(&problems, &opts, &mut ws)));
    });
    group.bench_function("warm_revised", |b| {
        let opts = revised_opts();
        let mut ws = Workspace::new();
        b.iter(|| black_box(solve_all_warm(&problems, &opts, &mut ws)));
    });
    group.finish();
}

fn synthetic_729(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_backends/synthetic_8path_m3");
    let problem = synthetic_729_problem();

    group.bench_with_input(BenchmarkId::new("dense", 729), &(), |b, ()| {
        let opts = dense_opts();
        let mut ws = Workspace::new();
        b.iter(|| {
            black_box(
                problem
                    .solve_with(&opts, &mut ws)
                    .expect("feasible")
                    .objective(),
            )
        });
    });
    group.bench_with_input(BenchmarkId::new("revised", 729), &(), |b, ()| {
        let opts = revised_opts();
        let mut ws = Workspace::new();
        b.iter(|| {
            black_box(
                problem
                    .solve_with(&opts, &mut ws)
                    .expect("feasible")
                    .objective(),
            )
        });
    });
    // The adaptive-sender pattern: re-solve from the last optimal basis
    // (here its own — re-entering phase 2 verifies optimality in one
    // pricing pass instead of re-pivoting from scratch).
    group.bench_with_input(BenchmarkId::new("warm_revised", 729), &(), |b, ()| {
        let opts = revised_opts();
        let mut ws = Workspace::new();
        let basis = problem
            .solve_with(&opts, &mut ws)
            .expect("feasible")
            .basis()
            .expect("exportable")
            .clone();
        b.iter(|| {
            black_box(
                problem
                    .solve_warm_with(&opts, &mut ws, &basis)
                    .expect("feasible")
                    .objective(),
            )
        });
    });
    group.finish();
}

fn planner_warm_sweep(c: &mut Criterion) {
    // End-to-end check that the Planner-level cache pays: the same 20-pt
    // sweep through Planner::plan with the warm cache on and off.
    let mut group = c.benchmark_group("lp_backends/planner_table3_sweep");
    let base = scenarios::table3_model_scenario(90e6, 0.800);
    let points: Vec<f64> = (1..=20).map(|i| i as f64 * 7.5e6).collect();

    group.bench_function("warm_cache_on", |b| {
        let mut planner = Planner::new();
        b.iter(|| {
            let mut total = 0.0;
            for &l in &points {
                total += planner
                    .plan(&base.with_data_rate(l), Objective::MaxQuality)
                    .expect("feasible")
                    .quality();
            }
            black_box(total)
        });
    });
    group.bench_function("warm_cache_off", |b| {
        let mut planner = Planner::with_config(PlannerConfig {
            warm_start: false,
            ..PlannerConfig::default()
        });
        b.iter(|| {
            let mut total = 0.0;
            for &l in &points {
                total += planner
                    .plan(&base.with_data_rate(l), Objective::MaxQuality)
                    .expect("feasible")
                    .quality();
            }
            black_box(total)
        });
    });
    group.finish();
}

/// A fleet-shaped block-angular joint LP: `blocks` per-flow blocks of 9
/// columns (a `Σx = 1` row each, a quality-floor row on every fourth
/// block), coupled by two shared capacity rows — the structure
/// `dmc_fleet`'s joint admission LP has at `blocks` admitted flows.
/// Column 0 of each block is the "blackhole" (zero quality, zero
/// capacity usage), which keeps the instance feasible under any load,
/// exactly like the real joint LP.
fn block_angular_problem(blocks: usize) -> Problem {
    let width = 9usize;
    let n = blocks * width;
    let c: Vec<f64> = (0..n)
        .map(|j| {
            if j % width == 0 {
                0.0
            } else {
                0.2 + 0.7 * ((j as f64 * 0.7389).sin() * 0.5 + 0.5)
            }
        })
        .collect();
    let mut p = Problem::maximize(c.clone());
    for k in 0..2usize {
        let row: Vec<f64> = (0..n)
            .map(|j| {
                if j % width == 0 {
                    0.0
                } else {
                    0.05 + ((j + 11 * k) as f64 * 0.4243).cos().abs()
                }
            })
            .collect();
        p.add_le(row, 0.35 * blocks as f64 + k as f64 * 0.1)
            .unwrap();
    }
    for f in 0..blocks {
        if f % 4 == 0 {
            let mut row = vec![0.0; n];
            row[f * width..(f + 1) * width].copy_from_slice(&c[f * width..(f + 1) * width]);
            p.add_ge(row, 0.15).unwrap();
        }
        let mut row = vec![0.0; n];
        for v in &mut row[f * width..(f + 1) * width] {
            *v = 1.0;
        }
        p.add_eq(row, 1.0).unwrap();
    }
    p.set_block_starts((0..blocks).map(|f| f * width).collect())
        .unwrap();
    p
}

/// The fleet-scale instance: 64 blocks → 576 variables, 146 rows. This
/// is where the dense backends' `O(m³)` refactorizations and `O(m·n)`
/// pricing bite, and where the block-structured sparse backend must
/// clear the issue's ≥ 2x bar.
fn block_angular_64(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_backends/block_angular_64flow");
    let problem = block_angular_problem(64);

    group.bench_function("revised_cold", |b| {
        let opts = revised_opts();
        let mut ws = Workspace::new();
        b.iter(|| {
            black_box(
                problem
                    .solve_with(&opts, &mut ws)
                    .expect("feasible")
                    .objective(),
            )
        });
    });
    group.bench_function("sparse_cold", |b| {
        let opts = sparse_opts();
        let mut ws = Workspace::new();
        b.iter(|| {
            black_box(
                problem
                    .solve_with(&opts, &mut ws)
                    .expect("feasible")
                    .objective(),
            )
        });
    });
    for (name, opts) in [
        ("revised_warm", revised_opts()),
        ("sparse_warm", sparse_opts()),
    ] {
        group.bench_function(name, |b| {
            let mut ws = Workspace::new();
            let basis = problem
                .solve_with(&opts, &mut ws)
                .expect("feasible")
                .basis()
                .expect("exportable")
                .clone();
            b.iter(|| {
                black_box(
                    problem
                        .solve_warm_with(&opts, &mut ws, &basis)
                        .expect("feasible")
                        .objective(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    table3_sweep,
    synthetic_729,
    planner_warm_sweep,
    block_angular_64
);
criterion_main!(benches);
