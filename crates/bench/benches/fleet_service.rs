//! Sharded fleet-service throughput:
//!
//! * `admit_100k` — the tentpole number: 100,000 flows admitted through a
//!   64-shard service in batched ticks. Each tick offers a cohort spread
//!   across every region and departs the cohort admitted two ticks ago,
//!   so the resident population stays bounded (steady-state churn) while
//!   each shard's `offer_batch`/`depart_batch` proves a whole cohort per
//!   solve and keeps re-entering its warm basis.
//! * `shard_scaling` — the same fixed workload (2,048 flows, 128 offers
//!   per tick, so 256 resident at steady state) pushed through 1, 4, 16
//!   and 64 shards. Flows with disjoint path sets never share a capacity
//!   row, so sharding shrinks every joint LP: 64 two-path regions solve
//!   4-flow blocks where one region solves a single 256-flow LP.
//!
//! Workers are pinned to 1 so the numbers isolate the *decomposition*
//! win (smaller LPs per shard) from thread-pool effects — the CI box is
//! a single-CPU container, and worker-count invariance of the decision
//! stream is pinned separately by `crates/fleet/tests/service.rs`.
//!
//! Measured numbers are recorded in `BENCH_service.json` (regenerate with
//! `CRITERION_OUTPUT_JSON=1 cargo bench -p dmc-bench --bench fleet_service`).

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmc_experiments::service::region_paths;
use dmc_fleet::{FleetConfig, FleetService, FlowRequest, ServiceConfig, ServiceEvent};
use std::collections::VecDeque;
use std::hint::black_box;

fn service(shards: usize) -> FleetService {
    let (paths, groups) = region_paths(shards);
    FleetService::new(
        paths,
        &groups,
        ServiceConfig {
            workers: 1,
            fleet: FleetConfig::default(),
            grid: None,
        },
    )
    .expect("bench service parameters are valid")
}

/// A cheap single-transmission request pinned to one region's paths.
fn request(groups: &[Vec<usize>], region: usize, i: u64) -> FlowRequest {
    let rate = 2e6 + 1e6 * ((i % 5) as f64);
    FlowRequest::new(rate, 0.8)
        .expect("bench request parameters are valid")
        .with_transmissions(1)
        .with_paths(groups[region].clone())
}

/// Admits `flows` flows through a `shards`-region service in ticks of
/// `per_tick` offers, departing each admitted cohort two ticks later.
/// Returns the decision hash so the whole run is observable.
fn churn(flows: u64, shards: usize, per_tick: u64) -> u64 {
    let mut svc = service(shards);
    let (_, groups) = region_paths(shards);
    let mut live: VecDeque<Vec<u64>> = VecDeque::new();
    let mut offered = 0u64;
    let mut decided = 0u64;
    while offered < flows || live.iter().any(|c| !c.is_empty()) {
        let batch = per_tick.min(flows - offered);
        for k in 0..batch {
            let region = ((offered + k) % shards as u64) as usize;
            svc.submit(request(&groups, region, offered + k))
                .expect("bench offer is valid");
        }
        offered += batch;
        if live.len() >= 2 {
            for flow in live.pop_front().expect("cohort present") {
                svc.submit_depart(flow);
            }
        }
        let events = svc.tick().expect("bench tick succeeds");
        let mut cohort = Vec::new();
        for event in &events {
            if let ServiceEvent::Decision { seq, admitted, .. } = event {
                decided += 1;
                if *admitted {
                    cohort.push(*seq);
                }
            }
        }
        live.push_back(cohort);
    }
    assert_eq!(decided, flows, "every offer gets a decision");
    svc.decision_hash()
}

fn admit_100k(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_service/admit_100k");
    group.bench_function("64shards", |b| {
        b.iter(|| black_box(churn(100_000, 64, 512)));
    });
    group.finish();
}

fn shard_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_service/shard_scaling");
    for shards in [1usize, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &s| {
            b.iter(|| black_box(churn(2_048, s, 128)));
        });
    }
    group.finish();
}

criterion_group!(benches, admit_100k, shard_scaling);
criterion_main!(benches);
