//! Monte-Carlo trial throughput: the Figure-2 flagship workload
//! (λ = 90 Mbps, δ = 800 ms, Table III network) at 1, 2, and 4 worker
//! threads, 8 trials per measurement. The engine guarantees bit-identical
//! aggregates at every thread count, so this measures pure scaling.
//!
//! Recorded numbers live in `BENCH_montecarlo.json`; note that a
//! single-core container cannot show parallel speedup — the interesting
//! number there is the (small) overhead of the pool at threads > 1.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dmc_core::{Objective, Planner, Scenario};
use dmc_experiments::montecarlo::{run_plan_trials, MonteCarloConfig};
use dmc_experiments::runner::{RunConfig, TrueNetwork};
use dmc_experiments::scenarios;
use std::hint::black_box;

fn trial_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("montecarlo_figure2_point");
    let trials = 8u64;
    group.throughput(Throughput::Elements(trials));
    group.sample_size(10);

    // Solve the plan once — the engine shares it across trials.
    let measured = scenarios::table3_true(90e6, 0.8);
    let scenario = Scenario::from_network(&measured);
    let plan = Planner::new()
        .plan_with_margin(&scenario, scenarios::QUEUE_MARGIN_S, Objective::MaxQuality)
        .expect("feasible");
    let truth = TrueNetwork::deterministic(&measured);
    let mut cfg = RunConfig::default();
    cfg.messages = 2_000;

    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                let mc = MonteCarloConfig {
                    trials,
                    threads,
                    base_seed: 7,
                };
                b.iter(|| {
                    let report = run_plan_trials(black_box(&plan), &truth, &cfg, &mc).expect("run");
                    black_box(report.quality.mean())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, trial_throughput);
criterion_main!(benches);
