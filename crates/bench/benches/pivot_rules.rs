//! Ablation: Dantzig vs. Bland vs. adaptive pivoting on the Figure-4
//! problem family. Dantzig is fastest but can cycle; Bland never cycles
//! but takes more pivots; the adaptive default should track Dantzig.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmc_core::{DeterministicModel, PivotRule, SolverOptions};
use dmc_experiments::figure4::synthetic_network;
use std::hint::black_box;

fn pivot_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("pivot_rules");
    for (name, rule) in [
        ("dantzig", PivotRule::Dantzig),
        ("bland", PivotRule::Bland),
        ("adaptive", PivotRule::Adaptive),
    ] {
        for n in [4usize, 8] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
                let net = synthetic_network(n);
                let model = DeterministicModel::new(&net, 3, true);
                let mut opts = SolverOptions::default();
                opts.pivot_rule = rule;
                b.iter(|| black_box(&model).solve_quality(&opts).expect("feasible"));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, pivot_rules);
criterion_main!(benches);
