//! Simulator throughput: messages/second through the full protocol stack
//! on the paper's Experiment-1 topology.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dmc_core::ModelConfig;
use dmc_experiments::runner::{run_measured, RunConfig, TrueNetwork};
use dmc_experiments::scenarios;
use std::hint::black_box;

fn full_stack(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_full_stack");
    let messages = 5_000u64;
    group.throughput(Throughput::Elements(messages));
    group.sample_size(10);
    group.bench_function("experiment1_5k_messages", |b| {
        let measured = scenarios::table3_true(90e6, 0.8);
        let truth = TrueNetwork::deterministic(&measured);
        let mut cfg = RunConfig::default();
        cfg.messages = messages;
        b.iter(|| {
            let out = run_measured(
                black_box(&measured),
                scenarios::QUEUE_MARGIN_S,
                &truth,
                &ModelConfig::default(),
                &cfg,
            )
            .expect("run");
            black_box(out.quality)
        });
    });
    group.finish();
}

criterion_group!(benches, full_stack);
criterion_main!(benches);
