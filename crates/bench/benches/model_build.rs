//! Cost of *assembling* the model matrices alone (Eq. 11–18), separated
//! from solving — shows how much of Figure 4 is construction vs. simplex.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmc_core::DeterministicModel;
use dmc_experiments::figure4::synthetic_network;
use std::hint::black_box;

fn model_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_build");
    for &m in &[2usize, 3] {
        for n in [2usize, 6, 10] {
            group.bench_with_input(
                BenchmarkId::new(format!("{m}_transmissions"), n),
                &(n, m),
                |b, &(n, m)| {
                    let net = synthetic_network(n);
                    b.iter(|| black_box(DeterministicModel::new(&net, m, true)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, model_build);
criterion_main!(benches);
