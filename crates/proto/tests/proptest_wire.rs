//! Property-based tests for the wire formats and estimators.

use dmc_proto::wire::{Ack, DataHeader, NoticeKind, PathNotice, ACK_BITMAP_BITS};
use dmc_proto::{LossEstimator, RttEstimator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Header encode/decode is the identity.
    #[test]
    fn data_header_round_trips(
        seq in any::<u64>(),
        created in any::<u64>(),
        sent in any::<u64>(),
        path in any::<u8>(),
        stage in any::<u8>(),
    ) {
        let h = DataHeader { seq, created_ns: created, sent_ns: sent, path, stage };
        prop_assert_eq!(DataHeader::decode(&h.encode()), Some(h));
    }

    /// Ack encode/decode preserves the full received-set semantics.
    #[test]
    fn ack_round_trips(
        just in any::<u64>(),
        echo in any::<u64>(),
        path in any::<u8>(),
        start in 0u64..u64::MAX / 2,
        offsets in proptest::collection::vec(0u64..ACK_BITMAP_BITS as u64, 0..40),
    ) {
        let mut a = Ack::new(just, echo, path, start);
        for &off in &offsets {
            a.set_received(start + off);
        }
        let b = Ack::decode(&a.encode()).expect("decodes");
        prop_assert_eq!(&b, &a);
        for &off in &offsets {
            prop_assert!(b.is_received(start + off));
        }
        let claimed: Vec<u64> = b.received_seqs().collect();
        let mut expected: Vec<u64> = offsets.iter().map(|&o| start + o).collect();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(claimed, expected);
    }

    /// The failure-notification frame round-trips for every valid value,
    /// and never decodes as one of the other frame types.
    #[test]
    fn path_notice_round_trips(
        path in any::<u8>(),
        down in any::<bool>(),
        seq in any::<u8>(),
        at in any::<u64>(),
    ) {
        let n = PathNotice {
            path,
            kind: if down { NoticeKind::Down } else { NoticeKind::Up },
            seq,
            at_ns: at,
        };
        let wire = n.encode();
        prop_assert_eq!(wire.len(), PathNotice::WIRE_BYTES);
        prop_assert_eq!(PathNotice::decode(&wire), Some(n));
        // Distinct magics: a notice is never misparsed as data or ack.
        prop_assert_eq!(DataHeader::decode(&wire), None);
        prop_assert_eq!(Ack::decode(&wire), None);
        prop_assert_eq!(PathNotice::decode(&wire[..PathNotice::WIRE_BYTES - 1]), None);
    }

    /// No random byte string panics a decoder, and anything a decoder
    /// does accept re-encodes to a frame that decodes identically (the
    /// checksum makes blind acceptance of random bytes vanishingly
    /// unlikely, but the property holds either way).
    #[test]
    fn garbage_is_rejected(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        match DataHeader::decode(&bytes) {
            None => {}
            Some(h) => prop_assert_eq!(DataHeader::decode(&h.encode()), Some(h)),
        }
        match Ack::decode(&bytes) {
            None => {}
            Some(a) => {
                let again = Ack::decode(&a.encode()).expect("re-decodes");
                prop_assert_eq!(again, a);
            }
        }
        match PathNotice::decode(&bytes) {
            None => {}
            Some(n) => prop_assert_eq!(PathNotice::decode(&n.encode()), Some(n)),
        }
    }

    /// Flipping any single bit of a valid frame makes its decoder reject
    /// it (checksum coverage is total).
    #[test]
    fn corrupted_frames_are_rejected(
        path in any::<u8>(),
        seq in any::<u8>(),
        at in any::<u64>(),
        byte in any::<usize>(),
        bit in any::<u8>(),
    ) {
        let n = PathNotice { path, kind: NoticeKind::Down, seq, at_ns: at };
        let mut wire = n.encode().to_vec();
        wire[byte % PathNotice::WIRE_BYTES] ^= 1 << (bit % 8);
        prop_assert_eq!(PathNotice::decode(&wire), None);
    }

    /// SRTT stays inside the observed sample range (convexity of EWMA).
    #[test]
    fn srtt_bounded_by_samples(samples in proptest::collection::vec(0.001f64..2.0, 1..200)) {
        let mut e = RttEstimator::new();
        let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
        for &s in &samples {
            e.record(s);
            lo = lo.min(s);
            hi = hi.max(s);
        }
        let srtt = e.srtt().expect("samples fed");
        prop_assert!(srtt >= lo - 1e-12 && srtt <= hi + 1e-12,
            "srtt {srtt} outside [{lo}, {hi}]");
        prop_assert!(e.rto(0.0).expect("defined") >= srtt);
    }

    /// Windowed loss rate equals the exact rate over the last W samples.
    #[test]
    fn loss_window_is_exact(outcomes in proptest::collection::vec(any::<bool>(), 1..300),
                            window in 1usize..64) {
        let mut e = LossEstimator::new(window);
        for &lost in &outcomes {
            e.record(lost);
        }
        let tail: Vec<bool> = outcomes.iter().rev().take(window).copied().collect();
        let want = tail.iter().filter(|&&l| l).count() as f64 / tail.len() as f64;
        prop_assert!((e.rate() - want).abs() < 1e-12);
        let lifetime = outcomes.iter().filter(|&&l| l).count() as f64 / outcomes.len() as f64;
        prop_assert!((e.lifetime_rate() - lifetime).abs() < 1e-12);
    }
}
