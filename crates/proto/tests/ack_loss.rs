//! Behavior under acknowledgment loss: the §VIII-C bitmap scheme makes
//! lost acks nearly free — every later ack's bitmap re-confirms recent
//! packets before their retransmission timers fire, so ack loss causes
//! neither data loss nor a spurious-retransmission storm.

use dmc_core::{optimal_strategy, ModelConfig, NetworkSpec, PathSpec};
use dmc_proto::{DmcReceiver, DmcSender, ReceiverConfig, SenderConfig, TimeoutPlan};
use dmc_sim::{Dir, LinkConfig, SimDuration, TwoHostSim};
use dmc_stats::ConstantDelay;
use std::sync::Arc;

fn link(bw: f64, delay: f64, loss: f64) -> LinkConfig {
    LinkConfig {
        bandwidth_bps: bw,
        propagation: Arc::new(ConstantDelay::new(delay)),
        loss: loss.into(),
        queue_capacity_bytes: 100 * 1024,
    }
}

/// λ = 18 Mbps forces real traffic onto the lossy 20 Mbps path (path 2's
/// 10 Mbps can't carry it alone), so genuine retransmissions exist.
fn run(ack_loss: f64, messages: u64) -> (f64, u64, u64) {
    let net = NetworkSpec::builder()
        .path(PathSpec::new(20e6, 0.100, 0.05).unwrap())
        .path(PathSpec::new(10e6, 0.050, 0.0).unwrap())
        .data_rate(18e6)
        .lifetime(0.8)
        .build()
        .unwrap();
    let strategy = optimal_strategy(&net, &ModelConfig::default()).unwrap();
    let timeouts = TimeoutPlan::deterministic(&net, strategy.table(), SimDuration::from_millis(50));
    let sender = DmcSender::new(SenderConfig::new(strategy, timeouts, 18e6, messages));
    let receiver = DmcReceiver::new(ReceiverConfig::new(SimDuration::from_secs_f64(0.8), 1));
    // Forward links as specified; the *reverse* ack path loses `ack_loss`.
    let mut sim = TwoHostSim::new(
        vec![link(20e6, 0.100, 0.05), link(10e6, 0.050, 0.0)],
        vec![link(20e6, 0.100, 0.0), link(10e6, 0.050, ack_loss)],
        sender,
        receiver,
        99,
    )
    .unwrap();
    sim.run_to_completion();
    let r = sim.server().stats();
    let s = sim.client().stats();
    assert!(
        s.retransmissions > 0,
        "scenario must exercise retransmission"
    );
    let quality = r.unique_in_time as f64 / s.generated as f64;
    let rev = sim.link_stats(Dir::Backward, 1);
    assert!(
        ack_loss == 0.0 || rev.lost > 0,
        "ack path must actually lose"
    );
    (quality, r.duplicates, s.retransmissions)
}

#[test]
fn ack_loss_is_nearly_free_with_bitmap_acks() {
    let n = 5_000;
    let (q_clean, dup_clean, retx_clean) = run(0.0, n);
    let (q_lossy, dup_lossy, retx_lossy) = run(0.3, n);
    // Quality unaffected: data still flows and deadlines are met.
    assert!(q_clean > 0.97, "clean quality {q_clean}");
    assert!(
        q_lossy > q_clean - 0.02,
        "ack loss broke delivery: {q_lossy} vs {q_clean}"
    );
    // No spurious-retransmission storm: a naive per-packet-ack design
    // would retransmit ~30 % of all messages (≈ 1500 here); the bitmap
    // keeps the increase to a small multiple of the genuine loss volume.
    assert!(
        retx_lossy < retx_clean * 3 + 50,
        "spurious storm: {retx_lossy} vs clean {retx_clean}"
    );
    // Duplicates at the receiver stay marginal.
    assert!(
        dup_lossy < n / 50,
        "duplicates {dup_lossy} exceed 2% of {n} (clean: {dup_clean})"
    );
}

#[test]
fn total_ack_blackout_degrades_to_expiry_not_deadlock() {
    // With 100 % ack loss every message times out through its stages and
    // is eventually given up; the simulation must terminate (no timer
    // leak) and the receiver still gets the data copies.
    let n = 1_000;
    let (quality, _dups, retx) = run(1.0, n);
    // Data still arrives (forward path works); quality from the
    // receiver's perspective is high even though the sender never learns.
    assert!(quality > 0.9, "quality {quality}");
    // Everything on a retransmittable combo got retransmitted.
    assert!(retx > n / 4, "retransmissions {retx}");
}
