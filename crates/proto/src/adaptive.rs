//! Closed-loop operation: estimate → re-solve → retarget (paper §VIII-A/B:
//! "the problem must be solved … when the estimations of network
//! characteristics vary significantly").

use crate::sender::{DmcSender, SenderConfig, TimeoutPlan, RESERVED_KEY_BASE};
use crate::wire::{NoticeKind, PathNotice};
use dmc_core::{
    ModelConfig, NetworkSpec, Objective, PathSpec, Plan, Planner, PlannerConfig, Scenario,
};
use dmc_sim::{Agent, Packet, SimApi, SimDuration};

/// Timer key reserved for the periodic re-solve.
const ADAPT_KEY: u64 = RESERVED_KEY_BASE;

/// Configuration for [`AdaptiveSender`].
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Prior scenario (bandwidths are taken as configured — the paper's
    /// §VIII-A position is that bandwidth comes from congestion control;
    /// delay and loss priors are refined from measurements).
    pub prior: NetworkSpec,
    /// How often to re-estimate and re-solve.
    pub interval: SimDuration,
    /// Model options for re-solving (mapped onto the internal
    /// [`Planner`]'s configuration).
    pub model: ModelConfig,
    /// Slack added to re-derived retransmission timeouts.
    pub rto_extra: SimDuration,
    /// Minimum RTT samples on a path before its delay estimate replaces
    /// the prior.
    pub min_samples: u64,
}

/// A [`DmcSender`] that periodically refits path characteristics from its
/// own estimators, re-plans through an owned [`Planner`], and retargets
/// Algorithm 1 from the fresh [`Plan`] — the paper's complete practical
/// loop. Receiver-issued [`PathNotice`]s short-circuit the periodic
/// cadence: a failure notice re-plans immediately with the dead path's
/// loss pinned to 1, and a recovery notice re-admits it.
///
/// The planner's LP workspace is reused across every re-solve, so the
/// periodic re-planning allocates nothing once warm — and because
/// successive estimates share the LP's shape, every re-solve after the
/// first warm-starts from the previous optimal basis and typically
/// re-enters phase 2 with a handful of pivots (see
/// `dmc_core::PlannerConfig::warm_start`).
#[derive(Debug)]
pub struct AdaptiveSender {
    inner: DmcSender,
    config: AdaptiveConfig,
    planner: Planner,
    resolves: u64,
    /// Paths reported down by the receiver ([`PathNotice`]); while set,
    /// the re-solved model pins the path's loss to 1 so the LP routes
    /// around it.
    failed: Vec<bool>,
    /// Immediate re-solves triggered by failure/recovery notices.
    notice_replans: u64,
    /// Recovery probes sent on failed paths.
    probes: u64,
}

impl AdaptiveSender {
    /// Wraps a sender configuration with the adaptive loop.
    pub fn new(sender: SenderConfig, config: AdaptiveConfig) -> Self {
        let planner = Planner::with_config(PlannerConfig {
            blackhole: config.model.blackhole,
            solver: config.model.solver.clone(),
            ..PlannerConfig::default()
        });
        let num_paths = config.prior.num_paths();
        AdaptiveSender {
            inner: DmcSender::new(sender),
            config,
            planner,
            resolves: 0,
            failed: vec![false; num_paths],
            notice_replans: 0,
            probes: 0,
        }
    }

    /// Builds the initial sender from a solved [`Plan`] and wraps it with
    /// the adaptive loop.
    ///
    /// # Panics
    ///
    /// Same conditions as [`DmcSender::new`].
    pub fn from_plan(plan: &Plan, config: AdaptiveConfig, total_messages: u64) -> Self {
        let sender = SenderConfig::from_plan(plan, config.rto_extra, total_messages);
        AdaptiveSender::new(sender, config)
    }

    /// The wrapped sender (stats, estimators).
    pub fn inner(&self) -> &DmcSender {
        &self.inner
    }

    /// How many times the LP was re-solved.
    pub fn resolves(&self) -> u64 {
        self.resolves
    }

    /// Immediate re-solves triggered by path-failure/recovery notices.
    pub fn notice_replans(&self) -> u64 {
        self.notice_replans
    }

    /// Paths currently believed failed (set by receiver notices).
    pub fn failed_paths(&self) -> Vec<usize> {
        self.failed
            .iter()
            .enumerate()
            .filter_map(|(i, &f)| f.then_some(i))
            .collect()
    }

    /// Recovery probes sent on failed paths.
    pub fn probes_sent(&self) -> u64 {
        self.probes
    }

    /// Sends one [`PathNotice`]-framed probe on each failed path. The
    /// re-planned strategy carries no data on those paths, so without
    /// probing a recovery could never be observed; a probe that gets
    /// through makes the receiver's detector report the path up.
    fn probe_failed_paths(&mut self, api: &mut SimApi<'_>) {
        for path in 0..self.failed.len() {
            if !self.failed[path] {
                continue;
            }
            let probe = PathNotice {
                path: path as u8,
                kind: NoticeKind::Down,
                at_ns: api.now().as_nanos(),
            };
            if api.send(path, Packet::new(64, probe.encode())) {
                self.probes += 1;
            }
        }
    }

    /// The owned planner (inspect warm-start statistics:
    /// `planner().warm_stats()`, a [`dmc_core::WarmStats`]).
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Current best estimate of the network (prior refined by
    /// measurements).
    pub fn estimated_network(&self) -> NetworkSpec {
        let rtts = self.inner.rtt_estimators();
        let losses = self.inner.loss_estimators();
        let min_srtt = rtts
            .iter()
            .filter(|e| e.samples() >= self.config.min_samples)
            .filter_map(|e| e.srtt())
            .fold(f64::INFINITY, f64::min);
        let mut net = self.config.prior.clone();
        for k in 0..net.num_paths() {
            let prior = net.paths()[k];
            let delay = if rtts[k].samples() >= self.config.min_samples && min_srtt.is_finite() {
                rtts[k]
                    .srtt()
                    .map(|s| (s - min_srtt / 2.0).max(0.0))
                    .unwrap_or(prior.delay())
            } else {
                prior.delay()
            };
            // Gate on *window* occupancy: the recovery path resets the
            // window (outage timeouts are not evidence about the
            // recovered link), and an emptied window must fall back to
            // the prior rather than read as 0 % loss.
            let loss = if losses[k].window_samples() as u64 >= self.config.min_samples {
                losses[k].rate()
            } else {
                prior.loss()
            };
            // A failure notice overrides everything the estimators say:
            // the path delivers nothing until the receiver reports it up.
            let loss = if self.failed.get(k).copied().unwrap_or(false) {
                1.0
            } else {
                loss
            };
            let refined =
                PathSpec::with_cost(prior.bandwidth(), delay, loss.clamp(0.0, 1.0), prior.cost())
                    .unwrap_or(prior);
            net = net.with_path_replaced(k, refined);
        }
        net
    }

    /// Reacts to a receiver [`PathNotice`]: record the path state and
    /// re-plan *now* — timeouts on the failed path keep firing, but the
    /// fresh plan's combinations route new data (and the retransmit
    /// stages of anything still in flight at its next stage) onto live
    /// paths.
    fn on_notice(&mut self, notice: &PathNotice) {
        let path = notice.path as usize;
        if path >= self.failed.len() {
            return;
        }
        let failed = matches!(notice.kind, NoticeKind::Down);
        if self.failed[path] != failed {
            self.failed[path] = failed;
            if !failed {
                // The outage's timeout losses are not evidence about the
                // recovered path; without discarding them the re-plan
                // would keep avoiding it and the receiver would re-declare
                // it down (flapping).
                self.inner.reset_loss_window(path);
            }
            self.resolve();
            self.notice_replans += 1;
        }
    }

    fn resolve(&mut self) {
        let est = self.estimated_network();
        let scenario =
            Scenario::from_network(&est).with_transmissions(self.config.model.transmissions);
        if let Ok(plan) = self.planner.plan(&scenario, Objective::MaxQuality) {
            let timeouts = TimeoutPlan::from_plan(&plan, self.config.rto_extra);
            self.inner.retarget(plan.into_strategy(), timeouts);
            self.resolves += 1;
        }
    }
}

impl Agent for AdaptiveSender {
    fn on_start(&mut self, api: &mut SimApi<'_>) {
        self.inner.on_start(api);
        api.set_timer(api.now() + self.config.interval, ADAPT_KEY);
    }

    fn on_packet(&mut self, path: usize, packet: Packet, api: &mut SimApi<'_>) {
        if let Some(notice) = PathNotice::decode(packet.payload()) {
            self.on_notice(&notice);
            return;
        }
        self.inner.on_packet(path, packet, api);
    }

    fn on_timer(&mut self, key: u64, api: &mut SimApi<'_>) {
        if key == ADAPT_KEY {
            self.resolve();
            self.probe_failed_paths(api);
            api.set_timer(api.now() + self.config.interval, ADAPT_KEY);
        } else {
            self.inner.on_timer(key, api);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::{DmcReceiver, ReceiverConfig};
    use dmc_sim::{LinkConfig, SimTime, TwoHostSim};
    use dmc_stats::ConstantDelay;
    use std::sync::Arc;

    fn link(bw: f64, delay: f64, loss: f64) -> LinkConfig {
        LinkConfig {
            bandwidth_bps: bw,
            propagation: Arc::new(ConstantDelay::new(delay)),
            loss: loss.into(),
            queue_capacity_bytes: 1 << 22,
        }
    }

    /// Prior believes path 0 loses 2 %; it really loses 40 %. The static
    /// sender keeps retransmitting the unexpected losses onto the thin
    /// clean path (6 Mbps offered into 4 Mbps), whose queue fills and
    /// makes everything it carries late. The adaptive sender learns the
    /// real loss rate, re-solves, and rebalances within capacity.
    #[test]
    fn adaptation_learns_loss_and_improves_quality() {
        let prior = NetworkSpec::builder()
            .path(PathSpec::new(10e6, 0.100, 0.02).unwrap())
            .path(PathSpec::new(4e6, 0.050, 0.0).unwrap())
            .data_rate(12e6)
            .lifetime(0.4)
            .build()
            .unwrap();
        let messages = 40_000;
        let horizon = SimTime::from_secs_f64(40.0);
        // True links are over-provisioned relative to the configured b_i
        // (the paper does the same in Exp. 2): a path driven at exactly
        // 100 % of its true capacity builds an unbounded queue, so the
        // model's bandwidth bound must leave headroom. The static sender's
        // retransmission surge (6 Mbps into 5) still overloads path 1.
        let fwd = vec![link(12e6, 0.100, 0.40), link(5e6, 0.050, 0.0)];
        let bwd = vec![link(12e6, 0.100, 0.0), link(5e6, 0.050, 0.0)];

        let run = |adaptive: bool| -> f64 {
            let plan = Planner::new()
                .plan(&Scenario::from_network(&prior), Objective::MaxQuality)
                .unwrap();
            let base = SenderConfig::from_plan(&plan, SimDuration::from_millis(50), messages);
            let receiver =
                DmcReceiver::new(ReceiverConfig::new(SimDuration::from_secs_f64(0.4), 1));
            if adaptive {
                let sender = AdaptiveSender::new(
                    base,
                    AdaptiveConfig {
                        prior: prior.clone(),
                        interval: SimDuration::from_millis(250),
                        model: ModelConfig::default(),
                        rto_extra: SimDuration::from_millis(50),
                        min_samples: 30,
                    },
                );
                let mut sim =
                    TwoHostSim::new(fwd.clone(), bwd.clone(), sender, receiver, 21).unwrap();
                sim.run_until(horizon);
                assert!(sim.client().resolves() > 10);
                // Re-solves share the LP shape, so all but the first must
                // have consulted the warm cache and most should have
                // skipped phase 1 outright.
                let warm = sim.client().planner().warm_stats();
                assert_eq!(warm.attempts(), sim.client().resolves() - 1);
                assert!(warm.hits > 0, "periodic re-solves never warm-started");
                let learned_loss = sim.client().estimated_network().paths()[0].loss();
                assert!(
                    (0.28..=0.52).contains(&learned_loss),
                    "learned loss {learned_loss}, truth 0.40"
                );
                sim.server().stats().unique_in_time as f64 / messages as f64
            } else {
                let sender = DmcSender::new(base);
                let mut sim =
                    TwoHostSim::new(fwd.clone(), bwd.clone(), sender, receiver, 21).unwrap();
                sim.run_until(horizon);
                sim.server().stats().unique_in_time as f64 / messages as f64
            }
        };

        let q_static = run(false);
        let q_adaptive = run(true);
        assert!(
            q_adaptive > q_static + 0.10,
            "adaptive {q_adaptive} vs static {q_static}"
        );
        // The oracle optimum for the true network is ≈ 0.875; the learner
        // should get most of the way there despite the warm-up.
        assert!(q_adaptive > 0.7, "adaptive quality {q_adaptive}");
    }

    /// Mid-transfer the wide path dies for a stretch. The failure-aware
    /// loop (receiver notices → immediate re-plan with loss=1) must beat
    /// the plain periodic estimator loop *and* clear its failure state
    /// after the recovery notice.
    #[test]
    fn failure_notice_replans_within_one_round() {
        use crate::receiver::FailureDetection;
        use dmc_sim::Dynamics;

        let prior = NetworkSpec::builder()
            .path(PathSpec::new(10e6, 0.100, 0.02).unwrap())
            .path(PathSpec::new(4e6, 0.050, 0.0).unwrap())
            .data_rate(10e6)
            .lifetime(0.4)
            .build()
            .unwrap();
        let messages = 30_000;
        let horizon = SimTime::from_secs_f64(40.0);
        let fwd = vec![link(12e6, 0.100, 0.02), link(5e6, 0.050, 0.0)];
        let bwd = vec![link(12e6, 0.100, 0.0), link(5e6, 0.050, 0.0)];
        // Path 0 (carrying most of the traffic) is down 8 s → 16 s.
        let dynamics = Dynamics::new().path_failure(0, 8.0, 16.0).unwrap();

        let run = |detect: bool| {
            let plan = Planner::new()
                .plan(&Scenario::from_network(&prior), Objective::MaxQuality)
                .unwrap();
            let sender = AdaptiveSender::from_plan(
                &plan,
                AdaptiveConfig {
                    prior: prior.clone(),
                    interval: SimDuration::from_millis(500),
                    model: ModelConfig::default(),
                    rto_extra: SimDuration::from_millis(50),
                    min_samples: 30,
                },
                messages,
            );
            let mut cfg = ReceiverConfig::new(SimDuration::from_secs_f64(0.4), 1);
            if detect {
                cfg = cfg
                    .with_failure_detection(FailureDetection::new(SimDuration::from_millis(100)));
            }
            let receiver = DmcReceiver::new(cfg);
            let mut sim = TwoHostSim::new(fwd.clone(), bwd.clone(), sender, receiver, 33).unwrap();
            sim.apply_dynamics(&dynamics).unwrap();
            sim.run_until(horizon);
            let q = sim.server().stats().unique_in_time as f64 / messages as f64;
            let replans = sim.client().notice_replans();
            let still_failed = sim.client().failed_paths();
            (q, replans, still_failed)
        };

        let (q_blind, replans_blind, _) = run(false);
        let (q_aware, replans_aware, failed_after) = run(true);
        assert_eq!(replans_blind, 0, "no notices without detection");
        assert!(
            replans_aware >= 2,
            "expected a down and an up re-plan, got {replans_aware}"
        );
        assert!(
            failed_after.is_empty(),
            "recovery notice must clear failure state, got {failed_after:?}"
        );
        assert!(
            q_aware > q_blind + 0.02,
            "failure-aware {q_aware} vs blind {q_blind}"
        );
    }
}
