//! Closed-loop operation: estimate → re-solve → retarget (paper §VIII-A/B:
//! "the problem must be solved … when the estimations of network
//! characteristics vary significantly").

use crate::sender::{DmcSender, SenderConfig, TimeoutPlan, RESERVED_KEY_BASE};
use dmc_core::{
    ModelConfig, NetworkSpec, Objective, PathSpec, Plan, Planner, PlannerConfig, Scenario,
};
use dmc_sim::{Agent, Packet, SimApi, SimDuration};

/// Timer key reserved for the periodic re-solve.
const ADAPT_KEY: u64 = RESERVED_KEY_BASE;

/// Configuration for [`AdaptiveSender`].
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Prior scenario (bandwidths are taken as configured — the paper's
    /// §VIII-A position is that bandwidth comes from congestion control;
    /// delay and loss priors are refined from measurements).
    pub prior: NetworkSpec,
    /// How often to re-estimate and re-solve.
    pub interval: SimDuration,
    /// Model options for re-solving (mapped onto the internal
    /// [`Planner`]'s configuration).
    pub model: ModelConfig,
    /// Slack added to re-derived retransmission timeouts.
    pub rto_extra: SimDuration,
    /// Minimum RTT samples on a path before its delay estimate replaces
    /// the prior.
    pub min_samples: u64,
}

/// A [`DmcSender`] that periodically refits path characteristics from its
/// own estimators, re-plans through an owned [`Planner`], and retargets
/// Algorithm 1 from the fresh [`Plan`] — the paper's complete practical
/// loop.
///
/// The planner's LP workspace is reused across every re-solve, so the
/// periodic re-planning allocates nothing once warm — and because
/// successive estimates share the LP's shape, every re-solve after the
/// first warm-starts from the previous optimal basis and typically
/// re-enters phase 2 with a handful of pivots (see
/// `dmc_core::PlannerConfig::warm_start`).
#[derive(Debug)]
pub struct AdaptiveSender {
    inner: DmcSender,
    config: AdaptiveConfig,
    planner: Planner,
    resolves: u64,
}

impl AdaptiveSender {
    /// Wraps a sender configuration with the adaptive loop.
    pub fn new(sender: SenderConfig, config: AdaptiveConfig) -> Self {
        let planner = Planner::with_config(PlannerConfig {
            blackhole: config.model.blackhole,
            solver: config.model.solver.clone(),
            ..PlannerConfig::default()
        });
        AdaptiveSender {
            inner: DmcSender::new(sender),
            config,
            planner,
            resolves: 0,
        }
    }

    /// Builds the initial sender from a solved [`Plan`] and wraps it with
    /// the adaptive loop.
    ///
    /// # Panics
    ///
    /// Same conditions as [`DmcSender::new`].
    pub fn from_plan(plan: &Plan, config: AdaptiveConfig, total_messages: u64) -> Self {
        let sender = SenderConfig::from_plan(plan, config.rto_extra, total_messages);
        AdaptiveSender::new(sender, config)
    }

    /// The wrapped sender (stats, estimators).
    pub fn inner(&self) -> &DmcSender {
        &self.inner
    }

    /// How many times the LP was re-solved.
    pub fn resolves(&self) -> u64 {
        self.resolves
    }

    /// The owned planner (inspect warm-start statistics:
    /// `planner().warm_stats()`).
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Current best estimate of the network (prior refined by
    /// measurements).
    pub fn estimated_network(&self) -> NetworkSpec {
        let rtts = self.inner.rtt_estimators();
        let losses = self.inner.loss_estimators();
        let min_srtt = rtts
            .iter()
            .filter(|e| e.samples() >= self.config.min_samples)
            .filter_map(|e| e.srtt())
            .fold(f64::INFINITY, f64::min);
        let mut net = self.config.prior.clone();
        for k in 0..net.num_paths() {
            let prior = net.paths()[k];
            let delay = if rtts[k].samples() >= self.config.min_samples && min_srtt.is_finite() {
                rtts[k]
                    .srtt()
                    .map(|s| (s - min_srtt / 2.0).max(0.0))
                    .unwrap_or(prior.delay())
            } else {
                prior.delay()
            };
            let loss = if losses[k].samples() >= self.config.min_samples {
                losses[k].rate()
            } else {
                prior.loss()
            };
            let refined =
                PathSpec::with_cost(prior.bandwidth(), delay, loss.clamp(0.0, 1.0), prior.cost())
                    .unwrap_or(prior);
            net = net.with_path_replaced(k, refined);
        }
        net
    }

    fn resolve(&mut self) {
        let est = self.estimated_network();
        let scenario =
            Scenario::from_network(&est).with_transmissions(self.config.model.transmissions);
        if let Ok(plan) = self.planner.plan(&scenario, Objective::MaxQuality) {
            let timeouts = TimeoutPlan::from_plan(&plan, self.config.rto_extra);
            self.inner.retarget(plan.into_strategy(), timeouts);
            self.resolves += 1;
        }
    }
}

impl Agent for AdaptiveSender {
    fn on_start(&mut self, api: &mut SimApi<'_>) {
        self.inner.on_start(api);
        api.set_timer(api.now() + self.config.interval, ADAPT_KEY);
    }

    fn on_packet(&mut self, path: usize, packet: Packet, api: &mut SimApi<'_>) {
        self.inner.on_packet(path, packet, api);
    }

    fn on_timer(&mut self, key: u64, api: &mut SimApi<'_>) {
        if key == ADAPT_KEY {
            self.resolve();
            api.set_timer(api.now() + self.config.interval, ADAPT_KEY);
        } else {
            self.inner.on_timer(key, api);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::{DmcReceiver, ReceiverConfig};
    use dmc_sim::{LinkConfig, SimTime, TwoHostSim};
    use dmc_stats::ConstantDelay;
    use std::sync::Arc;

    fn link(bw: f64, delay: f64, loss: f64) -> LinkConfig {
        LinkConfig {
            bandwidth_bps: bw,
            propagation: Arc::new(ConstantDelay::new(delay)),
            loss,
            queue_capacity_bytes: 1 << 22,
        }
    }

    /// Prior believes path 0 loses 2 %; it really loses 40 %. The static
    /// sender keeps retransmitting the unexpected losses onto the thin
    /// clean path (6 Mbps offered into 4 Mbps), whose queue fills and
    /// makes everything it carries late. The adaptive sender learns the
    /// real loss rate, re-solves, and rebalances within capacity.
    #[test]
    fn adaptation_learns_loss_and_improves_quality() {
        let prior = NetworkSpec::builder()
            .path(PathSpec::new(10e6, 0.100, 0.02).unwrap())
            .path(PathSpec::new(4e6, 0.050, 0.0).unwrap())
            .data_rate(12e6)
            .lifetime(0.4)
            .build()
            .unwrap();
        let messages = 40_000;
        let horizon = SimTime::from_secs_f64(40.0);
        // True links are over-provisioned relative to the configured b_i
        // (the paper does the same in Exp. 2): a path driven at exactly
        // 100 % of its true capacity builds an unbounded queue, so the
        // model's bandwidth bound must leave headroom. The static sender's
        // retransmission surge (6 Mbps into 5) still overloads path 1.
        let fwd = vec![link(12e6, 0.100, 0.40), link(5e6, 0.050, 0.0)];
        let bwd = vec![link(12e6, 0.100, 0.0), link(5e6, 0.050, 0.0)];

        let run = |adaptive: bool| -> f64 {
            let plan = Planner::new()
                .plan(&Scenario::from_network(&prior), Objective::MaxQuality)
                .unwrap();
            let base = SenderConfig::from_plan(&plan, SimDuration::from_millis(50), messages);
            let receiver =
                DmcReceiver::new(ReceiverConfig::new(SimDuration::from_secs_f64(0.4), 1));
            if adaptive {
                let sender = AdaptiveSender::new(
                    base,
                    AdaptiveConfig {
                        prior: prior.clone(),
                        interval: SimDuration::from_millis(250),
                        model: ModelConfig::default(),
                        rto_extra: SimDuration::from_millis(50),
                        min_samples: 30,
                    },
                );
                let mut sim =
                    TwoHostSim::new(fwd.clone(), bwd.clone(), sender, receiver, 21).unwrap();
                sim.run_until(horizon);
                assert!(sim.client().resolves() > 10);
                // Re-solves share the LP shape, so all but the first must
                // have consulted the warm cache and most should have
                // skipped phase 1 outright.
                let (attempts, hits) = sim.client().planner().warm_stats();
                assert_eq!(attempts, sim.client().resolves() - 1);
                assert!(hits > 0, "periodic re-solves never warm-started");
                let learned_loss = sim.client().estimated_network().paths()[0].loss();
                assert!(
                    (0.28..=0.52).contains(&learned_loss),
                    "learned loss {learned_loss}, truth 0.40"
                );
                sim.server().stats().unique_in_time as f64 / messages as f64
            } else {
                let sender = DmcSender::new(base);
                let mut sim =
                    TwoHostSim::new(fwd.clone(), bwd.clone(), sender, receiver, 21).unwrap();
                sim.run_until(horizon);
                sim.server().stats().unique_in_time as f64 / messages as f64
            }
        };

        let q_static = run(false);
        let q_adaptive = run(true);
        assert!(
            q_adaptive > q_static + 0.10,
            "adaptive {q_adaptive} vs static {q_static}"
        );
        // The oracle optimum for the true network is ≈ 0.875; the learner
        // should get most of the way there despite the warm-up.
        assert!(q_adaptive > 0.7, "adaptive quality {q_adaptive}");
    }
}
