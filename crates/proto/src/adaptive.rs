//! Closed-loop operation: estimate → re-solve → retarget (paper §VIII-A/B:
//! "the problem must be solved … when the estimations of network
//! characteristics vary significantly").

use crate::notice::{NoticeGuard, NoticeSeq};
use crate::sender::{DmcSender, SenderConfig, TimeoutPlan, RESERVED_KEY_BASE};
use crate::wire::{NoticeKind, PathNotice};
use dmc_core::{
    ModelConfig, NetworkSpec, Objective, PathSpec, Plan, Planner, PlannerConfig, Scenario,
};
use dmc_sim::{Agent, Packet, SimApi, SimDuration};

/// Timer key reserved for the periodic re-solve.
const ADAPT_KEY: u64 = RESERVED_KEY_BASE;

/// Cap on the probe-backoff exponent: after this many unanswered probes
/// on a path, the wait between probes stops growing (at `2^cap − 1`
/// adaptation ticks plus jitter). Probing never stops entirely —
/// recovery can only be observed by a probe getting through.
const MAX_BACKOFF_EXP: u32 = 3;

/// Stepwise quality-floor relaxation schedule (fractions of the
/// configured floor tried in order when the full floor is infeasible).
const FLOOR_RELAX_STEPS: [f64; 3] = [0.75, 0.5, 0.25];

/// Cap on the retained degradation-ladder event log.
const MAX_LADDER_EVENTS: usize = 4096;

/// The rung of the degradation ladder that finally produced a plan when
/// a re-solve at the configured operating point was infeasible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LadderRung {
    /// The quality floor was relaxed to the embedded value (a fraction of
    /// the configured floor) and the cheaper problem solved.
    RelaxedFloor {
        /// The relaxed floor that was feasible.
        floor: f64,
    },
    /// The floor was dropped entirely: best-effort quality maximization.
    BestEffort,
    /// Everything is routed onto the single best surviving path, with
    /// the offered rate clamped to that path's bandwidth.
    SinglePath {
        /// The surviving path carrying all traffic.
        path: usize,
    },
    /// Even the single-path fallback failed; the previous plan stays in
    /// force.
    Stuck,
}

/// One engagement of the degradation ladder (a clean full re-plan is not
/// an event).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderEvent {
    /// Simulation time of the re-solve, in nanoseconds.
    pub at_ns: u64,
    /// The rung that produced (or failed to produce) a plan.
    pub rung: LadderRung,
}

/// Per-path probe backoff state.
#[derive(Debug, Clone, Copy, Default)]
struct ProbeBackoff {
    /// Unanswered probes so far (exponent; capped at [`MAX_BACKOFF_EXP`]).
    exp: u32,
    /// Adaptation ticks left to skip before the next probe.
    skip: u64,
}

/// SplitMix64 for deterministic probe jitter — same generator family as
/// the simulator's seed discipline, so runs replay bit-identically.
#[derive(Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Configuration for [`AdaptiveSender`].
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Prior scenario (bandwidths are taken as configured — the paper's
    /// §VIII-A position is that bandwidth comes from congestion control;
    /// delay and loss priors are refined from measurements).
    pub prior: NetworkSpec,
    /// How often to re-estimate and re-solve.
    pub interval: SimDuration,
    /// Model options for re-solving (mapped onto the internal
    /// [`Planner`]'s configuration).
    pub model: ModelConfig,
    /// Slack added to re-derived retransmission timeouts.
    pub rto_extra: SimDuration,
    /// Minimum RTT samples on a path before its delay estimate replaces
    /// the prior.
    pub min_samples: u64,
    /// Required quality floor: when set, re-solves minimize cost subject
    /// to `Q ≥ floor` ([`Objective::MinCost`]) instead of maximizing
    /// quality, and mid-transfer infeasibility walks the degradation
    /// ladder (stepwise relaxation → best effort → single path).
    pub quality_floor: Option<f64>,
    /// Seed for the deterministic probe-backoff jitter stream.
    pub jitter_seed: u64,
}

/// A [`DmcSender`] that periodically refits path characteristics from its
/// own estimators, re-plans through an owned [`Planner`], and retargets
/// Algorithm 1 from the fresh [`Plan`] — the paper's complete practical
/// loop. Receiver-issued [`PathNotice`]s short-circuit the periodic
/// cadence: a failure notice re-plans immediately with the dead path's
/// loss pinned to 1, and a recovery notice re-admits it.
///
/// The planner's LP workspace is reused across every re-solve, so the
/// periodic re-planning allocates nothing once warm — and because
/// successive estimates share the LP's shape, every re-solve after the
/// first warm-starts from the previous optimal basis and typically
/// re-enters phase 2 with a handful of pivots (see
/// `dmc_core::PlannerConfig::warm_start`).
#[derive(Debug)]
pub struct AdaptiveSender {
    inner: DmcSender,
    config: AdaptiveConfig,
    planner: Planner,
    resolves: u64,
    /// Paths reported down by the receiver ([`PathNotice`]); while set,
    /// the re-solved model pins the path's loss to 1 so the LP routes
    /// around it.
    failed: Vec<bool>,
    /// Immediate re-solves triggered by failure/recovery notices.
    notice_replans: u64,
    /// Recovery probes sent on failed paths.
    probes: u64,
    /// Drops duplicated/stale-reordered receiver notices before they can
    /// re-trigger outage handling.
    notice_guard: NoticeGuard,
    /// Stale or duplicated notices dropped by the guard.
    stale_notices_dropped: u64,
    /// Stamps `(at_ns, seq)` on outgoing probes so the receiver can drop
    /// duplicated copies.
    probe_seq: NoticeSeq,
    /// Per-path exponential probe backoff.
    backoff: Vec<ProbeBackoff>,
    /// Deterministic jitter stream for the backoff.
    jitter: SplitMix64,
    /// Degradation-ladder engagements, oldest first (capped at
    /// [`MAX_LADDER_EVENTS`]).
    ladder: Vec<LadderEvent>,
    /// Ladder engagements dropped once the log was full.
    ladder_dropped: u64,
}

impl AdaptiveSender {
    /// Wraps a sender configuration with the adaptive loop.
    pub fn new(sender: SenderConfig, config: AdaptiveConfig) -> Self {
        let planner = Planner::with_config(PlannerConfig {
            blackhole: config.model.blackhole,
            solver: config.model.solver.clone(),
            ..PlannerConfig::default()
        });
        let num_paths = config.prior.num_paths();
        let jitter = SplitMix64(config.jitter_seed);
        AdaptiveSender {
            inner: DmcSender::new(sender),
            config,
            planner,
            resolves: 0,
            failed: vec![false; num_paths],
            notice_replans: 0,
            probes: 0,
            notice_guard: NoticeGuard::new(),
            stale_notices_dropped: 0,
            probe_seq: NoticeSeq::new(),
            backoff: vec![ProbeBackoff::default(); num_paths],
            jitter,
            ladder: Vec::new(),
            ladder_dropped: 0,
        }
    }

    /// Builds the initial sender from a solved [`Plan`] and wraps it with
    /// the adaptive loop.
    ///
    /// # Panics
    ///
    /// Same conditions as [`DmcSender::new`].
    pub fn from_plan(plan: &Plan, config: AdaptiveConfig, total_messages: u64) -> Self {
        let sender = SenderConfig::from_plan(plan, config.rto_extra, total_messages);
        AdaptiveSender::new(sender, config)
    }

    /// The wrapped sender (stats, estimators).
    pub fn inner(&self) -> &DmcSender {
        &self.inner
    }

    /// How many times the LP was re-solved.
    pub fn resolves(&self) -> u64 {
        self.resolves
    }

    /// Immediate re-solves triggered by path-failure/recovery notices.
    pub fn notice_replans(&self) -> u64 {
        self.notice_replans
    }

    /// Paths currently believed failed (set by receiver notices).
    pub fn failed_paths(&self) -> Vec<usize> {
        self.failed
            .iter()
            .enumerate()
            .filter_map(|(i, &f)| f.then_some(i))
            .collect()
    }

    /// Recovery probes sent on failed paths.
    pub fn probes_sent(&self) -> u64 {
        self.probes
    }

    /// Receiver notices discarded as duplicates or stale reorders.
    pub fn stale_notices_dropped(&self) -> u64 {
        self.stale_notices_dropped
    }

    /// Degradation-ladder engagements so far, oldest first (a clean
    /// full re-plan is not an event; the log caps at a few thousand
    /// entries — [`AdaptiveSender::ladder_events_dropped`] counts the
    /// overflow).
    pub fn ladder_events(&self) -> &[LadderEvent] {
        &self.ladder
    }

    /// Ladder engagements that no longer fit in the event log.
    pub fn ladder_events_dropped(&self) -> u64 {
        self.ladder_dropped
    }

    /// Publishes the adaptive loop's counters — and the wrapped sender's
    /// [`SenderStats`](crate::SenderStats) — into a telemetry registry:
    /// `proto.adapt.*` for the loop, per-rung `proto.ladder.*` counters
    /// for degradation-ladder engagements, and the `proto.backoff.exp`
    /// histogram of each path's *current* probe-backoff exponent. The
    /// counters are cumulative, so call this once per sender per run
    /// (publishing twice double-counts). Rung counters are derived from
    /// the retained event log and undercount once
    /// [`AdaptiveSender::ladder_events_dropped`] is nonzero (the drop
    /// count is published as `proto.ladder.dropped`).
    pub fn publish_obs(&self, obs: &dmc_obs::Obs) {
        if !obs.is_enabled() {
            return;
        }
        self.inner.stats().publish_obs(obs);
        obs.counter("proto.adapt.resolves").add(self.resolves);
        obs.counter("proto.adapt.notice_replans")
            .add(self.notice_replans);
        obs.counter("proto.adapt.probes_sent").add(self.probes);
        obs.counter("proto.adapt.stale_notices")
            .add(self.stale_notices_dropped);
        for event in &self.ladder {
            let name = match event.rung {
                LadderRung::RelaxedFloor { .. } => "proto.ladder.relaxed_floor",
                LadderRung::BestEffort => "proto.ladder.best_effort",
                LadderRung::SinglePath { .. } => "proto.ladder.single_path",
                LadderRung::Stuck => "proto.ladder.stuck",
            };
            obs.counter(name).inc();
        }
        obs.counter("proto.ladder.dropped").add(self.ladder_dropped);
        let exp = obs.histogram("proto.backoff.exp");
        for state in &self.backoff {
            exp.record(u64::from(state.exp));
        }
    }

    /// Sends one [`PathNotice`]-framed probe on each failed path that is
    /// due under its exponential backoff. The re-planned strategy carries
    /// no data on those paths, so without probing a recovery could never
    /// be observed; a probe that gets through makes the receiver's
    /// detector report the path up. Consecutive unanswered probes back
    /// off exponentially (capped, never stopping) with deterministic
    /// jitter drawn from the seeded stream, so a long outage is not
    /// hammered with one probe per adaptation tick and simultaneous
    /// outages do not probe in lockstep.
    fn probe_failed_paths(&mut self, api: &mut SimApi<'_>) {
        for path in 0..self.failed.len() {
            if !self.failed[path] {
                continue;
            }
            if path >= self.backoff.len() {
                self.backoff.resize(path + 1, ProbeBackoff::default());
            }
            let state = &mut self.backoff[path];
            if state.skip > 0 {
                state.skip -= 1;
                continue;
            }
            let probe = PathNotice {
                path: path as u8,
                kind: NoticeKind::Down,
                seq: self.probe_seq.next(path),
                at_ns: api.now().as_nanos(),
            };
            if api.send(path, Packet::new(64, probe.encode())) {
                self.probes += 1;
            }
            let state = &mut self.backoff[path];
            let exp = state.exp.min(MAX_BACKOFF_EXP);
            let base = (1u64 << exp) - 1;
            let jitter = if exp > 0 {
                self.jitter.next_u64() % (u64::from(exp) + 1)
            } else {
                0
            };
            state.skip = base + jitter;
            state.exp = state.exp.saturating_add(1).min(MAX_BACKOFF_EXP);
        }
    }

    /// The owned planner (inspect warm-start statistics:
    /// `planner().warm_stats()`, a [`dmc_core::WarmStats`]).
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Current best estimate of the network (prior refined by
    /// measurements).
    pub fn estimated_network(&self) -> NetworkSpec {
        let rtts = self.inner.rtt_estimators();
        let losses = self.inner.loss_estimators();
        let min_srtt = rtts
            .iter()
            .filter(|e| e.samples() >= self.config.min_samples)
            .filter_map(|e| e.srtt())
            .fold(f64::INFINITY, f64::min);
        let mut net = self.config.prior.clone();
        for k in 0..net.num_paths() {
            let prior = net.paths()[k];
            let delay = if rtts[k].samples() >= self.config.min_samples && min_srtt.is_finite() {
                rtts[k]
                    .srtt()
                    .map(|s| (s - min_srtt / 2.0).max(0.0))
                    .unwrap_or(prior.delay())
            } else {
                prior.delay()
            };
            // Gate on *window* occupancy: the recovery path resets the
            // window (outage timeouts are not evidence about the
            // recovered link), and an emptied window must fall back to
            // the prior rather than read as 0 % loss.
            let loss = if losses[k].window_samples() as u64 >= self.config.min_samples {
                losses[k].rate()
            } else {
                prior.loss()
            };
            // A failure notice overrides everything the estimators say:
            // the path delivers nothing until the receiver reports it up.
            let loss = if self.failed.get(k).copied().unwrap_or(false) {
                1.0
            } else {
                loss
            };
            let refined =
                PathSpec::with_cost(prior.bandwidth(), delay, loss.clamp(0.0, 1.0), prior.cost())
                    .unwrap_or(prior);
            net = net.with_path_replaced(k, refined);
        }
        net
    }

    /// Reacts to a receiver [`PathNotice`]: record the path state and
    /// re-plan *now* — timeouts on the failed path keep firing, but the
    /// fresh plan's combinations route new data (and the retransmit
    /// stages of anything still in flight at its next stage) onto live
    /// paths. Duplicated or stale-reordered notices are dropped by the
    /// guard before they reach this edge trigger: a stale `Down`
    /// arriving after the matching `Up` must not re-fail a live path.
    fn on_notice(&mut self, notice: &PathNotice, now_ns: u64) {
        if !self.notice_guard.fresh(notice) {
            self.stale_notices_dropped += 1;
            return;
        }
        let path = notice.path as usize;
        if path >= self.failed.len() {
            return;
        }
        let failed = matches!(notice.kind, NoticeKind::Down);
        if self.failed[path] != failed {
            self.failed[path] = failed;
            if !failed {
                // The outage's timeout losses are not evidence about the
                // recovered path; without discarding them the re-plan
                // would keep avoiding it and the receiver would re-declare
                // it down (flapping).
                self.inner.reset_loss_window(path);
                if let Some(state) = self.backoff.get_mut(path) {
                    *state = ProbeBackoff::default();
                }
            }
            self.resolve(now_ns);
            self.notice_replans += 1;
        }
    }

    /// Records a degradation-ladder engagement (bounded log).
    fn push_ladder(&mut self, at_ns: u64, rung: LadderRung) {
        if self.ladder.len() < MAX_LADDER_EVENTS {
            self.ladder.push(LadderEvent { at_ns, rung });
        } else {
            self.ladder_dropped += 1;
        }
    }

    /// Plans `scenario` under `objective`; on success retargets the inner
    /// sender and returns `true`.
    fn try_retarget(&mut self, scenario: &Scenario, objective: Objective) -> bool {
        match self.planner.plan(scenario, objective) {
            Ok(plan) => {
                let timeouts = TimeoutPlan::from_plan(&plan, self.config.rto_extra);
                self.inner.retarget(plan.into_strategy(), timeouts);
                true
            }
            Err(_) => false,
        }
    }

    /// The surviving path with the highest expected goodput
    /// (`(1 − loss) · bandwidth`), ties to the lowest index.
    fn best_surviving_path(&self, est: &NetworkSpec) -> Option<usize> {
        let mut best: Option<(f64, usize)> = None;
        for (k, p) in est.paths().iter().enumerate() {
            if self.failed.get(k).copied().unwrap_or(false) {
                continue;
            }
            let score = (1.0 - p.loss()) * p.bandwidth();
            if best.is_none_or(|(bs, _)| score > bs) {
                best = Some((score, k));
            }
        }
        best.map(|(_, k)| k)
    }

    /// Re-estimates and re-plans, walking the degradation ladder on
    /// mid-transfer infeasibility:
    ///
    /// 1. **Re-plan** at the configured operating point (the quality
    ///    floor when one is set, otherwise plain quality maximization).
    /// 2. **Relax the floor stepwise** ([`FLOOR_RELAX_STEPS`] fractions
    ///    of the configured floor), then drop it entirely (best-effort
    ///    quality maximization).
    /// 3. **Single-best-path fallback**: pin every other path's loss to
    ///    1, clamp the offered rate to the survivor's bandwidth, and
    ///    solve for best-effort quality.
    ///
    /// Every engaged rung is logged ([`AdaptiveSender::ladder_events`]);
    /// if even the fallback fails the previous plan stays in force. The
    /// ladder re-climbs automatically: every re-solve starts again at
    /// rung 1, so feasibility returning restores the configured floor.
    fn resolve(&mut self, now_ns: u64) {
        let est = self.estimated_network();
        let scenario =
            Scenario::from_network(&est).with_transmissions(self.config.model.transmissions);
        let objective = match self.config.quality_floor {
            Some(floor) => Objective::MinCost { min_quality: floor },
            None => Objective::MaxQuality,
        };
        if self.try_retarget(&scenario, objective) {
            self.resolves += 1;
            return;
        }
        if let Some(floor) = self.config.quality_floor {
            for fraction in FLOOR_RELAX_STEPS {
                let relaxed = floor * fraction;
                let objective = Objective::MinCost {
                    min_quality: relaxed,
                };
                if self.try_retarget(&scenario, objective) {
                    self.resolves += 1;
                    self.push_ladder(now_ns, LadderRung::RelaxedFloor { floor: relaxed });
                    return;
                }
            }
            if self.try_retarget(&scenario, Objective::MaxQuality) {
                self.resolves += 1;
                self.push_ladder(now_ns, LadderRung::BestEffort);
                return;
            }
        }
        if let Some(path) = self.best_surviving_path(&est) {
            let survivor = est.paths()[path];
            let mut solo = est.with_data_rate(est.data_rate().min(survivor.bandwidth()));
            for k in 0..solo.num_paths() {
                if k == path {
                    continue;
                }
                let p = solo.paths()[k];
                let dead = PathSpec::with_cost(p.bandwidth(), p.delay(), 1.0, p.cost());
                solo = solo.with_path_replaced(k, dead.unwrap_or(p));
            }
            let solo_scenario =
                Scenario::from_network(&solo).with_transmissions(self.config.model.transmissions);
            if self.try_retarget(&solo_scenario, Objective::MaxQuality) {
                self.resolves += 1;
                self.push_ladder(now_ns, LadderRung::SinglePath { path });
                return;
            }
        }
        self.push_ladder(now_ns, LadderRung::Stuck);
    }
}

impl Agent for AdaptiveSender {
    fn on_start(&mut self, api: &mut SimApi<'_>) {
        self.inner.on_start(api);
        api.set_timer(api.now() + self.config.interval, ADAPT_KEY);
    }

    fn on_packet(&mut self, path: usize, packet: Packet, api: &mut SimApi<'_>) {
        if let Some(notice) = PathNotice::decode(packet.payload()) {
            self.on_notice(&notice, api.now().as_nanos());
            return;
        }
        self.inner.on_packet(path, packet, api);
    }

    fn on_timer(&mut self, key: u64, api: &mut SimApi<'_>) {
        if key == ADAPT_KEY {
            self.resolve(api.now().as_nanos());
            self.probe_failed_paths(api);
            api.set_timer(api.now() + self.config.interval, ADAPT_KEY);
        } else {
            self.inner.on_timer(key, api);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::{DmcReceiver, ReceiverConfig};
    use dmc_sim::{LinkConfig, SimTime, TwoHostSim};
    use dmc_stats::ConstantDelay;
    use std::sync::Arc;

    fn link(bw: f64, delay: f64, loss: f64) -> LinkConfig {
        LinkConfig {
            bandwidth_bps: bw,
            propagation: Arc::new(ConstantDelay::new(delay)),
            loss: loss.into(),
            queue_capacity_bytes: 1 << 22,
        }
    }

    /// Prior believes path 0 loses 2 %; it really loses 40 %. The static
    /// sender keeps retransmitting the unexpected losses onto the thin
    /// clean path (6 Mbps offered into 4 Mbps), whose queue fills and
    /// makes everything it carries late. The adaptive sender learns the
    /// real loss rate, re-solves, and rebalances within capacity.
    #[test]
    fn adaptation_learns_loss_and_improves_quality() {
        let prior = NetworkSpec::builder()
            .path(PathSpec::new(10e6, 0.100, 0.02).unwrap())
            .path(PathSpec::new(4e6, 0.050, 0.0).unwrap())
            .data_rate(12e6)
            .lifetime(0.4)
            .build()
            .unwrap();
        let messages = 40_000;
        let horizon = SimTime::from_secs_f64(40.0);
        // True links are over-provisioned relative to the configured b_i
        // (the paper does the same in Exp. 2): a path driven at exactly
        // 100 % of its true capacity builds an unbounded queue, so the
        // model's bandwidth bound must leave headroom. The static sender's
        // retransmission surge (6 Mbps into 5) still overloads path 1.
        let fwd = vec![link(12e6, 0.100, 0.40), link(5e6, 0.050, 0.0)];
        let bwd = vec![link(12e6, 0.100, 0.0), link(5e6, 0.050, 0.0)];

        let run = |adaptive: bool| -> f64 {
            let plan = Planner::new()
                .plan(&Scenario::from_network(&prior), Objective::MaxQuality)
                .unwrap();
            let base = SenderConfig::from_plan(&plan, SimDuration::from_millis(50), messages);
            let receiver =
                DmcReceiver::new(ReceiverConfig::new(SimDuration::from_secs_f64(0.4), 1));
            if adaptive {
                let sender = AdaptiveSender::new(
                    base,
                    AdaptiveConfig {
                        prior: prior.clone(),
                        interval: SimDuration::from_millis(250),
                        model: ModelConfig::default(),
                        rto_extra: SimDuration::from_millis(50),
                        min_samples: 30,
                        quality_floor: None,
                        jitter_seed: 0x5EED_0001,
                    },
                );
                let mut sim =
                    TwoHostSim::new(fwd.clone(), bwd.clone(), sender, receiver, 21).unwrap();
                sim.run_until(horizon);
                assert!(sim.client().resolves() > 10);
                // Re-solves share the LP shape, so all but the first must
                // have consulted the warm cache and most should have
                // skipped phase 1 outright.
                let warm = sim.client().planner().warm_stats();
                assert_eq!(warm.attempts(), sim.client().resolves() - 1);
                assert!(warm.hits > 0, "periodic re-solves never warm-started");
                let learned_loss = sim.client().estimated_network().paths()[0].loss();
                assert!(
                    (0.28..=0.52).contains(&learned_loss),
                    "learned loss {learned_loss}, truth 0.40"
                );
                sim.server().stats().unique_in_time as f64 / messages as f64
            } else {
                let sender = DmcSender::new(base);
                let mut sim =
                    TwoHostSim::new(fwd.clone(), bwd.clone(), sender, receiver, 21).unwrap();
                sim.run_until(horizon);
                sim.server().stats().unique_in_time as f64 / messages as f64
            }
        };

        let q_static = run(false);
        let q_adaptive = run(true);
        assert!(
            q_adaptive > q_static + 0.10,
            "adaptive {q_adaptive} vs static {q_static}"
        );
        // The oracle optimum for the true network is ≈ 0.875; the learner
        // should get most of the way there despite the warm-up.
        assert!(q_adaptive > 0.7, "adaptive quality {q_adaptive}");
    }

    /// Mid-transfer the wide path dies for a stretch. The failure-aware
    /// loop (receiver notices → immediate re-plan with loss=1) must beat
    /// the plain periodic estimator loop *and* clear its failure state
    /// after the recovery notice.
    #[test]
    fn failure_notice_replans_within_one_round() {
        use crate::receiver::FailureDetection;
        use dmc_sim::Dynamics;

        let prior = NetworkSpec::builder()
            .path(PathSpec::new(10e6, 0.100, 0.02).unwrap())
            .path(PathSpec::new(4e6, 0.050, 0.0).unwrap())
            .data_rate(10e6)
            .lifetime(0.4)
            .build()
            .unwrap();
        let messages = 30_000;
        let horizon = SimTime::from_secs_f64(40.0);
        let fwd = vec![link(12e6, 0.100, 0.02), link(5e6, 0.050, 0.0)];
        let bwd = vec![link(12e6, 0.100, 0.0), link(5e6, 0.050, 0.0)];
        // Path 0 (carrying most of the traffic) is down 8 s → 16 s.
        let dynamics = Dynamics::new().path_failure(0, 8.0, 16.0).unwrap();

        let run = |detect: bool| {
            let plan = Planner::new()
                .plan(&Scenario::from_network(&prior), Objective::MaxQuality)
                .unwrap();
            let sender = AdaptiveSender::from_plan(
                &plan,
                AdaptiveConfig {
                    prior: prior.clone(),
                    interval: SimDuration::from_millis(500),
                    model: ModelConfig::default(),
                    rto_extra: SimDuration::from_millis(50),
                    min_samples: 30,
                    quality_floor: None,
                    jitter_seed: 0x5EED_0002,
                },
                messages,
            );
            let mut cfg = ReceiverConfig::new(SimDuration::from_secs_f64(0.4), 1);
            if detect {
                cfg = cfg
                    .with_failure_detection(FailureDetection::new(SimDuration::from_millis(100)));
            }
            let receiver = DmcReceiver::new(cfg);
            let mut sim = TwoHostSim::new(fwd.clone(), bwd.clone(), sender, receiver, 33).unwrap();
            sim.apply_dynamics(&dynamics).unwrap();
            sim.run_until(horizon);
            let q = sim.server().stats().unique_in_time as f64 / messages as f64;
            let replans = sim.client().notice_replans();
            let still_failed = sim.client().failed_paths();
            (q, replans, still_failed)
        };

        let (q_blind, replans_blind, _) = run(false);
        let (q_aware, replans_aware, failed_after) = run(true);
        assert_eq!(replans_blind, 0, "no notices without detection");
        assert!(
            replans_aware >= 2,
            "expected a down and an up re-plan, got {replans_aware}"
        );
        assert!(
            failed_after.is_empty(),
            "recovery notice must clear failure state, got {failed_after:?}"
        );
        assert!(
            q_aware > q_blind + 0.02,
            "failure-aware {q_aware} vs blind {q_blind}"
        );
    }

    /// A scripted peer that replays pre-stamped notice frames at fixed
    /// times — including exact duplicates and stale reorders a chaotic
    /// network would produce.
    struct NoticeScript {
        /// `(send at, frame)` — frames carry *their own* stamps, so a
        /// late entry with an old stamp emulates reordering.
        script: Vec<(SimTime, PathNotice)>,
    }
    impl Agent for NoticeScript {
        fn on_start(&mut self, api: &mut SimApi<'_>) {
            for (i, &(at, _)) in self.script.iter().enumerate() {
                api.set_timer(at, i as u64);
            }
        }
        fn on_packet(&mut self, _path: usize, _p: Packet, _api: &mut SimApi<'_>) {}
        fn on_timer(&mut self, key: u64, api: &mut SimApi<'_>) {
            let (_, notice) = self.script[key as usize];
            let wire = notice.encode();
            api.send(1, Packet::new(wire.len().max(40), wire));
        }
    }

    fn two_path_prior() -> NetworkSpec {
        NetworkSpec::builder()
            .path(PathSpec::new(10e6, 0.050, 0.0).unwrap())
            .path(PathSpec::new(2.5e6, 0.050, 0.0).unwrap())
            .data_rate(8e6)
            .lifetime(0.4)
            .build()
            .unwrap()
    }

    fn adaptive_under_script(
        config: AdaptiveConfig,
        script: Vec<(SimTime, PathNotice)>,
        horizon: SimTime,
    ) -> AdaptiveSender {
        let plan = Planner::new()
            .plan(
                &Scenario::from_network(&config.prior),
                Objective::MaxQuality,
            )
            .unwrap();
        let sender = AdaptiveSender::from_plan(&plan, config, 100);
        let l = |bw| link(bw, 0.050, 0.0);
        let mut sim = TwoHostSim::new(
            vec![l(10e6), l(2.5e6)],
            vec![l(10e6), l(2.5e6)],
            sender,
            NoticeScript { script },
            11,
        )
        .unwrap();
        sim.run_until(horizon);
        assert!(sim.client().resolves() > 0, "periodic loop never ran");
        sim.into_agents().0
    }

    fn down(path: u8, seq: u8, at_ms: u64) -> PathNotice {
        PathNotice {
            path,
            kind: NoticeKind::Down,
            seq,
            at_ns: at_ms * 1_000_000,
        }
    }

    fn up(path: u8, seq: u8, at_ms: u64) -> PathNotice {
        PathNotice {
            path,
            kind: NoticeKind::Up,
            seq,
            at_ns: at_ms * 1_000_000,
        }
    }

    /// Duplicated and stale-reordered notice frames must not re-trigger
    /// outage handling: a stale `Down` replayed after the matching `Up`
    /// used to re-fail a live path.
    #[test]
    fn duplicated_and_reordered_notices_are_dropped() {
        let at = SimTime::from_secs_f64;
        let script = vec![
            (at(0.10), down(0, 0, 100)),
            (at(0.15), down(0, 0, 100)), // duplicate
            (at(0.20), down(0, 0, 100)), // duplicate
            (at(0.50), up(0, 1, 500)),
            (at(0.55), up(0, 1, 500)),   // duplicate
            (at(0.80), down(0, 0, 100)), // stale reorder: old stamp after the Up
        ];
        let config = AdaptiveConfig {
            prior: two_path_prior(),
            interval: SimDuration::from_millis(250),
            model: ModelConfig::default(),
            rto_extra: SimDuration::from_millis(50),
            min_samples: 30,
            quality_floor: None,
            jitter_seed: 0x5EED_0003,
        };
        let client = adaptive_under_script(config, script, SimTime::from_secs_f64(2.0));
        assert_eq!(client.notice_replans(), 2, "one down, one up");
        assert_eq!(
            client.stale_notices_dropped(),
            4,
            "2 dup downs + 1 dup up + 1 stale down"
        );
        assert!(
            client.failed_paths().is_empty(),
            "stale down re-failed a live path: {:?}",
            client.failed_paths()
        );
    }

    /// A quality floor that a mid-transfer failure makes unreachable must
    /// engage the ladder: stepwise relaxation, logged, and the full floor
    /// restored after recovery.
    #[test]
    fn infeasible_floor_relaxes_stepwise_and_restores() {
        let at = SimTime::from_secs_f64;
        let script = vec![(at(1.0), down(0, 0, 1_000)), (at(2.0), up(0, 1, 2_000))];
        let config = AdaptiveConfig {
            prior: two_path_prior(),
            interval: SimDuration::from_millis(250),
            model: ModelConfig::default(),
            rto_extra: SimDuration::from_millis(50),
            min_samples: 1_000_000, // pin estimates to the prior
            quality_floor: Some(0.8),
            jitter_seed: 0x5EED_0004,
        };
        let client = adaptive_under_script(config, script, SimTime::from_secs_f64(3.0));
        let events = client.ladder_events();
        assert!(!events.is_empty(), "floor infeasibility never logged");
        // With path 0 dead, path 1 (2.5 of 8 Mbps) caps quality ≈ 0.31:
        // 0.8 and the 0.6/0.4 relaxations are infeasible, 0.2 is not.
        for e in events {
            assert_eq!(
                e.rung,
                LadderRung::RelaxedFloor { floor: 0.8 * 0.25 },
                "unexpected rung at {} ns",
                e.at_ns
            );
        }
        // The ladder re-climbs: no engagement after the recovery notice
        // (plus one adaptation interval of slack).
        let cutoff = 2_000_000_000 + 250_000_000;
        assert!(
            events.iter().all(|e| e.at_ns <= cutoff),
            "ladder still engaged after recovery"
        );
        assert!(client.failed_paths().is_empty());
    }

    /// With the blackhole disabled and demand above total capacity, even
    /// best-effort planning is infeasible: the ladder must fall back to
    /// the single best surviving path instead of keeping a dead plan.
    #[test]
    fn overload_without_blackhole_falls_back_to_single_path() {
        let prior = NetworkSpec::builder()
            .path(PathSpec::new(5e6, 0.050, 0.0).unwrap())
            .path(PathSpec::new(2e6, 0.050, 0.0).unwrap())
            .data_rate(8e6) // exceeds 7 Mbps total: infeasible sans blackhole
            .lifetime(0.4)
            .build()
            .unwrap();
        let config = AdaptiveConfig {
            prior: prior.clone(),
            interval: SimDuration::from_millis(250),
            model: ModelConfig {
                blackhole: false,
                ..ModelConfig::default()
            },
            rto_extra: SimDuration::from_millis(50),
            min_samples: 1_000_000,
            quality_floor: None,
            jitter_seed: 0x5EED_0005,
        };
        // The initial plan comes from a blackhole-enabled planner (the
        // operator admitted the overload); the adaptive loop's stricter
        // model then cannot re-plan at the full rate.
        let plan = Planner::new()
            .plan(&Scenario::from_network(&prior), Objective::MaxQuality)
            .unwrap();
        let sender = AdaptiveSender::from_plan(&plan, config, 100);
        let l = |bw| link(bw, 0.050, 0.0);
        let mut sim = TwoHostSim::new(
            vec![l(5e6), l(2e6)],
            vec![l(5e6), l(2e6)],
            sender,
            NoticeScript { script: vec![] },
            13,
        )
        .unwrap();
        sim.run_until(SimTime::from_secs_f64(1.0));
        let events = sim.client().ladder_events();
        assert!(!events.is_empty(), "overload never engaged the ladder");
        for e in events {
            assert_eq!(e.rung, LadderRung::SinglePath { path: 0 });
        }
        assert!(
            sim.client().resolves() > 0,
            "fallback never produced a plan"
        );
    }
}
