//! Replay protection for [`PathNotice`] frames.
//!
//! Notices are fire-and-forget and deliberately re-sent against loss, and
//! a chaotic network can additionally duplicate or reorder them. Without
//! a guard, a stale `Down` arriving after the matching `Up` (or a
//! duplicated probe) re-triggers outage handling. [`NoticeGuard`] accepts
//! a notice only if it is strictly newer than the last accepted one on
//! its path, ordering by the `(at_ns, seq)` pair the sender stamps.

use crate::wire::PathNotice;

/// Per-path monotonic filter: drops duplicated and stale-reordered
/// notices. Keyed on the sender-stamped `(at_ns, seq)` pair — `at_ns` is
/// the sender's (monotonic) clock, `seq` breaks ties between notices
/// stamped at the same instant.
#[derive(Debug, Default)]
pub struct NoticeGuard {
    last: Vec<Option<(u64, u8)>>,
}

impl NoticeGuard {
    /// An empty guard (every first notice per path is fresh).
    pub fn new() -> Self {
        NoticeGuard::default()
    }

    /// Returns `true` (and advances the high-water mark) iff `notice` is
    /// strictly newer than the last accepted notice on its path. Exact
    /// duplicates and older (reordered) notices return `false`.
    pub fn fresh(&mut self, notice: &PathNotice) -> bool {
        let path = notice.path as usize;
        if path >= self.last.len() {
            self.last.resize(path + 1, None);
        }
        let stamp = (notice.at_ns, notice.seq);
        match self.last[path] {
            Some(prev) if stamp <= prev => false,
            _ => {
                self.last[path] = Some(stamp);
                true
            }
        }
    }
}

/// Per-path wrapping stamper for outgoing notices: each call returns the
/// next `seq` for that path.
#[derive(Debug, Default)]
pub struct NoticeSeq {
    next: Vec<u8>,
}

impl NoticeSeq {
    /// A stamper starting every path at 0.
    pub fn new() -> Self {
        NoticeSeq::default()
    }

    /// The next sequence number for `path` (wrapping at 255).
    pub fn next(&mut self, path: usize) -> u8 {
        if path >= self.next.len() {
            self.next.resize(path + 1, 0);
        }
        let seq = self.next[path];
        self.next[path] = seq.wrapping_add(1);
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::NoticeKind;

    fn notice(path: u8, seq: u8, at_ns: u64) -> PathNotice {
        PathNotice {
            path,
            kind: NoticeKind::Down,
            seq,
            at_ns,
        }
    }

    #[test]
    fn duplicates_and_stale_reorders_are_dropped() {
        let mut g = NoticeGuard::new();
        assert!(g.fresh(&notice(0, 0, 100)));
        assert!(!g.fresh(&notice(0, 0, 100)), "exact duplicate");
        assert!(!g.fresh(&notice(0, 3, 50)), "older timestamp (reordered)");
        assert!(g.fresh(&notice(0, 1, 100)), "same time, later seq");
        assert!(g.fresh(&notice(0, 2, 200)));
        assert!(!g.fresh(&notice(0, 1, 100)), "replay of an accepted one");
    }

    #[test]
    fn paths_are_independent() {
        let mut g = NoticeGuard::new();
        assert!(g.fresh(&notice(0, 0, 100)));
        assert!(g.fresh(&notice(5, 0, 1)), "other path has its own clock");
        assert!(!g.fresh(&notice(5, 0, 1)));
    }

    #[test]
    fn stamper_counts_per_path() {
        let mut s = NoticeSeq::new();
        assert_eq!(s.next(0), 0);
        assert_eq!(s.next(0), 1);
        assert_eq!(s.next(2), 0);
        assert_eq!(s.next(0), 2);
        for _ in 0..255 {
            s.next(2);
        }
        assert_eq!(s.next(2), 0, "wraps");
    }
}
