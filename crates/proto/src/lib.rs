//! A deadline-aware multipath transport protocol.
//!
//! The paper's evaluation (§VII) runs a UDP client/server pair whose
//! sender assigns each packet to a *path combination* from the solved LP
//! (Algorithm 1), retransmits on timeout along the combination's next
//! path, and discards data older than its lifetime. This crate is that
//! protocol as composable state machines over the [`dmc_sim`] simulator:
//!
//! * [`DmcSender`] — constant-rate generation, Algorithm-1 combination
//!   assignment, per-stage retransmission timers ([`TimeoutPlan`]), ack
//!   processing with Karn-safe RTT sampling, optional fast retransmit
//!   (§VIII-D);
//! * [`DmcReceiver`] — deadline verification against the embedded
//!   creation timestamp, deduplication, and the §VIII-C acknowledgment
//!   scheme (echo + expected range + received bitmap) on the lowest-delay
//!   path;
//! * [`AdaptiveSender`] — the closed loop of §VIII-A/B: online estimators
//!   (EWMA RTT, windowed loss) feed periodic re-solving and retargeting,
//!   plus immediate re-planning on path-failure notices;
//! * [`wire`] — the on-the-wire header/ack/notice formats (1024-byte
//!   messages, ~40-byte acks, 16-byte path notices).
//!
//! Failure awareness: the receiver watches per-path arrivals
//! ([`FailureDetection`]) and reports an outage with a
//! [`wire::PathNotice`] on a surviving path; the [`AdaptiveSender`]
//! reacts by re-solving with the failed path's loss pinned to 1, steering
//! traffic (and the retransmissions of in-flight data) onto live paths
//! within one planning round instead of waiting for estimator drift.
//!
//! The state machines are I/O-free: they interact with the world only
//! through [`dmc_sim::SimApi`], so they can be unit-tested directly and
//! rehosted on a real datagram socket by implementing the same calls.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod estimator;
mod notice;
mod receiver;
mod sender;
pub mod wire;

pub use adaptive::{AdaptiveConfig, AdaptiveSender, LadderEvent, LadderRung};
pub use estimator::{LossEstimator, PathEstimator, RateEstimator, RttEstimator};
pub use notice::{NoticeGuard, NoticeSeq};
pub use receiver::{DmcReceiver, FailureDetection, ReceiverConfig, ReceiverStats};
pub use sender::{DmcSender, SenderConfig, SenderStats, TimeoutPlan, MAX_STAGES};
