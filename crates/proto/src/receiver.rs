//! The receiving endpoint: deadline verification, deduplication, and
//! acknowledgment generation (paper §VII-A server + §VIII-C ack scheme).

use crate::notice::{NoticeGuard, NoticeSeq};
use crate::wire::{Ack, DataHeader, NoticeKind, PathNotice};
use dmc_sim::{Agent, Packet, SimApi, SimDuration, SimTime};
use dmc_stats::OnlineMoments;
use std::collections::HashSet;

/// Timer key for the periodic path-silence check (the receiver owns its
/// whole key space; the sender's reserved range does not apply here).
const FAILURE_CHECK_KEY: u64 = 1;

/// Total transmissions of each Down declaration (initial + repeats on
/// the following check ticks). Three sends survive double-digit reverse
/// loss rates with overwhelming probability.
const DOWN_NOTICE_REPEATS: u8 = 3;

/// Path-failure detection knobs: a path that has delivered at least one
/// packet and then stays silent for `silence` is declared down and
/// reported with a [`PathNotice`]; a packet arriving on a downed path
/// triggers an `Up` notice.
#[derive(Debug, Clone, Copy)]
pub struct FailureDetection {
    /// Silence duration after which a previously active path is declared
    /// down. Must comfortably exceed the path's inter-arrival time at the
    /// planned send rate.
    pub silence: SimDuration,
    /// How often to check for silent paths.
    pub check_interval: SimDuration,
    /// Stop checking after this much silence on *all* paths (the transfer
    /// is over; without this the periodic timer would keep an otherwise
    /// finished simulation alive forever).
    pub idle_shutdown: SimDuration,
}

impl FailureDetection {
    /// Creates a detector with `check_interval = silence / 4` and
    /// `idle_shutdown = 16 · silence`.
    pub fn new(silence: SimDuration) -> Self {
        FailureDetection {
            silence,
            check_interval: SimDuration::from_nanos((silence.as_nanos() / 4).max(1)),
            idle_shutdown: SimDuration::from_nanos(silence.as_nanos().saturating_mul(16)),
        }
    }
}

/// Receiver configuration.
#[derive(Debug, Clone)]
pub struct ReceiverConfig {
    /// Data lifetime `δ`: a message arriving later than `created + δ` is
    /// late (counted but useless, §IV).
    pub lifetime: SimDuration,
    /// Path (0-based) to send acknowledgments on — the lowest-delay path
    /// (Eq. 25 / §VIII-C).
    pub ack_path: usize,
    /// On-wire ack size in bytes; defaults to the encoded size, may be
    /// padded up to model link-layer overhead.
    pub ack_wire_bytes: usize,
    /// Path-failure detection; `None` (the default) disables it.
    pub failure_detection: Option<FailureDetection>,
}

impl ReceiverConfig {
    /// Creates a config with the paper's defaults (ack ≈ 40 B, no
    /// failure detection).
    pub fn new(lifetime: SimDuration, ack_path: usize) -> Self {
        ReceiverConfig {
            lifetime,
            ack_path,
            ack_wire_bytes: Ack::WIRE_BYTES.max(40),
            failure_detection: None,
        }
    }

    /// Enables path-failure detection.
    #[must_use]
    pub fn with_failure_detection(mut self, fd: FailureDetection) -> Self {
        self.failure_detection = Some(fd);
        self
    }
}

/// Receiver-side counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReceiverStats {
    /// Transmissions that reached the receiver (including duplicates).
    pub transmissions_received: u64,
    /// Unique messages whose *first* copy arrived within the lifetime —
    /// the numerator of the paper's quality metric.
    pub unique_in_time: u64,
    /// Unique messages whose first copy arrived late.
    pub unique_late: u64,
    /// Duplicate copies discarded.
    pub duplicates: u64,
    /// Packets that failed to parse.
    pub malformed: u64,
    /// Acks sent.
    pub acks_sent: u64,
    /// Acks dropped at the NIC (reverse-path queue full).
    pub acks_nic_dropped: u64,
    /// Path-failure (`Down`) notices sent.
    pub failure_notices_sent: u64,
    /// Path-recovery (`Up`) notices sent.
    pub recovery_notices_sent: u64,
    /// Sender probes discarded as duplicates or stale reorders (each
    /// would otherwise have triggered a redundant `Up` reply).
    pub stale_probes_dropped: u64,
}

impl ReceiverStats {
    /// Publishes the counters into a telemetry registry under the
    /// `proto.rx.*` names. The stats are cumulative, so call this once
    /// per receiver per run (publishing twice double-counts).
    pub fn publish_obs(&self, obs: &dmc_obs::Obs) {
        if !obs.is_enabled() {
            return;
        }
        obs.counter("proto.rx.transmissions")
            .add(self.transmissions_received);
        obs.counter("proto.rx.in_time").add(self.unique_in_time);
        obs.counter("proto.rx.late").add(self.unique_late);
        obs.counter("proto.rx.duplicates").add(self.duplicates);
        obs.counter("proto.rx.malformed").add(self.malformed);
        obs.counter("proto.rx.acks_sent").add(self.acks_sent);
        obs.counter("proto.rx.acks_nic_dropped")
            .add(self.acks_nic_dropped);
        obs.counter("proto.rx.failure_notices")
            .add(self.failure_notices_sent);
        obs.counter("proto.rx.recovery_notices")
            .add(self.recovery_notices_sent);
        obs.counter("proto.rx.stale_probes")
            .add(self.stale_probes_dropped);
    }
}

/// The receiving endpoint ("server" in the paper's simulation).
///
/// On every data packet it verifies the deadline with the enclosed
/// creation timestamp, deduplicates by sequence number, and responds with
/// an acknowledgment along the configured lowest-delay path carrying the
/// §VIII-C triple (echo, expected range, received bitmap).
#[derive(Debug)]
pub struct DmcReceiver {
    config: ReceiverConfig,
    // dmc-lint: allow(det-unordered-map) membership-set only: insert/contains by seq, never iterated
    seen: HashSet<u64>,
    highest_seq: u64,
    stats: ReceiverStats,
    /// One-way delay samples (creation → arrival) per inbound path,
    /// over *all* transmissions on that path — validates the delay
    /// distribution the links were configured with.
    delay_by_path: Vec<OnlineMoments>,
    /// Last *data* arrival per inbound path (failure detection). Only
    /// data defines the "transfer is active" baseline.
    last_seen: Vec<Option<SimTime>>,
    /// Last sender-probe arrival per inbound path: protects that path
    /// from a down declaration without making other paths look stale.
    last_probe: Vec<Option<SimTime>>,
    /// Paths currently reported down.
    reported_down: Vec<bool>,
    /// Remaining Down-notice repeats per path: notices are fire-and-
    /// forget on lossy reverse paths, so each declaration is sent
    /// [`DOWN_NOTICE_REPEATS`]× across consecutive check ticks — a
    /// single in-flight erasure must not blind the sender for the whole
    /// outage.
    down_resends: Vec<u8>,
    /// When the last `Up` notice was sent per path — probation: a path
    /// can only be re-declared down once *data* newer than this arrives,
    /// so a lightly-used (or plan-starved) path cannot flap down/up on
    /// probe echoes alone.
    up_sent_at: Vec<Option<SimTime>>,
    /// Whether the silence-check timer is armed.
    checker_armed: bool,
    /// Stamps `(at_ns, seq)` on outgoing notices so the sender can drop
    /// duplicated/reordered copies.
    notice_seq: NoticeSeq,
    /// Drops duplicated/stale-reordered sender probes: a chaotic network
    /// that duplicates a probe frame must not elicit one `Up` reply per
    /// copy.
    probe_guard: NoticeGuard,
}

impl DmcReceiver {
    /// Creates a receiver.
    pub fn new(config: ReceiverConfig) -> Self {
        DmcReceiver {
            config,
            // dmc-lint: allow(det-unordered-map) constructor of the membership-only dedup set above
            seen: HashSet::new(),
            highest_seq: 0,
            stats: ReceiverStats::default(),
            delay_by_path: Vec::new(),
            last_seen: Vec::new(),
            last_probe: Vec::new(),
            reported_down: Vec::new(),
            down_resends: Vec::new(),
            up_sent_at: Vec::new(),
            checker_armed: false,
            notice_seq: NoticeSeq::new(),
            probe_guard: NoticeGuard::new(),
        }
    }

    /// Paths currently considered down by the failure detector.
    pub fn paths_reported_down(&self) -> Vec<usize> {
        self.reported_down
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| d.then_some(i))
            .collect()
    }

    /// Counters so far.
    pub fn stats(&self) -> ReceiverStats {
        self.stats
    }

    /// Observed send→arrival delay moments for transmissions received on
    /// `path` (`sent_ns` → arrival; includes serialization and queueing).
    pub fn delay_moments(&self, path: usize) -> OnlineMoments {
        self.delay_by_path
            .get(path)
            .copied()
            .unwrap_or_else(OnlineMoments::new)
    }

    /// Fraction of `generated` messages that arrived in time — the
    /// paper's quality `Q` when `generated` is the sender's count.
    pub fn quality(&self, generated: u64) -> f64 {
        if generated == 0 {
            0.0
        } else {
            self.stats.unique_in_time as f64 / generated as f64
        }
    }

    /// Freshest path believed alive — where notices should travel.
    fn best_notice_path(&self) -> usize {
        let mut best: Option<(SimTime, usize)> = None;
        for (i, t) in self.last_seen.iter().enumerate() {
            if self.reported_down.get(i).copied().unwrap_or(false) {
                continue;
            }
            if let Some(t) = *t {
                if best.is_none_or(|(bt, _)| t > bt) {
                    best = Some((t, i));
                }
            }
        }
        best.map_or(self.config.ack_path, |(_, i)| i)
    }

    fn send_notice(&mut self, path: usize, kind: NoticeKind, api: &mut SimApi<'_>) {
        let notice = PathNotice {
            path: path as u8,
            kind,
            seq: self.notice_seq.next(path),
            at_ns: api.now().as_nanos(),
        };
        let wire = notice.encode();
        let out = self.best_notice_path();
        if api.send(out, Packet::new(wire.len().max(40), wire)) {
            match kind {
                NoticeKind::Down => self.stats.failure_notices_sent += 1,
                NoticeKind::Up => self.stats.recovery_notices_sent += 1,
            }
        }
    }

    fn note_arrival(&mut self, path: usize, is_probe: bool, api: &mut SimApi<'_>) {
        let Some(fd) = self.config.failure_detection else {
            return;
        };
        if path >= api.num_paths() {
            return; // a lying header must not grow state or crash sends
        }
        if path >= self.last_seen.len() {
            self.last_seen.resize(path + 1, None);
            self.last_probe.resize(path + 1, None);
            self.reported_down.resize(path + 1, false);
            self.down_resends.resize(path + 1, 0);
            self.up_sent_at.resize(path + 1, None);
        }
        if is_probe {
            self.last_probe[path] = Some(api.now());
        } else {
            self.last_seen[path] = Some(api.now());
        }
        if self.reported_down[path] {
            self.reported_down[path] = false;
            self.down_resends[path] = 0;
            self.up_sent_at[path] = Some(api.now());
            self.send_notice(path, NoticeKind::Up, api);
        } else if is_probe {
            // The sender only probes paths *it* believes failed; if this
            // receiver disagrees (it never declared the path, or its Up
            // notice was lost or reordered), answer every probe with an
            // Up so the sender's failed flag cannot stick on a live path.
            self.send_notice(path, NoticeKind::Up, api);
        }
        // Only data arrivals arm the checker: probes alone mean the
        // transfer itself is idle and there is nothing to declare.
        if !is_probe && !self.checker_armed {
            self.checker_armed = true;
            api.set_timer(api.now() + fd.check_interval, FAILURE_CHECK_KEY);
        }
    }

    fn check_silent_paths(&mut self, api: &mut SimApi<'_>) {
        let Some(fd) = self.config.failure_detection else {
            return;
        };
        let now = api.now();
        let newest = self.last_seen.iter().flatten().copied().max();
        // Everything has been silent for a long time: the transfer is
        // over. Go dormant (the next arrival re-arms the checker) so the
        // event queue can drain.
        if newest.is_none_or(|t| now.since(t) > fd.idle_shutdown) {
            self.checker_armed = false;
            return;
        }
        // Differential silence: a path is down only when it lags the
        // *freshest arrival across paths* by more than the threshold.
        // Plain `now − last_seen` would misread the end of the transfer
        // (every path goes quiet at once) as a mass failure; lagging a
        // still-active transfer is the actual failure signature. The
        // flip side — all paths dying simultaneously — is undetectable
        // and also unreportable (no live path to carry the notice).
        let active = newest.expect("checked above");
        let down: Vec<usize> = (0..self.last_seen.len())
            .filter(|&i| {
                let freshest = self.last_seen[i].max(self.last_probe[i]);
                // Probation: after an Up, re-declaration needs data newer
                // than the Up (a probe echo is not an expectation of
                // data). `d ≥ u` because the Up may have been triggered
                // by that very data arrival.
                let data_since_up =
                    self.last_seen[i].is_some_and(|d| self.up_sent_at[i].is_none_or(|u| d >= u));
                !self.reported_down[i]
                    && data_since_up
                    && freshest.is_some_and(|t| active.since(t) > fd.silence)
            })
            .collect();
        // Repeat recent Down declarations first (fire-and-forget notices
        // can be erased on the reverse path), then declare new ones.
        for path in 0..self.down_resends.len() {
            if self.reported_down[path] && self.down_resends[path] > 0 {
                self.down_resends[path] -= 1;
                self.send_notice(path, NoticeKind::Down, api);
            }
        }
        for path in down {
            self.reported_down[path] = true;
            self.down_resends[path] = DOWN_NOTICE_REPEATS - 1;
            self.send_notice(path, NoticeKind::Down, api);
        }
        api.set_timer(now + fd.check_interval, FAILURE_CHECK_KEY);
    }

    fn build_ack(&self, header: &DataHeader) -> Ack {
        let window_start = self
            .highest_seq
            .saturating_sub(crate::wire::ACK_BITMAP_BITS as u64 - 1);
        let mut ack = Ack::new(header.seq, header.sent_ns, header.path, window_start);
        for seq in window_start..=self.highest_seq {
            if self.seen.contains(&seq) {
                ack.set_received(seq);
            }
        }
        ack
    }
}

impl Agent for DmcReceiver {
    fn on_start(&mut self, _api: &mut SimApi<'_>) {}

    fn on_packet(&mut self, _path: usize, packet: Packet, api: &mut SimApi<'_>) {
        // A sender-side probe of a suspect path: its arrival alone proves
        // the forward direction works again, so feed the detector (which
        // answers with an `Up` notice) without touching data accounting.
        if let Some(probe) = PathNotice::decode(packet.payload()) {
            if self.probe_guard.fresh(&probe) {
                self.note_arrival(probe.path as usize, true, api);
            } else {
                self.stats.stale_probes_dropped += 1;
            }
            return;
        }
        let Some(header) = DataHeader::decode(packet.payload()) else {
            self.stats.malformed += 1;
            return;
        };
        self.stats.transmissions_received += 1;
        self.note_arrival(header.path as usize, false, api);
        let now_ns = api.now().as_nanos();
        let path_idx = header.path as usize;
        if path_idx >= self.delay_by_path.len() && path_idx < 64 {
            self.delay_by_path
                .resize_with(path_idx + 1, OnlineMoments::new);
        }
        if let Some(m) = self.delay_by_path.get_mut(path_idx) {
            m.push(now_ns.saturating_sub(header.sent_ns) as f64 / 1e9);
        }
        if self.seen.insert(header.seq) {
            let deadline = header.created_ns + self.config.lifetime.as_nanos();
            if now_ns <= deadline {
                self.stats.unique_in_time += 1;
            } else {
                self.stats.unique_late += 1;
            }
        } else {
            self.stats.duplicates += 1;
        }
        self.highest_seq = self.highest_seq.max(header.seq);
        // Acknowledge every transmission (even duplicates/late ones: the
        // ack suppresses pointless retransmissions).
        let ack = self.build_ack(&header);
        let wire = ack.encode();
        let size = self.config.ack_wire_bytes.max(wire.len());
        let sent = api.send(self.config.ack_path, Packet::new(size, wire));
        if sent {
            self.stats.acks_sent += 1;
        } else {
            self.stats.acks_nic_dropped += 1;
        }
    }

    fn on_timer(&mut self, key: u64, api: &mut SimApi<'_>) {
        if key == FAILURE_CHECK_KEY {
            self.check_silent_paths(api);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use dmc_sim::{LinkConfig, SimTime, TwoHostSim};
    use dmc_stats::ConstantDelay;
    use std::sync::Arc;

    fn link(delay: f64) -> LinkConfig {
        LinkConfig {
            bandwidth_bps: 1e8,
            propagation: Arc::new(ConstantDelay::new(delay)),
            loss: 0.0.into(),
            queue_capacity_bytes: 1 << 20,
        }
    }

    /// Test client: sends crafted data packets, collects acks.
    struct Probe {
        to_send: Vec<(u64, u64, SimTime)>, // (seq, created_ns, send at)
        acks: Vec<Ack>,
    }
    impl Agent for Probe {
        fn on_start(&mut self, api: &mut SimApi<'_>) {
            for (i, &(_, _, at)) in self.to_send.iter().enumerate() {
                api.set_timer(at, i as u64);
            }
        }
        fn on_packet(&mut self, _path: usize, p: Packet, _api: &mut SimApi<'_>) {
            self.acks.push(Ack::decode(p.payload()).expect("valid ack"));
        }
        fn on_timer(&mut self, key: u64, api: &mut SimApi<'_>) {
            let (seq, created_ns, _) = self.to_send[key as usize];
            let h = DataHeader {
                seq,
                created_ns,
                sent_ns: api.now().as_nanos(),
                path: 0,
                stage: 0,
            };
            api.send(0, Packet::new(1024, h.encode()));
        }
    }

    fn run(to_send: Vec<(u64, u64, SimTime)>, lifetime_ms: u64) -> (Probe, ReceiverStats) {
        let recv = DmcReceiver::new(ReceiverConfig::new(
            SimDuration::from_millis(lifetime_ms),
            0,
        ));
        let mut sim = TwoHostSim::new(
            vec![link(0.010)],
            vec![link(0.010)],
            Probe {
                to_send,
                acks: vec![],
            },
            recv,
            7,
        )
        .unwrap();
        sim.run_to_completion();
        let stats = sim.server().stats();
        let client_stats = sim.client().acks.clone();
        (
            Probe {
                to_send: vec![],
                acks: client_stats,
            },
            stats,
        )
    }

    #[test]
    fn in_time_vs_late() {
        // Packet created at t=0, sent at t=0 → arrives ~10 ms: in time for
        // δ=50 ms. Packet created at 0 but sent at 100 ms → late.
        let (probe, stats) = run(
            vec![(1, 0, SimTime::ZERO), (2, 0, SimTime::from_secs_f64(0.100))],
            50,
        );
        assert_eq!(stats.unique_in_time, 1);
        assert_eq!(stats.unique_late, 1);
        assert_eq!(stats.acks_sent, 2);
        assert_eq!(probe.acks.len(), 2);
        assert_eq!(probe.acks[0].just_received, 1);
    }

    #[test]
    fn duplicates_counted_once() {
        let (_, stats) = run(
            vec![
                (5, 0, SimTime::ZERO),
                (5, 0, SimTime::from_secs_f64(0.001)),
                (5, 0, SimTime::from_secs_f64(0.002)),
            ],
            1_000,
        );
        assert_eq!(stats.unique_in_time, 1);
        assert_eq!(stats.duplicates, 2);
        assert_eq!(stats.transmissions_received, 3);
    }

    #[test]
    fn ack_bitmap_reports_received_set() {
        let (probe, _) = run(
            vec![
                (10, 0, SimTime::ZERO),
                (12, 0, SimTime::from_secs_f64(0.001)),
                (11, 0, SimTime::from_secs_f64(0.002)),
            ],
            1_000,
        );
        let last = probe.acks.last().unwrap();
        assert!(last.is_received(10));
        assert!(last.is_received(11));
        assert!(last.is_received(12));
        assert!(!last.is_received(13));
    }

    #[test]
    fn quality_metric() {
        let (_, stats) = run(vec![(1, 0, SimTime::ZERO)], 1_000);
        let mut r = DmcReceiver::new(ReceiverConfig::new(SimDuration::from_millis(1), 0));
        r.stats = stats;
        assert!((r.quality(2) - 0.5).abs() < 1e-12);
        assert_eq!(r.quality(0), 0.0);
    }

    #[test]
    fn delay_moments_track_path_latency() {
        // Packet sent over a 10 ms link arrives with ~10 ms + serialization
        // observed delay on its path's accumulator.
        let (_, _) = run(vec![(1, 0, SimTime::ZERO)], 1_000);
        let recv = DmcReceiver::new(ReceiverConfig::new(SimDuration::from_millis(100), 0));
        let mut sim = TwoHostSim::new(
            vec![link(0.010)],
            vec![link(0.010)],
            Probe {
                to_send: vec![(7, 0, SimTime::ZERO)],
                acks: vec![],
            },
            recv,
            5,
        )
        .unwrap();
        sim.run_to_completion();
        let m = sim.server().delay_moments(0);
        assert_eq!(m.count(), 1);
        // 10 ms propagation + 1024 B at 100 Mbps ≈ 0.082 ms serialization.
        assert!((m.mean() - 0.010082).abs() < 1e-4, "mean {}", m.mean());
        // Unused path reports an empty accumulator.
        assert_eq!(sim.server().delay_moments(3).count(), 0);
    }

    #[test]
    fn silence_produces_down_notice_then_recovery_up_notice() {
        // Two paths; the probe sends on path 0 every 10 ms until 200 ms,
        // goes silent until 600 ms, then resumes — while path 1 keeps a
        // heartbeat throughout. The receiver must report path 0 down once
        // (on the live path) and up once when it resumes.
        struct TwoPathProbe {
            notices: Vec<PathNotice>,
        }
        impl Agent for TwoPathProbe {
            fn on_start(&mut self, api: &mut SimApi<'_>) {
                for i in 0..100u64 {
                    api.set_timer(SimTime::from_nanos(i * 10_000_000), i);
                }
            }
            fn on_packet(&mut self, _path: usize, p: Packet, _api: &mut SimApi<'_>) {
                if let Some(n) = PathNotice::decode(p.payload()) {
                    self.notices.push(n);
                }
            }
            fn on_timer(&mut self, key: u64, api: &mut SimApi<'_>) {
                let t_ms = key * 10;
                let send = |api: &mut SimApi<'_>, path: u8| {
                    let h = DataHeader {
                        seq: key * 2 + path as u64,
                        created_ns: api.now().as_nanos(),
                        sent_ns: api.now().as_nanos(),
                        path,
                        stage: 0,
                    };
                    api.send(path as usize, Packet::new(256, h.encode()));
                };
                send(api, 1); // heartbeat throughout
                if t_ms <= 200 || t_ms >= 600 {
                    send(api, 0);
                }
            }
        }
        let recv = DmcReceiver::new(
            ReceiverConfig::new(SimDuration::from_millis(500), 1)
                .with_failure_detection(FailureDetection::new(SimDuration::from_millis(100))),
        );
        let mut sim = TwoHostSim::new(
            vec![link(0.005), link(0.005)],
            vec![link(0.005), link(0.005)],
            TwoPathProbe { notices: vec![] },
            recv,
            17,
        )
        .unwrap();
        sim.run_to_completion();
        let stats = sim.server().stats();
        // One outage = one declaration, sent DOWN_NOTICE_REPEATS× against
        // reverse-path loss; one recovery = one Up.
        assert_eq!(
            stats.failure_notices_sent,
            u64::from(DOWN_NOTICE_REPEATS),
            "one declaration, repeated for loss-resilience"
        );
        assert_eq!(stats.recovery_notices_sent, 1);
        let notices = &sim.client().notices;
        assert_eq!(notices.len(), DOWN_NOTICE_REPEATS as usize + 1);
        for n in &notices[..DOWN_NOTICE_REPEATS as usize] {
            assert_eq!(n.path, 0);
            assert_eq!(n.kind, NoticeKind::Down);
        }
        assert_eq!(notices.last().unwrap().kind, NoticeKind::Up);
        assert!(sim.server().paths_reported_down().is_empty());
    }

    #[test]
    fn detector_goes_dormant_so_simulation_terminates() {
        // Without the idle shutdown the periodic check would re-arm
        // forever and run_to_completion would never return.
        struct OneShot;
        impl Agent for OneShot {
            fn on_start(&mut self, api: &mut SimApi<'_>) {
                let h = DataHeader {
                    seq: 1,
                    created_ns: 0,
                    sent_ns: 0,
                    path: 0,
                    stage: 0,
                };
                api.send(0, Packet::new(256, h.encode()));
            }
            fn on_packet(&mut self, _p: usize, _pk: Packet, _a: &mut SimApi<'_>) {}
            fn on_timer(&mut self, _k: u64, _a: &mut SimApi<'_>) {}
        }
        let recv = DmcReceiver::new(
            ReceiverConfig::new(SimDuration::from_millis(100), 0)
                .with_failure_detection(FailureDetection::new(SimDuration::from_millis(50))),
        );
        let mut sim =
            TwoHostSim::new(vec![link(0.010)], vec![link(0.010)], OneShot, recv, 7).unwrap();
        sim.run_to_completion(); // must terminate
        assert!(sim.now() < SimTime::from_secs_f64(5.0), "queue drained");
    }

    #[test]
    fn malformed_packets_ignored() {
        struct Garbage;
        impl Agent for Garbage {
            fn on_start(&mut self, api: &mut SimApi<'_>) {
                api.send(0, Packet::new(64, Bytes::from_static(&[0xFF; 64])));
            }
            fn on_packet(&mut self, _p: usize, _pk: Packet, _a: &mut SimApi<'_>) {}
            fn on_timer(&mut self, _k: u64, _a: &mut SimApi<'_>) {}
        }
        let recv = DmcReceiver::new(ReceiverConfig::new(SimDuration::from_millis(10), 0));
        let mut sim =
            TwoHostSim::new(vec![link(0.01)], vec![link(0.01)], Garbage, recv, 3).unwrap();
        sim.run_to_completion();
        assert_eq!(sim.server().stats().malformed, 1);
        assert_eq!(sim.server().stats().acks_sent, 0);
    }
}
