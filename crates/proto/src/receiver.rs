//! The receiving endpoint: deadline verification, deduplication, and
//! acknowledgment generation (paper §VII-A server + §VIII-C ack scheme).

use crate::wire::{Ack, DataHeader};
use dmc_sim::{Agent, Packet, SimApi, SimDuration};
use dmc_stats::OnlineMoments;
use std::collections::HashSet;

/// Receiver configuration.
#[derive(Debug, Clone)]
pub struct ReceiverConfig {
    /// Data lifetime `δ`: a message arriving later than `created + δ` is
    /// late (counted but useless, §IV).
    pub lifetime: SimDuration,
    /// Path (0-based) to send acknowledgments on — the lowest-delay path
    /// (Eq. 25 / §VIII-C).
    pub ack_path: usize,
    /// On-wire ack size in bytes; defaults to the encoded size, may be
    /// padded up to model link-layer overhead.
    pub ack_wire_bytes: usize,
}

impl ReceiverConfig {
    /// Creates a config with the paper's defaults (ack ≈ 40 B).
    pub fn new(lifetime: SimDuration, ack_path: usize) -> Self {
        ReceiverConfig {
            lifetime,
            ack_path,
            ack_wire_bytes: Ack::WIRE_BYTES.max(40),
        }
    }
}

/// Receiver-side counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReceiverStats {
    /// Transmissions that reached the receiver (including duplicates).
    pub transmissions_received: u64,
    /// Unique messages whose *first* copy arrived within the lifetime —
    /// the numerator of the paper's quality metric.
    pub unique_in_time: u64,
    /// Unique messages whose first copy arrived late.
    pub unique_late: u64,
    /// Duplicate copies discarded.
    pub duplicates: u64,
    /// Packets that failed to parse.
    pub malformed: u64,
    /// Acks sent.
    pub acks_sent: u64,
    /// Acks dropped at the NIC (reverse-path queue full).
    pub acks_nic_dropped: u64,
}

/// The receiving endpoint ("server" in the paper's simulation).
///
/// On every data packet it verifies the deadline with the enclosed
/// creation timestamp, deduplicates by sequence number, and responds with
/// an acknowledgment along the configured lowest-delay path carrying the
/// §VIII-C triple (echo, expected range, received bitmap).
#[derive(Debug)]
pub struct DmcReceiver {
    config: ReceiverConfig,
    seen: HashSet<u64>,
    highest_seq: u64,
    stats: ReceiverStats,
    /// One-way delay samples (creation → arrival) per inbound path,
    /// over *all* transmissions on that path — validates the delay
    /// distribution the links were configured with.
    delay_by_path: Vec<OnlineMoments>,
}

impl DmcReceiver {
    /// Creates a receiver.
    pub fn new(config: ReceiverConfig) -> Self {
        DmcReceiver {
            config,
            seen: HashSet::new(),
            highest_seq: 0,
            stats: ReceiverStats::default(),
            delay_by_path: Vec::new(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> ReceiverStats {
        self.stats
    }

    /// Observed send→arrival delay moments for transmissions received on
    /// `path` (`sent_ns` → arrival; includes serialization and queueing).
    pub fn delay_moments(&self, path: usize) -> OnlineMoments {
        self.delay_by_path
            .get(path)
            .copied()
            .unwrap_or_else(OnlineMoments::new)
    }

    /// Fraction of `generated` messages that arrived in time — the
    /// paper's quality `Q` when `generated` is the sender's count.
    pub fn quality(&self, generated: u64) -> f64 {
        if generated == 0 {
            0.0
        } else {
            self.stats.unique_in_time as f64 / generated as f64
        }
    }

    fn build_ack(&self, header: &DataHeader) -> Ack {
        let window_start = self
            .highest_seq
            .saturating_sub(crate::wire::ACK_BITMAP_BITS as u64 - 1);
        let mut ack = Ack::new(header.seq, header.sent_ns, header.path, window_start);
        for seq in window_start..=self.highest_seq {
            if self.seen.contains(&seq) {
                ack.set_received(seq);
            }
        }
        ack
    }
}

impl Agent for DmcReceiver {
    fn on_start(&mut self, _api: &mut SimApi<'_>) {}

    fn on_packet(&mut self, _path: usize, packet: Packet, api: &mut SimApi<'_>) {
        let Some(header) = DataHeader::decode(packet.payload()) else {
            self.stats.malformed += 1;
            return;
        };
        self.stats.transmissions_received += 1;
        let now_ns = api.now().as_nanos();
        let path_idx = header.path as usize;
        if path_idx >= self.delay_by_path.len() && path_idx < 64 {
            self.delay_by_path
                .resize_with(path_idx + 1, OnlineMoments::new);
        }
        if let Some(m) = self.delay_by_path.get_mut(path_idx) {
            m.push(now_ns.saturating_sub(header.sent_ns) as f64 / 1e9);
        }
        if self.seen.insert(header.seq) {
            let deadline = header.created_ns + self.config.lifetime.as_nanos();
            if now_ns <= deadline {
                self.stats.unique_in_time += 1;
            } else {
                self.stats.unique_late += 1;
            }
        } else {
            self.stats.duplicates += 1;
        }
        self.highest_seq = self.highest_seq.max(header.seq);
        // Acknowledge every transmission (even duplicates/late ones: the
        // ack suppresses pointless retransmissions).
        let ack = self.build_ack(&header);
        let wire = ack.encode();
        let size = self.config.ack_wire_bytes.max(wire.len());
        let sent = api.send(self.config.ack_path, Packet::new(size, wire));
        if sent {
            self.stats.acks_sent += 1;
        } else {
            self.stats.acks_nic_dropped += 1;
        }
    }

    fn on_timer(&mut self, _key: u64, _api: &mut SimApi<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use dmc_sim::{LinkConfig, SimTime, TwoHostSim};
    use dmc_stats::ConstantDelay;
    use std::sync::Arc;

    fn link(delay: f64) -> LinkConfig {
        LinkConfig {
            bandwidth_bps: 1e8,
            propagation: Arc::new(ConstantDelay::new(delay)),
            loss: 0.0,
            queue_capacity_bytes: 1 << 20,
        }
    }

    /// Test client: sends crafted data packets, collects acks.
    struct Probe {
        to_send: Vec<(u64, u64, SimTime)>, // (seq, created_ns, send at)
        acks: Vec<Ack>,
    }
    impl Agent for Probe {
        fn on_start(&mut self, api: &mut SimApi<'_>) {
            for (i, &(_, _, at)) in self.to_send.iter().enumerate() {
                api.set_timer(at, i as u64);
            }
        }
        fn on_packet(&mut self, _path: usize, p: Packet, _api: &mut SimApi<'_>) {
            self.acks.push(Ack::decode(p.payload()).expect("valid ack"));
        }
        fn on_timer(&mut self, key: u64, api: &mut SimApi<'_>) {
            let (seq, created_ns, _) = self.to_send[key as usize];
            let h = DataHeader {
                seq,
                created_ns,
                sent_ns: api.now().as_nanos(),
                path: 0,
                stage: 0,
            };
            api.send(0, Packet::new(1024, h.encode()));
        }
    }

    fn run(to_send: Vec<(u64, u64, SimTime)>, lifetime_ms: u64) -> (Probe, ReceiverStats) {
        let recv = DmcReceiver::new(ReceiverConfig::new(
            SimDuration::from_millis(lifetime_ms),
            0,
        ));
        let mut sim = TwoHostSim::new(
            vec![link(0.010)],
            vec![link(0.010)],
            Probe {
                to_send,
                acks: vec![],
            },
            recv,
            7,
        )
        .unwrap();
        sim.run_to_completion();
        let stats = sim.server().stats();
        let client_stats = sim.client().acks.clone();
        (
            Probe {
                to_send: vec![],
                acks: client_stats,
            },
            stats,
        )
    }

    #[test]
    fn in_time_vs_late() {
        // Packet created at t=0, sent at t=0 → arrives ~10 ms: in time for
        // δ=50 ms. Packet created at 0 but sent at 100 ms → late.
        let (probe, stats) = run(
            vec![(1, 0, SimTime::ZERO), (2, 0, SimTime::from_secs_f64(0.100))],
            50,
        );
        assert_eq!(stats.unique_in_time, 1);
        assert_eq!(stats.unique_late, 1);
        assert_eq!(stats.acks_sent, 2);
        assert_eq!(probe.acks.len(), 2);
        assert_eq!(probe.acks[0].just_received, 1);
    }

    #[test]
    fn duplicates_counted_once() {
        let (_, stats) = run(
            vec![
                (5, 0, SimTime::ZERO),
                (5, 0, SimTime::from_secs_f64(0.001)),
                (5, 0, SimTime::from_secs_f64(0.002)),
            ],
            1_000,
        );
        assert_eq!(stats.unique_in_time, 1);
        assert_eq!(stats.duplicates, 2);
        assert_eq!(stats.transmissions_received, 3);
    }

    #[test]
    fn ack_bitmap_reports_received_set() {
        let (probe, _) = run(
            vec![
                (10, 0, SimTime::ZERO),
                (12, 0, SimTime::from_secs_f64(0.001)),
                (11, 0, SimTime::from_secs_f64(0.002)),
            ],
            1_000,
        );
        let last = probe.acks.last().unwrap();
        assert!(last.is_received(10));
        assert!(last.is_received(11));
        assert!(last.is_received(12));
        assert!(!last.is_received(13));
    }

    #[test]
    fn quality_metric() {
        let (_, stats) = run(vec![(1, 0, SimTime::ZERO)], 1_000);
        let mut r = DmcReceiver::new(ReceiverConfig::new(SimDuration::from_millis(1), 0));
        r.stats = stats;
        assert!((r.quality(2) - 0.5).abs() < 1e-12);
        assert_eq!(r.quality(0), 0.0);
    }

    #[test]
    fn delay_moments_track_path_latency() {
        // Packet sent over a 10 ms link arrives with ~10 ms + serialization
        // observed delay on its path's accumulator.
        let (_, _) = run(vec![(1, 0, SimTime::ZERO)], 1_000);
        let recv = DmcReceiver::new(ReceiverConfig::new(SimDuration::from_millis(100), 0));
        let mut sim = TwoHostSim::new(
            vec![link(0.010)],
            vec![link(0.010)],
            Probe {
                to_send: vec![(7, 0, SimTime::ZERO)],
                acks: vec![],
            },
            recv,
            5,
        )
        .unwrap();
        sim.run_to_completion();
        let m = sim.server().delay_moments(0);
        assert_eq!(m.count(), 1);
        // 10 ms propagation + 1024 B at 100 Mbps ≈ 0.082 ms serialization.
        assert!((m.mean() - 0.010082).abs() < 1e-4, "mean {}", m.mean());
        // Unused path reports an empty accumulator.
        assert_eq!(sim.server().delay_moments(3).count(), 0);
    }

    #[test]
    fn malformed_packets_ignored() {
        struct Garbage;
        impl Agent for Garbage {
            fn on_start(&mut self, api: &mut SimApi<'_>) {
                api.send(0, Packet::new(64, Bytes::from_static(&[0xFF; 64])));
            }
            fn on_packet(&mut self, _p: usize, _pk: Packet, _a: &mut SimApi<'_>) {}
            fn on_timer(&mut self, _k: u64, _a: &mut SimApi<'_>) {}
        }
        let recv = DmcReceiver::new(ReceiverConfig::new(SimDuration::from_millis(10), 0));
        let mut sim =
            TwoHostSim::new(vec![link(0.01)], vec![link(0.01)], Garbage, recv, 3).unwrap();
        sim.run_to_completion();
        assert_eq!(sim.server().stats().malformed, 1);
        assert_eq!(sim.server().stats().acks_sent, 0);
    }
}
