//! Online estimation of path characteristics (paper §VIII-A).
//!
//! * **Delay**: EWMA smoothed RTT with variance (the RFC 6298 estimator),
//!   one per path; acks echo the transmission timestamp so retransmissions
//!   produce unambiguous samples. One-way delay is recovered assuming a
//!   symmetric ack path: `d_i ≈ SRTT_i − SRTT_min/2`.
//! * **Loss**: per-path sliding window of transmission outcomes; "the
//!   loss rate can first be set to 0% and the sending strategy … refined
//!   every time a loss is recorded".
//! * **Bandwidth**: taken from configuration or congestion control in
//!   practice (the paper's PCC argument); [`RateEstimator`] measures the
//!   achieved goodput as a lower-bound probe.

use dmc_stats::OnlineMoments;
use std::collections::VecDeque;

/// RFC 6298-style smoothed RTT estimator.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RttEstimator {
    srtt: Option<f64>,
    rttvar: f64,
    moments: OnlineMoments,
}

impl RttEstimator {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one RTT sample (seconds).
    pub fn record(&mut self, rtt: f64) {
        self.moments.push(rtt);
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - rtt).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * rtt);
            }
        }
    }

    /// Smoothed RTT (seconds); `None` before the first sample.
    pub fn srtt(&self) -> Option<f64> {
        self.srtt
    }

    /// RTT variation (seconds).
    pub fn rttvar(&self) -> f64 {
        self.rttvar
    }

    /// Retransmission timeout `SRTT + 4·RTTVAR`, floored at `min_rto`.
    pub fn rto(&self, min_rto: f64) -> Option<f64> {
        self.srtt.map(|s| (s + 4.0 * self.rttvar).max(min_rto))
    }

    /// Number of samples seen.
    pub fn samples(&self) -> u64 {
        self.moments.count()
    }

    /// Raw sample moments (for gamma fitting, §VIII-A delay estimation).
    pub fn moments(&self) -> &OnlineMoments {
        &self.moments
    }
}

/// Sliding-window loss-rate estimator for one path.
#[derive(Debug, Clone)]
pub struct LossEstimator {
    window: VecDeque<bool>,
    capacity: usize,
    losses_in_window: usize,
    total_losses: u64,
    total: u64,
}

impl LossEstimator {
    /// Creates an estimator over the last `window` transmissions.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        LossEstimator {
            window: VecDeque::with_capacity(window),
            capacity: window,
            losses_in_window: 0,
            total_losses: 0,
            total: 0,
        }
    }

    /// Clears the sliding window (lifetime totals are kept). Used when a
    /// path's state changes discontinuously — e.g. a recovery notice —
    /// and the windowed outcomes predate the change.
    pub fn reset_window(&mut self) {
        self.window.clear();
        self.losses_in_window = 0;
    }

    /// Records the outcome of one transmission.
    pub fn record(&mut self, lost: bool) {
        if self.window.len() == self.capacity && self.window.pop_front() == Some(true) {
            self.losses_in_window -= 1;
        }
        self.window.push_back(lost);
        if lost {
            self.losses_in_window += 1;
            self.total_losses += 1;
        }
        self.total += 1;
    }

    /// Estimated loss rate over the window. Starts at 0 with no data
    /// (the paper's §VIII-A bootstrap), refined as outcomes arrive.
    pub fn rate(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.losses_in_window as f64 / self.window.len() as f64
        }
    }

    /// Lifetime loss rate (all samples, not just the window).
    pub fn lifetime_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.total_losses as f64 / self.total as f64
        }
    }

    /// Number of outcomes recorded.
    pub fn samples(&self) -> u64 {
        self.total
    }

    /// Number of outcomes currently in the sliding window (≤ capacity;
    /// zero right after [`LossEstimator::reset_window`]). Gate on this —
    /// not on [`LossEstimator::samples`] — when deciding whether
    /// [`LossEstimator::rate`] is trustworthy.
    pub fn window_samples(&self) -> usize {
        self.window.len()
    }
}

/// Windowed achieved-rate estimator (bits per second over the last
/// `window` seconds).
#[derive(Debug, Clone)]
pub struct RateEstimator {
    window: f64,
    events: VecDeque<(f64, u64)>, // (time s, bits)
    bits_in_window: u64,
}

impl RateEstimator {
    /// Creates an estimator over a `window`-second horizon.
    ///
    /// # Panics
    ///
    /// Panics unless `window > 0`.
    pub fn new(window: f64) -> Self {
        assert!(window > 0.0 && window.is_finite());
        RateEstimator {
            window,
            events: VecDeque::new(),
            bits_in_window: 0,
        }
    }

    /// Records `bits` delivered at time `now` (seconds; must be
    /// non-decreasing).
    pub fn record(&mut self, now: f64, bits: u64) {
        self.events.push_back((now, bits));
        self.bits_in_window += bits;
        self.evict(now);
    }

    fn evict(&mut self, now: f64) {
        while let Some(&(t, b)) = self.events.front() {
            if now - t > self.window {
                self.bits_in_window -= b;
                self.events.pop_front();
            } else {
                break;
            }
        }
    }

    /// Achieved rate over the window ending at `now`, bits/second.
    pub fn rate(&mut self, now: f64) -> f64 {
        self.evict(now);
        self.bits_in_window as f64 / self.window
    }
}

/// Everything the sender learns about one path, combined into the
/// estimated characteristics the model consumes.
#[derive(Debug, Clone)]
pub struct PathEstimator {
    /// Configured/externally-provided bandwidth (the paper's stance:
    /// bandwidth comes from congestion control or provisioning, §VIII-A).
    bandwidth: f64,
    /// RTT estimator fed by ack echoes.
    pub rtt: RttEstimator,
    /// Loss estimator fed by timeout/ack outcomes.
    pub loss: LossEstimator,
}

impl PathEstimator {
    /// Creates the estimator with a configured bandwidth.
    pub fn new(bandwidth_bps: f64, loss_window: usize) -> Self {
        PathEstimator {
            bandwidth: bandwidth_bps,
            rtt: RttEstimator::new(),
            loss: LossEstimator::new(loss_window),
        }
    }

    /// Configured bandwidth (bits/second).
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Replaces the configured bandwidth (e.g. from congestion control).
    pub fn set_bandwidth(&mut self, bps: f64) {
        self.bandwidth = bps;
    }

    /// One-way delay estimate given the smallest smoothed RTT among all
    /// paths (`d_i ≈ SRTT_i − SRTT_min/2`, symmetric ack path assumed).
    pub fn one_way_delay(&self, min_srtt: f64) -> Option<f64> {
        self.rtt.srtt().map(|s| (s - min_srtt / 2.0).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtt_first_sample_initializes() {
        let mut e = RttEstimator::new();
        assert_eq!(e.srtt(), None);
        assert_eq!(e.rto(0.01), None);
        e.record(0.2);
        assert_eq!(e.srtt(), Some(0.2));
        assert!((e.rttvar() - 0.1).abs() < 1e-12);
        assert!((e.rto(0.01).unwrap() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn rtt_converges_to_constant() {
        let mut e = RttEstimator::new();
        for _ in 0..200 {
            e.record(0.150);
        }
        assert!((e.srtt().unwrap() - 0.150).abs() < 1e-9);
        assert!(e.rttvar() < 1e-6);
        assert_eq!(e.rto(0.2), Some(0.2), "min_rto floor applies");
        assert_eq!(e.samples(), 200);
    }

    #[test]
    fn rtt_tracks_shift() {
        let mut e = RttEstimator::new();
        for _ in 0..50 {
            e.record(0.1);
        }
        for _ in 0..200 {
            e.record(0.3);
        }
        assert!((e.srtt().unwrap() - 0.3).abs() < 0.01);
    }

    #[test]
    fn loss_window_slides() {
        let mut e = LossEstimator::new(4);
        assert_eq!(e.rate(), 0.0);
        e.record(true);
        e.record(false);
        assert!((e.rate() - 0.5).abs() < 1e-12);
        e.record(false);
        e.record(false);
        assert!((e.rate() - 0.25).abs() < 1e-12);
        e.record(false); // evicts the loss
        assert_eq!(e.rate(), 0.0);
        assert!((e.lifetime_rate() - 0.2).abs() < 1e-12);
        assert_eq!(e.samples(), 5);
    }

    #[test]
    fn rate_estimator_windows() {
        let mut e = RateEstimator::new(1.0);
        for i in 0..10 {
            e.record(i as f64 * 0.1, 1000);
        }
        // 10 kb in the last second.
        assert!((e.rate(0.9) - 10_000.0).abs() < 1.0);
        // 5 events remain in window (1.1, 2.1] → ~5 kb/s... at t=2.0,
        // events at 0.0..0.9 are all older than 1 s except none.
        assert!(e.rate(2.0) < 1.0);
    }

    #[test]
    fn path_estimator_one_way_delay() {
        let mut p = PathEstimator::new(80e6, 100);
        for _ in 0..50 {
            p.rtt.record(0.600); // d_i + d_min = 450 + 150
        }
        // min SRTT across paths = 2·d_min = 300 ms.
        let d = p.one_way_delay(0.300).unwrap();
        assert!((d - 0.450).abs() < 1e-9);
        assert_eq!(p.bandwidth(), 80e6);
        p.set_bandwidth(40e6);
        assert_eq!(p.bandwidth(), 40e6);
    }
}
