//! Wire formats: the data header and the acknowledgment encoding of
//! §VIII-C.
//!
//! The paper's messages are 1024 bytes "including the application-level
//! header … composed of a timestamp and a sequence number" (§VII-A); acks
//! carry (a) the range of packet numbers the receiver is expecting, (b) a
//! bit vector of what was received in a window of consecutive packets,
//! and (c) the packet that was just received, for RTT estimation
//! (§VIII-C's three components).
//!
//! Every frame carries an FNV-1a checksum in its formerly reserved
//! bytes, so a bit-flipped frame decodes to `None` (and is counted as
//! malformed by the receiver) instead of silently parsing into wrong
//! field values. The frame sizes are unchanged.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// FNV-1a (32-bit) over a frame with its checksum field zeroed.
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// FNV-1a folded to 16 bits (for frames with only two spare bytes).
fn fnv1a_16(bytes: &[u8]) -> u16 {
    let c = fnv1a(bytes);
    (c ^ (c >> 16)) as u16
}

/// Magic byte tagging data packets.
const DATA_MAGIC: u8 = 0xD7;
/// Magic byte tagging acknowledgments.
const ACK_MAGIC: u8 = 0xA3;
/// Magic byte tagging path-state notifications.
const NOTICE_MAGIC: u8 = 0x5E;
/// Magic byte tagging fleet-service admission offers.
const OFFER_MAGIC: u8 = 0x0F;
/// Magic byte tagging fleet-service admission decisions.
const DECISION_MAGIC: u8 = 0xDC;
/// Magic byte tagging fleet-service flow departures.
const DEPART_MAGIC: u8 = 0xDD;
/// Magic byte tagging fleet-service link-change commands.
const LINK_MAGIC: u8 = 0x17;

/// Size of the serialized [`DataHeader`] in bytes.
pub const DATA_HEADER_BYTES: usize = 32;

/// Number of sequence numbers covered by the ack bitmap.
pub const ACK_BITMAP_BITS: usize = 128;

/// Application-level header of a data packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataHeader {
    /// Global message sequence number.
    pub seq: u64,
    /// Message creation time (deadline = created + lifetime), ns.
    pub created_ns: u64,
    /// Time this *transmission* left the sender (distinguishes
    /// retransmissions for unambiguous RTT sampling, avoiding Karn's
    /// problem), ns.
    pub sent_ns: u64,
    /// Path index (0-based) this transmission used.
    pub path: u8,
    /// Stage within the path combination (0 = initial transmission).
    pub stage: u8,
}

impl DataHeader {
    /// Serializes to exactly [`DATA_HEADER_BYTES`] bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(DATA_HEADER_BYTES);
        b.put_u8(DATA_MAGIC);
        b.put_u8(self.path);
        b.put_u8(self.stage);
        b.put_u8(0); // reserved
        b.put_u32_le(0); // checksum placeholder
        b.put_u64_le(self.seq);
        b.put_u64_le(self.created_ns);
        b.put_u64_le(self.sent_ns);
        debug_assert_eq!(b.len(), DATA_HEADER_BYTES);
        let sum = fnv1a(&b);
        b[4..8].copy_from_slice(&sum.to_le_bytes());
        b.freeze()
    }

    /// Parses a header; `None` on wrong magic, bad checksum, or
    /// truncation.
    pub fn decode(mut buf: &[u8]) -> Option<Self> {
        if buf.len() < DATA_HEADER_BYTES || buf[0] != DATA_MAGIC {
            return None;
        }
        let mut frame = [0u8; DATA_HEADER_BYTES];
        frame.copy_from_slice(&buf[..DATA_HEADER_BYTES]);
        let stored = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        frame[4..8].fill(0);
        if fnv1a(&frame) != stored {
            return None;
        }
        buf.advance(1);
        let path = buf.get_u8();
        let stage = buf.get_u8();
        buf.advance(1);
        buf.advance(4);
        let seq = buf.get_u64_le();
        let created_ns = buf.get_u64_le();
        let sent_ns = buf.get_u64_le();
        Some(DataHeader {
            seq,
            created_ns,
            sent_ns,
            path,
            stage,
        })
    }
}

/// An acknowledgment (§VIII-C): echo of the packet just received plus a
/// windowed bitmap of recently received sequence numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ack {
    /// (c) The packet that was just received — for RTT estimation.
    pub just_received: u64,
    /// Echo of the acked transmission's `sent_ns`.
    pub echo_sent_ns: u64,
    /// Echo of the path the acked transmission used.
    pub echo_path: u8,
    /// (a)/(b) Start of the bitmap window (lowest covered seq).
    pub window_start: u64,
    /// (b) Bit `i` set ⇔ `window_start + i` was received. Covers
    /// [`ACK_BITMAP_BITS`] sequence numbers.
    pub bitmap: [u8; ACK_BITMAP_BITS / 8],
}

impl Ack {
    /// Serialized size in bytes (fixed).
    pub const WIRE_BYTES: usize = 1 + 1 + 2 + 8 + 8 + 8 + ACK_BITMAP_BITS / 8;

    /// Creates an ack with an empty bitmap.
    pub fn new(just_received: u64, echo_sent_ns: u64, echo_path: u8, window_start: u64) -> Self {
        Ack {
            just_received,
            echo_sent_ns,
            echo_path,
            window_start,
            bitmap: [0; ACK_BITMAP_BITS / 8],
        }
    }

    /// Marks `seq` as received if it falls inside the window.
    pub fn set_received(&mut self, seq: u64) {
        if seq < self.window_start {
            return;
        }
        let off = (seq - self.window_start) as usize;
        if off >= ACK_BITMAP_BITS {
            return;
        }
        self.bitmap[off / 8] |= 1 << (off % 8);
    }

    /// Whether the bitmap marks `seq` as received.
    pub fn is_received(&self, seq: u64) -> bool {
        if seq < self.window_start {
            return false;
        }
        let off = (seq - self.window_start) as usize;
        if off >= ACK_BITMAP_BITS {
            return false;
        }
        self.bitmap[off / 8] & (1 << (off % 8)) != 0
    }

    /// Iterates over every seq the bitmap marks as received.
    pub fn received_seqs(&self) -> impl Iterator<Item = u64> + '_ {
        (0..ACK_BITMAP_BITS as u64).filter_map(move |off| {
            let seq = self.window_start + off;
            self.is_received(seq).then_some(seq)
        })
    }

    /// Serializes to exactly [`Ack::WIRE_BYTES`] bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(Self::WIRE_BYTES);
        b.put_u8(ACK_MAGIC);
        b.put_u8(self.echo_path);
        b.put_u16_le(0); // checksum placeholder
        b.put_u64_le(self.just_received);
        b.put_u64_le(self.echo_sent_ns);
        b.put_u64_le(self.window_start);
        b.put_slice(&self.bitmap);
        debug_assert_eq!(b.len(), Self::WIRE_BYTES);
        let sum = fnv1a_16(&b);
        b[2..4].copy_from_slice(&sum.to_le_bytes());
        b.freeze()
    }

    /// Parses an ack; `None` on wrong magic, bad checksum, or
    /// truncation.
    pub fn decode(mut buf: &[u8]) -> Option<Self> {
        if buf.len() < Self::WIRE_BYTES || buf[0] != ACK_MAGIC {
            return None;
        }
        let mut frame = [0u8; Self::WIRE_BYTES];
        frame.copy_from_slice(&buf[..Self::WIRE_BYTES]);
        let stored = u16::from_le_bytes([frame[2], frame[3]]);
        frame[2..4].fill(0);
        if fnv1a_16(&frame) != stored {
            return None;
        }
        buf.advance(1);
        let echo_path = buf.get_u8();
        buf.advance(2);
        let just_received = buf.get_u64_le();
        let echo_sent_ns = buf.get_u64_le();
        let window_start = buf.get_u64_le();
        let mut bitmap = [0u8; ACK_BITMAP_BITS / 8];
        buf.copy_to_slice(&mut bitmap);
        Some(Ack {
            just_received,
            echo_sent_ns,
            echo_path,
            window_start,
            bitmap,
        })
    }
}

/// What a [`PathNotice`] reports about a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoticeKind {
    /// The path has gone silent (presumed failed).
    Down = 0,
    /// The path is delivering again.
    Up = 1,
}

/// A path-state notification: the receiver observes per-path arrivals
/// directly, so it is the natural detector of a mid-transfer path
/// failure — it reports the outage (and later the recovery) to the
/// sender on a surviving path, letting the sender re-plan immediately
/// instead of waiting for its loss estimators to drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathNotice {
    /// The path (0-based) whose state changed.
    pub path: u8,
    /// Down or up.
    pub kind: NoticeKind,
    /// Per-path notice sequence number (wrapping). Consumers use it,
    /// together with `at_ns`, to drop duplicated and stale-reordered
    /// notices instead of re-triggering outage handling.
    pub seq: u8,
    /// Receiver-side time of the determination, ns.
    pub at_ns: u64,
}

impl PathNotice {
    /// Serialized size in bytes (fixed).
    pub const WIRE_BYTES: usize = 1 + 1 + 1 + 1 + 4 + 8;

    /// Serializes to exactly [`PathNotice::WIRE_BYTES`] bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(Self::WIRE_BYTES);
        b.put_u8(NOTICE_MAGIC);
        b.put_u8(self.path);
        b.put_u8(self.kind as u8);
        b.put_u8(self.seq);
        b.put_u32_le(0); // checksum placeholder
        b.put_u64_le(self.at_ns);
        debug_assert_eq!(b.len(), Self::WIRE_BYTES);
        let sum = fnv1a(&b);
        b[4..8].copy_from_slice(&sum.to_le_bytes());
        b.freeze()
    }

    /// Parses a notice; `None` on wrong magic, unknown kind, bad
    /// checksum, or truncation.
    pub fn decode(mut buf: &[u8]) -> Option<Self> {
        if buf.len() < Self::WIRE_BYTES || buf[0] != NOTICE_MAGIC {
            return None;
        }
        let mut frame = [0u8; Self::WIRE_BYTES];
        frame.copy_from_slice(&buf[..Self::WIRE_BYTES]);
        let stored = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        frame[4..8].fill(0);
        if fnv1a(&frame) != stored {
            return None;
        }
        buf.advance(1);
        let path = buf.get_u8();
        let kind = match buf.get_u8() {
            0 => NoticeKind::Down,
            1 => NoticeKind::Up,
            _ => return None,
        };
        let seq = buf.get_u8();
        buf.advance(4);
        let at_ns = buf.get_u64_le();
        Some(PathNotice {
            path,
            kind,
            seq,
            at_ns,
        })
    }
}

/// Maximum shared-path index addressable by [`OfferFrame`]'s path mask.
pub const OFFER_PATH_BITS: usize = 128;

/// A tenant's admission request on the fleet-service control plane:
/// rate, deadline, quality floor, spend cap and priority, plus a 128-bit
/// mask of the shared paths the flow may use (all-zero = every path).
///
/// The `f64` fields travel as raw IEEE-754 bits, so a round trip is
/// bitwise — the service validates semantics (finite, positive, floor in
/// `[0, 1]`) on receipt and answers an invalid offer with a
/// [`Verdict::Invalid`] decision rather than dropping the frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OfferFrame {
    /// Client-chosen request tag, echoed by the matching
    /// [`DecisionFrame`].
    pub seq: u64,
    /// Application data rate λ, bits/second.
    pub data_rate: f64,
    /// Data lifetime δ, seconds.
    pub lifetime: f64,
    /// Required in-time delivery fraction (0 = best effort).
    pub min_quality: f64,
    /// Cost budget per second (+∞ = unconstrained).
    pub cost_budget: f64,
    /// Priority weight.
    pub priority: f64,
    /// Transmissions per data unit.
    pub transmissions: u8,
    /// Bit `k` (low word first) set ⇔ shared path `k` is usable;
    /// all-zero means every shared path.
    pub path_mask: [u64; 2],
}

impl OfferFrame {
    /// Serialized size in bytes (fixed).
    pub const WIRE_BYTES: usize = 1 + 1 + 2 + 8 + 5 * 8 + 16;

    /// The mask naming exactly `paths` (0-based indices); `None` if an
    /// index exceeds [`OFFER_PATH_BITS`].
    pub fn mask_for(paths: &[usize]) -> Option<[u64; 2]> {
        let mut mask = [0u64; 2];
        for &k in paths {
            if k >= OFFER_PATH_BITS {
                return None;
            }
            mask[k / 64] |= 1u64 << (k % 64);
        }
        Some(mask)
    }

    /// The path subset the mask names (sorted), or `None` for an
    /// all-zero mask (every shared path).
    pub fn path_subset(&self) -> Option<Vec<usize>> {
        if self.path_mask == [0, 0] {
            return None;
        }
        let mut paths = Vec::new();
        for k in 0..OFFER_PATH_BITS {
            if self.path_mask[k / 64] & (1u64 << (k % 64)) != 0 {
                paths.push(k);
            }
        }
        Some(paths)
    }

    /// Serializes to exactly [`OfferFrame::WIRE_BYTES`] bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(Self::WIRE_BYTES);
        b.put_u8(OFFER_MAGIC);
        b.put_u8(self.transmissions);
        b.put_u16_le(0); // checksum placeholder
        b.put_u64_le(self.seq);
        b.put_u64_le(self.data_rate.to_bits());
        b.put_u64_le(self.lifetime.to_bits());
        b.put_u64_le(self.min_quality.to_bits());
        b.put_u64_le(self.cost_budget.to_bits());
        b.put_u64_le(self.priority.to_bits());
        b.put_u64_le(self.path_mask[0]);
        b.put_u64_le(self.path_mask[1]);
        debug_assert_eq!(b.len(), Self::WIRE_BYTES);
        let sum = fnv1a_16(&b);
        b[2..4].copy_from_slice(&sum.to_le_bytes());
        b.freeze()
    }

    /// Parses an offer; `None` on wrong magic, bad checksum, or
    /// truncation.
    pub fn decode(mut buf: &[u8]) -> Option<Self> {
        if buf.len() < Self::WIRE_BYTES || buf[0] != OFFER_MAGIC {
            return None;
        }
        let mut frame = [0u8; Self::WIRE_BYTES];
        frame.copy_from_slice(&buf[..Self::WIRE_BYTES]);
        let stored = u16::from_le_bytes([frame[2], frame[3]]);
        frame[2..4].fill(0);
        if fnv1a_16(&frame) != stored {
            return None;
        }
        buf.advance(1);
        let transmissions = buf.get_u8();
        buf.advance(2);
        let seq = buf.get_u64_le();
        let data_rate = f64::from_bits(buf.get_u64_le());
        let lifetime = f64::from_bits(buf.get_u64_le());
        let min_quality = f64::from_bits(buf.get_u64_le());
        let cost_budget = f64::from_bits(buf.get_u64_le());
        let priority = f64::from_bits(buf.get_u64_le());
        let path_mask = [buf.get_u64_le(), buf.get_u64_le()];
        Some(OfferFrame {
            seq,
            data_rate,
            lifetime,
            min_quality,
            cost_budget,
            priority,
            transmissions,
            path_mask,
        })
    }
}

/// Outcome carried by a [`DecisionFrame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The joint LP with this flow's floor is infeasible.
    Rejected = 0,
    /// The flow is in; `predicted_quality` is its in-time fraction.
    Admitted = 1,
    /// The offer's parameters were malformed (non-finite rate, floor
    /// outside `[0, 1]`, zero transmissions, out-of-range path mask…).
    Invalid = 2,
}

/// The service's answer to an [`OfferFrame`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionFrame {
    /// Echo of the offer's client-chosen tag.
    pub seq: u64,
    /// The service-assigned flow id (offer-ordered; every offer consumes
    /// one, rejected and invalid offers included). [`DepartFrame`]s name
    /// flows by this id.
    pub flow: u64,
    /// Admitted / rejected / invalid.
    pub verdict: Verdict,
    /// Predicted in-time delivery fraction (0 unless admitted; for a
    /// flow spanning capacity regions, the rate-weighted mean over its
    /// legs).
    pub predicted_quality: f64,
}

impl DecisionFrame {
    /// Serialized size in bytes (fixed).
    pub const WIRE_BYTES: usize = 1 + 1 + 2 + 8 + 8 + 8;

    /// Serializes to exactly [`DecisionFrame::WIRE_BYTES`] bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(Self::WIRE_BYTES);
        b.put_u8(DECISION_MAGIC);
        b.put_u8(self.verdict as u8);
        b.put_u16_le(0); // checksum placeholder
        b.put_u64_le(self.seq);
        b.put_u64_le(self.flow);
        b.put_u64_le(self.predicted_quality.to_bits());
        debug_assert_eq!(b.len(), Self::WIRE_BYTES);
        let sum = fnv1a_16(&b);
        b[2..4].copy_from_slice(&sum.to_le_bytes());
        b.freeze()
    }

    /// Parses a decision; `None` on wrong magic, unknown verdict, bad
    /// checksum, or truncation.
    pub fn decode(mut buf: &[u8]) -> Option<Self> {
        if buf.len() < Self::WIRE_BYTES || buf[0] != DECISION_MAGIC {
            return None;
        }
        let mut frame = [0u8; Self::WIRE_BYTES];
        frame.copy_from_slice(&buf[..Self::WIRE_BYTES]);
        let stored = u16::from_le_bytes([frame[2], frame[3]]);
        frame[2..4].fill(0);
        if fnv1a_16(&frame) != stored {
            return None;
        }
        buf.advance(1);
        let verdict = match buf.get_u8() {
            0 => Verdict::Rejected,
            1 => Verdict::Admitted,
            2 => Verdict::Invalid,
            _ => return None,
        };
        buf.advance(2);
        let seq = buf.get_u64_le();
        let flow = buf.get_u64_le();
        let predicted_quality = f64::from_bits(buf.get_u64_le());
        Some(DecisionFrame {
            seq,
            flow,
            verdict,
            predicted_quality,
        })
    }
}

/// A tenant withdraws a flow (admitted or waiting in a re-admission
/// queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepartFrame {
    /// Client-chosen request tag.
    pub seq: u64,
    /// The service-assigned flow id (from the admission
    /// [`DecisionFrame`]).
    pub flow: u64,
}

impl DepartFrame {
    /// Serialized size in bytes (fixed).
    pub const WIRE_BYTES: usize = 1 + 1 + 2 + 8 + 8;

    /// Serializes to exactly [`DepartFrame::WIRE_BYTES`] bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(Self::WIRE_BYTES);
        b.put_u8(DEPART_MAGIC);
        b.put_u8(0); // reserved
        b.put_u16_le(0); // checksum placeholder
        b.put_u64_le(self.seq);
        b.put_u64_le(self.flow);
        debug_assert_eq!(b.len(), Self::WIRE_BYTES);
        let sum = fnv1a_16(&b);
        b[2..4].copy_from_slice(&sum.to_le_bytes());
        b.freeze()
    }

    /// Parses a departure; `None` on wrong magic, bad checksum, or
    /// truncation.
    pub fn decode(mut buf: &[u8]) -> Option<Self> {
        if buf.len() < Self::WIRE_BYTES || buf[0] != DEPART_MAGIC {
            return None;
        }
        let mut frame = [0u8; Self::WIRE_BYTES];
        frame.copy_from_slice(&buf[..Self::WIRE_BYTES]);
        let stored = u16::from_le_bytes([frame[2], frame[3]]);
        frame[2..4].fill(0);
        if fnv1a_16(&frame) != stored {
            return None;
        }
        buf.advance(1);
        buf.advance(1);
        buf.advance(2);
        let seq = buf.get_u64_le();
        let flow = buf.get_u64_le();
        Some(DepartFrame { seq, flow })
    }
}

/// A link-state command on the fleet-service control plane, mirroring
/// [`dmc_sim::LinkChange`]. Loss travels as a stationary Bernoulli rate
/// (the joint LP plans against stationary loss either way).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkChangeFrame {
    /// Client-chosen request tag.
    pub seq: u64,
    /// The shared path (0-based) the change applies to.
    pub path: u16,
    /// Fail / recover / set-bandwidth / set-loss.
    pub kind: LinkChangeKind,
    /// Bandwidth in bits/second for [`LinkChangeKind::SetBandwidth`],
    /// loss probability for [`LinkChangeKind::SetLoss`], ignored (encode
    /// as 0) otherwise.
    pub value: f64,
}

/// Discriminant of a [`LinkChangeFrame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkChangeKind {
    /// The path is down.
    Fail = 0,
    /// The path is back.
    Recover = 1,
    /// New bandwidth (bits/second) in `value`.
    SetBandwidth = 2,
    /// New Bernoulli loss probability in `value`.
    SetLoss = 3,
}

impl LinkChangeFrame {
    /// Serialized size in bytes (fixed).
    pub const WIRE_BYTES: usize = 1 + 1 + 2 + 4 + 8 + 8;

    /// The frame encoding `change` for `path`. Gilbert–Elliott loss
    /// models travel as their stationary rate — exactly what the joint
    /// LP plans against.
    pub fn from_change(seq: u64, path: u16, change: &dmc_sim::LinkChange) -> Self {
        let (kind, value) = match change {
            dmc_sim::LinkChange::Fail => (LinkChangeKind::Fail, 0.0),
            dmc_sim::LinkChange::Recover => (LinkChangeKind::Recover, 0.0),
            dmc_sim::LinkChange::SetBandwidth(bps) => (LinkChangeKind::SetBandwidth, *bps),
            dmc_sim::LinkChange::SetLoss(model) => {
                (LinkChangeKind::SetLoss, model.stationary_loss())
            }
        };
        LinkChangeFrame {
            seq,
            path,
            kind,
            value,
        }
    }

    /// The [`dmc_sim::LinkChange`] this frame encodes.
    pub fn change(&self) -> dmc_sim::LinkChange {
        match self.kind {
            LinkChangeKind::Fail => dmc_sim::LinkChange::Fail,
            LinkChangeKind::Recover => dmc_sim::LinkChange::Recover,
            LinkChangeKind::SetBandwidth => dmc_sim::LinkChange::SetBandwidth(self.value),
            LinkChangeKind::SetLoss => {
                dmc_sim::LinkChange::SetLoss(dmc_sim::LossModel::Bernoulli(self.value))
            }
        }
    }

    /// Serializes to exactly [`LinkChangeFrame::WIRE_BYTES`] bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(Self::WIRE_BYTES);
        b.put_u8(LINK_MAGIC);
        b.put_u8(self.kind as u8);
        b.put_u16_le(self.path);
        b.put_u32_le(0); // checksum placeholder
        b.put_u64_le(self.seq);
        b.put_u64_le(self.value.to_bits());
        debug_assert_eq!(b.len(), Self::WIRE_BYTES);
        let sum = fnv1a(&b);
        b[4..8].copy_from_slice(&sum.to_le_bytes());
        b.freeze()
    }

    /// Parses a link change; `None` on wrong magic, unknown kind, bad
    /// checksum, or truncation.
    pub fn decode(mut buf: &[u8]) -> Option<Self> {
        if buf.len() < Self::WIRE_BYTES || buf[0] != LINK_MAGIC {
            return None;
        }
        let mut frame = [0u8; Self::WIRE_BYTES];
        frame.copy_from_slice(&buf[..Self::WIRE_BYTES]);
        let stored = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        frame[4..8].fill(0);
        if fnv1a(&frame) != stored {
            return None;
        }
        buf.advance(1);
        let kind = match buf.get_u8() {
            0 => LinkChangeKind::Fail,
            1 => LinkChangeKind::Recover,
            2 => LinkChangeKind::SetBandwidth,
            3 => LinkChangeKind::SetLoss,
            _ => return None,
        };
        let path = buf.get_u16_le();
        buf.advance(4);
        let seq = buf.get_u64_le();
        let value = f64::from_bits(buf.get_u64_le());
        Some(LinkChangeFrame {
            seq,
            path,
            kind,
            value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_notice_round_trip() {
        for kind in [NoticeKind::Down, NoticeKind::Up] {
            let n = PathNotice {
                path: 3,
                kind,
                seq: 42,
                at_ns: 123_456_789,
            };
            let wire = n.encode();
            assert_eq!(wire.len(), PathNotice::WIRE_BYTES);
            assert_eq!(PathNotice::decode(&wire), Some(n));
        }
    }

    #[test]
    fn path_notice_rejects_garbage() {
        assert_eq!(PathNotice::decode(&[]), None);
        assert_eq!(PathNotice::decode(&[0xFF; 16]), None);
        let n = PathNotice {
            path: 0,
            kind: NoticeKind::Down,
            seq: 0,
            at_ns: 1,
        };
        let wire = n.encode();
        assert_eq!(
            PathNotice::decode(&wire[..PathNotice::WIRE_BYTES - 1]),
            None
        );
        let mut bad_kind = wire.to_vec();
        bad_kind[2] = 7;
        assert_eq!(PathNotice::decode(&bad_kind), None);
        // The three magics are distinct, so frames cannot be confused.
        assert_eq!(Ack::decode(&wire), None);
        assert_eq!(DataHeader::decode(&wire), None);
    }

    #[test]
    fn checksums_reject_any_single_bit_flip() {
        // Magic-only parsing used to accept bit-flipped payload bytes as
        // valid frames; every frame type must now reject them.
        let notice = PathNotice {
            path: 2,
            kind: NoticeKind::Up,
            seq: 9,
            at_ns: 55_555,
        }
        .encode();
        let header = DataHeader {
            seq: 7,
            created_ns: 8,
            sent_ns: 9,
            path: 1,
            stage: 2,
        }
        .encode();
        let mut ack = Ack::new(500, 42_000, 1, 400);
        ack.set_received(405);
        let ack = ack.encode();
        let offer = sample_offer().encode();
        let decision = sample_decision().encode();
        let depart = DepartFrame { seq: 4, flow: 17 }.encode();
        let link = sample_link().encode();
        for (name, wire) in [
            ("notice", &notice),
            ("header", &header),
            ("ack", &ack),
            ("offer", &offer),
            ("decision", &decision),
            ("depart", &depart),
            ("link", &link),
        ] {
            for byte in 0..wire.len() {
                for bit in 0..8 {
                    let mut bad = wire.to_vec();
                    bad[byte] ^= 1u8 << bit;
                    let survives = match name {
                        "notice" => PathNotice::decode(&bad).is_some(),
                        "header" => DataHeader::decode(&bad).is_some(),
                        "offer" => OfferFrame::decode(&bad).is_some(),
                        "decision" => DecisionFrame::decode(&bad).is_some(),
                        "depart" => DepartFrame::decode(&bad).is_some(),
                        "link" => LinkChangeFrame::decode(&bad).is_some(),
                        _ => Ack::decode(&bad).is_some(),
                    };
                    assert!(!survives, "{name}: flip of byte {byte} bit {bit} accepted");
                }
            }
        }
    }

    fn sample_offer() -> OfferFrame {
        OfferFrame {
            seq: 42,
            data_rate: 20e6,
            lifetime: 0.6,
            min_quality: 0.95,
            cost_budget: f64::INFINITY,
            priority: 4.0,
            transmissions: 2,
            path_mask: OfferFrame::mask_for(&[0, 3, 127]).unwrap(),
        }
    }

    fn sample_decision() -> DecisionFrame {
        DecisionFrame {
            seq: 42,
            flow: 7,
            verdict: Verdict::Admitted,
            predicted_quality: 0.9875,
        }
    }

    fn sample_link() -> LinkChangeFrame {
        LinkChangeFrame {
            seq: 3,
            path: 513,
            kind: LinkChangeKind::SetBandwidth,
            value: 55e6,
        }
    }

    #[test]
    fn fleet_service_frames_round_trip() {
        let offer = sample_offer();
        let wire = offer.encode();
        assert_eq!(wire.len(), OfferFrame::WIRE_BYTES);
        assert_eq!(OfferFrame::decode(&wire), Some(offer));
        assert_eq!(offer.path_subset(), Some(vec![0, 3, 127]));

        for verdict in [Verdict::Rejected, Verdict::Admitted, Verdict::Invalid] {
            let d = DecisionFrame {
                verdict,
                ..sample_decision()
            };
            let wire = d.encode();
            assert_eq!(wire.len(), DecisionFrame::WIRE_BYTES);
            assert_eq!(DecisionFrame::decode(&wire), Some(d));
        }

        let depart = DepartFrame { seq: 9, flow: 123 };
        let wire = depart.encode();
        assert_eq!(wire.len(), DepartFrame::WIRE_BYTES);
        assert_eq!(DepartFrame::decode(&wire), Some(depart));

        for kind in [
            LinkChangeKind::Fail,
            LinkChangeKind::Recover,
            LinkChangeKind::SetBandwidth,
            LinkChangeKind::SetLoss,
        ] {
            let l = LinkChangeFrame {
                kind,
                ..sample_link()
            };
            let wire = l.encode();
            assert_eq!(wire.len(), LinkChangeFrame::WIRE_BYTES);
            assert_eq!(LinkChangeFrame::decode(&wire), Some(l));
        }
    }

    #[test]
    fn offer_masks_cover_128_paths_and_all_zero_means_every_path() {
        assert_eq!(OfferFrame::mask_for(&[]), Some([0, 0]));
        assert_eq!(OfferFrame::mask_for(&[128]), None);
        let all_paths = OfferFrame {
            path_mask: [0, 0],
            ..sample_offer()
        };
        assert_eq!(all_paths.path_subset(), None);
        let mask = OfferFrame::mask_for(&[0, 63, 64, 127]).unwrap();
        let subset = OfferFrame {
            path_mask: mask,
            ..sample_offer()
        };
        assert_eq!(subset.path_subset(), Some(vec![0, 63, 64, 127]));
    }

    #[test]
    fn link_change_frames_mirror_sim_link_changes() {
        use dmc_sim::LinkChange;
        let cases = [
            LinkChange::Fail,
            LinkChange::Recover,
            LinkChange::SetBandwidth(40e6),
            LinkChange::SetLoss(dmc_sim::LossModel::Bernoulli(0.125)),
        ];
        for change in &cases {
            let frame = LinkChangeFrame::from_change(5, 2, change);
            let back = LinkChangeFrame::decode(&frame.encode()).unwrap().change();
            match (change, &back) {
                (LinkChange::SetLoss(a), LinkChange::SetLoss(b)) => {
                    assert_eq!(a.stationary_loss().to_bits(), b.stationary_loss().to_bits());
                }
                _ => assert_eq!(format!("{change:?}"), format!("{back:?}")),
            }
        }
        // A Gilbert–Elliott model travels as its stationary rate.
        let ge = dmc_sim::GilbertElliott::classic(0.2, 0.2).unwrap();
        let frame = LinkChangeFrame::from_change(0, 0, &LinkChange::SetLoss(ge.into()));
        assert_eq!(frame.kind, LinkChangeKind::SetLoss);
        assert!((frame.value - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fleet_service_frames_reject_garbage_and_cross_magics() {
        assert_eq!(OfferFrame::decode(&[]), None);
        assert_eq!(DecisionFrame::decode(&[0xFF; 64]), None);
        let offer = sample_offer().encode();
        assert_eq!(
            OfferFrame::decode(&offer[..OfferFrame::WIRE_BYTES - 1]),
            None
        );
        let mut bad_verdict = sample_decision().encode().to_vec();
        bad_verdict[1] = 9;
        assert_eq!(DecisionFrame::decode(&bad_verdict), None);
        let mut bad_kind = sample_link().encode().to_vec();
        bad_kind[1] = 9;
        assert_eq!(LinkChangeFrame::decode(&bad_kind), None);
        // The magics stay distinct across the whole frame family.
        assert_eq!(DecisionFrame::decode(&offer), None);
        assert_eq!(DepartFrame::decode(&offer), None);
        assert_eq!(Ack::decode(&offer), None);
        assert_eq!(DataHeader::decode(&offer), None);
    }

    #[test]
    fn data_header_round_trip() {
        let h = DataHeader {
            seq: 123_456,
            created_ns: 987_654_321,
            sent_ns: 1_000_000_007,
            path: 3,
            stage: 1,
        };
        let wire = h.encode();
        assert_eq!(wire.len(), DATA_HEADER_BYTES);
        assert_eq!(DataHeader::decode(&wire), Some(h));
    }

    #[test]
    fn data_header_rejects_garbage() {
        assert_eq!(DataHeader::decode(&[]), None);
        assert_eq!(DataHeader::decode(&[0xFF; 32]), None);
        let h = DataHeader {
            seq: 1,
            created_ns: 2,
            sent_ns: 3,
            path: 0,
            stage: 0,
        };
        let wire = h.encode();
        assert_eq!(DataHeader::decode(&wire[..31]), None); // truncated
    }

    #[test]
    fn ack_round_trip_with_bitmap() {
        let mut a = Ack::new(500, 42_000, 1, 400);
        for seq in [400, 401, 405, 500, 527] {
            a.set_received(seq);
        }
        let wire = a.encode();
        assert_eq!(wire.len(), Ack::WIRE_BYTES);
        let back = Ack::decode(&wire).unwrap();
        assert_eq!(back, a);
        assert!(back.is_received(400));
        assert!(back.is_received(527));
        assert!(!back.is_received(402));
        assert_eq!(
            back.received_seqs().collect::<Vec<_>>(),
            vec![400, 401, 405, 500, 527]
        );
    }

    #[test]
    fn ack_window_bounds() {
        let mut a = Ack::new(10, 0, 0, 100);
        a.set_received(99); // below window: ignored
        a.set_received(100 + ACK_BITMAP_BITS as u64); // beyond: ignored
        assert_eq!(a.received_seqs().count(), 0);
        assert!(!a.is_received(99));
        a.set_received(100);
        a.set_received(100 + ACK_BITMAP_BITS as u64 - 1);
        assert_eq!(a.received_seqs().count(), 2);
    }

    #[test]
    fn ack_stays_small() {
        // §VIII-C: acks must be cheap; ~40 B covers 128 packets. Measure
        // the actual encoding so the bound tracks the real wire format.
        let encoded = Ack::new(1, 2, 3, 4).encode();
        assert_eq!(encoded.len(), Ack::WIRE_BYTES);
        assert!(encoded.len() <= 48, "ack is {} bytes", encoded.len());
    }

    #[test]
    fn ack_rejects_garbage() {
        assert_eq!(Ack::decode(&[0u8; 4]), None);
        let a = Ack::new(1, 2, 0, 0);
        let wire = a.encode();
        assert_eq!(Ack::decode(&wire[..Ack::WIRE_BYTES - 1]), None);
        let mut bad = wire.to_vec();
        bad[0] = DATA_MAGIC;
        assert_eq!(Ack::decode(&bad), None);
    }
}
