//! Wire formats: the data header and the acknowledgment encoding of
//! §VIII-C.
//!
//! The paper's messages are 1024 bytes "including the application-level
//! header … composed of a timestamp and a sequence number" (§VII-A); acks
//! carry (a) the range of packet numbers the receiver is expecting, (b) a
//! bit vector of what was received in a window of consecutive packets,
//! and (c) the packet that was just received, for RTT estimation
//! (§VIII-C's three components).
//!
//! Every frame carries an FNV-1a checksum in its formerly reserved
//! bytes, so a bit-flipped frame decodes to `None` (and is counted as
//! malformed by the receiver) instead of silently parsing into wrong
//! field values. The frame sizes are unchanged.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// FNV-1a (32-bit) over a frame with its checksum field zeroed.
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// FNV-1a folded to 16 bits (for frames with only two spare bytes).
fn fnv1a_16(bytes: &[u8]) -> u16 {
    let c = fnv1a(bytes);
    (c ^ (c >> 16)) as u16
}

/// Magic byte tagging data packets.
const DATA_MAGIC: u8 = 0xD7;
/// Magic byte tagging acknowledgments.
const ACK_MAGIC: u8 = 0xA3;
/// Magic byte tagging path-state notifications.
const NOTICE_MAGIC: u8 = 0x5E;

/// Size of the serialized [`DataHeader`] in bytes.
pub const DATA_HEADER_BYTES: usize = 32;

/// Number of sequence numbers covered by the ack bitmap.
pub const ACK_BITMAP_BITS: usize = 128;

/// Application-level header of a data packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataHeader {
    /// Global message sequence number.
    pub seq: u64,
    /// Message creation time (deadline = created + lifetime), ns.
    pub created_ns: u64,
    /// Time this *transmission* left the sender (distinguishes
    /// retransmissions for unambiguous RTT sampling, avoiding Karn's
    /// problem), ns.
    pub sent_ns: u64,
    /// Path index (0-based) this transmission used.
    pub path: u8,
    /// Stage within the path combination (0 = initial transmission).
    pub stage: u8,
}

impl DataHeader {
    /// Serializes to exactly [`DATA_HEADER_BYTES`] bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(DATA_HEADER_BYTES);
        b.put_u8(DATA_MAGIC);
        b.put_u8(self.path);
        b.put_u8(self.stage);
        b.put_u8(0); // reserved
        b.put_u32_le(0); // checksum placeholder
        b.put_u64_le(self.seq);
        b.put_u64_le(self.created_ns);
        b.put_u64_le(self.sent_ns);
        debug_assert_eq!(b.len(), DATA_HEADER_BYTES);
        let sum = fnv1a(&b);
        b[4..8].copy_from_slice(&sum.to_le_bytes());
        b.freeze()
    }

    /// Parses a header; `None` on wrong magic, bad checksum, or
    /// truncation.
    pub fn decode(mut buf: &[u8]) -> Option<Self> {
        if buf.len() < DATA_HEADER_BYTES || buf[0] != DATA_MAGIC {
            return None;
        }
        let mut frame = [0u8; DATA_HEADER_BYTES];
        frame.copy_from_slice(&buf[..DATA_HEADER_BYTES]);
        let stored = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        frame[4..8].fill(0);
        if fnv1a(&frame) != stored {
            return None;
        }
        buf.advance(1);
        let path = buf.get_u8();
        let stage = buf.get_u8();
        buf.advance(1);
        buf.advance(4);
        let seq = buf.get_u64_le();
        let created_ns = buf.get_u64_le();
        let sent_ns = buf.get_u64_le();
        Some(DataHeader {
            seq,
            created_ns,
            sent_ns,
            path,
            stage,
        })
    }
}

/// An acknowledgment (§VIII-C): echo of the packet just received plus a
/// windowed bitmap of recently received sequence numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ack {
    /// (c) The packet that was just received — for RTT estimation.
    pub just_received: u64,
    /// Echo of the acked transmission's `sent_ns`.
    pub echo_sent_ns: u64,
    /// Echo of the path the acked transmission used.
    pub echo_path: u8,
    /// (a)/(b) Start of the bitmap window (lowest covered seq).
    pub window_start: u64,
    /// (b) Bit `i` set ⇔ `window_start + i` was received. Covers
    /// [`ACK_BITMAP_BITS`] sequence numbers.
    pub bitmap: [u8; ACK_BITMAP_BITS / 8],
}

impl Ack {
    /// Serialized size in bytes (fixed).
    pub const WIRE_BYTES: usize = 1 + 1 + 2 + 8 + 8 + 8 + ACK_BITMAP_BITS / 8;

    /// Creates an ack with an empty bitmap.
    pub fn new(just_received: u64, echo_sent_ns: u64, echo_path: u8, window_start: u64) -> Self {
        Ack {
            just_received,
            echo_sent_ns,
            echo_path,
            window_start,
            bitmap: [0; ACK_BITMAP_BITS / 8],
        }
    }

    /// Marks `seq` as received if it falls inside the window.
    pub fn set_received(&mut self, seq: u64) {
        if seq < self.window_start {
            return;
        }
        let off = (seq - self.window_start) as usize;
        if off >= ACK_BITMAP_BITS {
            return;
        }
        self.bitmap[off / 8] |= 1 << (off % 8);
    }

    /// Whether the bitmap marks `seq` as received.
    pub fn is_received(&self, seq: u64) -> bool {
        if seq < self.window_start {
            return false;
        }
        let off = (seq - self.window_start) as usize;
        if off >= ACK_BITMAP_BITS {
            return false;
        }
        self.bitmap[off / 8] & (1 << (off % 8)) != 0
    }

    /// Iterates over every seq the bitmap marks as received.
    pub fn received_seqs(&self) -> impl Iterator<Item = u64> + '_ {
        (0..ACK_BITMAP_BITS as u64).filter_map(move |off| {
            let seq = self.window_start + off;
            self.is_received(seq).then_some(seq)
        })
    }

    /// Serializes to exactly [`Ack::WIRE_BYTES`] bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(Self::WIRE_BYTES);
        b.put_u8(ACK_MAGIC);
        b.put_u8(self.echo_path);
        b.put_u16_le(0); // checksum placeholder
        b.put_u64_le(self.just_received);
        b.put_u64_le(self.echo_sent_ns);
        b.put_u64_le(self.window_start);
        b.put_slice(&self.bitmap);
        debug_assert_eq!(b.len(), Self::WIRE_BYTES);
        let sum = fnv1a_16(&b);
        b[2..4].copy_from_slice(&sum.to_le_bytes());
        b.freeze()
    }

    /// Parses an ack; `None` on wrong magic, bad checksum, or
    /// truncation.
    pub fn decode(mut buf: &[u8]) -> Option<Self> {
        if buf.len() < Self::WIRE_BYTES || buf[0] != ACK_MAGIC {
            return None;
        }
        let mut frame = [0u8; Self::WIRE_BYTES];
        frame.copy_from_slice(&buf[..Self::WIRE_BYTES]);
        let stored = u16::from_le_bytes([frame[2], frame[3]]);
        frame[2..4].fill(0);
        if fnv1a_16(&frame) != stored {
            return None;
        }
        buf.advance(1);
        let echo_path = buf.get_u8();
        buf.advance(2);
        let just_received = buf.get_u64_le();
        let echo_sent_ns = buf.get_u64_le();
        let window_start = buf.get_u64_le();
        let mut bitmap = [0u8; ACK_BITMAP_BITS / 8];
        buf.copy_to_slice(&mut bitmap);
        Some(Ack {
            just_received,
            echo_sent_ns,
            echo_path,
            window_start,
            bitmap,
        })
    }
}

/// What a [`PathNotice`] reports about a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoticeKind {
    /// The path has gone silent (presumed failed).
    Down = 0,
    /// The path is delivering again.
    Up = 1,
}

/// A path-state notification: the receiver observes per-path arrivals
/// directly, so it is the natural detector of a mid-transfer path
/// failure — it reports the outage (and later the recovery) to the
/// sender on a surviving path, letting the sender re-plan immediately
/// instead of waiting for its loss estimators to drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathNotice {
    /// The path (0-based) whose state changed.
    pub path: u8,
    /// Down or up.
    pub kind: NoticeKind,
    /// Per-path notice sequence number (wrapping). Consumers use it,
    /// together with `at_ns`, to drop duplicated and stale-reordered
    /// notices instead of re-triggering outage handling.
    pub seq: u8,
    /// Receiver-side time of the determination, ns.
    pub at_ns: u64,
}

impl PathNotice {
    /// Serialized size in bytes (fixed).
    pub const WIRE_BYTES: usize = 1 + 1 + 1 + 1 + 4 + 8;

    /// Serializes to exactly [`PathNotice::WIRE_BYTES`] bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(Self::WIRE_BYTES);
        b.put_u8(NOTICE_MAGIC);
        b.put_u8(self.path);
        b.put_u8(self.kind as u8);
        b.put_u8(self.seq);
        b.put_u32_le(0); // checksum placeholder
        b.put_u64_le(self.at_ns);
        debug_assert_eq!(b.len(), Self::WIRE_BYTES);
        let sum = fnv1a(&b);
        b[4..8].copy_from_slice(&sum.to_le_bytes());
        b.freeze()
    }

    /// Parses a notice; `None` on wrong magic, unknown kind, bad
    /// checksum, or truncation.
    pub fn decode(mut buf: &[u8]) -> Option<Self> {
        if buf.len() < Self::WIRE_BYTES || buf[0] != NOTICE_MAGIC {
            return None;
        }
        let mut frame = [0u8; Self::WIRE_BYTES];
        frame.copy_from_slice(&buf[..Self::WIRE_BYTES]);
        let stored = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        frame[4..8].fill(0);
        if fnv1a(&frame) != stored {
            return None;
        }
        buf.advance(1);
        let path = buf.get_u8();
        let kind = match buf.get_u8() {
            0 => NoticeKind::Down,
            1 => NoticeKind::Up,
            _ => return None,
        };
        let seq = buf.get_u8();
        buf.advance(4);
        let at_ns = buf.get_u64_le();
        Some(PathNotice {
            path,
            kind,
            seq,
            at_ns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_notice_round_trip() {
        for kind in [NoticeKind::Down, NoticeKind::Up] {
            let n = PathNotice {
                path: 3,
                kind,
                seq: 42,
                at_ns: 123_456_789,
            };
            let wire = n.encode();
            assert_eq!(wire.len(), PathNotice::WIRE_BYTES);
            assert_eq!(PathNotice::decode(&wire), Some(n));
        }
    }

    #[test]
    fn path_notice_rejects_garbage() {
        assert_eq!(PathNotice::decode(&[]), None);
        assert_eq!(PathNotice::decode(&[0xFF; 16]), None);
        let n = PathNotice {
            path: 0,
            kind: NoticeKind::Down,
            seq: 0,
            at_ns: 1,
        };
        let wire = n.encode();
        assert_eq!(
            PathNotice::decode(&wire[..PathNotice::WIRE_BYTES - 1]),
            None
        );
        let mut bad_kind = wire.to_vec();
        bad_kind[2] = 7;
        assert_eq!(PathNotice::decode(&bad_kind), None);
        // The three magics are distinct, so frames cannot be confused.
        assert_eq!(Ack::decode(&wire), None);
        assert_eq!(DataHeader::decode(&wire), None);
    }

    #[test]
    fn checksums_reject_any_single_bit_flip() {
        // Magic-only parsing used to accept bit-flipped payload bytes as
        // valid frames; every frame type must now reject them.
        let notice = PathNotice {
            path: 2,
            kind: NoticeKind::Up,
            seq: 9,
            at_ns: 55_555,
        }
        .encode();
        let header = DataHeader {
            seq: 7,
            created_ns: 8,
            sent_ns: 9,
            path: 1,
            stage: 2,
        }
        .encode();
        let mut ack = Ack::new(500, 42_000, 1, 400);
        ack.set_received(405);
        let ack = ack.encode();
        for (name, wire) in [("notice", &notice), ("header", &header), ("ack", &ack)] {
            for byte in 0..wire.len() {
                for bit in 0..8 {
                    let mut bad = wire.to_vec();
                    bad[byte] ^= 1u8 << bit;
                    let survives = match name {
                        "notice" => PathNotice::decode(&bad).is_some(),
                        "header" => DataHeader::decode(&bad).is_some(),
                        _ => Ack::decode(&bad).is_some(),
                    };
                    assert!(!survives, "{name}: flip of byte {byte} bit {bit} accepted");
                }
            }
        }
    }

    #[test]
    fn data_header_round_trip() {
        let h = DataHeader {
            seq: 123_456,
            created_ns: 987_654_321,
            sent_ns: 1_000_000_007,
            path: 3,
            stage: 1,
        };
        let wire = h.encode();
        assert_eq!(wire.len(), DATA_HEADER_BYTES);
        assert_eq!(DataHeader::decode(&wire), Some(h));
    }

    #[test]
    fn data_header_rejects_garbage() {
        assert_eq!(DataHeader::decode(&[]), None);
        assert_eq!(DataHeader::decode(&[0xFF; 32]), None);
        let h = DataHeader {
            seq: 1,
            created_ns: 2,
            sent_ns: 3,
            path: 0,
            stage: 0,
        };
        let wire = h.encode();
        assert_eq!(DataHeader::decode(&wire[..31]), None); // truncated
    }

    #[test]
    fn ack_round_trip_with_bitmap() {
        let mut a = Ack::new(500, 42_000, 1, 400);
        for seq in [400, 401, 405, 500, 527] {
            a.set_received(seq);
        }
        let wire = a.encode();
        assert_eq!(wire.len(), Ack::WIRE_BYTES);
        let back = Ack::decode(&wire).unwrap();
        assert_eq!(back, a);
        assert!(back.is_received(400));
        assert!(back.is_received(527));
        assert!(!back.is_received(402));
        assert_eq!(
            back.received_seqs().collect::<Vec<_>>(),
            vec![400, 401, 405, 500, 527]
        );
    }

    #[test]
    fn ack_window_bounds() {
        let mut a = Ack::new(10, 0, 0, 100);
        a.set_received(99); // below window: ignored
        a.set_received(100 + ACK_BITMAP_BITS as u64); // beyond: ignored
        assert_eq!(a.received_seqs().count(), 0);
        assert!(!a.is_received(99));
        a.set_received(100);
        a.set_received(100 + ACK_BITMAP_BITS as u64 - 1);
        assert_eq!(a.received_seqs().count(), 2);
    }

    #[test]
    fn ack_stays_small() {
        // §VIII-C: acks must be cheap; ~40 B covers 128 packets. Measure
        // the actual encoding so the bound tracks the real wire format.
        let encoded = Ack::new(1, 2, 3, 4).encode();
        assert_eq!(encoded.len(), Ack::WIRE_BYTES);
        assert!(encoded.len() <= 48, "ack is {} bytes", encoded.len());
    }

    #[test]
    fn ack_rejects_garbage() {
        assert_eq!(Ack::decode(&[0u8; 4]), None);
        let a = Ack::new(1, 2, 0, 0);
        let wire = a.encode();
        assert_eq!(Ack::decode(&wire[..Ack::WIRE_BYTES - 1]), None);
        let mut bad = wire.to_vec();
        bad[0] = DATA_MAGIC;
        assert_eq!(Ack::decode(&bad), None);
    }
}
