//! The sending endpoint: constant-rate generation, Algorithm-1 combination
//! assignment, per-stage retransmission timers, ack processing and
//! optional fast retransmit (paper §VII-A client, §VIII-D).

use crate::estimator::{LossEstimator, RttEstimator};
use crate::wire::{Ack, DataHeader};
use dmc_core::{ComboTable, NetworkSpec, Plan, RandomDelayModel, SchedulePolicy, Slot, Strategy};
use dmc_sim::{Agent, Packet, SimApi, SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap};

/// Maximum supported transmissions per combination (timer-key encoding).
pub const MAX_STAGES: usize = 8;

/// Timer key for the message-generation tick.
const TICK_KEY: u64 = 0;
/// Timer keys ≥ this are reserved for wrappers (e.g. the adaptive
/// re-solver).
pub(crate) const RESERVED_KEY_BASE: u64 = u64::MAX - 1024;

fn retx_key(seq: u64, stage: usize) -> u64 {
    1 + seq * MAX_STAGES as u64 + stage as u64
}

fn decode_key(key: u64) -> (u64, usize) {
    let k = key - 1;
    (k / MAX_STAGES as u64, (k % MAX_STAGES as u64) as usize)
}

/// What happens when a stage's timer expires without an ack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTimeout {
    /// Time between sending the stage and the timer firing.
    pub delay: SimDuration,
    /// `true`: advance to the next stage (retransmit). `false`: record the
    /// loss and give the message up (used on terminal stages and when
    /// Eq. 34 says no retransmission can meet the deadline — loss
    /// *detection* still needs a timer, or the estimators of §VIII-A
    /// would never observe losses on non-retransmitted combinations).
    pub retransmit: bool,
}

/// Per-stage timeouts for every combination.
///
/// `plan[combo][stage]` describes the timer armed after sending stage
/// `stage`; `None` means no timer at all (unreachable stages).
#[derive(Debug, Clone, PartialEq)]
pub struct TimeoutPlan {
    per_combo: Vec<Vec<Option<StageTimeout>>>,
}

impl TimeoutPlan {
    /// The paper's deterministic rule (Eq. 4 + §VII Exp. 1): stage `s` on
    /// path `i` arms `t = d_i + d_min + extra`, where `extra` absorbs
    /// queueing jitter (the paper uses 100 ms). Stages not followed by a
    /// real path get a detect-only timer with the same delay.
    ///
    /// Legacy shim: prefer [`TimeoutPlan::from_plan`], whose schedule the
    /// planner derives with the same rule.
    pub fn deterministic(net: &NetworkSpec, table: &ComboTable, extra: SimDuration) -> Self {
        let dmin = net.min_delay();
        let per_combo = table
            .iter()
            .map(|(_, slots)| {
                let mut v = vec![None; slots.len()];
                for s in 0..slots.len() {
                    let Slot::Path(i) = slots[s] else { break };
                    let t = net.paths()[i].delay() + dmin;
                    if t.is_finite() {
                        let retransmit = matches!(slots.get(s + 1), Some(Slot::Path(_)));
                        v[s] = Some(StageTimeout {
                            delay: SimDuration::from_secs_f64(t) + extra,
                            retransmit,
                        });
                    }
                }
                v
            })
            .collect();
        TimeoutPlan { per_combo }
    }

    /// Timeouts from a solved [`Plan`]'s unified schedule plus `extra`
    /// slack — the pipeline entry point covering both delay regimes
    /// (deterministic plans carry Eq. 4 timers, random-delay plans carry
    /// Eq. 34 optima with detect-only timers where no retransmission can
    /// meet the deadline).
    pub fn from_plan(plan: &Plan, extra: SimDuration) -> Self {
        let schedule = plan.schedule();
        let per_combo = (0..schedule.num_combos())
            .map(|l| {
                schedule
                    .stages(l)
                    .iter()
                    .map(|spec| {
                        spec.map(|spec| StageTimeout {
                            delay: SimDuration::from_secs_f64(spec.delay) + extra,
                            retransmit: spec.retransmit,
                        })
                    })
                    .collect()
            })
            .collect();
        TimeoutPlan { per_combo }
    }

    /// Timeouts from the random-delay model (Eq. 34 optima) plus `extra`
    /// slack. Stages whose timeout is undefined in the model (no
    /// retransmission can meet the deadline) get a detect-only timer of
    /// `lifetime + extra`.
    ///
    /// Legacy shim: prefer [`TimeoutPlan::from_plan`].
    pub fn from_random_model(model: &RandomDelayModel, extra: SimDuration) -> Self {
        let detect = SimDuration::from_secs_f64(model.lifetime()) + extra;
        let table = model.table();
        let per_combo = (0..table.num_combos())
            .map(|l| {
                let slots = table.slots_of(l);
                model
                    .stage_timeouts(l)
                    .iter()
                    .enumerate()
                    .map(|(s, t)| match t {
                        Some(secs) => Some(StageTimeout {
                            delay: SimDuration::from_secs_f64(*secs) + extra,
                            retransmit: true,
                        }),
                        None => {
                            matches!(slots.get(s), Some(Slot::Path(_))).then_some(StageTimeout {
                                delay: detect,
                                retransmit: false,
                            })
                        }
                    })
                    .collect()
            })
            .collect();
        TimeoutPlan { per_combo }
    }

    /// The timer armed after sending stage `stage` of `combo`.
    pub fn stage(&self, combo: usize, stage: usize) -> Option<StageTimeout> {
        self.per_combo
            .get(combo)
            .and_then(|v| v.get(stage))
            .copied()
            .flatten()
    }

    /// Number of combinations covered.
    pub fn num_combos(&self) -> usize {
        self.per_combo.len()
    }
}

/// Sender configuration.
#[derive(Debug, Clone)]
pub struct SenderConfig {
    /// The solved strategy (assignment fractions + combination table).
    pub strategy: Strategy,
    /// Per-stage retransmission timeouts.
    pub timeouts: TimeoutPlan,
    /// On-wire message size in bytes (paper: 1024, header included).
    pub message_wire_bytes: usize,
    /// Application data rate `λ` in bits/second (messages are spaced
    /// `message_wire_bytes·8 / λ` apart).
    pub data_rate: f64,
    /// Stop after generating this many messages.
    pub total_messages: u64,
    /// Fast retransmit (§VIII-D): advance a stage early after this many
    /// later-sent packets on the same path are acked first. `None`
    /// disables it (the paper leaves the threshold an open question;
    /// TCP uses 3).
    pub fast_retransmit: Option<u32>,
    /// Sliding window for the per-path loss estimators.
    pub loss_window: usize,
    /// Packet-discretization policy (Algorithm 1 deficit by default).
    pub schedule: SchedulePolicy,
}

impl SenderConfig {
    /// Creates a config with the paper's defaults (1024-byte messages, no
    /// fast retransmit, 512-transmission loss window, Algorithm-1
    /// scheduling).
    pub fn new(
        strategy: Strategy,
        timeouts: TimeoutPlan,
        data_rate: f64,
        total_messages: u64,
    ) -> Self {
        SenderConfig {
            strategy,
            timeouts,
            message_wire_bytes: 1024,
            data_rate,
            total_messages,
            fast_retransmit: None,
            loss_window: 512,
            schedule: SchedulePolicy::Deficit,
        }
    }

    /// Builds a ready sender configuration from a solved [`Plan`] — the
    /// strategy, timeout schedule (plus `rto_extra` jitter slack) and
    /// data rate all come from the plan; nothing is hand-wired.
    pub fn from_plan(plan: &Plan, rto_extra: SimDuration, total_messages: u64) -> Self {
        SenderConfig::new(
            plan.strategy().clone(),
            TimeoutPlan::from_plan(plan, rto_extra),
            plan.scenario().data_rate(),
            total_messages,
        )
    }
}

/// Sender-side counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SenderStats {
    /// Messages generated (the quality denominator).
    pub generated: u64,
    /// Messages assigned to the blackhole at stage 0 (dropped at source).
    pub blackholed: u64,
    /// Transmissions handed to the NIC (initial + retransmissions).
    pub transmissions: u64,
    /// Retransmissions only.
    pub retransmissions: u64,
    /// Transmissions the NIC rejected (link queue full).
    pub nic_dropped: u64,
    /// Unique messages acknowledged.
    pub acked: u64,
    /// Messages that exhausted all stages without an ack.
    pub expired: u64,
    /// Fast-retransmit triggers (§VIII-D).
    pub fast_retransmits: u64,
}

impl SenderStats {
    /// Publishes the counters into a telemetry registry under the
    /// `proto.tx.*` names. The stats are cumulative, so call this once
    /// per sender per run (publishing twice double-counts).
    pub fn publish_obs(&self, obs: &dmc_obs::Obs) {
        if !obs.is_enabled() {
            return;
        }
        obs.counter("proto.tx.generated").add(self.generated);
        obs.counter("proto.tx.blackholed").add(self.blackholed);
        obs.counter("proto.tx.transmissions")
            .add(self.transmissions);
        obs.counter("proto.tx.retransmissions")
            .add(self.retransmissions);
        obs.counter("proto.tx.nic_dropped").add(self.nic_dropped);
        obs.counter("proto.tx.acked").add(self.acked);
        obs.counter("proto.tx.expired").add(self.expired);
        obs.counter("proto.tx.fast_retransmits")
            .add(self.fast_retransmits);
    }
}

#[derive(Debug, Clone)]
struct InFlight {
    combo: usize,
    stage: usize,
    created: SimTime,
    path: usize,
    sent_at: SimTime,
    path_send_idx: u64,
    dup_indications: u32,
}

/// The sending endpoint ("client" in the paper's simulation).
#[derive(Debug)]
pub struct DmcSender {
    config: SenderConfig,
    scheduler: dmc_core::Scheduler,
    // dmc-lint: allow(det-unordered-map) key-lookup-only: get/insert/remove/contains_key by seq, never iterated
    in_flight: HashMap<u64, InFlight>,
    /// Per path: send counter and outstanding transmissions by send index
    /// (for fast retransmit).
    path_send_count: Vec<u64>,
    outstanding: Vec<BTreeMap<u64, u64>>,
    rtt: Vec<RttEstimator>,
    loss: Vec<LossEstimator>,
    next_seq: u64,
    start_time: SimTime,
    stats: SenderStats,
    num_paths: usize,
}

impl DmcSender {
    /// Creates a sender.
    ///
    /// # Panics
    ///
    /// Panics if the strategy's combination table uses more than
    /// [`MAX_STAGES`] transmissions or the strategy is malformed.
    pub fn new(config: SenderConfig) -> Self {
        let table = config.strategy.table();
        assert!(
            table.transmissions() <= MAX_STAGES,
            "at most {MAX_STAGES} transmissions supported"
        );
        let num_paths = table.num_paths();
        let scheduler = dmc_core::Scheduler::new(config.strategy.x().to_vec(), config.schedule)
            .expect("valid strategy");
        DmcSender {
            scheduler,
            // dmc-lint: allow(det-unordered-map) constructor of the key-lookup-only in-flight map above
            in_flight: HashMap::new(),
            path_send_count: vec![0; num_paths],
            outstanding: vec![BTreeMap::new(); num_paths],
            rtt: vec![RttEstimator::new(); num_paths],
            loss: vec![LossEstimator::new(config.loss_window); num_paths],
            next_seq: 0,
            start_time: SimTime::ZERO,
            stats: SenderStats::default(),
            num_paths,
            config,
        }
    }

    /// Builds a sender straight from a solved [`Plan`] (see
    /// [`SenderConfig::from_plan`]).
    ///
    /// # Panics
    ///
    /// Same conditions as [`DmcSender::new`].
    pub fn from_plan(plan: &Plan, rto_extra: SimDuration, total_messages: u64) -> Self {
        DmcSender::new(SenderConfig::from_plan(plan, rto_extra, total_messages))
    }

    /// Counters so far.
    pub fn stats(&self) -> SenderStats {
        self.stats
    }

    /// Per-path RTT estimators (fed by ack echoes).
    pub fn rtt_estimators(&self) -> &[RttEstimator] {
        &self.rtt
    }

    /// Per-path loss estimators (timeout = loss, ack = success).
    pub fn loss_estimators(&self) -> &[LossEstimator] {
        &self.loss
    }

    /// Messages still awaiting an ack or further stages.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Clears one path's windowed loss history (see
    /// [`LossEstimator::reset_window`]): outcomes recorded across a
    /// discontinuous path-state change would poison the next estimate.
    pub(crate) fn reset_loss_window(&mut self, path: usize) {
        if let Some(e) = self.loss.get_mut(path) {
            e.reset_window();
        }
    }

    /// Interval between message generations.
    fn tick_interval(&self) -> SimDuration {
        let bits = self.config.message_wire_bytes as f64 * 8.0;
        SimDuration::from_secs_f64(bits / self.config.data_rate)
    }

    /// Replaces the target distribution (adaptive re-solving); the new
    /// strategy must use the same combination table shape.
    ///
    /// History is reset: otherwise Algorithm 1 would steer the
    /// *cumulative* empirical distribution to the new target, bursting
    /// ~100 % of traffic onto historically underrepresented combinations
    /// and overloading their paths during the transition.
    pub(crate) fn retarget(&mut self, strategy: Strategy, timeouts: TimeoutPlan) {
        if self.scheduler.retarget(strategy.x().to_vec()).is_ok() {
            self.scheduler.reset_history();
            self.config.strategy = strategy;
            self.config.timeouts = timeouts;
        }
    }

    fn generate(&mut self, api: &mut SimApi<'_>) {
        if self.next_seq >= self.config.total_messages {
            return;
        }
        let now = api.now();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.generated += 1;
        let combo = self.scheduler.next_combo();
        self.send_stage(seq, combo, 0, now, now, api);
        if self.next_seq < self.config.total_messages {
            // Drift-free schedule: tick k fires at start + k·interval.
            let k = self.next_seq;
            let at = self.start_time
                + SimDuration::from_nanos(k.saturating_mul(self.tick_interval().as_nanos()));
            api.set_timer(at.max(now), TICK_KEY);
        }
    }

    fn send_stage(
        &mut self,
        seq: u64,
        combo: usize,
        stage: usize,
        created: SimTime,
        now: SimTime,
        api: &mut SimApi<'_>,
    ) {
        let slots = self.config.strategy.table().slots_of(combo);
        match slots.get(stage) {
            None | Some(Slot::Blackhole) => {
                // Dropped at source (stage 0) or retransmissions exhausted
                // into the blackhole.
                if stage == 0 {
                    self.stats.blackholed += 1;
                } else {
                    self.stats.expired += 1;
                }
                self.in_flight.remove(&seq);
            }
            Some(Slot::Path(i)) => {
                let path = *i;
                let idx = self.path_send_count[path];
                self.path_send_count[path] += 1;
                let header = DataHeader {
                    seq,
                    created_ns: created.as_nanos(),
                    sent_ns: now.as_nanos(),
                    path: path as u8,
                    stage: stage as u8,
                };
                let ok = api.send(
                    path,
                    Packet::new(self.config.message_wire_bytes, header.encode()),
                );
                self.stats.transmissions += 1;
                if stage > 0 {
                    self.stats.retransmissions += 1;
                }
                if !ok {
                    self.stats.nic_dropped += 1;
                }
                // Track (replacing any earlier-stage record).
                if let Some(prev) = self.in_flight.insert(
                    seq,
                    InFlight {
                        combo,
                        stage,
                        created,
                        path,
                        sent_at: now,
                        path_send_idx: idx,
                        dup_indications: 0,
                    },
                ) {
                    self.outstanding[prev.path].remove(&prev.path_send_idx);
                }
                self.outstanding[path].insert(idx, seq);
                if let Some(timeout) = self.config.timeouts.stage(combo, stage) {
                    api.set_timer(now + timeout.delay, retx_key(seq, stage));
                }
            }
        }
    }

    /// Marks `seq` acknowledged; returns true if it was outstanding.
    fn mark_acked(&mut self, seq: u64) -> bool {
        if let Some(state) = self.in_flight.remove(&seq) {
            self.outstanding[state.path].remove(&state.path_send_idx);
            self.loss[state.path].record(false);
            self.stats.acked += 1;
            true
        } else {
            false
        }
    }

    /// Advances a stalled message to its next stage (shared by timeout
    /// and fast-retransmit paths).
    fn advance_stage(&mut self, seq: u64, api: &mut SimApi<'_>) {
        let Some(state) = self.in_flight.get(&seq).cloned() else {
            return;
        };
        self.loss[state.path].record(true);
        self.outstanding[state.path].remove(&state.path_send_idx);
        self.send_stage(
            seq,
            state.combo,
            state.stage + 1,
            state.created,
            api.now(),
            api,
        );
    }

    fn on_ack(&mut self, ack: &Ack, api: &mut SimApi<'_>) {
        let now = api.now();
        // RTT sample: only when the echo matches the transmission we still
        // track (Karn-safe: retransmitted-and-reacked packets mismatch on
        // sent_ns and are skipped).
        if let Some(state) = self.in_flight.get(&ack.just_received) {
            if state.sent_at.as_nanos() == ack.echo_sent_ns && state.path == ack.echo_path as usize
            {
                let rtt = now.since(state.sent_at).as_secs_f64();
                self.rtt[state.path].record(rtt);
            }
        }
        // The echoed packet plus everything the bitmap covers is acked.
        let echo_info = self
            .in_flight
            .get(&ack.just_received)
            .map(|s| (s.path, s.path_send_idx));
        self.mark_acked(ack.just_received);
        let bitmap_acks: Vec<u64> = ack
            .received_seqs()
            .filter(|seq| self.in_flight.contains_key(seq))
            .collect();
        for seq in bitmap_acks {
            self.mark_acked(seq);
        }
        // Fast retransmit (§VIII-D): packets sent on the same path
        // *before* the acked one, still outstanding, gather duplicate
        // indications; at the threshold they advance early.
        if let (Some(threshold), Some((path, idx))) = (self.config.fast_retransmit, echo_info) {
            let lagging: Vec<u64> = self.outstanding[path]
                .range(..idx)
                .map(|(_, &seq)| seq)
                .collect();
            let mut to_advance = Vec::new();
            for seq in lagging {
                if let Some(state) = self.in_flight.get_mut(&seq) {
                    state.dup_indications += 1;
                    if state.dup_indications >= threshold {
                        to_advance.push(seq);
                    }
                }
            }
            for seq in to_advance {
                self.stats.fast_retransmits += 1;
                self.advance_stage(seq, api);
            }
        }
    }
}

impl Agent for DmcSender {
    fn on_start(&mut self, api: &mut SimApi<'_>) {
        assert_eq!(
            api.num_paths(),
            self.num_paths,
            "strategy path count must match the topology"
        );
        self.start_time = api.now();
        self.generate(api);
    }

    fn on_packet(&mut self, _path: usize, packet: Packet, api: &mut SimApi<'_>) {
        if let Some(ack) = Ack::decode(packet.payload()) {
            self.on_ack(&ack, api);
        }
    }

    fn on_timer(&mut self, key: u64, api: &mut SimApi<'_>) {
        if key == TICK_KEY {
            self.generate(api);
            return;
        }
        if key >= RESERVED_KEY_BASE {
            return; // wrapper-owned keys
        }
        let (seq, stage) = decode_key(key);
        // Stale if the message was acked or already advanced past `stage`
        // (e.g. by fast retransmit).
        let Some(state) = self.in_flight.get(&seq) else {
            return;
        };
        if state.stage != stage {
            return;
        }
        let retransmit = self
            .config
            .timeouts
            .stage(state.combo, stage)
            .is_none_or(|t| t.retransmit);
        if retransmit {
            self.advance_stage(seq, api);
        } else {
            // Detect-only timer: the transmission is presumed lost; record
            // it and give the message up.
            let state = self
                .in_flight
                .remove(&seq)
                .expect("membership in in_flight checked just above");
            self.loss[state.path].record(true);
            self.outstanding[state.path].remove(&state.path_send_idx);
            self.stats.expired += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::{DmcReceiver, ReceiverConfig};
    use dmc_core::{optimal_strategy, ModelConfig, PathSpec};
    use dmc_sim::{LinkConfig, TwoHostSim};
    use dmc_stats::ConstantDelay;
    use std::sync::Arc;

    fn link(bw: f64, delay: f64, loss: f64) -> LinkConfig {
        LinkConfig {
            bandwidth_bps: bw,
            propagation: Arc::new(ConstantDelay::new(delay)),
            loss: loss.into(),
            queue_capacity_bytes: 1 << 22,
        }
    }

    fn figure1_net() -> NetworkSpec {
        NetworkSpec::builder()
            .path(PathSpec::new(10e6, 0.600, 0.10).unwrap())
            .path(PathSpec::new(1e6, 0.200, 0.0).unwrap())
            .data_rate(8e6)
            .lifetime(1.5)
            .build()
            .unwrap()
    }

    fn run_figure1(messages: u64, seed: u64) -> (SenderStats, crate::receiver::ReceiverStats) {
        // Model solved with slightly inflated delays (queueing margin),
        // like the paper does for Experiment 1.
        let model_net = NetworkSpec::builder()
            .path(PathSpec::new(10e6, 0.650, 0.10).unwrap())
            .path(PathSpec::new(1e6, 0.250, 0.0).unwrap())
            .data_rate(8e6)
            .lifetime(1.5)
            .build()
            .unwrap();
        let strategy = optimal_strategy(&model_net, &ModelConfig::default()).unwrap();
        let timeouts =
            TimeoutPlan::deterministic(&model_net, strategy.table(), SimDuration::from_millis(100));
        let sender = DmcSender::new(SenderConfig::new(strategy, timeouts, 8e6, messages));
        let receiver = DmcReceiver::new(ReceiverConfig::new(
            SimDuration::from_secs_f64(1.5),
            1, // lowest-delay path
        ));
        let mut sim = TwoHostSim::new(
            vec![link(10e6, 0.600, 0.10), link(1e6, 0.200, 0.0)],
            vec![link(10e6, 0.600, 0.10), link(1e6, 0.200, 0.0)],
            sender,
            receiver,
            seed,
        )
        .unwrap();
        sim.run_to_completion();
        (sim.client().stats(), sim.server().stats())
    }

    #[test]
    fn figure1_scenario_delivers_nearly_everything() {
        let (s, r) = run_figure1(2_000, 42);
        assert_eq!(s.generated, 2_000);
        let q = r.unique_in_time as f64 / s.generated as f64;
        // Theory says 100%; the simulation should be very close.
        assert!(q > 0.99, "quality {q}");
        // ~10% of path-0 transmissions are lost and must be retransmitted.
        assert!(
            s.retransmissions > 100,
            "retransmissions {}",
            s.retransmissions
        );
        // Everything eventually acked; nothing expired.
        assert!(s.expired < 10, "expired {}", s.expired);
    }

    #[test]
    fn timer_keys_round_trip() {
        for seq in [0u64, 1, 77, 1_000_000] {
            for stage in 0..MAX_STAGES {
                let (s, st) = decode_key(retx_key(seq, stage));
                assert_eq!((s, st), (seq, stage));
            }
        }
    }

    #[test]
    fn rtt_estimators_learn_path_delays() {
        let (_, _) = run_figure1(100, 1); // warm-up unused; below re-runs
        let model_net = figure1_net();
        let strategy = optimal_strategy(&model_net, &ModelConfig::default()).unwrap();
        let timeouts =
            TimeoutPlan::deterministic(&model_net, strategy.table(), SimDuration::from_millis(100));
        let sender = DmcSender::new(SenderConfig::new(strategy, timeouts, 8e6, 500));
        let receiver = DmcReceiver::new(ReceiverConfig::new(SimDuration::from_secs_f64(1.5), 1));
        let mut sim = TwoHostSim::new(
            vec![link(10e6, 0.600, 0.0), link(1e6, 0.200, 0.0)],
            vec![link(10e6, 0.600, 0.0), link(1e6, 0.200, 0.0)],
            sender,
            receiver,
            9,
        )
        .unwrap();
        sim.run_to_completion();
        let rtt = sim.client().rtt_estimators();
        // Path 0 RTT ≈ 600 (data) + 200 (ack on path 1) = 800 ms + srlz.
        if let Some(srtt) = rtt[0].srtt() {
            assert!((srtt - 0.8).abs() < 0.05, "path0 srtt {srtt}");
        }
        // Path 1 RTT ≈ 400 ms + serialization (8.2ms at 1 Mbps).
        if let Some(srtt) = rtt[1].srtt() {
            assert!((srtt - 0.41) < 0.08, "path1 srtt {srtt}");
        }
    }

    #[test]
    fn loss_estimator_sees_path_loss() {
        let (s, _) = run_figure1(2_000, 7);
        let _ = s;
        // Re-run with direct access.
        let model_net = figure1_net();
        let strategy = optimal_strategy(&model_net, &ModelConfig::default()).unwrap();
        let timeouts =
            TimeoutPlan::deterministic(&model_net, strategy.table(), SimDuration::from_millis(100));
        let sender = DmcSender::new(SenderConfig::new(strategy, timeouts, 8e6, 2_000));
        let receiver = DmcReceiver::new(ReceiverConfig::new(SimDuration::from_secs_f64(1.5), 1));
        let mut sim = TwoHostSim::new(
            vec![link(10e6, 0.600, 0.10), link(1e6, 0.200, 0.0)],
            vec![link(10e6, 0.600, 0.0), link(1e6, 0.200, 0.0)],
            sender,
            receiver,
            11,
        )
        .unwrap();
        sim.run_to_completion();
        let loss = &sim.client().loss_estimators()[0];
        assert!(loss.samples() > 500);
        assert!(
            (loss.lifetime_rate() - 0.10).abs() < 0.04,
            "estimated loss {}",
            loss.lifetime_rate()
        );
    }

    #[test]
    fn fast_retransmit_recovers_from_oversized_rto() {
        // RTO mis-set to 10 s; without fast retransmit a lost packet can
        // never be retransmitted within the lifetime.
        let run = |fast: Option<u32>| {
            let model_net = figure1_net();
            let strategy = optimal_strategy(&model_net, &ModelConfig::default()).unwrap();
            // Deliberately broken timeouts: huge extra.
            let timeouts = TimeoutPlan::deterministic(
                &model_net,
                strategy.table(),
                SimDuration::from_secs_f64(10.0),
            );
            let mut cfg = SenderConfig::new(strategy, timeouts, 8e6, 3_000);
            cfg.fast_retransmit = fast;
            let sender = DmcSender::new(cfg);
            let receiver =
                DmcReceiver::new(ReceiverConfig::new(SimDuration::from_secs_f64(1.5), 1));
            let mut sim = TwoHostSim::new(
                vec![link(10e6, 0.600, 0.10), link(1e6, 0.200, 0.0)],
                vec![link(10e6, 0.600, 0.0), link(1e6, 0.200, 0.0)],
                sender,
                receiver,
                13,
            )
            .unwrap();
            sim.run_to_completion();
            (
                sim.client().stats(),
                sim.server().stats().unique_in_time as f64 / 3_000.0,
            )
        };
        let (slow_stats, q_slow) = run(None);
        let (fast_stats, q_fast) = run(Some(3));
        assert_eq!(slow_stats.fast_retransmits, 0);
        assert!(
            fast_stats.fast_retransmits > 50,
            "fast retransmits {}",
            fast_stats.fast_retransmits
        );
        assert!(
            q_fast > q_slow + 0.03,
            "fast {q_fast} should beat slow {q_slow}"
        );
    }
}
