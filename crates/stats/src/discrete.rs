//! Gridded (discretized) probability distributions.
//!
//! The timeout optimization of Eq. 26/34 needs `F_{d_i + d_min}(t)` — the
//! CDF of a *sum* of independent delays — evaluated over a fine time grid.
//! Discretizing each delay to a probability mass function on a uniform
//! grid turns the convolution of Eq. 34 into a finite sum, exactly the
//! "discretized" estimation route the paper suggests in §VIII-A.

use crate::dist::Delay;

/// A probability mass function on the uniform grid
/// `offset, offset + step, offset + 2·step, …` (seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteDist {
    offset: f64,
    step: f64,
    pmf: Vec<f64>,
}

impl DiscreteDist {
    /// Discretizes a continuous delay distribution onto a grid of width
    /// `step` seconds. Bin `k` receives the probability mass of
    /// `(offset + (k-1)·step, offset + k·step]`; the grid spans
    /// `[min_delay, max_delay]` of the source distribution.
    ///
    /// # Panics
    ///
    /// Panics if `step ≤ 0`, or if the distribution has unbounded support
    /// start (`min_delay` not finite).
    pub fn from_delay(dist: &dyn Delay, step: f64) -> Self {
        assert!(step > 0.0 && step.is_finite(), "bad grid step {step}");
        let lo = dist.min_delay();
        assert!(lo.is_finite(), "distribution support must start finite");
        let hi = dist.max_delay().max(lo);
        let bins = (((hi - lo) / step).ceil() as usize + 2).max(1);
        let mut pmf = Vec::with_capacity(bins);
        let mut prev = 0.0;
        for k in 0..bins {
            let t = lo + (k as f64) * step;
            let c = dist.cdf(t).clamp(0.0, 1.0);
            pmf.push((c - prev).max(0.0));
            prev = c;
        }
        // Any residual tail mass goes in the last bin so the PMF sums to 1.
        let total: f64 = pmf.iter().sum();
        if total < 1.0 {
            let last = pmf.len() - 1;
            pmf[last] += 1.0 - total;
        }
        DiscreteDist {
            offset: lo,
            step,
            pmf,
        }
    }

    /// Builds a PMF directly from `(offset, step, masses)`.
    ///
    /// # Errors
    ///
    /// Returns an error if masses are negative/non-finite, the PMF is
    /// empty, or the total mass is not within `1e-6` of 1.
    pub fn from_pmf(offset: f64, step: f64, pmf: Vec<f64>) -> Result<Self, String> {
        if pmf.is_empty() {
            return Err("empty pmf".into());
        }
        if !(step > 0.0) || !step.is_finite() || !offset.is_finite() {
            return Err(format!("bad grid offset {offset} / step {step}"));
        }
        if pmf.iter().any(|&m| !m.is_finite() || m < 0.0) {
            return Err("pmf masses must be finite and ≥ 0".into());
        }
        let total: f64 = pmf.iter().sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(format!("pmf mass {total} is not 1"));
        }
        Ok(DiscreteDist { offset, step, pmf })
    }

    /// Grid origin (seconds).
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Grid step (seconds).
    pub fn step(&self) -> f64 {
        self.step
    }

    /// The probability masses.
    pub fn pmf(&self) -> &[f64] {
        &self.pmf
    }

    /// Largest grid point carrying mass (seconds).
    pub fn support_end(&self) -> f64 {
        self.offset + self.step * (self.pmf.len().saturating_sub(1)) as f64
    }

    /// `P(X ≤ t)`.
    pub fn cdf(&self, t: f64) -> f64 {
        if t < self.offset {
            return 0.0;
        }
        // Nudge before flooring so exact grid points land in their own bin
        // despite floating-point rounding of (t − offset)/step.
        let k = ((t - self.offset) / self.step + 1e-6).floor() as usize;
        if k + 1 >= self.pmf.len() {
            return 1.0;
        }
        self.pmf[..=k].iter().sum::<f64>().min(1.0)
    }

    /// Mean of the gridded distribution (seconds).
    pub fn mean(&self) -> f64 {
        self.pmf
            .iter()
            .enumerate()
            .map(|(k, &m)| m * (self.offset + k as f64 * self.step))
            .sum()
    }

    /// Distribution of the sum of two independent gridded variables.
    ///
    /// Both inputs must share the same `step`.
    ///
    /// # Panics
    ///
    /// Panics if the steps differ by more than one part in 10⁹.
    pub fn convolve(&self, other: &DiscreteDist) -> DiscreteDist {
        assert!(
            (self.step - other.step).abs() <= 1e-9 * self.step,
            "grid steps differ: {} vs {}",
            self.step,
            other.step
        );
        let n = self.pmf.len() + other.pmf.len() - 1;
        let mut pmf = vec![0.0; n];
        for (i, &a) in self.pmf.iter().enumerate() {
            // dmc-lint: allow(float-exact) a PMF bin with exactly zero mass is structurally empty; skipping it is lossless
            if a == 0.0 {
                continue;
            }
            for (j, &b) in other.pmf.iter().enumerate() {
                pmf[i + j] += a * b;
            }
        }
        DiscreteDist {
            offset: self.offset + other.offset,
            step: self.step,
            pmf,
        }
    }

    /// Precomputes the running CDF over the grid for repeated queries.
    pub fn cumulative(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.pmf
            .iter()
            .map(|&m| {
                acc += m;
                acc.min(1.0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{ConstantDelay, ShiftedGamma, UniformDelay};

    #[test]
    fn constant_discretizes_to_point_mass() {
        let d = DiscreteDist::from_delay(&ConstantDelay::new(0.25), 0.001);
        let total: f64 = d.pmf().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(d.cdf(0.24), 0.0);
        assert_eq!(d.cdf(0.26), 1.0);
        assert!((d.mean() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn gamma_discretization_tracks_cdf() {
        let g = ShiftedGamma::new(10.0, 0.004, 0.400).unwrap();
        let d = DiscreteDist::from_delay(&g, 0.0005);
        for &t in &[0.42, 0.44, 0.46, 0.48] {
            assert!(
                (d.cdf(t) - g.cdf(t)).abs() < 0.02,
                "at {t}: grid {} exact {}",
                d.cdf(t),
                g.cdf(t)
            );
        }
        let total: f64 = d.pmf().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn convolution_of_constants_is_constant_sum() {
        let a = DiscreteDist::from_delay(&ConstantDelay::new(0.1), 0.001);
        let b = DiscreteDist::from_delay(&ConstantDelay::new(0.2), 0.001);
        let s = a.convolve(&b);
        assert!((s.mean() - 0.3).abs() < 1e-9);
        assert_eq!(s.cdf(0.29), 0.0);
        assert_eq!(s.cdf(0.31), 1.0);
    }

    #[test]
    fn convolution_preserves_mass_and_mean() {
        let a = DiscreteDist::from_delay(&UniformDelay::new(0.0, 0.1), 0.001);
        let g = ShiftedGamma::new(5.0, 0.002, 0.1).unwrap();
        let b = DiscreteDist::from_delay(&g, 0.001);
        let s = a.convolve(&b);
        let total: f64 = s.pmf().iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass {total}");
        let want_mean = 0.05 + g.mean();
        assert!(
            (s.mean() - want_mean).abs() < 2e-3,
            "mean {} want {want_mean}",
            s.mean()
        );
    }

    #[test]
    fn convolution_against_analytic_gamma_sum() {
        // Gamma(a1, β) + Gamma(a2, β) = Gamma(a1+a2, β) for equal scales.
        let g1 = ShiftedGamma::new(3.0, 0.002, 0.0).unwrap();
        let g2 = ShiftedGamma::new(4.0, 0.002, 0.0).unwrap();
        let sum_exact = ShiftedGamma::new(7.0, 0.002, 0.0).unwrap();
        let d1 = DiscreteDist::from_delay(&g1, 0.0002);
        let d2 = DiscreteDist::from_delay(&g2, 0.0002);
        let conv = d1.convolve(&d2);
        for &t in &[0.008, 0.012, 0.016, 0.020] {
            assert!(
                (conv.cdf(t) - sum_exact.cdf(t)).abs() < 0.02,
                "at {t}: conv {} exact {}",
                conv.cdf(t),
                sum_exact.cdf(t)
            );
        }
    }

    #[test]
    fn from_pmf_validation() {
        assert!(DiscreteDist::from_pmf(0.0, 0.001, vec![]).is_err());
        assert!(DiscreteDist::from_pmf(0.0, 0.001, vec![0.5, 0.4]).is_err());
        assert!(DiscreteDist::from_pmf(0.0, -1.0, vec![1.0]).is_err());
        assert!(DiscreteDist::from_pmf(0.0, 0.001, vec![0.5, 0.5]).is_ok());
    }

    #[test]
    fn cumulative_matches_cdf() {
        let g = ShiftedGamma::new(5.0, 0.002, 0.1).unwrap();
        let d = DiscreteDist::from_delay(&g, 0.001);
        let cum = d.cumulative();
        for (k, &c) in cum.iter().enumerate() {
            let t = d.offset() + k as f64 * d.step();
            assert!((c - d.cdf(t)).abs() < 1e-9, "bin {k}");
        }
    }
}
