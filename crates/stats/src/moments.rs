//! Numerically stable online mean/variance (Welford), used by the
//! protocol's delay and loss estimators (§VIII-A).

/// Welford online accumulator for mean, variance, min and max.
///
/// ```
/// use dmc_stats::OnlineMoments;
///
/// let mut m = OnlineMoments::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     m.push(x);
/// }
/// assert_eq!(m.count(), 8);
/// assert!((m.mean() - 5.0).abs() < 1e-12);
/// assert!((m.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineMoments {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineMoments {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance `Σ(x−μ)²/n` (0 if fewer than 2 samples).
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance `Σ(x−μ)²/(n−1)` (0 if fewer than 2 samples).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Smallest observation (∞ if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_neutral() {
        let m = OnlineMoments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.population_variance(), 0.0);
    }

    #[test]
    fn single_sample() {
        let mut m = OnlineMoments::new();
        m.push(3.5);
        assert_eq!(m.mean(), 3.5);
        assert_eq!(m.population_variance(), 0.0);
        assert_eq!(m.min(), 3.5);
        assert_eq!(m.max(), 3.5);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineMoments::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineMoments::new();
        let mut b = OnlineMoments::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-10);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineMoments::new();
        a.push(1.0);
        let b = OnlineMoments::new();
        let mut c = a;
        c.merge(&b);
        assert_eq!(c, a);
        let mut d = OnlineMoments::new();
        d.merge(&a);
        assert_eq!(d, a);
    }

    #[test]
    fn catastrophic_cancellation_resistance() {
        // Large offset, small variance: naive two-pass Σx² would lose all
        // precision here.
        let mut m = OnlineMoments::new();
        for i in 0..1000 {
            m.push(1e9 + (i % 2) as f64);
        }
        assert!((m.population_variance() - 0.25).abs() < 1e-6);
    }
}
