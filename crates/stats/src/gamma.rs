//! Gamma special functions: `ln Γ(x)` and the regularized incomplete
//! gamma functions `P(a, x)` / `Q(a, x)`.
//!
//! `P(a, x) = γ(a, x) / Γ(a)` is exactly the CDF of a Gamma(shape `a`,
//! scale 1) random variable, which the paper's Eq. 31 uses for path
//! delays.

/// Lanczos coefficients for `g = 7`, `n = 9`.
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// Accurate to ~15 significant digits over the range used by delay
/// modelling (`x` up to a few hundred).
///
/// # Panics
///
/// Panics if `x <= 0` (the reflection formula is not needed for
/// distribution shapes, which are strictly positive).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx). Still useful for tiny
        // shapes produced by degenerate fits.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x)/Γ(a)`.
///
/// This is the CDF at `x` of a Gamma(shape `a`, scale 1) distribution.
/// Returns 0 for `x ≤ 0`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x` is NaN.
pub fn reg_gamma_lower(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "shape must be positive, got {a}");
    assert!(!x.is_nan(), "x is NaN");
    if x <= 0.0 {
        return 0.0;
    }
    if x.is_infinite() {
        return 1.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cont_frac(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x` is NaN.
pub fn reg_gamma_upper(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "shape must be positive, got {a}");
    assert!(!x.is_nan(), "x is NaN");
    if x <= 0.0 {
        return 1.0;
    }
    if x.is_infinite() {
        return 0.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cont_frac(a, x)
    }
}

const MAX_ITER: usize = 400;
const EPS: f64 = 1e-15;

/// Series expansion of `P(a, x)`, converges fast for `x < a + 1`.
fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    let log_prefix = -x + a * x.ln() - ln_gamma(a);
    (sum * log_prefix.exp()).clamp(0.0, 1.0)
}

/// Continued-fraction (modified Lentz) expansion of `Q(a, x)`,
/// converges fast for `x ≥ a + 1`.
fn gamma_cont_frac(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    let log_prefix = -x + a * x.ln() - ln_gamma(a);
    (h * log_prefix.exp()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &f) in facts.iter().enumerate() {
            let got = ln_gamma((n + 1) as f64);
            assert!(
                (got - f64::ln(f)).abs() < 1e-12,
                "ln Γ({}) = {got}, want ln {f}",
                n + 1
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        let want = 0.5 * std::f64::consts::PI.ln();
        assert!((ln_gamma(0.5) - want).abs() < 1e-12);
        // Γ(3/2) = √π/2
        let want32 = want - std::f64::consts::LN_2;
        assert!((ln_gamma(1.5) - want32).abs() < 1e-12);
    }

    #[test]
    fn p_of_shape_one_is_exponential_cdf() {
        for &x in &[0.01f64, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            let want = 1.0 - (-x).exp();
            let got = reg_gamma_lower(1.0, x);
            assert!((got - want).abs() < 1e-12, "P(1,{x}) = {got}, want {want}");
        }
    }

    #[test]
    fn p_plus_q_is_one() {
        for &a in &[0.3, 1.0, 2.5, 10.0, 50.0] {
            for &x in &[0.1f64, 1.0, 3.0, 10.0, 60.0] {
                let s = reg_gamma_lower(a, x) + reg_gamma_upper(a, x);
                assert!((s - 1.0).abs() < 1e-12, "P+Q at a={a} x={x}: {s}");
            }
        }
    }

    #[test]
    fn p_is_monotone_in_x() {
        let a = 10.0;
        let mut prev = 0.0;
        for i in 0..200 {
            let x = i as f64 * 0.25;
            let p = reg_gamma_lower(a, x);
            assert!(p >= prev - 1e-15, "not monotone at x={x}");
            prev = p;
        }
    }

    #[test]
    fn boundary_values() {
        assert_eq!(reg_gamma_lower(2.0, 0.0), 0.0);
        assert_eq!(reg_gamma_lower(2.0, f64::INFINITY), 1.0);
        assert_eq!(reg_gamma_upper(2.0, 0.0), 1.0);
        assert_eq!(reg_gamma_upper(2.0, f64::INFINITY), 0.0);
    }

    #[test]
    fn known_chi_square_values() {
        // χ²(k) CDF at x equals P(k/2, x/2). χ²(2) at 5.991 ≈ 0.95.
        let p = reg_gamma_lower(1.0, 5.991_46 / 2.0);
        assert!((p - 0.95).abs() < 1e-4, "got {p}");
        // χ²(10) at 18.307 ≈ 0.95
        let p = reg_gamma_lower(5.0, 18.307 / 2.0);
        assert!((p - 0.95).abs() < 1e-4, "got {p}");
    }

    #[test]
    fn poisson_recurrence_identity() {
        // For integer a: Q(a, x) = e^{-x} Σ_{k<a} x^k / k!
        let x = 3.7;
        for a in 1..8 {
            let mut sum = 0.0;
            let mut term = 1.0;
            for k in 0..a {
                if k > 0 {
                    term *= x / k as f64;
                }
                sum += term;
            }
            let want = (-x).exp() * sum;
            let got = reg_gamma_upper(a as f64, x);
            assert!(
                (got - want).abs() < 1e-12,
                "Q({a},{x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn negative_shape_panics() {
        reg_gamma_lower(-1.0, 1.0);
    }
}
