//! [`TrialStats`]: the aggregate report of independent Monte-Carlo
//! trials, with Student-t confidence intervals.
//!
//! Each trial contributes one scalar observation (e.g. the measured
//! quality of one full simulation run); the accumulator is a thin wrapper
//! over [`OnlineMoments`] that adds the interval arithmetic. Equality is
//! *bitwise* on the underlying moments, which is what the parallel
//! engine's determinism pin relies on: folding the same per-trial values
//! in the same (trial-index) order produces identical bits no matter how
//! many worker threads computed them.
//!
//! ```
//! use dmc_stats::TrialStats;
//!
//! let mut t = TrialStats::new();
//! for q in [0.93, 0.91, 0.95, 0.92, 0.94] {
//!     t.push(q);
//! }
//! let (lo, hi) = t.confidence_interval(0.95);
//! assert!(lo < t.mean() && t.mean() < hi);
//! assert!((t.mean() - 0.93).abs() < 1e-12);
//! ```

use crate::moments::OnlineMoments;
use crate::student::student_t_quantile;

/// Aggregate statistics over independent trials of one scalar metric.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TrialStats {
    moments: OnlineMoments,
}

impl TrialStats {
    /// Creates an empty report.
    pub fn new() -> Self {
        TrialStats {
            moments: OnlineMoments::new(),
        }
    }

    /// Builds a report from per-trial observations, folded in iteration
    /// order (the caller supplies trial-index order for determinism).
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut t = TrialStats::new();
        for x in samples {
            t.push(x);
        }
        t
    }

    /// Adds one trial's observation.
    pub fn push(&mut self, x: f64) {
        self.moments.push(x);
    }

    /// Number of trials recorded.
    pub fn count(&self) -> u64 {
        self.moments.count()
    }

    /// Sample mean across trials (0 if empty).
    pub fn mean(&self) -> f64 {
        self.moments.mean()
    }

    /// Unbiased sample standard deviation (0 with fewer than 2 trials).
    pub fn sample_std(&self) -> f64 {
        self.moments.sample_variance().sqrt()
    }

    /// Standard error of the mean, `s/√n` (0 with fewer than 2 trials).
    pub fn std_error(&self) -> f64 {
        if self.count() < 2 {
            0.0
        } else {
            self.sample_std() / (self.count() as f64).sqrt()
        }
    }

    /// Smallest trial observation (∞ if empty).
    pub fn min(&self) -> f64 {
        self.moments.min()
    }

    /// Largest trial observation (−∞ if empty).
    pub fn max(&self) -> f64 {
        self.moments.max()
    }

    /// The underlying moment accumulator.
    pub fn moments(&self) -> &OnlineMoments {
        &self.moments
    }

    /// Half-width of the two-sided `confidence` interval for the mean:
    /// `t_{(1+c)/2, n−1} · s/√n`. Zero with fewer than 2 trials (no
    /// variance information — the interval degenerates to the point).
    ///
    /// # Panics
    ///
    /// Panics unless `confidence` is in `(0, 1)`.
    pub fn half_width(&self, confidence: f64) -> f64 {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0, 1), got {confidence}"
        );
        if self.count() < 2 {
            return 0.0;
        }
        let df = (self.count() - 1) as f64;
        student_t_quantile(0.5 * (1.0 + confidence), df) * self.std_error()
    }

    /// Two-sided Student-t confidence interval for the mean.
    ///
    /// # Panics
    ///
    /// Panics unless `confidence` is in `(0, 1)`.
    pub fn confidence_interval(&self, confidence: f64) -> (f64, f64) {
        let h = self.half_width(confidence);
        (self.mean() - h, self.mean() + h)
    }

    /// Merges another report (parallel-Welford; see [`OnlineMoments::merge`]).
    ///
    /// Note that merging chunk accumulators is *numerically* equivalent
    /// but not *bitwise* identical to pushing the same samples one by
    /// one; bit-determinism across thread counts requires folding
    /// per-trial values in trial order, which is what the Monte-Carlo
    /// engine does.
    pub fn merge(&mut self, other: &TrialStats) {
        self.moments.merge(&other.moments);
    }

    /// `"0.9332 ± 0.0021 (95% CI, n=32)"`-style rendering.
    pub fn summary(&self, confidence: f64) -> String {
        if self.count() < 2 {
            return format!("{:.4} (n={})", self.mean(), self.count());
        }
        format!(
            "{:.4} ± {:.4} ({:.0}% CI, n={})",
            self.mean(),
            self.half_width(confidence),
            confidence * 100.0,
            self.count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single_trial_degenerate() {
        let t = TrialStats::new();
        assert_eq!(t.count(), 0);
        assert_eq!(t.half_width(0.95), 0.0);
        let t = TrialStats::from_samples([0.9]);
        assert_eq!(t.count(), 1);
        assert_eq!(t.mean(), 0.9);
        assert_eq!(t.half_width(0.95), 0.0);
        assert_eq!(t.confidence_interval(0.95), (0.9, 0.9));
    }

    #[test]
    fn interval_matches_hand_computation() {
        // Samples 1..=5: mean 3, s = √2.5, n = 5, t_{0.975,4} = 2.7764.
        let t = TrialStats::from_samples((1..=5).map(f64::from));
        assert_eq!(t.count(), 5);
        assert!((t.mean() - 3.0).abs() < 1e-12);
        assert!((t.sample_std() - 2.5f64.sqrt()).abs() < 1e-12);
        let want = 2.7764 * (2.5f64 / 5.0).sqrt();
        assert!(
            (t.half_width(0.95) - want).abs() < 1e-3,
            "half-width {} vs {want}",
            t.half_width(0.95)
        );
        let (lo, hi) = t.confidence_interval(0.95);
        assert!(lo < 3.0 && hi > 3.0);
        assert!((hi - lo - 2.0 * t.half_width(0.95)).abs() < 1e-12);
    }

    #[test]
    fn wider_confidence_means_wider_interval() {
        let t = TrialStats::from_samples([0.1, 0.4, 0.2, 0.3, 0.25, 0.35]);
        assert!(t.half_width(0.99) > t.half_width(0.95));
        assert!(t.half_width(0.95) > t.half_width(0.5));
    }

    #[test]
    fn fold_order_is_bitwise_reproducible() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).cos()).collect();
        let a = TrialStats::from_samples(xs.iter().copied());
        let b = TrialStats::from_samples(xs.iter().copied());
        assert_eq!(a, b); // bitwise, via OnlineMoments PartialEq
    }

    #[test]
    fn summary_renders() {
        let t = TrialStats::from_samples([0.93, 0.94, 0.95]);
        let s = t.summary(0.95);
        assert!(s.contains("± "), "{s}");
        assert!(s.contains("n=3"), "{s}");
        assert!(TrialStats::from_samples([0.5])
            .summary(0.95)
            .contains("n=1"));
    }
}
