//! Student-t special functions for trial-level confidence intervals.
//!
//! The Monte-Carlo engine reports `mean ± t_{1−α/2, ν} · s/√n` intervals
//! over independent trials; no offline crate provides the t quantile, so
//! the regularized incomplete beta function is implemented here (Lentz
//! continued fraction, the classic numerical-recipes formulation) and the
//! quantile is obtained by monotone bisection on the exact CDF.

use crate::gamma::ln_gamma;

/// Natural log of the complete beta function `B(a, b)`.
fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Continued-fraction kernel for the incomplete beta (NR `betacf`).
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-16;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0` and
/// `x ∈ [0, 1]`.
///
/// # Panics
///
/// Panics if `a` or `b` is not positive, or `x` is outside `[0, 1]`.
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x must be in [0, 1], got {x}");
    // dmc-lint: allow(float-exact) regularized incomplete beta: the exact endpoint x == 0 short-circuits to the exact value 0
    if x == 0.0 {
        return 0.0;
    }
    // dmc-lint: allow(float-exact) regularized incomplete beta: the exact endpoint x == 1 short-circuits to the exact value 1
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = -ln_beta(a, b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // The continued fraction converges fast only on one side of the mean;
    // use the symmetry I_x(a,b) = 1 − I_{1−x}(b,a) on the other.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - front * betacf(b, a, 1.0 - x) / b
    }
}

/// CDF of the Student-t distribution with `df` degrees of freedom.
///
/// # Panics
///
/// Panics if `df` is not positive or `t` is NaN.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive, got {df}");
    assert!(!t.is_nan(), "t is NaN");
    if t.is_infinite() {
        return if t > 0.0 { 1.0 } else { 0.0 };
    }
    let half_tail = 0.5 * reg_inc_beta(0.5 * df, 0.5, df / (df + t * t));
    if t >= 0.0 {
        1.0 - half_tail
    } else {
        half_tail
    }
}

/// Quantile (inverse CDF) of the Student-t distribution: the `t` with
/// `P(T ≤ t) = p`, found by bisection on the exact CDF (the CDF is
/// strictly monotone, so 200 halvings pin ~16 significant digits).
///
/// # Panics
///
/// Panics if `df` is not positive or `p` is outside `(0, 1)`.
pub fn student_t_quantile(p: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive, got {df}");
    assert!(p > 0.0 && p < 1.0, "probability must be in (0, 1), got {p}");
    if (p - 0.5).abs() < 1e-16 {
        return 0.0;
    }
    // Symmetry: solve in the upper half only.
    if p < 0.5 {
        return -student_t_quantile(1.0 - p, df);
    }
    // Bracket: double until the CDF crosses p (df = 1 needs hundreds for
    // far tails; cap well beyond any confidence level in practical use).
    let mut hi = 1.0f64;
    while student_t_cdf(hi, df) < p && hi < 1e12 {
        hi *= 2.0;
    }
    let mut lo = 0.0f64;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if student_t_cdf(mid, df) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo <= f64::EPSILON * hi.max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incomplete_beta_identities() {
        // I_x(1, 1) = x (uniform CDF).
        for x in [0.0, 0.1, 0.5, 0.9, 1.0] {
            assert!((reg_inc_beta(1.0, 1.0, x) - x).abs() < 1e-12, "x = {x}");
        }
        // I_x(a, b) + I_{1−x}(b, a) = 1.
        for (a, b, x) in [(2.5, 0.5, 0.3), (10.0, 0.5, 0.9), (0.5, 0.5, 0.2)] {
            let s = reg_inc_beta(a, b, x) + reg_inc_beta(b, a, 1.0 - x);
            assert!((s - 1.0).abs() < 1e-12, "a={a} b={b} x={x}: {s}");
        }
        // I_x(1/2, 1/2) = (2/π)·asin(√x) (arcsine law).
        for x in [0.1f64, 0.25, 0.8] {
            let want = 2.0 / std::f64::consts::PI * x.sqrt().asin();
            assert!((reg_inc_beta(0.5, 0.5, x) - want).abs() < 1e-12);
        }
    }

    #[test]
    fn t_cdf_matches_closed_forms() {
        // df = 1 is Cauchy: F(t) = 1/2 + atan(t)/π.
        for t in [-5.0f64, -1.0, 0.0, 0.5, 3.0] {
            let want = 0.5 + t.atan() / std::f64::consts::PI;
            assert!(
                (student_t_cdf(t, 1.0) - want).abs() < 1e-12,
                "t = {t}: {} vs {want}",
                student_t_cdf(t, 1.0)
            );
        }
        // df = 2: F(t) = 1/2 (1 + t/√(t²+2)).
        for t in [-3.0f64, 0.0, 1.0, 4.0] {
            let want = 0.5 * (1.0 + t / (t * t + 2.0).sqrt());
            assert!((student_t_cdf(t, 2.0) - want).abs() < 1e-12, "t = {t}");
        }
    }

    #[test]
    fn quantiles_match_standard_tables() {
        // Two-sided 95 % critical values t_{0.975, ν}.
        for (df, want) in [
            (1.0, 12.7062),
            (2.0, 4.3027),
            (5.0, 2.5706),
            (10.0, 2.2281),
            (30.0, 2.0423),
            (100.0, 1.9840),
        ] {
            let got = student_t_quantile(0.975, df);
            assert!((got - want).abs() < 5e-4, "ν = {df}: {got} vs {want}");
        }
        // Approaches the normal quantile for large ν.
        assert!((student_t_quantile(0.975, 1e6) - 1.959_96).abs() < 1e-3);
        // 99 % one-sided, ν = 5: 3.3649.
        assert!((student_t_quantile(0.99, 5.0) - 3.3649).abs() < 5e-4);
    }

    #[test]
    fn quantile_inverts_cdf_and_is_symmetric() {
        for df in [1.0, 3.0, 7.0, 29.0] {
            for p in [0.05, 0.25, 0.5, 0.9, 0.995] {
                let t = student_t_quantile(p, df);
                assert!(
                    (student_t_cdf(t, df) - p).abs() < 1e-10,
                    "df={df} p={p}: cdf(q) = {}",
                    student_t_cdf(t, df)
                );
            }
            let a = student_t_quantile(0.9, df);
            let b = student_t_quantile(0.1, df);
            assert!((a + b).abs() < 1e-10, "asymmetric quantiles at df={df}");
        }
    }
}
