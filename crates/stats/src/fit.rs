//! Method-of-moments fitting of a shifted gamma distribution
//! (paper §VIII-A: "its parameters can be estimated through regression
//! analysis"; we use the simpler and robust moment matching the paper's
//! reference [26] also evaluates).

use crate::dist::ShiftedGamma;
use crate::moments::OnlineMoments;

/// Result of fitting a shifted gamma to delay samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaFit {
    /// Fitted distribution.
    pub dist: ShiftedGamma,
    /// Number of samples used.
    pub samples: u64,
}

/// Fits `d = η + Gamma(α, β)` to observed delays by method of moments.
///
/// The shift is estimated as the sample minimum deflated by a small margin
/// (the true shift can never exceed the minimum observation), then
/// `α = m²/v`, `β = v/m` with `m`, `v` the mean and variance of the excess
/// delay above the shift.
///
/// # Errors
///
/// Returns `None` when fewer than 8 samples are available or the excess
/// variance is degenerate (all samples equal — use a constant delay
/// instead).
pub fn fit_shifted_gamma(moments: &OnlineMoments) -> Option<GammaFit> {
    if moments.count() < 8 {
        return None;
    }
    // Deflate the observed minimum slightly so the smallest sample keeps a
    // nonzero excess; 1% of the spread is a pragmatic margin.
    let spread = (moments.max() - moments.min()).max(1e-9);
    let shift = (moments.min() - 0.01 * spread).max(0.0);
    let m = moments.mean() - shift;
    let v = moments.population_variance();
    if m <= 0.0 || v <= 0.0 {
        return None;
    }
    let shape = m * m / v;
    let scale = v / m;
    let dist = ShiftedGamma::new(shape, scale, shift).ok()?;
    Some(GammaFit {
        dist,
        samples: moments.count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Delay;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn too_few_samples_is_none() {
        let mut m = OnlineMoments::new();
        for x in [0.1, 0.2, 0.3] {
            m.push(x);
        }
        assert!(fit_shifted_gamma(&m).is_none());
    }

    #[test]
    fn degenerate_samples_is_none() {
        let mut m = OnlineMoments::new();
        for _ in 0..100 {
            m.push(0.25);
        }
        assert!(fit_shifted_gamma(&m).is_none());
    }

    #[test]
    fn round_trip_recovers_parameters() {
        // Sample from a known shifted gamma and re-fit; moments should
        // match well even if (α, β) individually trade off against η.
        let truth = ShiftedGamma::new(10.0, 0.004, 0.400).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let mut m = OnlineMoments::new();
        for _ in 0..100_000 {
            m.push(truth.sample(&mut rng));
        }
        let fit = fit_shifted_gamma(&m).expect("fit");
        assert!(
            (fit.dist.mean() - truth.mean()).abs() < 1e-3,
            "mean {} vs {}",
            fit.dist.mean(),
            truth.mean()
        );
        assert!(
            (fit.dist.variance() - truth.variance()).abs() < truth.variance() * 0.1,
            "var {} vs {}",
            fit.dist.variance(),
            truth.variance()
        );
        // CDF agreement at operating points (what the timeout optimizer
        // actually consumes).
        for &t in &[0.42, 0.44, 0.46] {
            assert!(
                (fit.dist.cdf(t) - truth.cdf(t)).abs() < 0.05,
                "cdf({t}): {} vs {}",
                fit.dist.cdf(t),
                truth.cdf(t)
            );
        }
    }
}
