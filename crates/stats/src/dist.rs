//! Continuous delay distributions (paper Eq. 24: `d_i ~ D_i`).

use crate::gamma::{ln_gamma, reg_gamma_lower};
use rand::Rng;
use std::fmt;

/// A one-way-delay distribution on `[0, ∞)` seconds.
///
/// Implemented by [`ConstantDelay`] (the deterministic model of §V),
/// [`ShiftedGamma`] (the Internet-delay model of §VI-B), [`UniformDelay`]
/// and [`Empirical`] (the discretized estimation fallback of §VIII-A).
pub trait Delay: fmt::Debug + Send + Sync {
    /// `P(d ≤ t)` for `t` in seconds.
    fn cdf(&self, t: f64) -> f64;

    /// Expected delay in seconds (`E[d_i]`, used by Eq. 25 to pick the
    /// acknowledgment path).
    fn mean(&self) -> f64;

    /// Delay variance in seconds².
    fn variance(&self) -> f64;

    /// Smallest possible delay (the location/shift parameter); used to
    /// bound discretization grids.
    fn min_delay(&self) -> f64;

    /// A pessimistic upper bound `t` with `P(d ≤ t)` ≈ 1, used to bound
    /// discretization grids. Defaults to `mean + 12·σ`.
    fn max_delay(&self) -> f64 {
        self.mean() + 12.0 * self.variance().sqrt()
    }

    /// Draws one delay sample in seconds.
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64;
}

/// Deterministic delay: the paper's base model (§V) where `d_i` is a
/// constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantDelay(f64);

impl ConstantDelay {
    /// Creates a constant delay of `seconds ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or NaN (infinite is allowed — the
    /// blackhole path has `d = ∞`).
    pub fn new(seconds: f64) -> Self {
        assert!(
            seconds >= 0.0 && !seconds.is_nan(),
            "delay must be ≥ 0, got {seconds}"
        );
        ConstantDelay(seconds)
    }

    /// The constant value in seconds.
    pub fn seconds(&self) -> f64 {
        self.0
    }
}

impl Delay for ConstantDelay {
    fn cdf(&self, t: f64) -> f64 {
        if t >= self.0 {
            1.0
        } else {
            0.0
        }
    }

    fn mean(&self) -> f64 {
        self.0
    }

    fn variance(&self) -> f64 {
        0.0
    }

    fn min_delay(&self) -> f64 {
        self.0
    }

    fn max_delay(&self) -> f64 {
        self.0
    }

    fn sample(&self, _rng: &mut dyn rand::RngCore) -> f64 {
        self.0
    }
}

/// Shifted gamma delay: `d = η + X`, `X ~ Gamma(shape α, scale β)`.
///
/// This is the paper's Internet-delay model (Eq. 24/31, refs \[23\]–\[26\]):
/// `E[d] = η + αβ`, `Var[d] = αβ²`. See the crate docs for why `β` is a
/// scale (not a rate) here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftedGamma {
    shape: f64,
    scale: f64,
    shift: f64,
}

impl ShiftedGamma {
    /// Creates a shifted gamma with `shape α > 0`, `scale β > 0` (seconds)
    /// and `shift η ≥ 0` (seconds).
    ///
    /// # Errors
    ///
    /// Returns a descriptive error string if any parameter is out of range
    /// or non-finite.
    pub fn new(shape: f64, scale: f64, shift: f64) -> Result<Self, String> {
        if !(shape > 0.0) || !shape.is_finite() {
            return Err(format!("shape must be finite and > 0, got {shape}"));
        }
        if !(scale > 0.0) || !scale.is_finite() {
            return Err(format!("scale must be finite and > 0, got {scale}"));
        }
        if !(shift >= 0.0) || !shift.is_finite() {
            return Err(format!("shift must be finite and ≥ 0, got {shift}"));
        }
        Ok(ShiftedGamma {
            shape,
            scale,
            shift,
        })
    }

    /// Shape parameter `α`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `β` in seconds.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Location parameter `η` in seconds.
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// Probability density at `t` seconds.
    pub fn pdf(&self, t: f64) -> f64 {
        let x = (t - self.shift) / self.scale;
        if x <= 0.0 {
            return 0.0;
        }
        let log_pdf = (self.shape - 1.0) * x.ln() - x - ln_gamma(self.shape) - self.scale.ln();
        log_pdf.exp()
    }

    /// Draws from Gamma(shape, 1) with Marsaglia–Tsang; `shape ≥ 1`.
    fn sample_unit_gamma(shape: f64, rng: &mut dyn rand::RngCore) -> f64 {
        debug_assert!(shape >= 1.0);
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            // Standard normal via Box–Muller (avoids the rand_distr dep).
            let u1: f64 = rng.random::<f64>().max(1e-300);
            let u2: f64 = rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let v = 1.0 + c * z;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u: f64 = rng.random::<f64>().max(1e-300);
            if u.ln() < 0.5 * z * z + d - d * v3 + d * v3.ln() {
                return d * v3;
            }
        }
    }
}

impl Delay for ShiftedGamma {
    fn cdf(&self, t: f64) -> f64 {
        let x = (t - self.shift) / self.scale;
        reg_gamma_lower(self.shape, x)
    }

    fn mean(&self) -> f64 {
        self.shift + self.shape * self.scale
    }

    fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    fn min_delay(&self) -> f64 {
        self.shift
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let g = if self.shape >= 1.0 {
            Self::sample_unit_gamma(self.shape, rng)
        } else {
            // Boost: Gamma(α) = Gamma(α+1) · U^{1/α}.
            let u: f64 = rng.random::<f64>().max(1e-300);
            Self::sample_unit_gamma(self.shape + 1.0, rng) * u.powf(1.0 / self.shape)
        };
        self.shift + self.scale * g
    }
}

/// Uniform delay on `[lo, hi]` seconds; handy for tests and for modelling
/// bounded jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformDelay {
    lo: f64,
    hi: f64,
}

impl UniformDelay {
    /// Creates a uniform delay on `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ lo ≤ hi` and both are finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo <= hi,
            "invalid uniform range [{lo}, {hi}]"
        );
        UniformDelay { lo, hi }
    }
}

impl Delay for UniformDelay {
    fn cdf(&self, t: f64) -> f64 {
        if self.hi == self.lo {
            return if t >= self.lo { 1.0 } else { 0.0 };
        }
        ((t - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    fn variance(&self) -> f64 {
        let w = self.hi - self.lo;
        w * w / 12.0
    }

    fn min_delay(&self) -> f64 {
        self.lo
    }

    fn max_delay(&self) -> f64 {
        self.hi
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        self.lo + (self.hi - self.lo) * rng.random::<f64>()
    }
}

/// Empirical delay distribution built from observed samples (the
/// discretized estimation approach of §VIII-A).
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    /// Sorted samples, seconds.
    sorted: Vec<f64>,
    mean: f64,
    variance: f64,
}

impl Empirical {
    /// Builds the ECDF from delay samples (seconds).
    ///
    /// # Errors
    ///
    /// Returns an error if `samples` is empty or contains non-finite or
    /// negative values.
    pub fn from_samples(mut samples: Vec<f64>) -> Result<Self, String> {
        if samples.is_empty() {
            return Err("empirical distribution needs at least one sample".into());
        }
        if samples.iter().any(|s| !s.is_finite() || *s < 0.0) {
            return Err("samples must be finite and ≥ 0".into());
        }
        samples.sort_by(|a, b| {
            a.partial_cmp(b)
                .expect("samples validated finite at construction")
        });
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let variance = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
        Ok(Empirical {
            sorted: samples,
            mean,
            variance,
        })
    }

    /// Number of samples backing the ECDF.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the distribution has no samples (never true for a
    /// constructed value; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

impl Delay for Empirical {
    fn cdf(&self, t: f64) -> f64 {
        // Count of samples ≤ t via partition point.
        let k = self.sorted.partition_point(|&s| s <= t);
        k as f64 / self.sorted.len() as f64
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.variance
    }

    fn min_delay(&self) -> f64 {
        self.sorted[0]
    }

    fn max_delay(&self) -> f64 {
        *self
            .sorted
            .last()
            .expect("sorted samples validated non-empty at construction")
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let idx = (rng.random::<f64>() * self.sorted.len() as f64) as usize;
        self.sorted[idx.min(self.sorted.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_delay_is_step() {
        let d = ConstantDelay::new(0.2);
        assert_eq!(d.cdf(0.1), 0.0);
        assert_eq!(d.cdf(0.2), 1.0);
        assert_eq!(d.cdf(0.3), 1.0);
        assert_eq!(d.mean(), 0.2);
        assert_eq!(d.variance(), 0.0);
    }

    #[test]
    fn constant_delay_allows_infinity() {
        // The blackhole path has d = ∞ (Eq. 19).
        let d = ConstantDelay::new(f64::INFINITY);
        assert_eq!(d.cdf(1e12), 0.0);
        assert_eq!(d.mean(), f64::INFINITY);
    }

    #[test]
    fn shifted_gamma_moments_match_table_v() {
        // Path 2 of Table V: η=100 ms, α=5, β=2 ms.
        let d = ShiftedGamma::new(5.0, 0.002, 0.100).unwrap();
        assert!((d.mean() - 0.110).abs() < 1e-12);
        assert!((d.variance() - 2e-5).abs() < 1e-12);
        assert_eq!(d.min_delay(), 0.100);
    }

    #[test]
    fn shifted_gamma_rejects_bad_params() {
        assert!(ShiftedGamma::new(0.0, 1.0, 0.0).is_err());
        assert!(ShiftedGamma::new(1.0, -1.0, 0.0).is_err());
        assert!(ShiftedGamma::new(1.0, 1.0, f64::NAN).is_err());
    }

    #[test]
    fn shifted_gamma_sampling_matches_moments() {
        let d = ShiftedGamma::new(10.0, 0.004, 0.400).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(
            (mean - d.mean()).abs() < 3e-4,
            "sample mean {mean} vs {}",
            d.mean()
        );
        assert!(
            (var - d.variance()).abs() < d.variance() * 0.05,
            "sample var {var} vs {}",
            d.variance()
        );
        assert!(samples.iter().all(|&s| s >= d.min_delay()));
    }

    #[test]
    fn shifted_gamma_sampling_small_shape() {
        let d = ShiftedGamma::new(0.5, 0.01, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (mean - d.mean()).abs() < 3e-4,
            "mean {mean} vs {}",
            d.mean()
        );
    }

    #[test]
    fn shifted_gamma_cdf_sampling_agreement() {
        // Kolmogorov–Smirnov-ish check at a few probe points.
        let d = ShiftedGamma::new(5.0, 0.002, 0.100).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let n = 100_000;
        let mut samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &t in &[0.105, 0.110, 0.115, 0.120] {
            let emp = samples.partition_point(|&s| s <= t) as f64 / n as f64;
            let thy = d.cdf(t);
            assert!((emp - thy).abs() < 0.01, "at t={t}: emp {emp} thy {thy}");
        }
    }

    #[test]
    fn uniform_delay_basics() {
        let d = UniformDelay::new(0.1, 0.3);
        assert_eq!(d.cdf(0.05), 0.0);
        assert!((d.cdf(0.2) - 0.5).abs() < 1e-12);
        assert_eq!(d.cdf(0.4), 1.0);
        assert!((d.mean() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empirical_ecdf() {
        let d = Empirical::from_samples(vec![0.3, 0.1, 0.2, 0.2]).unwrap();
        assert_eq!(d.cdf(0.05), 0.0);
        assert!((d.cdf(0.1) - 0.25).abs() < 1e-12);
        assert!((d.cdf(0.2) - 0.75).abs() < 1e-12);
        assert_eq!(d.cdf(0.3), 1.0);
        assert_eq!(d.min_delay(), 0.1);
        assert_eq!(d.max_delay(), 0.3);
        assert!((d.mean() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empirical_rejects_bad_input() {
        assert!(Empirical::from_samples(vec![]).is_err());
        assert!(Empirical::from_samples(vec![-0.1]).is_err());
        assert!(Empirical::from_samples(vec![f64::NAN]).is_err());
    }
}
