//! Statistics substrate for deadline-aware multipath communication.
//!
//! The paper's random-delay extension (§VI-B) models per-path one-way
//! delays as *shifted gamma* random variables (Eq. 24/31, after
//! Mukherjee/Paxson/Kim et al.) and needs, beyond sampling:
//!
//! * the regularized incomplete gamma function (the gamma CDF of Eq. 31),
//! * convolution of delay distributions (Eq. 34 convolves the CDF of one
//!   path's delay with the density of the ack path's delay),
//! * discretized distributions for the retransmission-timeout grid search,
//! * method-of-moments fitting from observed RTT samples (§VIII-A).
//!
//! No offline crate provides the incomplete-gamma CDF, so the special
//! functions are implemented here (Lanczos log-gamma; series and
//! continued-fraction expansions for `P(a, x)` following the classic
//! numerical-recipes formulation) and validated against known identities
//! and statistical tests.
//!
//! # Gamma parameterization
//!
//! Eq. 31 of the paper writes the CDF in *rate* form, but the stated
//! moments (`E[d] = η + αβ`, `Var[d] = αβ²`) and the Table-V parameters
//! only make sense with `β` as a **scale**; this crate therefore uses
//! shape `α`, scale `β`: `P(X ≤ x) = γ(α, x/β) / Γ(α)` (see DESIGN.md §1,
//! deviation 2).
//!
//! # Example: a Table-V path delay
//!
//! ```
//! use dmc_stats::{Delay, ShiftedGamma};
//!
//! // Path 1 of the paper's Experiment 2: η = 400 ms, α = 10, β = 4 ms.
//! let d = ShiftedGamma::new(10.0, 0.004, 0.400).unwrap();
//! assert!((d.mean() - 0.440).abs() < 1e-12);        // η + αβ
//! assert!((d.variance() - 1.6e-4).abs() < 1e-12);   // αβ²
//! assert!(d.cdf(0.400) < 1e-9);                     // nothing below the shift
//! assert!(d.cdf(0.600) > 0.999_999);                // far tail
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod discrete;
mod dist;
mod fit;
mod gamma;
mod moments;
mod student;
mod trial;

pub use discrete::DiscreteDist;
pub use dist::{ConstantDelay, Delay, Empirical, ShiftedGamma, UniformDelay};
pub use fit::{fit_shifted_gamma, GammaFit};
pub use gamma::{ln_gamma, reg_gamma_lower, reg_gamma_upper};
pub use moments::OnlineMoments;
pub use student::{reg_inc_beta, student_t_cdf, student_t_quantile};
pub use trial::TrialStats;
