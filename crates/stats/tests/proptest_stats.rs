//! Property-based tests for the statistics substrate.

use dmc_stats::{
    fit_shifted_gamma, reg_gamma_lower, reg_gamma_upper, ConstantDelay, Delay, DiscreteDist,
    OnlineMoments, ShiftedGamma, UniformDelay,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// P(a,·) is a CDF: 0 at 0, 1 at ∞, monotone, complementary to Q.
    #[test]
    fn regularized_gamma_is_a_cdf(a in 0.05f64..80.0, x1 in 0.0f64..200.0, x2 in 0.0f64..200.0) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let p_lo = reg_gamma_lower(a, lo);
        let p_hi = reg_gamma_lower(a, hi);
        prop_assert!((0.0..=1.0).contains(&p_lo));
        prop_assert!(p_hi >= p_lo - 1e-12, "not monotone: P({a},{lo})={p_lo} > P({a},{hi})={p_hi}");
        prop_assert!((reg_gamma_lower(a, x1) + reg_gamma_upper(a, x1) - 1.0).abs() < 1e-10);
    }

    /// Gamma recurrence P(a+1, x) = P(a, x) − xᵃe⁻ˣ/Γ(a+1).
    #[test]
    fn gamma_recurrence(a in 0.2f64..40.0, x in 0.01f64..80.0) {
        let lhs = reg_gamma_lower(a + 1.0, x);
        let correction = (a * x.ln() - x - dmc_stats::ln_gamma(a + 1.0)).exp();
        let rhs = reg_gamma_lower(a, x) - correction;
        prop_assert!((lhs - rhs).abs() < 1e-9, "a={a} x={x}: {lhs} vs {rhs}");
    }

    /// Every Delay implementation: CDF bounded, monotone, respects
    /// min_delay, and samples land in the support.
    #[test]
    fn delay_contract(shape in 0.5f64..30.0, scale in 0.0005f64..0.05, shift in 0.0f64..0.5,
                      seed in any::<u64>()) {
        let dists: Vec<Box<dyn Delay>> = vec![
            Box::new(ShiftedGamma::new(shape, scale, shift).expect("valid")),
            Box::new(ConstantDelay::new(shift)),
            Box::new(UniformDelay::new(shift, shift + scale * 10.0)),
        ];
        let mut rng = StdRng::seed_from_u64(seed);
        for d in &dists {
            prop_assert!(d.cdf(d.min_delay() - 1e-9) < 1e-9);
            prop_assert!(d.cdf(d.max_delay() + 1.0) > 0.999);
            let mut prev = 0.0;
            for k in 0..=20 {
                let t = d.min_delay() + (d.max_delay() - d.min_delay()) * k as f64 / 20.0;
                let c = d.cdf(t);
                prop_assert!((0.0..=1.0).contains(&c));
                prop_assert!(c >= prev - 1e-12);
                prev = c;
            }
            for _ in 0..50 {
                let s = d.sample(&mut rng);
                prop_assert!(s >= d.min_delay() - 1e-12, "sample {s} below support");
            }
        }
    }

    /// Discretization conserves mass and approximates the mean.
    #[test]
    fn discretization_conserves_mass(shape in 1.0f64..20.0, scale in 0.001f64..0.02,
                                     shift in 0.0f64..0.5) {
        let g = ShiftedGamma::new(shape, scale, shift).expect("valid");
        let d = DiscreteDist::from_delay(&g, 0.0005);
        let mass: f64 = d.pmf().iter().sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
        prop_assert!((d.mean() - g.mean()).abs() < 0.002,
            "grid mean {} vs exact {}", d.mean(), g.mean());
    }

    /// Convolution: mass 1, mean additive, support additive.
    #[test]
    fn convolution_linearity(s1 in 1.0f64..10.0, s2 in 1.0f64..10.0,
                             sh1 in 0.0f64..0.3, sh2 in 0.0f64..0.3) {
        let a = ShiftedGamma::new(s1, 0.002, sh1).expect("valid");
        let b = ShiftedGamma::new(s2, 0.002, sh2).expect("valid");
        let da = DiscreteDist::from_delay(&a, 0.001);
        let db = DiscreteDist::from_delay(&b, 0.001);
        let conv = da.convolve(&db);
        let mass: f64 = conv.pmf().iter().sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
        prop_assert!((conv.mean() - (a.mean() + b.mean())).abs() < 0.005);
        prop_assert!((conv.offset() - (sh1 + sh2)).abs() < 1e-9);
    }

    /// Welford matches the two-pass computation on arbitrary data.
    #[test]
    fn welford_matches_two_pass(xs in proptest::collection::vec(-1e6f64..1e6, 2..300)) {
        let mut m = OnlineMoments::new();
        for &x in &xs {
            m.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        prop_assert!((m.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((m.population_variance() - var).abs() < 1e-4 * (1.0 + var));
    }

    /// Fitting recovers the first two moments of the sampled data.
    #[test]
    fn moment_fit_recovers_moments(shape in 2.0f64..20.0, scale in 0.001f64..0.01,
                                   shift in 0.05f64..0.5, seed in any::<u64>()) {
        let truth = ShiftedGamma::new(shape, scale, shift).expect("valid");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = OnlineMoments::new();
        for _ in 0..20_000 {
            m.push(truth.sample(&mut rng));
        }
        let fit = fit_shifted_gamma(&m).expect("enough samples");
        prop_assert!((fit.dist.mean() - m.mean()).abs() < 1e-3);
        prop_assert!((fit.dist.variance() - m.population_variance()).abs()
            < 0.25 * m.population_variance() + 1e-9);
    }
}
