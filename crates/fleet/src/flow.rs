//! Flow identity and the tenant-facing request type.

use crate::error::FleetError;
use std::fmt;

/// Identity of one flow in a fleet.
///
/// Ids are assigned by [`crate::FleetPlanner`] in **offer order**, starting
/// at 0, and *every* offer consumes one — rejected flows too — so a trace
/// author can predict the id of the `k`-th arrival without knowing
/// admission outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(u64);

impl FlowId {
    pub(crate) fn new(index: u64) -> Self {
        FlowId(index)
    }

    /// The id of the `index`-th offer (0-based) — how trace authors name
    /// flows ahead of time: ids are assigned sequentially per offer,
    /// admitted or not.
    pub fn from_index(index: u64) -> Self {
        FlowId(index)
    }

    /// The offer-order index this id encodes.
    pub fn index(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow#{}", self.0)
    }
}

/// One tenant's request: how much data, by when, how reliably, at what
/// spend, and how important.
///
/// A request describes *demand only* — the shared paths belong to the
/// [`crate::FleetPlanner`]. Defaults: best-effort (no quality floor), no
/// cost budget, priority 1, the paper's `m = 2` transmissions.
///
/// ```
/// use dmc_fleet::FlowRequest;
///
/// # fn main() -> Result<(), dmc_fleet::FleetError> {
/// // 20 Mbps of video frames, useless after 600 ms, ≥ 95 % must make it.
/// let video = FlowRequest::new(20e6, 0.600)?
///     .with_min_quality(0.95)
///     .with_priority(4.0);
/// // A bulk sync that tolerates any loss rate the allocator leaves it.
/// let bulk = FlowRequest::new(40e6, 1.5)?;
/// assert!(video.min_quality() > bulk.min_quality());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FlowRequest {
    data_rate: f64,
    lifetime: f64,
    min_quality: f64,
    cost_budget: f64,
    priority: f64,
    transmissions: usize,
    paths: Option<Vec<usize>>,
}

impl FlowRequest {
    /// A best-effort flow of `data_rate_bps` whose data expires
    /// `lifetime_s` after generation.
    ///
    /// # Errors
    ///
    /// Rejects non-finite or non-positive rate/lifetime.
    pub fn new(data_rate_bps: f64, lifetime_s: f64) -> Result<Self, FleetError> {
        if !(data_rate_bps > 0.0) || !data_rate_bps.is_finite() {
            return Err(FleetError::Invalid(format!(
                "flow data rate must be finite and > 0, got {data_rate_bps}"
            )));
        }
        if !(lifetime_s > 0.0) || !lifetime_s.is_finite() {
            return Err(FleetError::Invalid(format!(
                "flow lifetime must be finite and > 0, got {lifetime_s}"
            )));
        }
        Ok(FlowRequest {
            data_rate: data_rate_bps,
            lifetime: lifetime_s,
            min_quality: 0.0,
            cost_budget: f64::INFINITY,
            priority: 1.0,
            transmissions: 2,
            paths: None,
        })
    }

    /// Requires at least this fraction of the flow's data to be delivered
    /// in time (the admission-control floor; 0 = best effort).
    ///
    /// # Panics
    ///
    /// Panics unless `quality ∈ [0, 1]`.
    #[must_use]
    pub fn with_min_quality(mut self, quality: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&quality),
            "quality floor must be in [0, 1], got {quality}"
        );
        self.min_quality = quality;
        self
    }

    /// The same floor expressed as a loss tolerance: at most `tolerance`
    /// of the flow's data may miss its deadline.
    ///
    /// # Panics
    ///
    /// Panics unless `tolerance ∈ [0, 1]`.
    #[must_use]
    pub fn with_loss_tolerance(self, tolerance: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&tolerance),
            "loss tolerance must be in [0, 1], got {tolerance}"
        );
        self.with_min_quality(1.0 - tolerance)
    }

    /// Caps the flow's spend (cost units per second, Eq. 7).
    ///
    /// # Panics
    ///
    /// Panics unless `per_second > 0` (∞ = unconstrained is allowed).
    #[must_use]
    pub fn with_cost_budget(mut self, per_second: f64) -> Self {
        assert!(per_second > 0.0, "cost budget must be > 0");
        self.cost_budget = per_second;
        self
    }

    /// Priority weight for [`crate::FleetObjective::WeightedFair`]
    /// (default 1; higher = more of the shared quality budget).
    ///
    /// # Panics
    ///
    /// Panics unless `weight` is finite and > 0.
    #[must_use]
    pub fn with_priority(mut self, weight: f64) -> Self {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "priority must be finite and > 0, got {weight}"
        );
        self.priority = weight;
        self
    }

    /// Number of transmissions `m` per data unit (default 2: one
    /// transmission + one retransmission, the paper's base model).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    #[must_use]
    pub fn with_transmissions(mut self, m: usize) -> Self {
        assert!(m > 0, "need at least one transmission");
        self.transmissions = m;
        self
    }

    /// Restricts the flow to a subset of the fleet's shared paths, named
    /// by 0-based path index (default: every shared path). Indices are
    /// sorted and deduplicated here; they are validated against the
    /// actual path count when the flow is offered. Flows whose path sets
    /// never overlap end up in disjoint capacity regions and can be
    /// admitted by independent shards (see `dmc_fleet::service`).
    ///
    /// # Panics
    ///
    /// Panics if `paths` is empty.
    #[must_use]
    pub fn with_paths(mut self, mut paths: Vec<usize>) -> Self {
        assert!(!paths.is_empty(), "a flow needs at least one usable path");
        paths.sort_unstable();
        paths.dedup();
        self.paths = Some(paths);
        self
    }

    /// The restricted path set (sorted, deduplicated global path
    /// indices), or `None` when the flow may use every shared path.
    pub fn paths(&self) -> Option<&[usize]> {
        self.paths.as_deref()
    }

    /// Application data rate `λ_f` in bits/second.
    pub fn data_rate(&self) -> f64 {
        self.data_rate
    }

    /// Data lifetime `δ_f` in seconds (the flow's deadline).
    pub fn lifetime(&self) -> f64 {
        self.lifetime
    }

    /// Required in-time delivery fraction (0 = best effort).
    pub fn min_quality(&self) -> f64 {
        self.min_quality
    }

    /// Cost budget per second (∞ when unconstrained).
    pub fn cost_budget(&self) -> f64 {
        self.cost_budget
    }

    /// Priority weight (see [`FlowRequest::with_priority`]).
    pub fn priority(&self) -> f64 {
        self.priority
    }

    /// Number of transmissions per data unit.
    pub fn transmissions(&self) -> usize {
        self.transmissions
    }

    /// A copy of this request with a re-scaled rate/budget and a
    /// replacement path set — the service router's two-phase spanning
    /// split. Callers guarantee validity (positive finite rate, positive
    /// budget or `+∞`, sorted deduplicated paths).
    pub(crate) fn scaled_to(
        &self,
        data_rate: f64,
        cost_budget: f64,
        paths: Option<Vec<usize>>,
    ) -> FlowRequest {
        FlowRequest {
            data_rate,
            cost_budget,
            paths,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_validation_and_defaults() {
        let r = FlowRequest::new(10e6, 0.5).unwrap();
        assert_eq!(r.min_quality(), 0.0);
        assert_eq!(r.cost_budget(), f64::INFINITY);
        assert_eq!(r.priority(), 1.0);
        assert_eq!(r.transmissions(), 2);
        assert!(FlowRequest::new(0.0, 0.5).is_err());
        assert!(FlowRequest::new(10e6, f64::NAN).is_err());
        assert!(FlowRequest::new(f64::INFINITY, 0.5).is_err());
    }

    #[test]
    fn loss_tolerance_is_the_quality_complement() {
        let r = FlowRequest::new(10e6, 0.5)
            .unwrap()
            .with_loss_tolerance(0.2);
        assert!((r.min_quality() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn path_subsets_are_sorted_and_deduplicated() {
        let r = FlowRequest::new(10e6, 0.5).unwrap();
        assert!(r.paths().is_none());
        let r = r.with_paths(vec![3, 1, 3, 0]);
        assert_eq!(r.paths(), Some(&[0, 1, 3][..]));
    }

    #[test]
    #[should_panic(expected = "at least one usable path")]
    fn empty_path_subset_panics() {
        let _ = FlowRequest::new(10e6, 0.5).unwrap().with_paths(Vec::new());
    }

    #[test]
    fn flow_id_display_and_order() {
        assert_eq!(format!("{}", FlowId::new(3)), "flow#3");
        assert!(FlowId::new(1) < FlowId::new(2));
        assert_eq!(FlowId::new(7).index(), 7);
    }
}
