//! Deterministic event timelines: arrival traces a fleet can replay.
//!
//! A [`FleetTrace`] is a validated, time-sorted schedule of
//! [`FleetEvent`]s — `Arrive`/`Depart` plus the [`dmc_sim::LinkChange`]
//! vocabulary (`Fail`/`Recover`/`SetBandwidth`/`SetLoss`) — mirroring how
//! [`dmc_sim::Dynamics`] schedules link changes for the simulator.
//! Replaying the same trace through fresh [`FleetPlanner`]s produces
//! bit-identical snapshot sequences (the `admission_invariants` test pins
//! this), which is what lets the experiment layer sweep offered load with
//! Monte-Carlo trials whose aggregates are thread-count independent.
//!
//! Two replay modes consume a trace:
//!
//! * [`FleetPlanner::replay`] — the instant planner: events run in
//!   order and timestamps are informational only.
//! * [`SchedulePlanner::replay`] — the slotted planner: each event's
//!   timestamp is mapped to its [`TimeGrid`] slot, the horizon advances
//!   to it, and arrivals become windowed offers covering the flow's
//!   lifetime — so the *same* trace exercises expiry, truncation and
//!   slot-based revival. With a single-slot horizon wider than the
//!   trace, the slotted replay degenerates to the instant one
//!   (`tests/schedule_parity.rs` pins this).

use crate::error::FleetError;
use crate::flow::{FlowId, FlowRequest};
use crate::planner::{AdmissionDecision, FleetPlanner};
use crate::schedule::{
    ScheduleAdvance, ScheduleDecision, SchedulePlanner, ScheduleRequest, ScheduleShuffle,
    SlotWindow,
};
use dmc_sim::LinkChange;

/// One fleet-level event.
#[derive(Debug, Clone)]
pub enum FleetEvent {
    /// A flow asks for admission.
    Arrive(FlowRequest),
    /// An admitted flow leaves (ids are offer-ordered; see [`FlowId`]).
    /// Departing a flow that was rejected — or definitively rejected
    /// after being shed — is a no-op during replay, so traces can
    /// schedule departures without knowing admission outcomes in
    /// advance; departing a flow waiting in the re-admission queue
    /// withdraws it.
    Depart(FlowId),
    /// A shared link changes (the [`dmc_sim::Dynamics`] vocabulary).
    Link {
        /// Shared path index, 0-based.
        path: usize,
        /// The change itself.
        change: LinkChange,
    },
}

/// One scheduled event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// When the event happens (seconds). [`FleetPlanner::replay`] only
    /// uses it for ordering; [`SchedulePlanner::replay`] maps it to a
    /// [`TimeGrid`](crate::TimeGrid) slot and advances the horizon to it.
    pub at: f64,
    /// What happens.
    pub event: FleetEvent,
}

/// A validated schedule of fleet events, kept sorted by time (FIFO within
/// ties, like [`dmc_sim::Dynamics`]).
#[derive(Debug, Clone, Default)]
pub struct FleetTrace {
    events: Vec<TraceEvent>,
}

impl FleetTrace {
    /// An empty trace.
    pub fn new() -> Self {
        FleetTrace::default()
    }

    /// Whether the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events, sorted by time (insertion order within ties).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    fn push(mut self, at: f64, event: FleetEvent) -> Result<Self, FleetError> {
        if !(at >= 0.0) || !at.is_finite() {
            return Err(FleetError::Invalid(format!(
                "event time must be finite and ≥ 0, got {at}"
            )));
        }
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(idx, TraceEvent { at, event });
        Ok(self)
    }

    /// Schedules an arrival at `at_s` seconds.
    ///
    /// # Errors
    ///
    /// Rejects non-finite/negative times.
    pub fn arrive(self, at_s: f64, request: FlowRequest) -> Result<Self, FleetError> {
        self.push(at_s, FleetEvent::Arrive(request))
    }

    /// Schedules a departure at `at_s` seconds.
    ///
    /// # Errors
    ///
    /// Rejects non-finite/negative times.
    pub fn depart(self, at_s: f64, flow: FlowId) -> Result<Self, FleetError> {
        self.push(at_s, FleetEvent::Depart(flow))
    }

    /// Schedules a link change at `at_s` seconds.
    ///
    /// # Errors
    ///
    /// Rejects non-finite/negative times (path/change validity is checked
    /// at replay time, against the fleet's actual paths).
    pub fn link(self, at_s: f64, path: usize, change: LinkChange) -> Result<Self, FleetError> {
        self.push(at_s, FleetEvent::Link { path, change })
    }
}

/// The fleet's state right after one replayed event.
#[derive(Debug, Clone)]
pub struct FleetSnapshot {
    /// The event's scheduled time.
    pub at: f64,
    /// The admission decision, for `Arrive` events.
    pub decision: Option<AdmissionDecision>,
    /// The flow that left, for effective `Depart` events (`None` when the
    /// departure was a no-op because the flow was never admitted).
    pub departed: Option<FlowId>,
    /// Flows shed into the re-admission queue by a link change (empty
    /// otherwise).
    pub shed: Vec<FlowId>,
    /// Flows revived from the re-admission queue by this event's sweep
    /// (link changes and departures both free capacity; empty otherwise).
    pub revived: Vec<FlowId>,
    /// Admitted flows after the event, in admission order.
    pub admitted: Vec<FlowId>,
    /// Per-path utilization after the event.
    pub utilization: Vec<f64>,
    /// Rate-weighted mean quality of the admitted flows after the event.
    pub aggregate_quality: f64,
}

impl FleetPlanner {
    /// Replays a trace event by event, returning one [`FleetSnapshot`]
    /// per event.
    ///
    /// Replay is deterministic: the same trace through the same initial
    /// fleet state yields bit-identical snapshots, regardless of thread
    /// counts or environment.
    ///
    /// # Errors
    ///
    /// Forwards [`FleetPlanner::offer`]/[`FleetPlanner::apply_link_change`]
    /// errors. Departing a never-admitted flow is a recorded no-op, not an
    /// error (see [`FleetEvent::Depart`]).
    pub fn replay(&mut self, trace: &FleetTrace) -> Result<Vec<FleetSnapshot>, FleetError> {
        let mut snapshots = Vec::with_capacity(trace.events().len());
        for e in trace.events() {
            let revived_before = self.revived_flows().len();
            let (decision, departed, shed) = match &e.event {
                FleetEvent::Arrive(request) => {
                    (Some(self.offer(request.clone())?), None, Vec::new())
                }
                FleetEvent::Depart(id) => match self.depart(*id) {
                    Ok(_) => (None, Some(*id), Vec::new()),
                    Err(FleetError::UnknownFlow(_)) => (None, None, Vec::new()),
                    Err(other) => return Err(other),
                },
                FleetEvent::Link { path, change } => {
                    (None, None, self.apply_link_change(*path, change)?)
                }
            };
            snapshots.push(FleetSnapshot {
                at: e.at,
                decision,
                departed,
                shed,
                revived: self.revived_flows()[revived_before..].to_vec(),
                admitted: self.flow_ids(),
                utilization: self.utilization(),
                aggregate_quality: self.aggregate_quality(),
            });
        }
        Ok(snapshots)
    }
}

/// The slotted fleet's state right after one replayed event.
#[derive(Debug, Clone)]
pub struct ScheduleSnapshot {
    /// The event's scheduled time.
    pub at: f64,
    /// The [`TimeGrid`](crate::TimeGrid) slot the time maps to.
    pub slot: u64,
    /// What advancing the horizon to the event's slot did (`None` when
    /// the event landed in the current origin slot).
    pub advance: Option<ScheduleAdvance>,
    /// The scheduling decision, for `Arrive` events.
    pub decision: Option<ScheduleDecision>,
    /// The flow that left, for effective `Depart` events.
    pub departed: Option<FlowId>,
    /// Who a link change rescheduled or dropped, for `Link` events.
    pub shuffle: Option<ScheduleShuffle>,
    /// Scheduled flows after the event, in admission order.
    pub active: Vec<FlowId>,
    /// Volume-weighted mean predicted quality after the event.
    pub aggregate_quality: f64,
}

impl SchedulePlanner {
    /// Replays a trace against the slotted horizon: each event's
    /// timestamp is mapped to its slot, the horizon advances to it
    /// (expiring and truncating windows on the way), and arrivals
    /// become windowed offers — the window opens at the event's slot
    /// and spans the flow's lifetime, rounded up to whole slots and
    /// clamped to the horizon.
    ///
    /// Replay is deterministic: the same trace through the same initial
    /// state yields bit-identical snapshots.
    ///
    /// # Errors
    ///
    /// Forwards offer/advance/link errors. Departing a never-admitted
    /// flow is a recorded no-op, matching [`FleetPlanner::replay`].
    pub fn replay(&mut self, trace: &FleetTrace) -> Result<Vec<ScheduleSnapshot>, FleetError> {
        let mut snapshots = Vec::with_capacity(trace.events().len());
        for e in trace.events() {
            let slot = self.grid().slot_of(e.at)?;
            let advance = if slot > self.grid().origin() {
                Some(self.advance_to(slot)?)
            } else {
                None
            };
            let (decision, departed, shuffle) = match &e.event {
                FleetEvent::Arrive(request) => {
                    let width = self.grid().slot_width();
                    let len = ((request.lifetime() / width).ceil() as u64).max(1);
                    let start = slot.max(self.grid().origin());
                    let end = (start + len).min(self.grid().end());
                    let window = SlotWindow::new(start, end)
                        .expect("the horizon always extends past its origin slot");
                    let offer = self.offer(ScheduleRequest::new(request.clone(), window))?;
                    (Some(offer), None, None)
                }
                FleetEvent::Depart(id) => match self.depart(*id) {
                    Ok(()) => (None, Some(*id), None),
                    Err(FleetError::UnknownFlow(_)) => (None, None, None),
                    Err(other) => return Err(other),
                },
                FleetEvent::Link { path, change } => {
                    (None, None, Some(self.apply_link_change(*path, change)?))
                }
            };
            snapshots.push(ScheduleSnapshot {
                at: e.at,
                slot,
                advance,
                decision,
                departed,
                shuffle,
                active: self.flow_ids(),
                aggregate_quality: self.aggregate_quality(),
            });
        }
        Ok(snapshots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::FleetConfig;
    use crate::schedule::TimeGrid;
    use dmc_core::ScenarioPath;

    fn paths() -> Vec<ScenarioPath> {
        vec![
            ScenarioPath::constant(80e6, 0.450, 0.2).unwrap(),
            ScenarioPath::constant(20e6, 0.150, 0.0).unwrap(),
        ]
    }

    fn sample_trace() -> FleetTrace {
        FleetTrace::new()
            .arrive(
                0.0,
                FlowRequest::new(40e6, 0.8).unwrap().with_min_quality(0.8),
            )
            .unwrap()
            .arrive(1.0, FlowRequest::new(30e6, 0.6).unwrap())
            .unwrap()
            .link(2.0, 0, LinkChange::SetBandwidth(40e6))
            .unwrap()
            .depart(3.0, FlowId::new(0))
            .unwrap()
            .depart(3.5, FlowId::new(7)) // never offered: replay no-op
            .unwrap()
    }

    #[test]
    fn trace_stays_time_sorted_and_validates_times() {
        let t = FleetTrace::new()
            .depart(5.0, FlowId::new(0))
            .unwrap()
            .arrive(1.0, FlowRequest::new(1e6, 0.5).unwrap())
            .unwrap();
        assert_eq!(t.events().len(), 2);
        assert!(t.events()[0].at < t.events()[1].at);
        assert!(FleetTrace::new().depart(f64::NAN, FlowId::new(0)).is_err());
        assert!(FleetTrace::new().depart(-1.0, FlowId::new(0)).is_err());
        assert!(FleetTrace::new().is_empty());
    }

    #[test]
    fn replay_walks_the_whole_trace() {
        let mut fleet = FleetPlanner::new(paths(), FleetConfig::default()).unwrap();
        let snaps = fleet.replay(&sample_trace()).unwrap();
        assert_eq!(snaps.len(), 5);
        // Both arrivals admitted.
        assert!(snaps[0].decision.as_ref().unwrap().is_admitted());
        assert!(snaps[1].decision.as_ref().unwrap().is_admitted());
        assert_eq!(snaps[1].admitted.len(), 2);
        // The bandwidth cut keeps both only if floors still fit.
        assert!(snaps[2].admitted.len() + snaps[2].shed.len() == 2);
        // flow#0 departs (if it survived the link change).
        if snaps[2].admitted.contains(&FlowId::new(0)) {
            assert_eq!(snaps[3].departed, Some(FlowId::new(0)));
        }
        // Departing a never-admitted id is a recorded no-op.
        assert_eq!(snaps[4].departed, None);
        assert_eq!(snaps[4].admitted, snaps[3].admitted);
    }

    #[test]
    fn slotted_replay_honors_event_timestamps() {
        let grid = TimeGrid::new(1.0, 8).unwrap();
        let mut fleet = SchedulePlanner::new(paths(), grid, FleetConfig::default()).unwrap();
        let snaps = fleet.replay(&sample_trace()).unwrap();
        assert_eq!(snaps.len(), 5);
        // Timestamps map to slots instead of being flattened to "now".
        assert_eq!(
            snaps.iter().map(|s| s.slot).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 3]
        );
        // The first event lands in the origin slot: no advance.
        assert!(snaps[0].advance.is_none());
        assert!(snaps[0].decision.as_ref().unwrap().is_scheduled());
        // Crossing into slot 1 advances the horizon, completing flow#0
        // (lifetime 0.8 s rounds up to the one-slot window [0, 1)).
        let adv = snaps[1].advance.as_ref().unwrap();
        assert_eq!(adv.completed, vec![FlowId::new(0)]);
        assert!(snaps[1].decision.as_ref().unwrap().is_scheduled());
        // By slot 2 both short flows have completed, so the bandwidth
        // cut shuffles nobody.
        assert!(snaps[2].shuffle.as_ref().unwrap().is_quiet());
        assert!(snaps[2].active.is_empty());
        // flow#0 already completed: its departure is a recorded no-op.
        assert_eq!(snaps[3].departed, None);
        assert_eq!(snaps[4].departed, None);
    }

    #[test]
    fn slotted_replay_is_deterministic_across_fresh_fleets() {
        let run = || {
            let grid = TimeGrid::new(1.0, 8).unwrap();
            let mut fleet = SchedulePlanner::new(paths(), grid, FleetConfig::default()).unwrap();
            fleet.replay(&sample_trace()).unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.slot, y.slot);
            assert_eq!(x.active, y.active);
            assert_eq!(x.aggregate_quality, y.aggregate_quality); // bitwise
        }
    }

    #[test]
    fn replay_is_deterministic_across_fresh_fleets() {
        let run = || {
            let mut fleet = FleetPlanner::new(paths(), FleetConfig::default()).unwrap();
            fleet.replay(&sample_trace()).unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.admitted, y.admitted);
            assert_eq!(x.utilization, y.utilization); // bitwise
            assert_eq!(x.aggregate_quality, y.aggregate_quality);
        }
    }
}
