//! Deterministic event timelines: arrival traces a fleet can replay.
//!
//! A [`FleetTrace`] is a validated, time-sorted schedule of
//! [`FleetEvent`]s — `Arrive`/`Depart` plus the [`dmc_sim::LinkChange`]
//! vocabulary (`Fail`/`Recover`/`SetBandwidth`/`SetLoss`) — mirroring how
//! [`dmc_sim::Dynamics`] schedules link changes for the simulator.
//! Replaying the same trace through fresh [`FleetPlanner`]s produces
//! bit-identical snapshot sequences (the `admission_invariants` test pins
//! this), which is what lets the experiment layer sweep offered load with
//! Monte-Carlo trials whose aggregates are thread-count independent.

use crate::error::FleetError;
use crate::flow::{FlowId, FlowRequest};
use crate::planner::{AdmissionDecision, FleetPlanner};
use dmc_sim::LinkChange;

/// One fleet-level event.
#[derive(Debug, Clone)]
pub enum FleetEvent {
    /// A flow asks for admission.
    Arrive(FlowRequest),
    /// An admitted flow leaves (ids are offer-ordered; see [`FlowId`]).
    /// Departing a flow that was rejected — or definitively rejected
    /// after being shed — is a no-op during replay, so traces can
    /// schedule departures without knowing admission outcomes in
    /// advance; departing a flow waiting in the re-admission queue
    /// withdraws it.
    Depart(FlowId),
    /// A shared link changes (the [`dmc_sim::Dynamics`] vocabulary).
    Link {
        /// Shared path index, 0-based.
        path: usize,
        /// The change itself.
        change: LinkChange,
    },
}

/// One scheduled event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// When the event happens (seconds; informational — replay is
    /// sequential, not clocked).
    pub at: f64,
    /// What happens.
    pub event: FleetEvent,
}

/// A validated schedule of fleet events, kept sorted by time (FIFO within
/// ties, like [`dmc_sim::Dynamics`]).
#[derive(Debug, Clone, Default)]
pub struct FleetTrace {
    events: Vec<TraceEvent>,
}

impl FleetTrace {
    /// An empty trace.
    pub fn new() -> Self {
        FleetTrace::default()
    }

    /// Whether the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events, sorted by time (insertion order within ties).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    fn push(mut self, at: f64, event: FleetEvent) -> Result<Self, FleetError> {
        if !(at >= 0.0) || !at.is_finite() {
            return Err(FleetError::Invalid(format!(
                "event time must be finite and ≥ 0, got {at}"
            )));
        }
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(idx, TraceEvent { at, event });
        Ok(self)
    }

    /// Schedules an arrival at `at_s` seconds.
    ///
    /// # Errors
    ///
    /// Rejects non-finite/negative times.
    pub fn arrive(self, at_s: f64, request: FlowRequest) -> Result<Self, FleetError> {
        self.push(at_s, FleetEvent::Arrive(request))
    }

    /// Schedules a departure at `at_s` seconds.
    ///
    /// # Errors
    ///
    /// Rejects non-finite/negative times.
    pub fn depart(self, at_s: f64, flow: FlowId) -> Result<Self, FleetError> {
        self.push(at_s, FleetEvent::Depart(flow))
    }

    /// Schedules a link change at `at_s` seconds.
    ///
    /// # Errors
    ///
    /// Rejects non-finite/negative times (path/change validity is checked
    /// at replay time, against the fleet's actual paths).
    pub fn link(self, at_s: f64, path: usize, change: LinkChange) -> Result<Self, FleetError> {
        self.push(at_s, FleetEvent::Link { path, change })
    }
}

/// The fleet's state right after one replayed event.
#[derive(Debug, Clone)]
pub struct FleetSnapshot {
    /// The event's scheduled time.
    pub at: f64,
    /// The admission decision, for `Arrive` events.
    pub decision: Option<AdmissionDecision>,
    /// The flow that left, for effective `Depart` events (`None` when the
    /// departure was a no-op because the flow was never admitted).
    pub departed: Option<FlowId>,
    /// Flows shed into the re-admission queue by a link change (empty
    /// otherwise).
    pub shed: Vec<FlowId>,
    /// Flows revived from the re-admission queue by this event's sweep
    /// (link changes and departures both free capacity; empty otherwise).
    pub revived: Vec<FlowId>,
    /// Admitted flows after the event, in admission order.
    pub admitted: Vec<FlowId>,
    /// Per-path utilization after the event.
    pub utilization: Vec<f64>,
    /// Rate-weighted mean quality of the admitted flows after the event.
    pub aggregate_quality: f64,
}

impl FleetPlanner {
    /// Replays a trace event by event, returning one [`FleetSnapshot`]
    /// per event.
    ///
    /// Replay is deterministic: the same trace through the same initial
    /// fleet state yields bit-identical snapshots, regardless of thread
    /// counts or environment.
    ///
    /// # Errors
    ///
    /// Forwards [`FleetPlanner::offer`]/[`FleetPlanner::apply_link_change`]
    /// errors. Departing a never-admitted flow is a recorded no-op, not an
    /// error (see [`FleetEvent::Depart`]).
    pub fn replay(&mut self, trace: &FleetTrace) -> Result<Vec<FleetSnapshot>, FleetError> {
        let mut snapshots = Vec::with_capacity(trace.events().len());
        for e in trace.events() {
            let revived_before = self.revived_flows().len();
            let (decision, departed, shed) = match &e.event {
                FleetEvent::Arrive(request) => {
                    (Some(self.offer(request.clone())?), None, Vec::new())
                }
                FleetEvent::Depart(id) => match self.depart(*id) {
                    Ok(_) => (None, Some(*id), Vec::new()),
                    Err(FleetError::UnknownFlow(_)) => (None, None, Vec::new()),
                    Err(other) => return Err(other),
                },
                FleetEvent::Link { path, change } => {
                    (None, None, self.apply_link_change(*path, change)?)
                }
            };
            snapshots.push(FleetSnapshot {
                at: e.at,
                decision,
                departed,
                shed,
                revived: self.revived_flows()[revived_before..].to_vec(),
                admitted: self.flow_ids(),
                utilization: self.utilization(),
                aggregate_quality: self.aggregate_quality(),
            });
        }
        Ok(snapshots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::FleetConfig;
    use dmc_core::ScenarioPath;

    fn paths() -> Vec<ScenarioPath> {
        vec![
            ScenarioPath::constant(80e6, 0.450, 0.2).unwrap(),
            ScenarioPath::constant(20e6, 0.150, 0.0).unwrap(),
        ]
    }

    fn sample_trace() -> FleetTrace {
        FleetTrace::new()
            .arrive(
                0.0,
                FlowRequest::new(40e6, 0.8).unwrap().with_min_quality(0.8),
            )
            .unwrap()
            .arrive(1.0, FlowRequest::new(30e6, 0.6).unwrap())
            .unwrap()
            .link(2.0, 0, LinkChange::SetBandwidth(40e6))
            .unwrap()
            .depart(3.0, FlowId::new(0))
            .unwrap()
            .depart(3.5, FlowId::new(7)) // never offered: replay no-op
            .unwrap()
    }

    #[test]
    fn trace_stays_time_sorted_and_validates_times() {
        let t = FleetTrace::new()
            .depart(5.0, FlowId::new(0))
            .unwrap()
            .arrive(1.0, FlowRequest::new(1e6, 0.5).unwrap())
            .unwrap();
        assert_eq!(t.events().len(), 2);
        assert!(t.events()[0].at < t.events()[1].at);
        assert!(FleetTrace::new().depart(f64::NAN, FlowId::new(0)).is_err());
        assert!(FleetTrace::new().depart(-1.0, FlowId::new(0)).is_err());
        assert!(FleetTrace::new().is_empty());
    }

    #[test]
    fn replay_walks_the_whole_trace() {
        let mut fleet = FleetPlanner::new(paths(), FleetConfig::default()).unwrap();
        let snaps = fleet.replay(&sample_trace()).unwrap();
        assert_eq!(snaps.len(), 5);
        // Both arrivals admitted.
        assert!(snaps[0].decision.as_ref().unwrap().is_admitted());
        assert!(snaps[1].decision.as_ref().unwrap().is_admitted());
        assert_eq!(snaps[1].admitted.len(), 2);
        // The bandwidth cut keeps both only if floors still fit.
        assert!(snaps[2].admitted.len() + snaps[2].shed.len() == 2);
        // flow#0 departs (if it survived the link change).
        if snaps[2].admitted.contains(&FlowId::new(0)) {
            assert_eq!(snaps[3].departed, Some(FlowId::new(0)));
        }
        // Departing a never-admitted id is a recorded no-op.
        assert_eq!(snaps[4].departed, None);
        assert_eq!(snaps[4].admitted, snaps[3].admitted);
    }

    #[test]
    fn replay_is_deterministic_across_fresh_fleets() {
        let run = || {
            let mut fleet = FleetPlanner::new(paths(), FleetConfig::default()).unwrap();
            fleet.replay(&sample_trace()).unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.admitted, y.admitted);
            assert_eq!(x.utilization, y.utilization); // bitwise
            assert_eq!(x.aggregate_quality, y.aggregate_quality);
        }
    }
}
