//! The fleet service: admission control plus joint shared-capacity
//! allocation across every admitted flow.
//!
//! # The joint LP
//!
//! A single-flow [`Planner`](dmc_core::Planner) solves (Eq. 10, per unit
//! of `λ`):
//!
//! ```text
//! max p·x   s.t.  usage_k·x ≤ b_k/λ  (per path),  Σx = 1,  x ≥ 0
//! ```
//!
//! The fleet generalizes it to `F` concurrent flows by concatenating the
//! per-flow assignment vectors into one variable block `x = (x¹ … x^F)`
//! and **sharing the capacity rows** (everything scaled by the aggregate
//! rate `Λ = Σ_f λ_f` so coefficients stay O(1)):
//!
//! ```text
//! max  Σ_f w_f (λ_f/Λ) p_f·x^f
//! s.t. Σ_f (λ_f/Λ) usage_{f,k}·x^f ≤ b_k/Λ          (shared, per path k)
//!      cost_f·x^f ≤ µ_f/λ_f                         (per budgeted flow)
//!      p_f·x^f ≥ q_f                                (per flow with a floor)
//!      Σ x^f = 1                                    (per flow)
//!      x ≥ 0
//! ```
//!
//! With one flow this degenerates — row for row, bit for bit — to the
//! single-flow planner's LP, which is what the
//! `parity_single_flow` test pins. The per-flow `p`/`usage`/`cost`
//! vectors come from [`Planner::model`](dmc_core::Planner::model), i.e.
//! the exact coefficient code both regimes (§V deterministic, §VI-B
//! random delays) already use.
//!
//! # Admission control
//!
//! A flow is *admitted* iff the joint LP stays feasible with the flow's
//! quality floor added — the DDCCast rule: accept a transfer only when
//! the remaining shared capacity can still meet every accepted deadline.
//! Rejected flows leave the incumbents' allocation untouched. Departures
//! and link changes re-solve the smaller/changed LP (warm-started from
//! the cached basis of the same joint shape); a link change that makes
//! the floors collectively infeasible triggers deterministic re-admission
//! highest priority first (admission order within ties), **shedding**
//! exactly the flows that no longer fit into a re-admission queue: each
//! subsequent capacity event (link change or departure) retries them
//! under capped exponential backoff until they are revived — keeping
//! their original ids — or definitively rejected within a bounded number
//! of events ([`FleetPlanner::SHED_HORIZON`]).
//!
//! # Incremental assembly
//!
//! The joint LP is block-angular — per-flow blocks coupled only by the
//! shared capacity rows — and by default it is **maintained, not
//! rebuilt**: admitting a flow appends its block (columns plus its cost/
//! floor/`Σx = 1` rows) or takes over a compatible tombstoned slot in
//! place; departing tombstones the block (`Σx = 1` → `Σx = 0`, objective
//! and shared-row segments zeroed), which forces the block to zero
//! *without changing the LP's shape*, so the warm-start cache keyed on
//! that shape keeps applying. Only the aggregate-rate-dependent segments
//! are rewritten per solve — recomputed fresh from the per-flow models,
//! never by scaling running values, so coefficients are a pure function
//! of the current membership. Tombstones are compacted away once they
//! outnumber the active flows. The assembled problem carries its block
//! boundaries, and the joint solves run on
//! [`dmc_lp::Backend::Sparse`], the block-structured solver built for
//! exactly this shape ([`FleetConfig::joint_backend`],
//! [`FleetConfig::incremental`] restore the old rebuild-per-solve path).

use crate::error::FleetError;
use crate::flow::{FlowId, FlowRequest};
use dmc_core::{
    Objective, Plan, Planner, PlannerConfig, Scenario, ScenarioModel, ScenarioPath, WarmStats,
};
use dmc_lp::{
    Backend, Basis, ConstraintKind, Problem, SolveError, SolveStatus, SolverOptions, Workspace,
};
use dmc_sim::LinkChange;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

/// What the joint LP optimizes across admitted flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FleetObjective {
    /// Admit as many flows as the floors allow (greedy, deadline-ordered
    /// in [`FleetPlanner::offer_batch`] — the DDCCast/ALAP flavor), then
    /// maximize rate-weighted total quality over the admitted set.
    #[default]
    MaxAdmitted,
    /// Maximize rate-weighted total quality `Σ_f (λ_f/Λ) Q_f` (aggregate
    /// in-time goodput fraction). Admission is still floor-feasibility
    /// based; batches keep arrival order.
    MaxTotalQuality,
    /// Maximize priority-weighted quality `Σ_f w_f (λ_f/Λ) Q_f`, where
    /// `w_f` is [`FlowRequest::priority`].
    WeightedFair,
}

/// Fleet-wide configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Objective of the joint LP (default [`FleetObjective::MaxAdmitted`]).
    pub objective: FleetObjective,
    /// Model/solver knobs shared by every per-flow model and joint solve
    /// (blackhole, discretization grid, solver options, `warm_start`).
    pub planner: PlannerConfig,
    /// LP backend for the **joint** solves (default
    /// [`Backend::Sparse`], the block-structured solver built for the
    /// joint LP's block-angular shape). Per-flow model construction and
    /// any single-flow planning keep using `planner.solver.backend`.
    pub joint_backend: Backend,
    /// Maintain the joint LP incrementally (default `true`): admitting a
    /// flow appends (or reuses) its assignment block in place, departing
    /// tombstones the block (its `Σx` row drops to 0, forcing the block
    /// to zero without changing the LP's shape — so the cached basis
    /// stays applicable), and only coefficient segments touched by the
    /// aggregate-rate rescaling are rewritten. With `false` the joint
    /// [`Problem`] is rebuilt from scratch on every solve (the pre-sparse
    /// behavior, kept as the differential baseline — see
    /// `tests/incremental_vs_rebuild.rs`).
    pub incremental: bool,
    /// Replay the feasibility certificate ([`dmc_lp::Solution::certify`])
    /// after **every** joint solve, even in release builds (default
    /// `false`: debug builds always certify, release builds skip it).
    /// Fault-injection harnesses turn this on so a bogus vertex aborts
    /// the run at the solve that produced it.
    pub certify: bool,
    /// Telemetry registry (default disabled). When enabled the planner
    /// records admission outcomes (`fleet.admits`, `fleet.refusals`),
    /// shed-queue traffic (`fleet.sheds`, `fleet.revives`,
    /// `fleet.shed_rejects`, the `fleet.shed_queue` gauge), departures
    /// and joint warm-start outcomes (`fleet.warm_*`). If
    /// `planner.solver.obs` is left disabled, [`FleetPlanner::new`]
    /// propagates this registry into it so the `lp.*` metrics of the
    /// per-flow and joint solves land in the same snapshot.
    pub obs: dmc_obs::Obs,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            objective: FleetObjective::default(),
            planner: PlannerConfig::default(),
            joint_backend: Backend::Sparse,
            incremental: true,
            certify: false,
            obs: dmc_obs::Obs::disabled(),
        }
    }
}

/// Outcome of one [`FleetPlanner::offer`].
#[derive(Debug, Clone)]
pub enum AdmissionDecision {
    /// The flow is in: the joint LP with its floor is feasible.
    Admitted {
        /// The assigned flow id.
        id: FlowId,
        /// The flow's predicted in-time delivery fraction under the joint
        /// allocation (≥ its floor).
        predicted_quality: f64,
    },
    /// The flow is out: no allocation of the remaining shared capacity
    /// meets its floor alongside every incumbent's.
    Rejected {
        /// The id the offer consumed (ids are offer-ordered; see
        /// [`FlowId`]).
        id: FlowId,
        /// Human-readable reason.
        reason: String,
    },
}

impl AdmissionDecision {
    /// Whether the flow was admitted.
    pub fn is_admitted(&self) -> bool {
        matches!(self, AdmissionDecision::Admitted { .. })
    }

    /// The flow id this decision is about.
    pub fn id(&self) -> FlowId {
        match self {
            AdmissionDecision::Admitted { id, .. } | AdmissionDecision::Rejected { id, .. } => *id,
        }
    }
}

/// One shared path's mutable state (the base description plus the link
/// dynamics applied so far). Shared with the slotted
/// [`SchedulePlanner`](crate::SchedulePlanner), which tracks link
/// dynamics the same way.
#[derive(Debug, Clone)]
pub(crate) struct SharedPath {
    pub(crate) base: ScenarioPath,
    pub(crate) bandwidth: f64,
    pub(crate) loss: f64,
    pub(crate) failed: bool,
}

impl SharedPath {
    pub(crate) fn from_scenario(p: ScenarioPath) -> Self {
        SharedPath {
            bandwidth: p.bandwidth(),
            loss: p.loss(),
            failed: false,
            base: p,
        }
    }

    pub(crate) fn effective(&self) -> Result<ScenarioPath, FleetError> {
        let loss = if self.failed { 1.0 } else { self.loss };
        ScenarioPath::new(
            self.bandwidth,
            Arc::clone(self.base.delay()),
            loss,
            self.base.cost(),
        )
        .map_err(FleetError::Spec)
    }
}

/// One admitted flow: its request, its model against the current shared
/// paths, its block slot in the incremental joint assembly, and its
/// slice of the current joint allocation.
#[derive(Debug)]
struct FlowState {
    id: FlowId,
    request: FlowRequest,
    model: ScenarioModel,
    plan: Plan,
    /// Index into the assembly's slots (unused on the rebuild path).
    slot: usize,
}

/// Cache key for joint warm-start bases: the shape of the assembled joint
/// LP, mirroring the single-flow planner's cache. Two joint problems of
/// equal shape can exchange bases — basis feasibility depends only on the
/// coefficients, which the solver re-checks on every warm start — so a
/// departure that returns the fleet to a previously seen shape (the
/// churn pattern, or any tombstoning depart) re-enters phase 2 directly.
/// The row-kind pattern is folded into an FNV-1a hash so fleets of any
/// size (the 64-flow joint LP has well over 128 rows) stay cacheable; a
/// hash collision can at worst hand the solver a basis it validates and
/// rejects, falling back to a cold solve.
///
/// The hash also tags each row with whether its RHS is exactly zero.
/// On the incremental path a tombstoned block and its revived
/// re-occupation share the LP's *shape* — that is the point of
/// tombstoning — but their optimal bases are mutually infeasible
/// (`Σx = 0` vs `Σx = 1`); keying on the zero-RHS pattern gives each
/// churn phase its own cache entry, so steady-state churn alternates
/// between two entries that both keep hitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct JointShapeKey {
    n_vars: usize,
    n_rows: usize,
    kind_hash: u64,
}

impl JointShapeKey {
    pub(crate) fn of(problem: &Problem) -> Self {
        let mut kind_hash: u64 = 0xcbf2_9ce4_8422_2325;
        for c in problem.constraints() {
            let kind: u64 = match c.kind() {
                ConstraintKind::LessEq => 1,
                ConstraintKind::Eq => 2,
            };
            // dmc-lint: allow(float-exact) shape-key tag: structurally-zero RHS (tombstoned rows, quality floors) is written bitwise as 0.0, never computed
            let tag = kind * 2 + u64::from(c.rhs() == 0.0);
            kind_hash ^= tag;
            kind_hash = kind_hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        JointShapeKey {
            n_vars: problem.num_vars(),
            n_rows: problem.num_constraints(),
            kind_hash,
        }
    }
}

/// Bound on cached joint shapes; a fleet cycling through more shapes than
/// this restarts its cache (churn touches one shape per admitted count).
pub(crate) const MAX_CACHED_SHAPES: usize = 64;

/// Compact the incremental assembly once it holds at least this many
/// slots *and* tombstoned slots outnumber the active ones.
const COMPACT_MIN_SLOTS: usize = 8;

/// Cap on the capacity-event backoff between re-admission attempts of a
/// shed flow (`2^MAX_SHED_ATTEMPTS-1 - 1`, so the total horizon telescopes
/// to [`FleetPlanner::SHED_HORIZON`]).
const SHED_SKIP_CAP: u32 = 7;

/// A flow displaced by a capacity loss, queued for re-admission.
///
/// The flow keeps its [`FlowId`] and its last-known-good [`Plan`]; each
/// failed re-admission attempt doubles the number of capacity events the
/// flow then sits out (capped at [`SHED_SKIP_CAP`]), and after
/// [`FleetPlanner::MAX_SHED_ATTEMPTS`] failures it is definitively
/// rejected — so every shed flow leaves the queue within
/// [`FleetPlanner::SHED_HORIZON`] capacity events.
#[derive(Debug, Clone)]
struct ShedFlow {
    id: FlowId,
    request: FlowRequest,
    /// The plan the flow held when it was shed (returned if the tenant
    /// withdraws the flow while it waits).
    plan: Plan,
    /// Failed re-admission attempts so far.
    attempts: u32,
    /// Capacity events to skip before the next attempt.
    skip: u32,
}

/// One per-flow block of the incremental joint LP: its column range and
/// the rows that belong to it. A tombstoned (inactive) slot keeps its
/// rows and columns — its `Σx` row's RHS is 0, forcing the whole block
/// to zero — so departures never change the LP's shape; a later flow
/// with the same width and row pattern takes the slot over in place.
#[derive(Debug, Clone)]
struct Slot {
    cols: Range<usize>,
    eq_row: usize,
    cost_row: Option<usize>,
    floor_row: Option<usize>,
    active: bool,
}

/// How a tentative placement got its slot (so a rejected candidate can
/// be rolled back exactly).
#[derive(Debug, Clone, Copy)]
enum Placement {
    /// A brand-new block was appended; these were the sizes before.
    Appended { prev_vars: usize, prev_rows: usize },
    /// An existing tombstoned slot was re-activated in place.
    Reused,
}

/// The incrementally maintained joint LP.
///
/// Row layout: the `K` shared capacity rows first (one per path), then
/// per-slot rows in slot order — optional cost row, optional floor row,
/// the `Σx = 1` equality — exactly the order [`assemble_joint`] emits
/// for a fresh fleet, so a freshly populated incremental assembly and a
/// from-scratch rebuild produce the *same* [`Problem`].
///
/// Membership changes move the aggregate rate `Λ`, which scales the
/// objective, the shared rows and their RHS. [`JointAssembly::rescale`]
/// recomputes those segments **from the per-flow models with fresh
/// arithmetic** (never by multiplying running values), so the
/// coefficients are a pure function of the current membership — history
/// (the order of past arrivals and departures) cannot leak into the
/// numerics, which is what keeps trace replay and warm-vs-cold
/// comparisons bit-identical.
#[derive(Debug)]
struct JointAssembly {
    problem: Problem,
    slots: Vec<Slot>,
    /// Scratch for scaled coefficient segments.
    seg: Vec<f64>,
}

impl JointAssembly {
    fn new() -> Self {
        JointAssembly {
            problem: Problem::maximize(Vec::new()),
            slots: Vec::new(),
            seg: Vec::new(),
        }
    }

    /// Finds a compatible tombstoned slot for a flow of this width/row
    /// pattern.
    fn reusable_slot(&self, width: usize, has_cost: bool, has_floor: bool) -> Option<usize> {
        self.slots.iter().position(|s| {
            !s.active
                && s.cols.len() == width
                && s.cost_row.is_some() == has_cost
                && s.floor_row.is_some() == has_floor
        })
    }

    /// Places a flow's block — reusing a compatible tombstoned slot in
    /// place, else appending a new block (adding the shared capacity
    /// rows first if this is the very first block). Objective and
    /// shared-row segments are left to [`JointAssembly::rescale`], which
    /// every solve runs anyway.
    fn place(
        &mut self,
        n_paths: usize,
        request: &FlowRequest,
        model: &ScenarioModel,
    ) -> (usize, Placement) {
        let width = model.num_combos();
        let has_cost = request.cost_budget().is_finite();
        let has_floor = request.min_quality() > 0.0;
        if let Some(idx) = self.reusable_slot(width, has_cost, has_floor) {
            let slot = self.slots[idx].clone();
            let start = slot.cols.start;
            if let Some(row) = slot.cost_row {
                self.seg.clear();
                self.seg.extend_from_slice(model.cost_coeffs());
                let seg = std::mem::take(&mut self.seg);
                self.problem
                    .set_row_range(row, start, &seg)
                    .expect("cost segment fits");
                self.problem
                    .set_rhs(row, request.cost_budget() / request.data_rate())
                    .expect("row index recorded at assembly stays in range");
                self.seg = seg;
            }
            if let Some(row) = slot.floor_row {
                // `add_ge` stores the row negated; patch it the same way.
                self.seg.clear();
                self.seg.extend(model.quality_coeffs().iter().map(|p| -p));
                let seg = std::mem::take(&mut self.seg);
                self.problem
                    .set_row_range(row, start, &seg)
                    .expect("floor segment fits");
                self.problem
                    .set_rhs(row, -request.min_quality())
                    .expect("row index recorded at assembly stays in range");
                self.seg = seg;
            }
            self.problem
                .set_rhs(slot.eq_row, 1.0)
                .expect("Σx row exists");
            self.slots[idx].active = true;
            return (idx, Placement::Reused);
        }

        // Append a fresh block.
        let prev_vars = self.problem.num_vars();
        let prev_rows = self.problem.num_constraints();
        self.seg.clear();
        self.seg.resize(width, 0.0);
        let seg = std::mem::take(&mut self.seg);
        let cols = self.problem.append_block(&seg).expect("nonempty block");
        self.seg = seg;
        if prev_rows == 0 {
            // First block: create the shared capacity rows (coefficients
            // and RHS are rescale's job).
            for _ in 0..n_paths {
                self.problem
                    .add_le_sparse(&[], 1.0)
                    .expect("empty shared row");
            }
        }
        let cost_row = has_cost.then(|| {
            let entries: Vec<(usize, f64)> = model
                .cost_triplets()
                .map(|(j, v)| (cols.start + j, v))
                .collect();
            self.problem
                .add_le_sparse(&entries, request.cost_budget() / request.data_rate())
                .expect("valid cost row");
            self.problem.num_constraints() - 1
        });
        let floor_row = has_floor.then(|| {
            let entries: Vec<(usize, f64)> = model
                .quality_triplets()
                .map(|(j, v)| (cols.start + j, v))
                .collect();
            self.problem
                .add_ge_sparse(&entries, request.min_quality())
                .expect("valid floor row");
            self.problem.num_constraints() - 1
        });
        let ones: Vec<(usize, f64)> = cols.clone().map(|j| (j, 1.0)).collect();
        self.problem
            .add_eq_sparse(&ones, 1.0)
            .expect("valid Σx row");
        let eq_row = self.problem.num_constraints() - 1;
        self.slots.push(Slot {
            cols,
            eq_row,
            cost_row,
            floor_row,
            active: true,
        });
        (
            self.slots.len() - 1,
            Placement::Appended {
                prev_vars,
                prev_rows,
            },
        )
    }

    /// Tombstones a slot: the block's objective and shared-row segments
    /// drop to zero and its `Σx = 1` becomes `Σx = 0` (any floor row is
    /// relaxed to 0), forcing every variable of the block to zero while
    /// preserving the LP's shape — the cached basis of this shape keeps
    /// working.
    fn deactivate(&mut self, n_paths: usize, idx: usize) {
        let slot = self.slots[idx].clone();
        self.seg.clear();
        self.seg.resize(slot.cols.len(), 0.0);
        let seg = std::mem::take(&mut self.seg);
        self.problem
            .set_objective_range(slot.cols.start, &seg)
            .expect("objective segment fits");
        for k in 0..n_paths {
            self.problem
                .set_row_range(k, slot.cols.start, &seg)
                .expect("shared segment fits");
        }
        self.seg = seg;
        self.problem
            .set_rhs(slot.eq_row, 0.0)
            .expect("Σx row exists");
        if let Some(row) = slot.floor_row {
            self.problem.set_rhs(row, 0.0).expect("floor row exists");
        }
        self.slots[idx].active = false;
    }

    /// Rolls a tentative placement back. Appended placements **must** be
    /// rolled back in reverse order of placement — truncating a block
    /// from the middle would shift every later slot's rows and columns
    /// under the slot table. That used to be a `debug_assert`, which a
    /// release build would sail past and silently corrupt the assembly;
    /// it is a checked error now, and callers fall back to rebuilding the
    /// assembly from the admitted flows when it fires.
    fn rollback(
        &mut self,
        n_paths: usize,
        idx: usize,
        placement: Placement,
    ) -> Result<(), FleetError> {
        match placement {
            Placement::Appended {
                prev_vars,
                prev_rows,
            } => {
                if idx + 1 != self.slots.len() {
                    return Err(FleetError::Invalid(format!(
                        "rollback out of order: appended slot {idx} is not the last of {} slots",
                        self.slots.len()
                    )));
                }
                self.problem.truncate_rows(prev_rows);
                self.problem.truncate_vars(prev_vars);
                self.slots.pop();
            }
            Placement::Reused => self.deactivate(n_paths, idx),
        }
        Ok(())
    }

    /// Recomputes every Λ-dependent coefficient from the given membership
    /// (active flows plus tentative candidates): per-block objective
    /// segments `w·(λ_f/Λ)·p_f`, shared-row segments `(λ_f/Λ)·usage_f`
    /// and the shared RHS `b_k/Λ` — the same arithmetic as
    /// [`assemble_joint`], applied to the same slots every time. A flow
    /// restricted to a path subset ([`FlowRequest::with_paths`]) consumes
    /// nothing on the paths it does not use: its segment in those shared
    /// rows is structurally zero.
    fn rescale(
        &mut self,
        objective: FleetObjective,
        paths: &[SharedPath],
        members: &[(usize, &FlowRequest, &ScenarioModel)],
    ) {
        let lambda_tot: f64 = members.iter().map(|(_, r, _)| r.data_rate()).sum();
        let mut seg = std::mem::take(&mut self.seg);
        for &(slot_idx, r, m) in members {
            let start = self.slots[slot_idx].cols.start;
            let w = match objective {
                FleetObjective::WeightedFair => r.priority(),
                FleetObjective::MaxAdmitted | FleetObjective::MaxTotalQuality => 1.0,
            };
            let share = r.data_rate() / lambda_tot;
            seg.clear();
            seg.extend(m.quality_coeffs().iter().map(|p| w * share * p));
            self.problem
                .set_objective_range(start, &seg)
                .expect("objective segment fits");
            for (k, _) in paths.iter().enumerate() {
                seg.clear();
                match local_path_index(r.paths(), k) {
                    Some(lk) => seg.extend(m.usage_coeffs(lk).iter().map(|u| share * u)),
                    None => seg.resize(m.num_combos(), 0.0),
                }
                self.problem
                    .set_row_range(k, start, &seg)
                    .expect("shared segment fits");
            }
        }
        for (k, path) in paths.iter().enumerate() {
            self.problem
                .set_rhs(k, path.bandwidth / lambda_tot)
                .expect("shared row exists");
        }
        self.seg = seg;
    }

    /// Number of tombstoned slots.
    fn inactive_slots(&self) -> usize {
        self.slots.iter().filter(|s| !s.active).count()
    }
}

/// The multi-tenant flow service: owns the shared paths, admits flows,
/// and keeps a joint allocation current as flows arrive, depart and links
/// change.
///
/// ```
/// use dmc_core::ScenarioPath;
/// use dmc_fleet::{FleetConfig, FleetPlanner, FlowRequest};
///
/// # fn main() -> Result<(), dmc_fleet::FleetError> {
/// // Two shared links (the paper's Table III pair).
/// let mut fleet = FleetPlanner::new(
///     vec![
///         ScenarioPath::constant(80e6, 0.450, 0.2)?,
///         ScenarioPath::constant(20e6, 0.150, 0.0)?,
///     ],
///     FleetConfig::default(),
/// )?;
/// // A strict flow and a best-effort one contend for the same links.
/// let strict = fleet.offer(FlowRequest::new(30e6, 0.750)?.with_min_quality(0.95))?;
/// let bulk = fleet.offer(FlowRequest::new(60e6, 0.800)?)?;
/// assert!(strict.is_admitted() && bulk.is_admitted());
/// // The joint allocation never oversubscribes a link…
/// assert!(fleet.utilization().iter().all(|&u| u <= 1.0 + 1e-9));
/// // …and the strict flow's floor is honored.
/// assert!(fleet.plan_of(strict.id()).unwrap().quality() >= 0.95 - 1e-9);
/// // Departures re-solve for the survivors (warm-started).
/// fleet.depart(strict.id())?;
/// assert_eq!(fleet.num_flows(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FleetPlanner {
    config: FleetConfig,
    paths: Vec<SharedPath>,
    flows: Vec<FlowState>,
    next_id: u64,
    /// Builds per-flow coefficient models (never solves).
    flow_planner: Planner,
    /// Joint-LP scratch memory, reused across solves.
    workspace: Workspace,
    // dmc-lint: allow(det-unordered-map) key-lookup-only cache: get/insert/contains_key/len/clear, never iterated, so key order cannot reach results
    warm_bases: HashMap<JointShapeKey, Basis>,
    warm_attempts: u64,
    warm_hits: u64,
    /// Cold re-solves forced by a warm-start anomaly (singular basis or
    /// pivot-cap abort on the warm path).
    warm_anomalies: u64,
    /// Flows displaced by capacity losses, awaiting re-admission.
    shed: Vec<ShedFlow>,
    /// Flows that exhausted their re-admission attempts (cumulative).
    shed_rejected: Vec<FlowId>,
    /// Flows revived from the shed queue (cumulative, in revival order).
    revived: Vec<FlowId>,
    /// The incrementally maintained joint LP
    /// ([`FleetConfig::incremental`]); `None` until the first offer and
    /// after structural resets (link changes that force re-admission).
    assembly: Option<JointAssembly>,
}

impl FleetPlanner {
    /// A fleet over `paths` — the shared links every flow contends for.
    ///
    /// # Errors
    ///
    /// Rejects an empty path set and paths whose delay distribution has a
    /// non-finite mean.
    pub fn new(paths: Vec<ScenarioPath>, config: FleetConfig) -> Result<Self, FleetError> {
        if paths.is_empty() {
            return Err(FleetError::Invalid(
                "a fleet needs at least one shared path".into(),
            ));
        }
        for (k, p) in paths.iter().enumerate() {
            if !p.delay().mean().is_finite() {
                return Err(FleetError::Invalid(format!(
                    "shared path {k} has a non-finite mean delay"
                )));
            }
        }
        let mut config = config;
        if config.obs.is_enabled() && !config.planner.solver.obs.is_enabled() {
            config.planner.solver.obs = config.obs.clone();
        }
        let flow_planner = Planner::with_config(config.planner.clone());
        Ok(FleetPlanner {
            config,
            paths: paths.into_iter().map(SharedPath::from_scenario).collect(),
            flows: Vec::new(),
            next_id: 0,
            flow_planner,
            workspace: Workspace::new(),
            // dmc-lint: allow(det-unordered-map) constructor of the key-lookup-only warm-basis cache above
            warm_bases: HashMap::new(),
            warm_attempts: 0,
            warm_hits: 0,
            warm_anomalies: 0,
            shed: Vec::new(),
            shed_rejected: Vec::new(),
            revived: Vec::new(),
            assembly: None,
        })
    }

    /// Re-admission attempts a shed flow gets before it is definitively
    /// rejected.
    pub const MAX_SHED_ATTEMPTS: u32 = 4;

    /// Upper bound, in capacity events (link changes and departures), on
    /// how long a shed flow can sit in the re-admission queue before it is
    /// either revived or definitively rejected: attempt `a` is followed by
    /// `min(2^a - 1, 7)` skipped events, so the schedule telescopes to
    /// `1 + 2 + 4 + 8 = 2^MAX_SHED_ATTEMPTS - 1` events.
    pub const SHED_HORIZON: usize = (1 << Self::MAX_SHED_ATTEMPTS) - 1;

    /// The active configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Offers one flow for admission.
    ///
    /// Admitted flows immediately receive a [`Plan`] (see
    /// [`FleetPlanner::plan_of`]) and every incumbent's plan is refreshed
    /// to the new joint allocation. A rejection leaves the incumbents'
    /// allocation untouched.
    ///
    /// # Errors
    ///
    /// Invalid scenarios and non-infeasibility solver failures; a floor
    /// that cannot be met is a [`AdmissionDecision::Rejected`], not an
    /// error.
    pub fn offer(&mut self, request: FlowRequest) -> Result<AdmissionDecision, FleetError> {
        let id = FlowId::new(self.next_id);
        self.next_id += 1;
        let model = self.flow_model(&request)?;
        self.admit_candidate(id, request, model)
    }

    /// Offers a batch of flows.
    ///
    /// First tries to admit the whole batch with **one** joint solve; only
    /// if that is infeasible does it fall back to greedy per-flow
    /// admission — deadline-ordered (earliest deadline first, the
    /// DDCCast/ALAP flavor) under [`FleetObjective::MaxAdmitted`], in
    /// arrival order otherwise. Ids are assigned in input order either
    /// way, and decisions are returned in input order.
    ///
    /// # Errors
    ///
    /// As [`FleetPlanner::offer`].
    pub fn offer_batch(
        &mut self,
        requests: Vec<FlowRequest>,
    ) -> Result<Vec<AdmissionDecision>, FleetError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let mut candidates = Vec::with_capacity(requests.len());
        for request in requests {
            let id = FlowId::new(self.next_id);
            self.next_id += 1;
            let model = self.flow_model(&request)?;
            candidates.push((id, request, model));
        }
        // Fast path: the whole batch in one solve.
        let extras: Vec<(&FlowRequest, &ScenarioModel)> =
            candidates.iter().map(|(_, r, m)| (r, m)).collect();
        match self.solve_entries(&extras) {
            Ok((mut segments, slots)) => {
                let candidate_segments = segments.split_off(self.flows.len());
                self.refresh_plans(segments);
                let mut decisions = Vec::with_capacity(candidates.len());
                for (((id, request, model), seg), slot) in
                    candidates.into_iter().zip(candidate_segments).zip(slots)
                {
                    let plan = model.plan_for(Objective::MaxQuality, seg);
                    let predicted_quality = plan.quality();
                    self.flows.push(FlowState {
                        id,
                        request,
                        model,
                        plan,
                        slot,
                    });
                    decisions.push(AdmissionDecision::Admitted {
                        id,
                        predicted_quality,
                    });
                }
                self.config
                    .obs
                    .counter("fleet.admits")
                    .add(decisions.len() as u64);
                Ok(decisions)
            }
            Err(SolveError::Infeasible { .. }) => {
                // Greedy fallback; sort by deadline in MaxAdmitted mode.
                let mut order: Vec<usize> = (0..candidates.len()).collect();
                if self.config.objective == FleetObjective::MaxAdmitted {
                    order.sort_by(|&a, &b| {
                        candidates[a]
                            .1
                            .lifetime()
                            .partial_cmp(&candidates[b].1.lifetime())
                            .expect("finite lifetimes")
                            .then(a.cmp(&b))
                    });
                }
                let mut decisions: Vec<Option<AdmissionDecision>> = vec![None; candidates.len()];
                let mut taken: Vec<Option<(FlowId, FlowRequest, ScenarioModel)>> =
                    candidates.into_iter().map(Some).collect();
                for i in order {
                    let (id, request, model) = taken[i].take().expect("visited once");
                    decisions[i] = Some(self.admit_candidate(id, request, model)?);
                }
                Ok(decisions
                    .into_iter()
                    .map(|d| d.expect("every decision slot was filled by the loop above"))
                    .collect())
            }
            Err(e) => Err(FleetError::Solve(e)),
        }
    }

    /// Removes an admitted flow and re-solves the joint allocation for
    /// the survivors (warm-started from the cached basis of the smaller
    /// shape when available). Returns the departing flow's last plan.
    ///
    /// The re-solve only ever *relaxes* the problem, so every surviving
    /// flow keeps meeting its floor (the `admission_invariants` test pins
    /// this).
    ///
    /// Departing a flow that sits in the **re-admission queue** (shed by
    /// a capacity loss, not yet revived) withdraws it from the queue and
    /// returns the plan it held when it was shed.
    ///
    /// A departure frees capacity, so it also runs one re-admission sweep
    /// over the shed queue (see [`FleetPlanner::shed_flows`]).
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownFlow`] for ids never admitted or already
    /// gone.
    pub fn depart(&mut self, id: FlowId) -> Result<Plan, FleetError> {
        let Some(idx) = self.flows.iter().position(|f| f.id == id) else {
            if let Some(pos) = self.shed.iter().position(|s| s.id == id) {
                self.config.obs.counter("fleet.departs").inc();
                self.config.obs.gauge("fleet.shed_queue").sub(1);
                return Ok(self.shed.remove(pos).plan);
            }
            return Err(FleetError::UnknownFlow(id));
        };
        self.config.obs.counter("fleet.departs").inc();
        let departed = self.flows.remove(idx);
        if self.config.incremental {
            if let Some(a) = self.assembly.as_mut() {
                a.deactivate(self.paths.len(), departed.slot);
            }
            self.maybe_compact();
        }
        if !self.flows.is_empty() {
            let (segments, _) = self.solve_entries(&[]).map_err(FleetError::Solve)?;
            self.refresh_plans(segments);
        }
        self.revive_shed()?;
        Ok(departed.plan)
    }

    /// Removes a batch of flows with **one** joint re-solve and **one**
    /// re-admission sweep, instead of one of each per departure — the
    /// batched-tick counterpart of [`FleetPlanner::offer_batch`], so a
    /// service draining a tick's worth of departures counts as a single
    /// capacity event for the shed queue's backoff schedule. Returns each
    /// flow's last plan, in input order. Ids may name admitted flows or
    /// flows waiting in the re-admission queue (withdrawn, exactly like
    /// [`FleetPlanner::depart`]).
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownFlow`] if any id is unknown or repeated; the
    /// fleet is left untouched in that case.
    pub fn depart_batch(&mut self, ids: &[FlowId]) -> Result<Vec<Plan>, FleetError> {
        if ids.is_empty() {
            return Ok(Vec::new());
        }
        let mut seen = std::collections::BTreeSet::new();
        for &id in ids {
            let known =
                self.flows.iter().any(|f| f.id == id) || self.shed.iter().any(|s| s.id == id);
            if !known || !seen.insert(id) {
                return Err(FleetError::UnknownFlow(id));
            }
        }
        let mut plans = Vec::with_capacity(ids.len());
        let mut removed_admitted = false;
        for &id in ids {
            if let Some(idx) = self.flows.iter().position(|f| f.id == id) {
                let departed = self.flows.remove(idx);
                if self.config.incremental {
                    if let Some(a) = self.assembly.as_mut() {
                        a.deactivate(self.paths.len(), departed.slot);
                    }
                }
                removed_admitted = true;
                plans.push(departed.plan);
            } else {
                let pos = self
                    .shed
                    .iter()
                    .position(|s| s.id == id)
                    .expect("validated as known above");
                plans.push(self.shed.remove(pos).plan);
            }
        }
        if removed_admitted {
            if self.config.incremental {
                self.maybe_compact();
            }
            if !self.flows.is_empty() {
                let (segments, _) = self.solve_entries(&[]).map_err(FleetError::Solve)?;
                self.refresh_plans(segments);
            }
            self.revive_shed()?;
        }
        Ok(plans)
    }

    /// Rebuilds the incremental assembly from the active flows (in
    /// admission order) once tombstones outnumber them, bounding the
    /// zombie-block overhead of a long-churning fleet.
    fn maybe_compact(&mut self) {
        let Some(a) = self.assembly.as_ref() else {
            return;
        };
        if a.slots.len() < COMPACT_MIN_SLOTS || a.inactive_slots() <= self.flows.len() {
            return;
        }
        self.rebuild_assembly();
    }

    /// Applies one link change to a shared path (reusing the
    /// [`dmc_sim::LinkChange`] vocabulary: `Fail`/`Recover`/
    /// `SetBandwidth`/`SetLoss`) and re-solves the joint allocation.
    ///
    /// A failed path plans as loss 1 (it can carry nothing in time); a
    /// [`LinkChange::SetLoss`] plans against the model's stationary loss
    /// rate, exactly as the single-flow LP does for Gilbert–Elliott
    /// links. If the change makes the admitted floors collectively
    /// infeasible, flows are deterministically re-admitted highest
    /// priority first (admission order within ties) and the ones that no
    /// longer fit are **shed** into the re-admission queue (see
    /// [`FleetPlanner::shed_flows`]); the returned ids name them (empty
    /// when everyone still fits). Every link change also runs one
    /// re-admission sweep over the *previously* shed flows, reviving —
    /// under their original ids — those the changed capacity again
    /// accommodates.
    ///
    /// # Errors
    ///
    /// Bad path index, invalid change parameters, or a solver failure.
    pub fn apply_link_change(
        &mut self,
        path: usize,
        change: &LinkChange,
    ) -> Result<Vec<FlowId>, FleetError> {
        let Some(shared) = self.paths.get_mut(path) else {
            return Err(FleetError::Invalid(format!(
                "path index {path} out of range ({} shared paths)",
                self.paths.len()
            )));
        };
        match change {
            LinkChange::Fail => shared.failed = true,
            LinkChange::Recover => shared.failed = false,
            LinkChange::SetBandwidth(bps) => {
                if !(*bps > 0.0) || !bps.is_finite() {
                    return Err(FleetError::Invalid(format!(
                        "bandwidth must be finite and > 0, got {bps}"
                    )));
                }
                shared.bandwidth = *bps;
            }
            LinkChange::SetLoss(model) => {
                model.validate().map_err(FleetError::Invalid)?;
                shared.loss = model.stationary_loss();
            }
        }
        // Resettle the incumbents first (their models must match the new
        // paths before any joint solve), then give the previously shed
        // flows their re-admission sweep, and only then enqueue the newly
        // shed ones — the event that displaced them is no occasion to
        // retry them.
        let newly_shed = self.resettle()?;
        self.revive_shed()?;
        let ids: Vec<FlowId> = newly_shed.iter().map(|s| s.id).collect();
        self.config
            .obs
            .counter("fleet.sheds")
            .add(newly_shed.len() as u64);
        self.config
            .obs
            .gauge("fleet.shed_queue")
            .add(newly_shed.len() as i64);
        self.shed.extend(newly_shed);
        Ok(ids)
    }

    /// Ids currently queued for re-admission after being shed by a
    /// capacity loss, in queue order (the deterministic attempt order:
    /// highest priority first, admission order within ties, refreshed at
    /// every sweep).
    pub fn shed_flows(&self) -> Vec<FlowId> {
        self.shed.iter().map(|s| s.id).collect()
    }

    /// Ids definitively rejected after exhausting their
    /// [`FleetPlanner::MAX_SHED_ATTEMPTS`] re-admission attempts, in
    /// rejection order. The list accumulates from construction — or from
    /// the last [`FleetPlanner::drain_shed_rejected`] call, for
    /// long-lived services that consume these as per-event notifications.
    pub fn shed_rejected(&self) -> &[FlowId] {
        &self.shed_rejected
    }

    /// Ids revived from the shed queue, in revival order. A revived flow
    /// keeps its original [`FlowId`]. Like
    /// [`FleetPlanner::shed_rejected`], the list accumulates from
    /// construction or from the last [`FleetPlanner::drain_revived`]
    /// call.
    pub fn revived_flows(&self) -> &[FlowId] {
        &self.revived
    }

    /// Removes and returns the revived-flow events recorded since
    /// construction or the last drain (in revival order), resetting
    /// [`FleetPlanner::revived_flows`] to empty.
    ///
    /// Long-lived services must drain these lists once per event/tick:
    /// before the drain API existed they grew without bound and every
    /// consumer re-reported stale events from earlier outages.
    pub fn drain_revived(&mut self) -> Vec<FlowId> {
        std::mem::take(&mut self.revived)
    }

    /// Removes and returns the definitive-rejection events recorded since
    /// construction or the last drain (in rejection order), resetting
    /// [`FleetPlanner::shed_rejected`] to empty. See
    /// [`FleetPlanner::drain_revived`].
    pub fn drain_shed_rejected(&mut self) -> Vec<FlowId> {
        std::mem::take(&mut self.shed_rejected)
    }

    /// Cold re-solves forced by a warm-start anomaly — a singular basis
    /// or a pivot-cap abort on the warm path. Each one dropped the cached
    /// basis and retried cold instead of failing the operation.
    ///
    /// MIGRATION: mirrored onto the `fleet.warm_anomalies` counter of
    /// [`FleetConfig::obs`]; this accessor stays per-planner (a shared
    /// registry aggregates across planners and replays).
    pub fn warm_anomalies(&self) -> u64 {
        self.warm_anomalies
    }

    /// Number of admitted flows.
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// Whether no flow is admitted.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Ids of the admitted flows, in admission order.
    pub fn flow_ids(&self) -> Vec<FlowId> {
        self.flows.iter().map(|f| f.id).collect()
    }

    /// The current plan of an admitted flow — an ordinary single-flow
    /// [`Plan`] (its strategy respects the flow's slice of the shared
    /// capacity), so `run_plan`, `DmcSender::from_plan` and
    /// `AdaptiveSender` consume it unchanged.
    pub fn plan_of(&self, id: FlowId) -> Option<&Plan> {
        self.flows.iter().find(|f| f.id == id).map(|f| &f.plan)
    }

    /// The admitted request behind a flow id.
    pub fn request_of(&self, id: FlowId) -> Option<&FlowRequest> {
        self.flows.iter().find(|f| f.id == id).map(|f| &f.request)
    }

    /// `(id, plan)` for every admitted flow, in admission order.
    pub fn plans(&self) -> impl Iterator<Item = (FlowId, &Plan)> {
        self.flows.iter().map(|f| (f.id, &f.plan))
    }

    /// The effective shared paths the joint LP currently plans against
    /// (failed paths appear with loss 1).
    ///
    /// # Errors
    ///
    /// Never fails in practice (paths were validated on entry).
    pub fn shared_paths(&self) -> Result<Vec<ScenarioPath>, FleetError> {
        self.paths.iter().map(SharedPath::effective).collect()
    }

    /// Per-path utilization: the admitted flows' summed send rates over
    /// the path's current bandwidth. The joint capacity rows keep every
    /// entry ≤ 1 (within solver tolerance). A flow restricted to a path
    /// subset contributes only to the paths it uses (its plan's send
    /// rates are indexed by its own subset).
    pub fn utilization(&self) -> Vec<f64> {
        let mut util = vec![0.0; self.paths.len()];
        for f in &self.flows {
            match f.request.paths() {
                None => {
                    for (u, rate) in util.iter_mut().zip(f.plan.send_rates()) {
                        *u += rate;
                    }
                }
                Some(subset) => {
                    for (&k, rate) in subset.iter().zip(f.plan.send_rates()) {
                        util[k] += rate;
                    }
                }
            }
        }
        for (u, p) in util.iter_mut().zip(&self.paths) {
            *u /= p.bandwidth;
        }
        util
    }

    /// Aggregate in-time goodput of the admitted flows, bits/second
    /// (`Σ_f λ_f Q_f`).
    pub fn total_goodput(&self) -> f64 {
        self.flows
            .iter()
            .map(|f| f.request.data_rate() * f.plan.quality())
            .sum()
    }

    /// Rate-weighted mean quality of the admitted flows (the joint LP's
    /// `MaxTotalQuality` objective value; 0 with no flows).
    pub fn aggregate_quality(&self) -> f64 {
        let lambda_tot: f64 = self.flows.iter().map(|f| f.request.data_rate()).sum();
        if lambda_tot <= 0.0 {
            return 0.0;
        }
        self.total_goodput() / lambda_tot
    }

    /// Warm-start cache counters of the joint solves (same semantics as
    /// [`dmc_core::Planner::warm_stats`]).
    ///
    /// MIGRATION: the same events are mirrored onto the `dmc_obs`
    /// counters `fleet.warm_hits` / `fleet.warm_misses` of
    /// [`FleetConfig::obs`] when that registry is enabled; prefer the
    /// registry for exported telemetry.
    pub fn warm_stats(&self) -> WarmStats {
        WarmStats {
            hits: self.warm_hits,
            misses: self.warm_attempts - self.warm_hits,
        }
    }

    /// Number of joint-LP shapes with a cached warm-start basis.
    pub fn cached_bases(&self) -> usize {
        self.warm_bases.len()
    }

    /// Drops all cached joint bases (subsequent solves start cold).
    pub fn clear_warm_cache(&mut self) {
        self.warm_bases.clear();
    }

    /// Builds the candidate's per-flow scenario/model against the current
    /// shared paths (restricted to the flow's declared subset when
    /// [`FlowRequest::with_paths`] was used).
    fn flow_model(&mut self, request: &FlowRequest) -> Result<ScenarioModel, FleetError> {
        let effective = self.shared_paths()?;
        let flow_paths = match request.paths() {
            Some(subset) => {
                if let Some(&bad) = subset.iter().find(|&&k| k >= effective.len()) {
                    return Err(FleetError::Invalid(format!(
                        "flow path index {bad} out of range ({} shared paths)",
                        effective.len()
                    )));
                }
                subset.iter().map(|&k| effective[k].clone()).collect()
            }
            None => effective,
        };
        let mut builder = Scenario::builder()
            .paths(flow_paths)
            .data_rate(request.data_rate())
            .lifetime(request.lifetime())
            .transmissions(request.transmissions());
        if request.cost_budget().is_finite() {
            builder = builder.cost_budget(request.cost_budget());
        }
        let scenario = builder.build().map_err(FleetError::Spec)?;
        Ok(self.flow_planner.model(&scenario))
    }

    /// Tentatively solves the joint LP with `id`'s candidate added;
    /// commits on success, leaves the incumbents untouched on
    /// infeasibility.
    fn admit_candidate(
        &mut self,
        id: FlowId,
        request: FlowRequest,
        model: ScenarioModel,
    ) -> Result<AdmissionDecision, FleetError> {
        let extra = [(&request, &model)];
        match self.solve_entries(&extra) {
            Ok((mut segments, slots)) => {
                let seg = segments.pop().expect("candidate segment");
                self.refresh_plans(segments);
                let plan = model.plan_for(Objective::MaxQuality, seg);
                let predicted_quality = plan.quality();
                self.flows.push(FlowState {
                    id,
                    request,
                    model,
                    plan,
                    slot: slots[0],
                });
                self.config.obs.counter("fleet.admits").inc();
                Ok(AdmissionDecision::Admitted {
                    id,
                    predicted_quality,
                })
            }
            Err(SolveError::Infeasible { .. }) => {
                self.config.obs.counter("fleet.refusals").inc();
                Ok(AdmissionDecision::Rejected {
                    id,
                    reason: "the remaining shared capacity cannot meet this flow's quality \
                             floor alongside every admitted flow's"
                        .into(),
                })
            }
            Err(e) => Err(FleetError::Solve(e)),
        }
    }

    /// Rebuilds every flow's model against the changed paths and
    /// re-solves; on collective infeasibility, re-admits greedily highest
    /// priority first ([`FlowRequest::priority`], admission order within
    /// ties — so equal-priority fleets shed exactly as they always did)
    /// and returns the displaced flows for the caller to enqueue.
    fn resettle(&mut self) -> Result<Vec<ShedFlow>, FleetError> {
        for i in 0..self.flows.len() {
            let request = self.flows[i].request.clone();
            self.flows[i].model = self.flow_model(&request)?;
        }
        if self.flows.is_empty() {
            return Ok(Vec::new());
        }
        if self.config.incremental {
            // The per-flow coefficients changed wholesale; rebuild the
            // assembly from the new models (shape usually unchanged, so
            // the cached basis of the shape still applies).
            self.rebuild_assembly();
        }
        match self.solve_entries(&[]) {
            Ok((segments, _)) => {
                self.refresh_plans(segments);
                Ok(Vec::new())
            }
            Err(SolveError::Infeasible { .. }) => {
                let mut survivors = std::mem::take(&mut self.flows);
                self.assembly = None;
                survivors.sort_by(|a, b| {
                    b.request
                        .priority()
                        .partial_cmp(&a.request.priority())
                        .expect("priorities are finite")
                        .then(a.id.cmp(&b.id))
                });
                let mut shed = Vec::new();
                for f in survivors {
                    let request = f.request.clone();
                    match self.admit_candidate(f.id, f.request, f.model)? {
                        AdmissionDecision::Admitted { .. } => {}
                        AdmissionDecision::Rejected { id, .. } => shed.push(ShedFlow {
                            id,
                            request,
                            plan: f.plan,
                            attempts: 0,
                            skip: 0,
                        }),
                    }
                }
                Ok(shed)
            }
            Err(e) => Err(FleetError::Solve(e)),
        }
    }

    /// One re-admission sweep over the shed queue, run after every
    /// capacity-affecting event (link change or departure).
    ///
    /// Flows are tried highest priority first (admission order within
    /// ties). Each failed attempt puts the flow back with an
    /// exponentially growing event-skip (capped at [`SHED_SKIP_CAP`]);
    /// after [`FleetPlanner::MAX_SHED_ATTEMPTS`] failures the flow is
    /// definitively rejected, bounding every shed flow's queue residence
    /// by [`FleetPlanner::SHED_HORIZON`] capacity events.
    fn revive_shed(&mut self) -> Result<(), FleetError> {
        if self.shed.is_empty() {
            return Ok(());
        }
        self.shed.sort_by(|a, b| {
            b.request
                .priority()
                .partial_cmp(&a.request.priority())
                .expect("priorities are finite")
                .then(a.id.cmp(&b.id))
        });
        let queue = std::mem::take(&mut self.shed);
        for mut s in queue {
            if s.skip > 0 {
                s.skip -= 1;
                self.shed.push(s);
                continue;
            }
            let model = self.flow_model(&s.request)?;
            match self.admit_candidate(s.id, s.request.clone(), model)? {
                AdmissionDecision::Admitted { .. } => {
                    self.config.obs.counter("fleet.revives").inc();
                    self.config.obs.gauge("fleet.shed_queue").sub(1);
                    self.revived.push(s.id);
                }
                AdmissionDecision::Rejected { .. } => {
                    s.attempts += 1;
                    if s.attempts >= Self::MAX_SHED_ATTEMPTS {
                        self.config.obs.counter("fleet.shed_rejects").inc();
                        self.config.obs.gauge("fleet.shed_queue").sub(1);
                        self.shed_rejected.push(s.id);
                    } else {
                        s.skip = ((1u32 << s.attempts) - 1).min(SHED_SKIP_CAP);
                        self.shed.push(s);
                    }
                }
            }
        }
        Ok(())
    }

    /// Re-places every active flow into a fresh assembly (keeps slot
    /// layout deterministic after wholesale model changes).
    fn rebuild_assembly(&mut self) {
        let mut fresh = JointAssembly::new();
        for f in &mut self.flows {
            let (slot, _) = fresh.place(self.paths.len(), &f.request, &f.model);
            f.slot = slot;
        }
        self.assembly = Some(fresh);
    }

    /// Re-packages a fresh joint solution's segments into the admitted
    /// flows' plans (in admission order).
    fn refresh_plans(&mut self, segments: Vec<Vec<f64>>) {
        debug_assert_eq!(segments.len(), self.flows.len());
        for (f, seg) in self.flows.iter_mut().zip(segments) {
            f.plan = f.model.plan_for(Objective::MaxQuality, seg);
        }
    }

    /// Solver options for the joint LP: the shared planner options with
    /// the joint backend swapped in.
    fn joint_opts(&self) -> SolverOptions {
        SolverOptions {
            backend: self.config.joint_backend,
            ..self.config.planner.solver.clone()
        }
    }

    /// Solves an assembled joint problem with the shape-keyed warm-start
    /// cache (shared by the incremental and rebuild paths).
    fn solve_joint_problem(&mut self, problem: &Problem) -> Result<dmc_lp::Solution, SolveError> {
        let opts = self.joint_opts();
        let key = self
            .config
            .planner
            .warm_start
            .then(|| JointShapeKey::of(problem));
        let solution = match key.and_then(|k| self.warm_bases.get(&k)) {
            Some(basis) => {
                self.warm_attempts += 1;
                match problem.solve_warm_with(&opts, &mut self.workspace, basis) {
                    Ok(s) => {
                        if s.used_warm_start() {
                            self.warm_hits += 1;
                            self.config.obs.counter("fleet.warm_hits").inc();
                        } else {
                            self.config.obs.counter("fleet.warm_misses").inc();
                        }
                        s
                    }
                    Err(e) if SolveStatus::of_error(&e).is_anomaly() => {
                        // A singular/stale basis or a pivot-cap abort on
                        // the warm path is a numerical anomaly, not a
                        // verdict about the problem: drop the offending
                        // basis and re-solve cold. The incumbents keep
                        // their last-known-good plans unless the cold
                        // solve succeeds (plans are only refreshed from a
                        // successful solution).
                        self.warm_anomalies += 1;
                        self.config.obs.counter("fleet.warm_anomalies").inc();
                        self.config.obs.counter("fleet.warm_misses").inc();
                        if let Some(k) = key {
                            self.warm_bases.remove(&k);
                        }
                        problem.solve_with(&opts, &mut self.workspace)?
                    }
                    Err(e) => {
                        self.config.obs.counter("fleet.warm_misses").inc();
                        return Err(e);
                    }
                }
            }
            None => problem.solve_with(&opts, &mut self.workspace)?,
        };
        if let (Some(k), Some(basis)) = (key, solution.basis()) {
            if self.warm_bases.len() >= MAX_CACHED_SHAPES && !self.warm_bases.contains_key(&k) {
                self.warm_bases.clear();
            }
            self.warm_bases.insert(k, basis.clone());
        }
        // The decomposition path replays the feasibility certificate in
        // debug builds (and in release when [`FleetConfig::certify`] is
        // set): every per-flow plan descends from this x, so a bogus
        // vertex here would silently corrupt the whole fleet.
        if cfg!(debug_assertions) || self.config.certify {
            solution
                .certify(problem)
                .expect("joint LP solution failed its feasibility certificate");
        }
        Ok(solution)
    }

    /// Assembles and solves the joint LP over the admitted flows plus
    /// `extras`, returning one assignment segment per flow (admitted
    /// first, then extras, both in order) and the block slot each extra
    /// ended up in. With no flows at all there is nothing to solve.
    ///
    /// On *any* error — infeasibility included — the incremental
    /// assembly is rolled back to the admitted flows, so a rejected
    /// candidate leaves no trace.
    fn solve_entries(
        &mut self,
        extras: &[(&FlowRequest, &ScenarioModel)],
    ) -> Result<(Vec<Vec<f64>>, Vec<usize>), SolveError> {
        if self.flows.is_empty() && extras.is_empty() {
            return Ok((Vec::new(), Vec::new()));
        }
        if self.config.incremental {
            self.solve_incremental(extras)
        } else {
            self.solve_rebuild(extras)
        }
    }

    /// The incremental path: place extras into the maintained assembly,
    /// rescale the Λ-dependent segments, solve in place.
    fn solve_incremental(
        &mut self,
        extras: &[(&FlowRequest, &ScenarioModel)],
    ) -> Result<(Vec<Vec<f64>>, Vec<usize>), SolveError> {
        let n_paths = self.paths.len();
        let mut assembly = self.assembly.take().unwrap_or_else(JointAssembly::new);
        let mut placements: Vec<(usize, Placement)> = Vec::with_capacity(extras.len());
        for (r, m) in extras {
            placements.push(assembly.place(n_paths, r, m));
        }
        let members: Vec<(usize, &FlowRequest, &ScenarioModel)> = self
            .flows
            .iter()
            .map(|f| (f.slot, &f.request, &f.model))
            .chain(
                placements
                    .iter()
                    .zip(extras)
                    .map(|(&(slot, _), &(r, m))| (slot, r, m)),
            )
            .collect();
        assembly.rescale(self.config.objective, &self.paths, &members);
        drop(members);
        let outcome = self.solve_joint_problem(&assembly.problem);
        match outcome {
            Ok(solution) => {
                let x = solution.into_x();
                let segments = self
                    .flows
                    .iter()
                    .map(|f| f.slot)
                    .chain(placements.iter().map(|&(slot, _)| slot))
                    .map(|slot| x[assembly.slots[slot].cols.clone()].to_vec())
                    .collect();
                let slots = placements.into_iter().map(|(slot, _)| slot).collect();
                self.assembly = Some(assembly);
                Ok((segments, slots))
            }
            Err(e) => {
                // Roll the tentative placements back (reverse order, so
                // appended blocks truncate cleanly) and restore the
                // incumbents' scaling. If the rollback sequence is ever
                // inconsistent (a checked error since the two-phase
                // service path, not a debug_assert), the assembly is
                // rebuilt from the admitted flows instead of being
                // patched in place with shifted row indices.
                let clean = placements
                    .iter()
                    .rev()
                    .all(|&(slot, placement)| assembly.rollback(n_paths, slot, placement).is_ok());
                if clean {
                    if !self.flows.is_empty() {
                        let members: Vec<(usize, &FlowRequest, &ScenarioModel)> = self
                            .flows
                            .iter()
                            .map(|f| (f.slot, &f.request, &f.model))
                            .collect();
                        assembly.rescale(self.config.objective, &self.paths, &members);
                    }
                    self.assembly = Some(assembly);
                } else {
                    self.rebuild_assembly();
                }
                Err(e)
            }
        }
    }

    /// The rebuild path ([`FleetConfig::incremental`] = `false`): the
    /// pre-sparse behavior of assembling a fresh joint [`Problem`] per
    /// solve, kept as the differential baseline.
    fn solve_rebuild(
        &mut self,
        extras: &[(&FlowRequest, &ScenarioModel)],
    ) -> Result<(Vec<Vec<f64>>, Vec<usize>), SolveError> {
        let (problem, combos) = {
            let entries: Vec<(&FlowRequest, &ScenarioModel)> = self
                .flows
                .iter()
                .map(|f| (&f.request, &f.model))
                .chain(extras.iter().copied())
                .collect();
            let combos: Vec<usize> = entries.iter().map(|(_, m)| m.num_combos()).collect();
            (
                assemble_joint(self.config.objective, &self.paths, &entries),
                combos,
            )
        };
        let solution = self.solve_joint_problem(&problem)?;
        let x = solution.into_x();
        let mut segments = Vec::with_capacity(combos.len());
        let mut offset = 0;
        for c in &combos {
            segments.push(x[offset..offset + c].to_vec());
            offset += c;
        }
        debug_assert_eq!(offset, x.len());
        // Slot indices are not meaningful on this path; extras get their
        // entry order.
        let slots = (self.flows.len()..combos.len()).collect();
        Ok((segments, slots))
    }
}

/// Assembles the joint LP from scratch (see the module docs for the
/// formulation; the rebuild path and the differential tests use this).
///
/// Row order matters twice over: with one floor-free flow the sequence —
/// shared capacity rows first (one per path, like the single-flow
/// planner), then the flow's cost/floor rows and its `Σx = 1` — is
/// exactly the row order of `Planner::plan(_, MaxQuality)` (single-flow
/// parity), and with many flows the per-flow rows are grouped *per flow*
/// in admission order, which is precisely the layout the incremental
/// [`JointAssembly`] maintains — a freshly populated fleet produces the
/// same [`Problem`] on both paths.
/// The flow-local index of global path `k` under an optional path subset
/// (`None` = the identity mapping: the flow's model covers every shared
/// path), or `None` when the flow does not use the path at all.
pub(crate) fn local_path_index(subset: Option<&[usize]>, k: usize) -> Option<usize> {
    match subset {
        None => Some(k),
        Some(s) => s.binary_search(&k).ok(),
    }
}

fn assemble_joint(
    objective: FleetObjective,
    paths: &[SharedPath],
    entries: &[(&FlowRequest, &ScenarioModel)],
) -> Problem {
    let lambda_tot: f64 = entries.iter().map(|(r, _)| r.data_rate()).sum();
    let total_vars: usize = entries.iter().map(|(_, m)| m.num_combos()).sum();
    let mut c = Vec::with_capacity(total_vars);
    for (r, m) in entries {
        let w = match objective {
            FleetObjective::WeightedFair => r.priority(),
            FleetObjective::MaxAdmitted | FleetObjective::MaxTotalQuality => 1.0,
        };
        let share = r.data_rate() / lambda_tot;
        c.extend(m.quality_coeffs().iter().map(|p| w * share * p));
    }
    let mut lp = Problem::maximize(c);
    // Shared capacity rows: Σ_f (λ_f/Λ)·usage_f,k · x^f ≤ b_k/Λ. A flow
    // restricted to a path subset has a structurally zero segment in the
    // rows of the paths it does not use.
    for (k, path) in paths.iter().enumerate() {
        let mut row = Vec::with_capacity(total_vars);
        for (r, m) in entries {
            let share = r.data_rate() / lambda_tot;
            match local_path_index(r.paths(), k) {
                Some(lk) => row.extend(m.usage_coeffs(lk).iter().map(|u| share * u)),
                None => row.extend(std::iter::repeat_n(0.0, m.num_combos())),
            }
        }
        lp.add_le(row, path.bandwidth / lambda_tot)
            .expect("dimensions match");
    }
    // Per-flow blocks: cost budget, quality floor, Σx = 1 — grouped per
    // flow, like the incremental assembly appends them.
    let mut offset = 0;
    let mut block_starts = Vec::with_capacity(entries.len());
    for (r, m) in entries {
        let n = m.num_combos();
        block_starts.push(offset);
        if r.cost_budget().is_finite() {
            let mut row = vec![0.0; total_vars];
            row[offset..offset + n].copy_from_slice(m.cost_coeffs());
            lp.add_le(row, r.cost_budget() / r.data_rate())
                .expect("dimensions match");
        }
        if r.min_quality() > 0.0 {
            let mut row = vec![0.0; total_vars];
            row[offset..offset + n].copy_from_slice(m.quality_coeffs());
            lp.add_ge(row, r.min_quality()).expect("dimensions match");
        }
        let mut row = vec![0.0; total_vars];
        for v in &mut row[offset..offset + n] {
            *v = 1.0;
        }
        lp.add_eq(row, 1.0).expect("dimensions match");
        offset += n;
    }
    lp.set_block_starts(block_starts)
        .expect("block starts are sorted and in range");
    lp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table3_paths() -> Vec<ScenarioPath> {
        vec![
            ScenarioPath::constant(80e6, 0.450, 0.2).unwrap(),
            ScenarioPath::constant(20e6, 0.150, 0.0).unwrap(),
        ]
    }

    fn fleet() -> FleetPlanner {
        FleetPlanner::new(table3_paths(), FleetConfig::default()).unwrap()
    }

    #[test]
    fn empty_or_dead_path_sets_are_rejected() {
        assert!(FleetPlanner::new(Vec::new(), FleetConfig::default()).is_err());
        let dead = vec![ScenarioPath::constant(1e6, f64::INFINITY, 0.0).unwrap()];
        assert!(FleetPlanner::new(dead, FleetConfig::default()).is_err());
    }

    #[test]
    fn best_effort_flows_are_always_admitted() {
        let mut fleet = fleet();
        // Even gross overload is feasible: the blackhole absorbs it.
        for i in 0..3 {
            let d = fleet.offer(FlowRequest::new(90e6, 0.8).unwrap()).unwrap();
            assert!(d.is_admitted(), "offer {i}");
        }
        assert_eq!(fleet.num_flows(), 3);
        assert!(fleet.utilization().iter().all(|&u| u <= 1.0 + 1e-9));
        // Capacity is shared: three 90 Mbps flows over 100 Mbps of links
        // cannot all exceed 1/3 mean quality by much.
        assert!(fleet.aggregate_quality() < 0.45);
    }

    #[test]
    fn floors_drive_rejection_and_incumbents_are_untouched() {
        let mut fleet = fleet();
        let a = fleet
            .offer(FlowRequest::new(60e6, 0.8).unwrap().with_min_quality(0.9))
            .unwrap();
        assert!(a.is_admitted());
        let a_plan = fleet.plan_of(a.id()).unwrap().clone();
        // A second strict flow of the same size cannot also get 90 % out
        // of the remaining ~40 Mbps of capacity.
        let b = fleet
            .offer(FlowRequest::new(60e6, 0.8).unwrap().with_min_quality(0.9))
            .unwrap();
        assert!(!b.is_admitted());
        // The incumbent's allocation did not move.
        assert_eq!(
            fleet.plan_of(a.id()).unwrap().strategy().x(),
            a_plan.strategy().x()
        );
        assert_eq!(fleet.num_flows(), 1);
        assert!(fleet.plan_of(b.id()).is_none());
        // A modest flow still fits.
        let c = fleet
            .offer(FlowRequest::new(20e6, 0.8).unwrap().with_min_quality(0.5))
            .unwrap();
        assert!(c.is_admitted());
        for (_, plan) in fleet.plans() {
            assert!(plan.quality() >= 0.5 - 1e-9);
        }
    }

    #[test]
    fn departures_relax_and_unknown_ids_error() {
        let mut fleet = fleet();
        let a = fleet
            .offer(FlowRequest::new(50e6, 0.8).unwrap().with_min_quality(0.8))
            .unwrap();
        let b = fleet.offer(FlowRequest::new(50e6, 0.8).unwrap()).unwrap();
        let q_b_before = fleet.plan_of(b.id()).unwrap().quality();
        let departed = fleet.depart(a.id()).unwrap();
        assert!(departed.quality() >= 0.8 - 1e-9);
        // The survivor can only gain from the freed capacity.
        assert!(fleet.plan_of(b.id()).unwrap().quality() >= q_b_before - 1e-9);
        assert!(matches!(
            fleet.depart(a.id()),
            Err(FleetError::UnknownFlow(_))
        ));
    }

    #[test]
    fn link_failure_sheds_only_what_no_longer_fits_and_recovery_revives_it() {
        let mut fleet = fleet();
        // Fits only thanks to path 0: 60 Mbps at 90 %.
        let big = fleet
            .offer(FlowRequest::new(60e6, 0.8).unwrap().with_min_quality(0.9))
            .unwrap();
        // Fits on path 1 alone: 10 Mbps, lossless link.
        let small = fleet
            .offer(FlowRequest::new(10e6, 0.8).unwrap().with_min_quality(0.9))
            .unwrap();
        assert!(big.is_admitted() && small.is_admitted());
        let shed = fleet.apply_link_change(0, &LinkChange::Fail).unwrap();
        assert_eq!(shed, vec![big.id()]);
        assert_eq!(fleet.flow_ids(), vec![small.id()]);
        assert_eq!(fleet.shed_flows(), vec![big.id()]);
        assert!(fleet.plan_of(small.id()).unwrap().quality() >= 0.9 - 1e-9);
        // Recovery sheds nothing and revives the queued flow under its
        // original id, floor met again.
        let shed = fleet.apply_link_change(0, &LinkChange::Recover).unwrap();
        assert!(shed.is_empty());
        assert!(fleet.shed_flows().is_empty());
        assert_eq!(fleet.revived_flows(), &[big.id()]);
        assert!(fleet.flow_ids().contains(&big.id()));
        assert!(fleet.plan_of(big.id()).unwrap().quality() >= 0.9 - 1e-9);
        assert!(fleet.shed_rejected().is_empty());
    }

    #[test]
    fn shedding_is_priority_ordered_lowest_first() {
        // Two flows that both fit initially but cannot share the thin
        // clean path once the fat one fails. The *lower-priority* flow is
        // shed even though it was admitted first.
        let mut ranked = fleet();
        let lo = ranked
            .offer(FlowRequest::new(15e6, 0.8).unwrap().with_min_quality(0.9))
            .unwrap();
        let hi = ranked
            .offer(
                FlowRequest::new(15e6, 0.8)
                    .unwrap()
                    .with_min_quality(0.9)
                    .with_priority(4.0),
            )
            .unwrap();
        assert!(lo.is_admitted() && hi.is_admitted());
        let shed = ranked.apply_link_change(0, &LinkChange::Fail).unwrap();
        assert_eq!(shed, vec![lo.id()]);
        assert_eq!(ranked.flow_ids(), vec![hi.id()]);
        // Equal priorities break ties by admission order: rerun with the
        // priorities leveled and the *second* arrival is shed instead.
        let mut tied = fleet();
        let first = tied
            .offer(FlowRequest::new(15e6, 0.8).unwrap().with_min_quality(0.9))
            .unwrap();
        let second = tied
            .offer(FlowRequest::new(15e6, 0.8).unwrap().with_min_quality(0.9))
            .unwrap();
        assert!(first.is_admitted() && second.is_admitted());
        let shed = tied.apply_link_change(0, &LinkChange::Fail).unwrap();
        assert_eq!(shed, vec![second.id()]);
        assert_eq!(tied.flow_ids(), vec![first.id()]);
    }

    #[test]
    fn shed_flow_backs_off_and_is_definitively_rejected_within_the_horizon() {
        let mut fleet = fleet();
        let big = fleet
            .offer(FlowRequest::new(60e6, 0.8).unwrap().with_min_quality(0.9))
            .unwrap();
        let small = fleet
            .offer(FlowRequest::new(10e6, 0.8).unwrap().with_min_quality(0.9))
            .unwrap();
        fleet.apply_link_change(0, &LinkChange::Fail).unwrap();
        assert_eq!(fleet.shed_flows(), vec![big.id()]);
        // Capacity never returns; every subsequent event runs one sweep.
        // The flow must leave the queue within SHED_HORIZON events.
        let mut events = 0;
        while !fleet.shed_flows().is_empty() {
            fleet
                .apply_link_change(1, &LinkChange::SetBandwidth(20e6))
                .unwrap();
            events += 1;
            assert!(
                events <= FleetPlanner::SHED_HORIZON,
                "flow still queued after {events} capacity events"
            );
        }
        assert_eq!(events, FleetPlanner::SHED_HORIZON);
        assert_eq!(fleet.shed_rejected(), &[big.id()]);
        assert!(fleet.revived_flows().is_empty());
        // The survivor was never disturbed.
        assert_eq!(fleet.flow_ids(), vec![small.id()]);
        assert!(fleet.plan_of(small.id()).unwrap().quality() >= 0.9 - 1e-9);
    }

    #[test]
    fn departing_a_shed_flow_withdraws_it_from_the_queue() {
        let mut fleet = fleet();
        let big = fleet
            .offer(FlowRequest::new(60e6, 0.8).unwrap().with_min_quality(0.9))
            .unwrap();
        fleet
            .offer(FlowRequest::new(10e6, 0.8).unwrap().with_min_quality(0.9))
            .unwrap();
        fleet.apply_link_change(0, &LinkChange::Fail).unwrap();
        assert_eq!(fleet.shed_flows(), vec![big.id()]);
        // The tenant gives up while the flow waits: it returns the plan
        // it held when it was shed, and recovery revives nothing.
        let last_plan = fleet.depart(big.id()).unwrap();
        assert!(last_plan.quality() >= 0.9 - 1e-9);
        assert!(fleet.shed_flows().is_empty());
        fleet.apply_link_change(0, &LinkChange::Recover).unwrap();
        assert!(fleet.revived_flows().is_empty());
        assert_eq!(fleet.num_flows(), 1);
    }

    #[test]
    fn event_lists_drain_per_event_across_successive_outages() {
        let mut fleet = fleet();
        let big = fleet
            .offer(FlowRequest::new(60e6, 0.8).unwrap().with_min_quality(0.9))
            .unwrap();
        fleet
            .offer(FlowRequest::new(10e6, 0.8).unwrap().with_min_quality(0.9))
            .unwrap();
        // Outage 1: the big flow is shed, recovery revives it.
        fleet.apply_link_change(0, &LinkChange::Fail).unwrap();
        fleet.apply_link_change(0, &LinkChange::Recover).unwrap();
        assert_eq!(fleet.drain_revived(), vec![big.id()]);
        assert!(fleet.revived_flows().is_empty());
        assert!(fleet.drain_shed_rejected().is_empty());
        // Outage 2: the drained view must report *this* event's revival
        // exactly once. Before the drain API the lists were
        // cumulative-only, so a service polling after the second outage
        // re-reported the first outage's revival as if it were new.
        fleet.apply_link_change(0, &LinkChange::Fail).unwrap();
        fleet.apply_link_change(0, &LinkChange::Recover).unwrap();
        assert_eq!(fleet.drain_revived(), vec![big.id()]);
        assert!(fleet.drain_revived().is_empty());
        assert!(fleet.drain_shed_rejected().is_empty());
    }

    #[test]
    fn out_of_order_rollback_is_a_checked_error() {
        let mut fleet = fleet();
        let req_a = FlowRequest::new(10e6, 0.5).unwrap();
        let req_b = FlowRequest::new(20e6, 0.7).unwrap();
        let model_a = fleet.flow_model(&req_a).unwrap();
        let model_b = fleet.flow_model(&req_b).unwrap();
        let mut assembly = JointAssembly::new();
        let (slot_a, place_a) = assembly.place(2, &req_a, &model_a);
        let (slot_b, place_b) = assembly.place(2, &req_b, &model_b);
        // Rolling the *first* appended block back while the second still
        // exists would truncate the wrong rows; it must fail loudly (it
        // was a debug_assert before, so release builds corrupted the
        // assembly silently).
        assert!(matches!(
            assembly.rollback(2, slot_a, place_a),
            Err(FleetError::Invalid(_))
        ));
        // Reverse placement order unwinds cleanly.
        assert!(assembly.rollback(2, slot_b, place_b).is_ok());
        assert!(assembly.rollback(2, slot_a, place_a).is_ok());
        assert!(assembly.slots.is_empty());
    }

    #[test]
    fn partial_batch_failure_rolls_back_and_admits_what_fits() {
        let mut fleet = fleet();
        // The whole batch cannot fit (two 60 Mbps flows at 90 % on
        // ~100 Mbps of links), so the single-solve fast path fails and
        // the greedy fallback must roll its tentative placements back
        // per candidate without corrupting the assembly.
        let decisions = fleet
            .offer_batch(vec![
                FlowRequest::new(60e6, 0.8).unwrap().with_min_quality(0.9),
                FlowRequest::new(60e6, 0.8).unwrap().with_min_quality(0.9),
                FlowRequest::new(10e6, 0.8).unwrap().with_min_quality(0.5),
            ])
            .unwrap();
        let admitted: Vec<bool> = decisions
            .iter()
            .map(AdmissionDecision::is_admitted)
            .collect();
        assert_eq!(admitted, vec![true, false, true]);
        assert_eq!(fleet.num_flows(), 2);
        for (_, plan) in fleet.plans() {
            assert!(plan.quality() >= 0.5 - 1e-9);
        }
        assert!(fleet.utilization().iter().all(|&u| u <= 1.0 + 1e-9));
        // The assembly survived the mid-batch refusal: later churn on the
        // same assembly still works.
        let later = fleet
            .offer(FlowRequest::new(5e6, 0.8).unwrap().with_min_quality(0.5))
            .unwrap();
        assert!(later.is_admitted());
        fleet.depart(later.id()).unwrap();
        assert_eq!(fleet.num_flows(), 2);
    }

    #[test]
    fn depart_batch_matches_sequential_departs() {
        let admit_four = |fleet: &mut FleetPlanner| -> Vec<FlowId> {
            [
                FlowRequest::new(30e6, 0.8).unwrap().with_min_quality(0.6),
                FlowRequest::new(20e6, 0.6).unwrap(),
                FlowRequest::new(15e6, 1.0).unwrap().with_min_quality(0.4),
                FlowRequest::new(10e6, 0.9).unwrap(),
            ]
            .into_iter()
            .map(|r| {
                let d = fleet.offer(r).unwrap();
                assert!(d.is_admitted());
                d.id()
            })
            .collect()
        };
        let mut batched = fleet();
        let ids = admit_four(&mut batched);
        let mut sequential = fleet();
        let seq_ids = admit_four(&mut sequential);
        assert_eq!(ids, seq_ids);
        let plans = batched.depart_batch(&[ids[0], ids[2]]).unwrap();
        assert_eq!(plans.len(), 2);
        let p0 = sequential.depart(ids[0]).unwrap();
        let p2 = sequential.depart(ids[2]).unwrap();
        assert_eq!(plans[0].strategy().x(), p0.strategy().x());
        assert_eq!(plans[1].strategy().x(), p2.strategy().x());
        // Same survivors, same final joint LP, same plans.
        assert_eq!(batched.flow_ids(), sequential.flow_ids());
        for (id, plan) in batched.plans() {
            assert_eq!(
                plan.strategy().x(),
                sequential.plan_of(id).unwrap().strategy().x(),
                "{id}"
            );
        }
        // Unknown or repeated ids leave the fleet untouched.
        assert!(matches!(
            batched.depart_batch(&[ids[1], ids[0]]),
            Err(FleetError::UnknownFlow(_))
        ));
        assert!(matches!(
            batched.depart_batch(&[ids[1], ids[1]]),
            Err(FleetError::UnknownFlow(_))
        ));
        assert_eq!(batched.num_flows(), 2);
        assert!(batched.depart_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn path_subsets_restrict_usage_and_match_a_restricted_fleet() {
        let mut fleet = fleet();
        let restricted = fleet
            .offer(
                FlowRequest::new(15e6, 0.8)
                    .unwrap()
                    .with_min_quality(0.5)
                    .with_paths(vec![1]),
            )
            .unwrap();
        assert!(restricted.is_admitted());
        // The flow consumes nothing on the path it renounced.
        let util = fleet.utilization();
        assert!(util[0].abs() < 1e-12, "path 0 utilization {}", util[0]);
        assert!(util[1] > 0.0);
        // It plans exactly like the same flow on a fleet that only has
        // that path.
        let mut solo =
            FleetPlanner::new(vec![table3_paths()[1].clone()], FleetConfig::default()).unwrap();
        let alone = solo
            .offer(FlowRequest::new(15e6, 0.8).unwrap().with_min_quality(0.5))
            .unwrap();
        let pf = fleet.plan_of(restricted.id()).unwrap();
        let ps = solo.plan_of(alone.id()).unwrap();
        assert!((pf.quality() - ps.quality()).abs() <= 1e-9);
        for (a, b) in pf.strategy().x().iter().zip(ps.strategy().x()) {
            assert!((a - b).abs() <= 1e-9, "{a} vs {b}");
        }
        // Out-of-range subset indices are rejected.
        assert!(fleet
            .offer(FlowRequest::new(1e6, 0.5).unwrap().with_paths(vec![9]))
            .is_err());
    }

    #[test]
    fn warm_anomaly_drops_the_basis_and_never_panics() {
        // Admit two flows so the joint shape has a cached basis, then
        // strangle the pivot budget: the next resettle's warm attempt
        // aborts on the iteration cap (an anomaly), the fallback drops
        // the cached basis and retries cold — which also aborts, so the
        // operation fails with an error, not a panic, and the incumbents
        // keep their last-known-good plans. Restoring the budget heals
        // the fleet on the next event.
        let mut fleet = fleet();
        let a = fleet
            .offer(FlowRequest::new(40e6, 0.8).unwrap().with_min_quality(0.7))
            .unwrap();
        let b = fleet.offer(FlowRequest::new(10e6, 0.8).unwrap()).unwrap();
        assert!(a.is_admitted() && b.is_admitted());
        assert!(fleet.cached_bases() > 0);
        let cached_before = fleet.cached_bases();
        let plan_a = fleet.plan_of(a.id()).unwrap().clone();
        let budget = fleet.config.planner.solver.max_iterations;
        fleet.config.planner.solver.max_iterations = 1;
        let err = fleet
            .apply_link_change(0, &LinkChange::SetBandwidth(5e6))
            .unwrap_err();
        assert!(matches!(
            err,
            FleetError::Solve(SolveError::IterationLimit { .. })
        ));
        assert_eq!(fleet.warm_anomalies(), 1);
        assert_eq!(fleet.cached_bases(), cached_before - 1);
        // Last-known-good plans survived the failed solve.
        assert_eq!(
            fleet.plan_of(a.id()).unwrap().strategy().x(),
            plan_a.strategy().x()
        );
        // With the budget restored the fleet resettles cleanly.
        fleet.config.planner.solver.max_iterations = budget;
        let shed = fleet
            .apply_link_change(0, &LinkChange::SetBandwidth(80e6))
            .unwrap();
        assert!(shed.is_empty());
        assert!(fleet.plan_of(a.id()).unwrap().quality() >= 0.7 - 1e-9);
    }

    #[test]
    fn bandwidth_and_loss_changes_flow_into_the_joint_lp() {
        let mut fleet = fleet();
        let a = fleet.offer(FlowRequest::new(90e6, 0.8).unwrap()).unwrap();
        let q_full = fleet.plan_of(a.id()).unwrap().quality();
        // Halving path 0 must cost quality.
        fleet
            .apply_link_change(0, &LinkChange::SetBandwidth(40e6))
            .unwrap();
        let q_half = fleet.plan_of(a.id()).unwrap().quality();
        assert!(q_half < q_full - 0.05, "{q_half} vs {q_full}");
        // A Gilbert–Elliott loss process plans via its stationary rate
        // (classic(0.2, 0.2) sits in the bad state half the time → 50 %).
        let ge = dmc_sim::GilbertElliott::classic(0.2, 0.2).unwrap();
        assert!((ge.stationary_loss() - 0.5).abs() < 1e-12);
        fleet
            .apply_link_change(0, &LinkChange::SetLoss(ge.into()))
            .unwrap();
        let q_lossy = fleet.plan_of(a.id()).unwrap().quality();
        assert!(q_lossy < q_half + 1e-9, "{q_lossy} vs {q_half}");
        // Bad inputs are rejected.
        assert!(fleet.apply_link_change(9, &LinkChange::Fail).is_err());
        assert!(fleet
            .apply_link_change(0, &LinkChange::SetBandwidth(-1.0))
            .is_err());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut f = fleet();
        assert!(f.offer_batch(Vec::new()).unwrap().is_empty());
        assert_eq!(f.num_flows(), 0);
        // Also fine with incumbents: nothing re-solved, nothing changed.
        let a = f.offer(FlowRequest::new(30e6, 0.8).unwrap()).unwrap();
        let x_before = f.plan_of(a.id()).unwrap().strategy().x().to_vec();
        assert!(f.offer_batch(Vec::new()).unwrap().is_empty());
        assert_eq!(f.plan_of(a.id()).unwrap().strategy().x(), x_before);
    }

    #[test]
    fn batch_and_sequential_admission_agree() {
        let reqs = || {
            vec![
                FlowRequest::new(30e6, 0.9).unwrap().with_min_quality(0.9),
                FlowRequest::new(25e6, 0.5).unwrap().with_min_quality(0.6),
                FlowRequest::new(20e6, 1.2).unwrap(),
            ]
        };
        let mut batched = fleet();
        let decisions = batched.offer_batch(reqs()).unwrap();
        assert!(decisions.iter().all(AdmissionDecision::is_admitted));
        let mut sequential = fleet();
        for r in reqs() {
            assert!(sequential.offer(r).unwrap().is_admitted());
        }
        // Same final joint LP → same canonical vertex → identical plans.
        for (id, plan) in batched.plans() {
            let other = sequential.plan_of(id).unwrap();
            assert_eq!(plan.strategy().x(), other.strategy().x(), "{id}");
            assert_eq!(plan.quality(), other.quality());
        }
        // Ids are input-ordered in both schemes.
        assert_eq!(
            decisions
                .iter()
                .map(AdmissionDecision::id)
                .collect::<Vec<_>>(),
            batched.flow_ids()
        );
    }

    #[test]
    fn weighted_fair_shifts_quality_toward_priority() {
        let mk = |objective| {
            let mut f = FleetPlanner::new(
                table3_paths(),
                FleetConfig {
                    objective,
                    ..FleetConfig::default()
                },
            )
            .unwrap();
            let hi = f
                .offer(FlowRequest::new(70e6, 0.8).unwrap().with_priority(8.0))
                .unwrap();
            let lo = f.offer(FlowRequest::new(70e6, 0.8).unwrap()).unwrap();
            let q_hi = f.plan_of(hi.id()).unwrap().quality();
            let q_lo = f.plan_of(lo.id()).unwrap().quality();
            (q_hi, q_lo)
        };
        let (q_hi, q_lo) = mk(FleetObjective::WeightedFair);
        assert!(
            q_hi >= q_lo + 0.1,
            "priority 8 flow got {q_hi}, priority 1 got {q_lo}"
        );
    }

    #[test]
    fn departure_tombstones_and_readmission_reuses_the_slot() {
        // Steady-state churn: depart + equivalent arrival, twice. The
        // first cycle populates the cache entries of the two LP variants
        // (slot tombstoned / slot revived — same shape, distinguished by
        // the zero-RHS tag in the shape key); from the second cycle on
        // every solve re-enters phase 2 from its variant's basis.
        let mut fleet = fleet();
        let mut current = fleet
            .offer(FlowRequest::new(30e6, 0.8).unwrap().with_min_quality(0.6))
            .unwrap();
        let _b = fleet.offer(FlowRequest::new(20e6, 0.6).unwrap()).unwrap();
        for _ in 0..2 {
            fleet.depart(current.id()).unwrap();
            current = fleet
                .offer(FlowRequest::new(30e6, 0.8).unwrap().with_min_quality(0.6))
                .unwrap();
            assert!(current.is_admitted());
        }
        assert!(
            fleet.warm_stats().hits >= 2,
            "churn cycles 2+ should warm-start both solves: {}",
            fleet.warm_stats()
        );
        assert_eq!(fleet.num_flows(), 2);
        assert!(fleet.utilization().iter().all(|&u| u <= 1.0 + 1e-9));
    }

    #[test]
    fn heavy_churn_compacts_and_matches_a_fresh_fleet() {
        // Admit and immediately depart flows until tombstones outnumber
        // the survivors, forcing compaction; the surviving allocation
        // must match a fresh fleet admitting just the survivors.
        let mut churned = fleet();
        let keep_a = churned
            .offer(FlowRequest::new(25e6, 0.8).unwrap().with_min_quality(0.5))
            .unwrap();
        // Transients of varying widths/patterns (so slots cannot all be
        // reused and the slot list actually grows).
        let mut transients = Vec::new();
        for i in 0..10 {
            let mut req = FlowRequest::new(5e6 + i as f64 * 1e6, 0.5 + 0.05 * i as f64).unwrap();
            if i % 2 == 0 {
                req = req.with_min_quality(0.3);
            }
            if i % 3 == 0 {
                req = req.with_transmissions(1); // narrower block
            }
            transients.push(churned.offer(req).unwrap());
        }
        let keep_b = churned.offer(FlowRequest::new(15e6, 1.0).unwrap()).unwrap();
        for t in &transients {
            churned.depart(t.id()).unwrap();
        }
        let mut fresh = fleet();
        let fa = fresh
            .offer(FlowRequest::new(25e6, 0.8).unwrap().with_min_quality(0.5))
            .unwrap();
        let fb = fresh.offer(FlowRequest::new(15e6, 1.0).unwrap()).unwrap();
        let pairs = [(keep_a.id(), fa.id()), (keep_b.id(), fb.id())];
        for (churned_id, fresh_id) in pairs {
            let pc = churned.plan_of(churned_id).unwrap();
            let pf = fresh.plan_of(fresh_id).unwrap();
            for (a, b) in pc.strategy().x().iter().zip(pf.strategy().x()) {
                assert!((a - b).abs() <= 1e-9, "{churned_id}: {a} vs {b}");
            }
            assert!((pc.quality() - pf.quality()).abs() <= 1e-9);
        }
    }

    #[test]
    fn rejected_offer_rolls_the_assembly_back() {
        let mut fleet = fleet();
        let a = fleet
            .offer(FlowRequest::new(60e6, 0.8).unwrap().with_min_quality(0.9))
            .unwrap();
        assert!(a.is_admitted());
        // Reject a few incompatible candidates (one would append, one
        // could reuse nothing) and interleave a successful admission: the
        // assembly must stay consistent throughout.
        for _ in 0..3 {
            let r = fleet
                .offer(FlowRequest::new(60e6, 0.8).unwrap().with_min_quality(0.9))
                .unwrap();
            assert!(!r.is_admitted());
        }
        let ok = fleet
            .offer(FlowRequest::new(10e6, 0.8).unwrap().with_min_quality(0.5))
            .unwrap();
        assert!(ok.is_admitted());
        assert_eq!(fleet.num_flows(), 2);
        for (_, plan) in fleet.plans() {
            assert!(plan.quality() >= 0.5 - 1e-9);
        }
        assert!(fleet.utilization().iter().all(|&u| u <= 1.0 + 1e-9));
    }

    #[test]
    fn churn_warm_starts_and_matches_cold_bit_for_bit() {
        let churn = |fleet: &mut FleetPlanner| {
            let a = fleet
                .offer(FlowRequest::new(40e6, 0.8).unwrap().with_min_quality(0.7))
                .unwrap();
            let _b = fleet.offer(FlowRequest::new(30e6, 0.6).unwrap()).unwrap();
            fleet.depart(a.id()).unwrap();
            let _c = fleet
                .offer(FlowRequest::new(40e6, 0.8).unwrap().with_min_quality(0.7))
                .unwrap();
        };
        let mut warm = fleet();
        churn(&mut warm);
        assert!(
            warm.warm_stats().hits > 0,
            "churn re-solves never warm-started: {}",
            warm.warm_stats()
        );
        let mut cold = FleetPlanner::new(
            table3_paths(),
            FleetConfig {
                planner: PlannerConfig {
                    warm_start: false,
                    ..PlannerConfig::default()
                },
                ..FleetConfig::default()
            },
        )
        .unwrap();
        churn(&mut cold);
        assert_eq!(cold.warm_stats(), WarmStats::default());
        assert_eq!(cold.cached_bases(), 0);
        for ((ida, pa), (idb, pb)) in warm.plans().zip(cold.plans()) {
            assert_eq!(ida, idb);
            assert_eq!(pa.strategy().x(), pb.strategy().x(), "{ida}");
            assert_eq!(pa.quality(), pb.quality());
        }
    }
}
