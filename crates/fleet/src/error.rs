//! Fleet-level errors.

use crate::flow::FlowId;
use dmc_core::{PlanError, SpecError};
use dmc_lp::SolveError;
use std::fmt;

/// Errors from the fleet service.
///
/// Note that an *infeasible admission* is not an error: [`crate::FleetPlanner::offer`]
/// reports it as [`crate::AdmissionDecision::Rejected`]. `FleetError` covers
/// caller mistakes (invalid requests, unknown flows) and genuine solver
/// failures.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FleetError {
    /// A path or scenario description is invalid.
    Spec(SpecError),
    /// Building a per-flow model failed.
    Plan(PlanError),
    /// The joint LP failed for a reason other than infeasibility
    /// (iteration limit, hostile numerics).
    Solve(SolveError),
    /// The referenced flow is not admitted (never admitted, already
    /// departed, or evicted).
    UnknownFlow(FlowId),
    /// Invalid input (bad path index, non-finite parameter, empty fleet).
    Invalid(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Spec(e) => write!(f, "{e}"),
            FleetError::Plan(e) => write!(f, "{e}"),
            FleetError::Solve(e) => write!(f, "joint LP failed: {e}"),
            FleetError::UnknownFlow(id) => write!(f, "{id} is not admitted"),
            FleetError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Spec(e) => Some(e),
            FleetError::Plan(e) => Some(e),
            FleetError::Solve(e) => Some(e),
            FleetError::UnknownFlow(_) | FleetError::Invalid(_) => None,
        }
    }
}

impl From<SpecError> for FleetError {
    fn from(e: SpecError) -> Self {
        FleetError::Spec(e)
    }
}

impl From<PlanError> for FleetError {
    fn from(e: PlanError) -> Self {
        FleetError::Plan(e)
    }
}

impl From<SolveError> for FleetError {
    fn from(e: SolveError) -> Self {
        FleetError::Solve(e)
    }
}
