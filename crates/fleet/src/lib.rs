//! # dmc-fleet — multi-flow admission control and joint capacity allocation
//!
//! The paper plans a *single* sender's deadline-constrained transfer; a
//! production service faces **many concurrent flows with heterogeneous
//! deadlines contending for the same path capacity**. This crate is that
//! layer: a multi-tenant [`FleetPlanner`] that accepts [`FlowRequest`]s
//! (rate, deadline, loss tolerance / quality floor, cost budget,
//! priority), performs **admission control** in the DDCCast spirit —
//! accept a flow only when the remaining shared capacity can still meet
//! every accepted deadline — and computes a **joint shared-capacity
//! allocation**: one LP over all admitted flows in which the per-path
//! capacity rows are shared (`Σ` over flows of per-flow path usage `≤`
//! path bandwidth) while each flow keeps its own deadline coefficients,
//! quality floor and cost budget.
//!
//! Everything reuses the existing stack rather than duplicating it:
//!
//! * per-flow coefficients come from
//!   [`dmc_core::Planner::model`] — the same Eq. 12/28 code both delay
//!   regimes already use;
//! * the joint LP is a plain [`dmc_lp::Problem`], solved by the revised
//!   backend with **warm starts**: the optimal basis is cached per joint
//!   shape, so churn (a departure returning the fleet to a
//!   previously-seen shape, a link retune keeping the shape) re-enters
//!   phase 2 directly — see the `fleet_admission` benchmark;
//! * the joint solution is **decomposed back into ordinary per-flow
//!   [`dmc_core::Plan`]s** via [`dmc_core::ScenarioModel::plan_for`], so
//!   `run_plan`, `DmcSender::from_plan` and `AdaptiveSender` consume
//!   fleet output unchanged;
//! * arrival traces are replayed deterministically through
//!   [`FleetTrace`]/[`FleetPlanner::replay`], with link dynamics speaking
//!   the [`dmc_sim::LinkChange`] vocabulary (`Fail`/`Recover`/
//!   `SetBandwidth`/`SetLoss`) of [`dmc_sim::Dynamics`].
//!
//! Objective modes ([`FleetObjective`]): `MaxAdmitted` (greedy
//! deadline-ordered admission), `MaxTotalQuality` (rate-weighted
//! aggregate quality) and `WeightedFair` (priority-weighted).
//!
//! Beyond the steady-state instant, [`SchedulePlanner`] expands the
//! joint LP over a slotted [`TimeGrid`] horizon: flows carry
//! `[start, deadline)` [`SlotWindow`]s, refused-now flows receive
//! **advance reservations** for the earliest feasible later window,
//! store-and-forward buffering drains traffic across slot boundaries,
//! and maintenance windows are zero-capacity slots — see the
//! [`schedule`-module docs](SchedulePlanner) and `ARCHITECTURE.md` at
//! the repository root for where it sits in the stack.
//!
//! With exactly one flow the joint LP degenerates — row for row — to the
//! single-flow planner's, so `FleetPlanner` answers match
//! [`dmc_core::Planner::plan`] bit for bit (`tests/parity_single_flow.rs`).
//!
//! ```
//! use dmc_core::ScenarioPath;
//! use dmc_fleet::{FleetConfig, FleetPlanner, FlowRequest};
//!
//! # fn main() -> Result<(), dmc_fleet::FleetError> {
//! let mut fleet = FleetPlanner::new(
//!     vec![
//!         ScenarioPath::constant(80e6, 0.450, 0.2)?, // shared fat lossy link
//!         ScenarioPath::constant(20e6, 0.150, 0.0)?, // shared thin clean link
//!     ],
//!     FleetConfig::default(),
//! )?;
//! let video = fleet.offer(FlowRequest::new(30e6, 0.750)?.with_min_quality(0.95))?;
//! assert!(video.is_admitted());
//! // The admitted flow owns an ordinary Plan: feed it to run_plan /
//! // DmcSender::from_plan like any single-flow plan.
//! let plan = fleet.plan_of(video.id()).unwrap();
//! assert!(plan.quality() >= 0.95 - 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod flow;
mod planner;
mod schedule;
pub mod service;
mod timeline;

pub use error::FleetError;
pub use flow::{FlowId, FlowRequest};
pub use planner::{AdmissionDecision, FleetConfig, FleetObjective, FleetPlanner};
pub use schedule::{
    ScheduleAdvance, ScheduleDecision, SchedulePlanner, ScheduleRequest, ScheduleShuffle,
    SlotWindow, TimeGrid,
};
pub use service::{FleetService, RegionMap, ServiceConfig, ServiceEvent};
pub use timeline::{FleetEvent, FleetSnapshot, FleetTrace, ScheduleSnapshot, TraceEvent};

// Re-exported so fleet callers can name the shared counter type without
// depending on dmc-core directly.
pub use dmc_core::WarmStats;
