//! Capacity-region partitioning: union-find over shared-path membership.

use crate::error::FleetError;

/// A partition of the shared paths into **capacity regions**.
///
/// Two paths belong to the same region exactly when some declared *path
/// group* — the path set of an expected flow class — contains both
/// (transitively). Flows whose path sets never overlap never share a
/// capacity row of the joint LP, so each region can be admitted by an
/// independent [`FleetPlanner`](crate::FleetPlanner) shard; only flows
/// whose declared path set spans regions need the router's two-phase
/// reserve/commit.
///
/// Region ids are deterministic: regions are numbered in order of their
/// smallest member path, and [`RegionMap::region_paths`] lists each
/// region's paths in ascending global index — the layout every shard,
/// trace and test can rely on.
#[derive(Debug, Clone)]
pub struct RegionMap {
    /// Global path index → region id.
    path_region: Vec<usize>,
    /// Region id → its global path indices, ascending.
    regions: Vec<Vec<usize>>,
}

impl RegionMap {
    /// Partitions `n_paths` shared paths by the declared `groups` (each
    /// a set of 0-based path indices some flow class may use). Paths
    /// named by no group each form a singleton region.
    ///
    /// # Errors
    ///
    /// Rejects `n_paths == 0` and groups naming out-of-range paths.
    pub fn new(n_paths: usize, groups: &[Vec<usize>]) -> Result<Self, FleetError> {
        if n_paths == 0 {
            return Err(FleetError::Invalid(
                "a fleet service needs at least one shared path".into(),
            ));
        }
        let mut parent: Vec<usize> = (0..n_paths).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for group in groups {
            for &k in group {
                if k >= n_paths {
                    return Err(FleetError::Invalid(format!(
                        "path group names path {k}, but there are only {n_paths} shared paths"
                    )));
                }
            }
            for pair in group.windows(2) {
                let a = find(&mut parent, pair[0]);
                let b = find(&mut parent, pair[1]);
                if a != b {
                    // Root at the smaller index so normalization below
                    // is order-independent.
                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                    parent[hi] = lo;
                }
            }
        }
        let mut path_region = vec![0usize; n_paths];
        let mut regions: Vec<Vec<usize>> = Vec::new();
        let mut root_region: Vec<Option<usize>> = vec![None; n_paths];
        for (k, slot) in path_region.iter_mut().enumerate() {
            let root = find(&mut parent, k);
            let region = match root_region[root] {
                Some(r) => r,
                None => {
                    regions.push(Vec::new());
                    let r = regions.len() - 1;
                    root_region[root] = Some(r);
                    r
                }
            };
            *slot = region;
            regions[region].push(k);
        }
        Ok(RegionMap {
            path_region,
            regions,
        })
    }

    /// Number of capacity regions (= number of shards).
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// The region a global path index belongs to (`None` out of range).
    pub fn region_of(&self, path: usize) -> Option<usize> {
        self.path_region.get(path).copied()
    }

    /// The global path indices of one region, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `region ≥ num_regions()`.
    pub fn region_paths(&self, region: usize) -> &[usize] {
        &self.regions[region]
    }

    /// The sorted, distinct regions a path set touches (out-of-range
    /// indices are ignored; validate them first).
    pub fn regions_of(&self, paths: &[usize]) -> Vec<usize> {
        let mut rs: Vec<usize> = paths.iter().filter_map(|&k| self.region_of(k)).collect();
        rs.sort_unstable();
        rs.dedup();
        rs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ungrouped_paths_are_singleton_regions() {
        let map = RegionMap::new(4, &[]).unwrap();
        assert_eq!(map.num_regions(), 4);
        for k in 0..4 {
            assert_eq!(map.region_of(k), Some(k));
            assert_eq!(map.region_paths(k), &[k]);
        }
        assert_eq!(map.region_of(4), None);
    }

    #[test]
    fn groups_union_transitively_and_ids_are_normalized() {
        // {0,2} and {2,4} chain into one region; 1 and 3 stay alone.
        let map = RegionMap::new(5, &[vec![0, 2], vec![2, 4]]).unwrap();
        assert_eq!(map.num_regions(), 3);
        assert_eq!(map.region_paths(0), &[0, 2, 4]);
        assert_eq!(map.region_paths(1), &[1]);
        assert_eq!(map.region_paths(2), &[3]);
        assert_eq!(map.regions_of(&[4, 1]), vec![0, 1]);
        assert_eq!(map.regions_of(&[2, 0]), vec![0]);
        // Group order cannot change the ids.
        let swapped = RegionMap::new(5, &[vec![4, 2], vec![2, 0]]).unwrap();
        assert_eq!(swapped.region_paths(0), &[0, 2, 4]);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(RegionMap::new(0, &[]).is_err());
        assert!(RegionMap::new(2, &[vec![0, 2]]).is_err());
    }
}
