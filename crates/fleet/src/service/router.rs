//! The shard router: sequence-numbered submission, the batched parallel
//! tick, and the two-phase reserve/commit for region-spanning flows.

use std::collections::BTreeMap;

use dmc_core::{Plan, ScenarioPath};
use dmc_sim::LinkChange;

use super::region::RegionMap;
use super::resolved_workers_with;
use super::shard::{Shard, ShardOp};
use crate::error::FleetError;
use crate::flow::{FlowId, FlowRequest};
use crate::planner::{AdmissionDecision, FleetConfig};
use crate::schedule::{ScheduleAdvance, ScheduleDecision, ScheduleRequest, TimeGrid};

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Configuration of a [`FleetService`].
#[derive(Debug, Clone, Default)]
pub struct ServiceConfig {
    /// Worker threads for the parallel tick phase. `0` (the default)
    /// resolves through
    /// [`resolved_workers_with`](super::resolved_workers_with): the
    /// `DMC_THREADS` environment variable (clamped to ≥ 1), then the
    /// machine's available parallelism. Resolved once, at construction.
    pub workers: usize,
    /// Per-shard planner configuration (every shard gets a clone).
    ///
    /// Its [`FleetConfig::obs`] registry is the service's **parent**
    /// telemetry registry. Each shard receives a private
    /// [`fork`](dmc_obs::Obs::fork) of it (so the parallel tick phase
    /// never races the router's own recordings), and
    /// [`FleetService::obs_snapshot`] absorbs the forks back into the
    /// parent's snapshot in shard order — deterministic at any worker
    /// count. The router records `service.ticks`, `service.events`,
    /// `service.queue_depth`, the spanning reserve/commit counters
    /// (`service.spanning_offers` = `.spanning_commits` +
    /// `.spanning_refusals`) and advances the logical clock by one tick
    /// per drained submission; shards record `service.batch_size` plus
    /// everything their planner and solver record.
    pub fleet: FleetConfig,
    /// Optional slotted reservation horizon. When set, every shard also
    /// carries a [`SchedulePlanner`](crate::SchedulePlanner) over the
    /// same [`TimeGrid`], and the service accepts windowed offers
    /// ([`FleetService::offer_windowed`]) and horizon advances
    /// ([`FleetService::advance_to`]). The instant admission plane
    /// (submit/tick) is unaffected. `None` (the default) disables the
    /// reservation plane.
    pub grid: Option<TimeGrid>,
}

/// One entry of a tick's merged, sequence-ordered event stream.
///
/// `seq` is always the global submission sequence number of the
/// submission that caused the event; an offer's `seq` doubles as the
/// flow's **global id** (ids are submission-ordered, across all shards).
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceEvent {
    /// The answer to an offer.
    Decision {
        /// The offer's submission seq = the flow's global id.
        seq: u64,
        /// Whether the flow (every leg, if spanning) was admitted.
        admitted: bool,
        /// Rate-weighted predicted in-time fraction (0 when rejected).
        predicted_quality: f64,
    },
    /// The answer to a departure.
    Departed {
        /// The departure's own submission seq.
        seq: u64,
        /// The global id of the flow asked to depart.
        flow: u64,
        /// Whether the service knew the flow (an unknown or already
        /// departed id answers `false` and changes nothing).
        found: bool,
    },
    /// A capacity event: a link change or freed capacity shed, revived
    /// or definitively rejected flows (global ids). For a spanning flow
    /// these lists name the flow per affected region — one leg can be
    /// shed while the others stay admitted.
    Capacity {
        /// The submission seq of the causing link change or departure.
        seq: u64,
        /// Flows newly shed into the re-admission queue.
        shed: Vec<u64>,
        /// Previously shed flows the capacity again accommodates.
        revived: Vec<u64>,
        /// Shed flows that exhausted their re-admission attempts.
        rejected: Vec<u64>,
    },
    /// A wire-side offer whose parameters failed validation; it consumed
    /// `seq` and answers with a `Verdict::Invalid` decision frame.
    InvalidOffer {
        /// The submission seq the malformed offer consumed.
        seq: u64,
        /// What was wrong with it.
        reason: String,
    },
}

impl ServiceEvent {
    /// The submission sequence number this event answers — the tick's
    /// merge key.
    pub fn seq(&self) -> u64 {
        match self {
            ServiceEvent::Decision { seq, .. }
            | ServiceEvent::Departed { seq, .. }
            | ServiceEvent::Capacity { seq, .. }
            | ServiceEvent::InvalidOffer { seq, .. } => *seq,
        }
    }
}

/// Who owns a global flow id.
#[derive(Debug, Clone)]
enum Owner {
    /// The flow lives wholly in one shard.
    Single(usize),
    /// The flow was split across regions; each leg is (shard, local id).
    /// Empty until the spanning offer commits.
    Spanning(Vec<(usize, FlowId)>),
}

/// A submission that must run in the sequential phase (it touches more
/// than one shard).
#[derive(Debug, Clone)]
enum SpanOp {
    Offer {
        seq: u64,
        request: FlowRequest,
        regions: Vec<usize>,
    },
    Depart {
        seq: u64,
        flow: u64,
    },
}

/// `dmc-fleetd`: a sharded, concurrent admission service over one
/// [`FleetPlanner`](crate::FleetPlanner) per capacity region.
///
/// Submissions ([`FleetService::submit`], [`FleetService::submit_depart`],
/// [`FleetService::submit_link`]) are cheap: they take a global sequence
/// number and queue the op on the owning shard. [`FleetService::tick`]
/// then runs every shard's queue — in parallel across `workers` scoped
/// threads — and merges the answers into one sequence-ordered event
/// stream. Flows whose path set spans regions are admitted in a
/// sequential two-phase reserve/commit after the parallel phase: the
/// rate (and cost budget) is split across regions by live-bandwidth
/// share, legs are reserved in ascending region order, and any refusal
/// rolls the reserved legs back in reverse.
///
/// The event stream is bitwise deterministic for a fixed submission
/// script at any worker count; [`FleetService::decision_hash`] folds
/// every event into a running FNV-1a hash so two runs can be compared in
/// O(1).
pub struct FleetService {
    regions: RegionMap,
    shards: Vec<Shard>,
    workers: usize,
    next_seq: u64,
    owners: BTreeMap<u64, Owner>,
    pending_span: Vec<SpanOp>,
    /// Events answered at submit time (unknown departs, invalid wire
    /// offers), merged into the next tick's stream.
    immediate: Vec<ServiceEvent>,
    /// Router-side mirror of per-path live bandwidth, for spanning-flow
    /// rate splits (updated at [`FleetService::submit_link`] time).
    path_bandwidth: Vec<f64>,
    path_failed: Vec<bool>,
    decision_hash: u64,
    /// Wire front end: service seq → client-chosen frame tag.
    echo: BTreeMap<u64, u64>,
    /// The parent telemetry registry ([`ServiceConfig::fleet`]'s `obs`);
    /// each shard holds a private fork of it.
    obs: dmc_obs::Obs,
    /// The configured reservation grid, `None` when the slotted plane is
    /// off. The live grids (origin advances) are inside the shards.
    grid: Option<TimeGrid>,
}

impl FleetService {
    /// Builds the service: partitions `paths` into capacity regions by
    /// the declared path `groups` (see [`RegionMap::new`]) and gives
    /// each region its own planner shard.
    ///
    /// # Errors
    ///
    /// Invalid regions (empty fleet, out-of-range group indices) or a
    /// per-shard planner construction failure.
    pub fn new(
        paths: Vec<ScenarioPath>,
        groups: &[Vec<usize>],
        config: ServiceConfig,
    ) -> Result<Self, FleetError> {
        let regions = RegionMap::new(paths.len(), groups)?;
        let obs = config.fleet.obs.clone();
        let mut shards = Vec::with_capacity(regions.num_regions());
        for r in 0..regions.num_regions() {
            let global: Vec<usize> = regions.region_paths(r).to_vec();
            let subset: Vec<ScenarioPath> = global.iter().map(|&k| paths[k].clone()).collect();
            let mut shard_config = config.fleet.clone();
            shard_config.obs = obs.fork();
            shards.push(Shard::new(global, subset, shard_config, config.grid)?);
        }
        let path_bandwidth = paths.iter().map(ScenarioPath::bandwidth).collect();
        Ok(FleetService {
            regions,
            shards,
            workers: resolved_workers_with(config.workers, &obs),
            next_seq: 0,
            owners: BTreeMap::new(),
            pending_span: Vec::new(),
            immediate: Vec::new(),
            path_bandwidth,
            path_failed: vec![false; paths.len()],
            decision_hash: FNV_BASIS,
            echo: BTreeMap::new(),
            obs,
            grid: config.grid,
        })
    }

    /// Queues an offer. The returned seq is the flow's **global id**
    /// (valid whatever the eventual verdict); the answer arrives as a
    /// [`ServiceEvent::Decision`] from the next [`FleetService::tick`].
    ///
    /// # Errors
    ///
    /// Rejects a request whose path set names an out-of-range index.
    pub fn submit(&mut self, request: FlowRequest) -> Result<u64, FleetError> {
        let n = self.path_bandwidth.len();
        if let Some(&bad) = request.paths().and_then(|s| s.iter().find(|&&k| k >= n)) {
            return Err(FleetError::Invalid(format!(
                "flow path index {bad} out of range ({n} shared paths)"
            )));
        }
        let touched = match request.paths() {
            Some(subset) => self.regions.regions_of(subset),
            None => (0..self.regions.num_regions()).collect(),
        };
        let seq = self.alloc_seq();
        if let [shard] = touched[..] {
            let localized = self.localize(&request, shard);
            self.owners.insert(seq, Owner::Single(shard));
            self.shards[shard].enqueue(ShardOp::Offer {
                seq,
                request: localized,
            });
        } else {
            self.owners.insert(seq, Owner::Spanning(Vec::new()));
            self.pending_span.push(SpanOp::Offer {
                seq,
                request,
                regions: touched,
            });
        }
        Ok(seq)
    }

    /// Queues a departure of global flow id `flow`; answered by a
    /// [`ServiceEvent::Departed`] (with `found: false` for an unknown or
    /// already departed id). Returns the departure's own seq.
    pub fn submit_depart(&mut self, flow: u64) -> u64 {
        let seq = self.alloc_seq();
        match self.owners.get(&flow) {
            Some(Owner::Single(shard)) => {
                let shard = *shard;
                self.shards[shard].enqueue(ShardOp::Depart { seq, flow });
            }
            Some(Owner::Spanning(_)) => self.pending_span.push(SpanOp::Depart { seq, flow }),
            None => self.immediate.push(ServiceEvent::Departed {
                seq,
                flow,
                found: false,
            }),
        }
        seq
    }

    /// Queues a link change on a global path index, in the
    /// [`dmc_sim::LinkChange`] vocabulary; answered by a
    /// [`ServiceEvent::Capacity`]. Returns the change's seq.
    ///
    /// # Errors
    ///
    /// Bad path index or invalid change parameters (checked here, so a
    /// tick never fails on them).
    pub fn submit_link(&mut self, path: usize, change: LinkChange) -> Result<u64, FleetError> {
        let n = self.path_bandwidth.len();
        if path >= n {
            return Err(FleetError::Invalid(format!(
                "path index {path} out of range ({n} shared paths)"
            )));
        }
        match &change {
            LinkChange::SetBandwidth(bps) => {
                if !(*bps > 0.0) || !bps.is_finite() {
                    return Err(FleetError::Invalid(format!(
                        "bandwidth must be finite and > 0, got {bps}"
                    )));
                }
                self.path_bandwidth[path] = *bps;
            }
            LinkChange::SetLoss(model) => model.validate().map_err(FleetError::Invalid)?,
            LinkChange::Fail => self.path_failed[path] = true,
            LinkChange::Recover => self.path_failed[path] = false,
        }
        let seq = self.alloc_seq();
        let region = self
            .regions
            .region_of(path)
            .expect("a validated path index always has a region");
        let local = self.shards[region]
            .local_path_index(path)
            .expect("a region always contains each of its member paths");
        self.shards[region].enqueue(ShardOp::Link {
            seq,
            path: local,
            change,
        });
        Ok(seq)
    }

    /// Runs one batched tick: every shard drains its queue (in parallel
    /// across the workers), then the sequential spanning phase runs, and
    /// the answers are merged in submission-sequence order. Also folds
    /// each event into [`FleetService::decision_hash`].
    ///
    /// # Errors
    ///
    /// The first shard's planner/solver error, in shard order. A failed
    /// tick drops its queued work; the service should be considered
    /// poisoned for determinism purposes.
    pub fn tick(&mut self) -> Result<Vec<ServiceEvent>, FleetError> {
        if self.obs.is_enabled() {
            self.obs.counter("service.ticks").inc();
            let mut drained = self.pending_span.len() as u64;
            let depth = self.obs.histogram("service.queue_depth");
            for shard in &self.shards {
                depth.record(shard.queue_len() as u64);
                drained += shard.queue_len() as u64;
            }
            // One logical-clock tick per submission drained this tick.
            self.obs.advance(drained);
        }
        self.run_shards();
        let mut first_error = None;
        for shard in &mut self.shards {
            let error = shard.take_error();
            if first_error.is_none() {
                first_error = error;
            }
        }
        if let Some(e) = first_error {
            for shard in &mut self.shards {
                shard.drain_out();
            }
            self.immediate.clear();
            self.pending_span.clear();
            return Err(e);
        }
        let mut events: Vec<ServiceEvent> = Vec::new();
        for shard in &mut self.shards {
            events.append(&mut shard.drain_out());
        }
        events.append(&mut self.immediate);
        for op in std::mem::take(&mut self.pending_span) {
            match op {
                SpanOp::Offer {
                    seq,
                    request,
                    regions,
                } => self.admit_spanning(seq, &request, &regions, &mut events)?,
                SpanOp::Depart { seq, flow } => self.depart_spanning(seq, flow, &mut events)?,
            }
        }
        events.sort_by_key(ServiceEvent::seq);
        self.obs.counter("service.events").add(events.len() as u64);
        self.prune_owners(&events);
        for event in &events {
            self.fold_into_hash(event);
        }
        Ok(events)
    }

    /// One merged telemetry snapshot: the parent registry
    /// ([`ServiceConfig::fleet`]'s `obs`) absorbed with every shard's
    /// private fork, in ascending shard order. Deterministic for a fixed
    /// submission script at any worker count, like the event stream.
    /// Empty (all-default) when telemetry is disabled.
    pub fn obs_snapshot(&self) -> dmc_obs::Snapshot {
        let mut snap = self.obs.snapshot();
        for shard in &self.shards {
            snap.absorb(&shard.obs().snapshot());
        }
        snap
    }

    /// The region partition the service runs on.
    pub fn region_map(&self) -> &RegionMap {
        &self.regions
    }

    /// Number of shards (= capacity regions).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of shared paths.
    pub fn num_paths(&self) -> usize {
        self.path_bandwidth.len()
    }

    /// The resolved worker-thread count for the parallel tick phase.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Total submissions taken so far (= the next seq to be assigned).
    pub fn submissions(&self) -> u64 {
        self.next_seq
    }

    /// Running FNV-1a 64 hash over the `Debug` rendering of every event
    /// every tick has produced, in merged order — two runs of the same
    /// script are bitwise identical iff their hashes match.
    pub fn decision_hash(&self) -> u64 {
        self.decision_hash
    }

    /// Currently admitted flow legs summed over all shards (a spanning
    /// flow counts once per region it was split across).
    pub fn num_admitted_legs(&self) -> usize {
        self.shards.iter().map(Shard::num_flows).sum()
    }

    /// Aggregate allocated send rate per global path, bits/second,
    /// summed over every shard's admitted flows.
    pub fn utilization(&self) -> Vec<f64> {
        let mut util = vec![0.0; self.path_bandwidth.len()];
        for shard in &self.shards {
            for (&global, value) in shard.global_paths().iter().zip(shard.utilization()) {
                util[global] = value;
            }
        }
        util
    }

    /// The admitted per-leg [`Plan`]s of a global flow id (one entry for
    /// a single-region flow, one per region for a spanning flow; empty
    /// for unknown, rejected or departed flows).
    pub fn leg_plans(&self, flow: u64) -> Vec<&Plan> {
        match self.owners.get(&flow) {
            Some(Owner::Single(shard)) => self.shards[*shard]
                .plan_of_global(flow)
                .into_iter()
                .collect(),
            Some(Owner::Spanning(legs)) => legs
                .iter()
                .filter_map(|&(shard, local)| self.shards[shard].plan_local(local))
                .collect(),
            None => Vec::new(),
        }
    }

    /// The configured reservation grid, `None` when windowed offers are
    /// disabled. (The live per-shard grids advance their origin through
    /// [`FleetService::advance_to`]; this is the construction-time grid.)
    pub fn schedule_grid(&self) -> Option<TimeGrid> {
        self.grid
    }

    /// Offers a windowed request to the slotted reservation plane,
    /// synchronously (reservations are forward-looking control-plane
    /// decisions — they never ride the tick queue, so the answer is
    /// immediate and the instant plane's event stream is untouched).
    ///
    /// The decision's [`FlowId`] is scoped to the returned region index:
    /// pass both back to [`FleetService::depart_windowed`]. Deterministic
    /// like everything else — windowed offers run on the caller's
    /// thread, one at a time.
    ///
    /// # Errors
    ///
    /// No grid configured ([`ServiceConfig::grid`]), an out-of-range
    /// path index, a request spanning more than one capacity region
    /// (split it per region and offer each leg), or a planner failure.
    pub fn offer_windowed(
        &mut self,
        request: ScheduleRequest,
    ) -> Result<(usize, ScheduleDecision), FleetError> {
        if self.grid.is_none() {
            return Err(FleetError::Invalid(
                "windowed offers need a TimeGrid in ServiceConfig::grid".into(),
            ));
        }
        let n = self.path_bandwidth.len();
        if let Some(&bad) = request
            .flow()
            .paths()
            .and_then(|s| s.iter().find(|&&k| k >= n))
        {
            return Err(FleetError::Invalid(format!(
                "flow path index {bad} out of range ({n} shared paths)"
            )));
        }
        let touched = match request.flow().paths() {
            Some(subset) => self.regions.regions_of(subset),
            None => (0..self.regions.num_regions()).collect(),
        };
        let [region] = touched[..] else {
            return Err(FleetError::Invalid(format!(
                "windowed offers must stay within one capacity region \
                 (this one touches {}); split the request per region",
                touched.len()
            )));
        };
        let localized = self.localize(request.flow(), region);
        let mut windowed = ScheduleRequest::new(localized, request.window());
        if request.buffer() > 0.0 {
            windowed = windowed.with_buffer(request.buffer());
        }
        let decision = self.shards[region].offer_windowed(windowed)?;
        Ok((region, decision))
    }

    /// Withdraws a windowed flow from its region's reservation plane
    /// (scheduled or still-reserved alike).
    ///
    /// # Errors
    ///
    /// Unknown region/flow, or no grid configured.
    pub fn depart_windowed(&mut self, region: usize, id: FlowId) -> Result<(), FleetError> {
        let Some(shard) = self.shards.get_mut(region) else {
            return Err(FleetError::Invalid(format!(
                "region index {region} out of range ({} regions)",
                self.regions.num_regions()
            )));
        };
        shard.depart_windowed(id)
    }

    /// Advances every shard's reservation horizon to `new_origin`, in
    /// ascending region order: expired windows complete, straddling ones
    /// truncate, reservations whose windows opened re-certify. Returns
    /// one [`ScheduleAdvance`] per region (flow ids are region-scoped).
    ///
    /// # Errors
    ///
    /// No grid configured, `new_origin` before a shard's current origin,
    /// or a solver failure mid-advance (the service should then be
    /// considered poisoned for determinism purposes, like a failed tick).
    pub fn advance_to(&mut self, new_origin: u64) -> Result<Vec<ScheduleAdvance>, FleetError> {
        if self.grid.is_none() {
            return Err(FleetError::Invalid(
                "horizon advance needs a TimeGrid in ServiceConfig::grid".into(),
            ));
        }
        self.shards
            .iter_mut()
            .map(|shard| shard.advance_schedule(new_origin))
            .collect()
    }

    /// Scheduled-or-reserved windowed flows per region (ascending region
    /// order). Empty when no grid is configured.
    pub fn windowed_flows(&self) -> Vec<usize> {
        self.shards
            .iter()
            .filter_map(|s| s.schedule().map(crate::SchedulePlanner::num_flows))
            .collect()
    }

    pub(crate) fn alloc_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    pub(crate) fn push_invalid(&mut self, seq: u64, reason: String) {
        self.immediate
            .push(ServiceEvent::InvalidOffer { seq, reason });
    }

    pub(crate) fn record_echo(&mut self, seq: u64, client_tag: u64) {
        self.echo.insert(seq, client_tag);
    }

    pub(crate) fn take_echoes(&mut self) -> BTreeMap<u64, u64> {
        std::mem::take(&mut self.echo)
    }

    /// The parallel phase: contiguous chunks of shards across scoped
    /// worker threads. Shards are fully independent, so the result is
    /// identical to the sequential loop at any worker count.
    fn run_shards(&mut self) {
        let workers = self.workers.clamp(1, self.shards.len().max(1));
        if workers <= 1 {
            for shard in &mut self.shards {
                shard.run_tick();
            }
            return;
        }
        let chunk = self.shards.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for shard_chunk in self.shards.chunks_mut(chunk) {
                scope.spawn(move || {
                    for shard in shard_chunk {
                        shard.run_tick();
                    }
                });
            }
        });
    }

    /// Rewrites a single-region request's global path indices to the
    /// owning shard's local indices.
    fn localize(&self, request: &FlowRequest, shard: usize) -> FlowRequest {
        match request.paths() {
            None => request.clone(),
            Some(subset) => {
                let sh = &self.shards[shard];
                let local: Vec<usize> = subset
                    .iter()
                    .filter_map(|&k| sh.local_path_index(k))
                    .collect();
                request.scaled_to(request.data_rate(), request.cost_budget(), Some(local))
            }
        }
    }

    /// Two-phase reserve/commit of a region-spanning flow: split the
    /// rate (and any cost budget) across its regions by live-bandwidth
    /// share, reserve each leg in ascending region order, commit them
    /// all or roll the reserved ones back in reverse on any refusal.
    fn admit_spanning(
        &mut self,
        seq: u64,
        request: &FlowRequest,
        regions: &[usize],
        events: &mut Vec<ServiceEvent>,
    ) -> Result<(), FleetError> {
        let subset: Vec<usize> = match request.paths() {
            Some(s) => s.to_vec(),
            None => (0..self.path_bandwidth.len()).collect(),
        };
        struct Leg {
            shard: usize,
            local_paths: Vec<usize>,
            bandwidth: f64,
        }
        let mut legs: Vec<Leg> = Vec::new();
        for &r in regions {
            let mut local_paths = Vec::new();
            let mut bandwidth = 0.0;
            for &k in &subset {
                if let Some(local) = self.shards[r].local_path_index(k) {
                    local_paths.push(local);
                    if !self.path_failed[k] {
                        bandwidth += self.path_bandwidth[k];
                    }
                }
            }
            // A region whose usable paths are all down cannot carry a
            // share; leave it out of the split entirely.
            if !local_paths.is_empty() && bandwidth > 0.0 {
                legs.push(Leg {
                    shard: r,
                    local_paths,
                    bandwidth,
                });
            }
        }
        self.obs.counter("service.spanning_offers").inc();
        let total: f64 = legs.iter().map(|leg| leg.bandwidth).sum();
        if legs.is_empty() || !(total > 0.0) {
            self.obs.counter("service.spanning_refusals").inc();
            events.push(ServiceEvent::Decision {
                seq,
                admitted: false,
                predicted_quality: 0.0,
            });
            return Ok(());
        }
        // Phase 1: reserve, ascending region order.
        let mut reserved: Vec<(usize, FlowId, f64, f64)> = Vec::new();
        let mut refused = false;
        for leg in &legs {
            let share = leg.bandwidth / total;
            let rate = request.data_rate() * share;
            let budget = if request.cost_budget().is_finite() {
                request.cost_budget() * share
            } else {
                f64::INFINITY
            };
            let leg_request = request.scaled_to(rate, budget, Some(leg.local_paths.clone()));
            match self.shards[leg.shard].offer_local(leg_request)? {
                AdmissionDecision::Admitted {
                    id,
                    predicted_quality,
                } => reserved.push((leg.shard, id, rate, predicted_quality)),
                AdmissionDecision::Rejected { .. } => {
                    refused = true;
                    break;
                }
            }
        }
        if refused {
            self.obs.counter("service.spanning_refusals").inc();
            // Roll back in reverse reservation order; the freed capacity
            // may revive shed flows, surfaced as capacity events.
            for &(shard, local, _, _) in reserved.iter().rev() {
                self.shards[shard].rollback_reservation(seq, local, events)?;
            }
            events.push(ServiceEvent::Decision {
                seq,
                admitted: false,
                predicted_quality: 0.0,
            });
            return Ok(());
        }
        // Phase 2: commit every leg under the flow's global id.
        let mut committed = Vec::with_capacity(reserved.len());
        let mut quality = 0.0;
        for &(shard, local, rate, leg_quality) in &reserved {
            self.shards[shard].register(seq, local);
            committed.push((shard, local));
            quality += rate * leg_quality;
        }
        quality /= request.data_rate();
        self.obs.counter("service.spanning_commits").inc();
        self.owners.insert(seq, Owner::Spanning(committed));
        events.push(ServiceEvent::Decision {
            seq,
            admitted: true,
            predicted_quality: quality,
        });
        Ok(())
    }

    fn depart_spanning(
        &mut self,
        seq: u64,
        flow: u64,
        events: &mut Vec<ServiceEvent>,
    ) -> Result<(), FleetError> {
        let legs = match self.owners.get(&flow) {
            Some(Owner::Spanning(legs)) if !legs.is_empty() => legs.clone(),
            _ => {
                events.push(ServiceEvent::Departed {
                    seq,
                    flow,
                    found: false,
                });
                return Ok(());
            }
        };
        for (shard, local) in legs {
            self.shards[shard].depart_local(seq, local, events)?;
        }
        events.push(ServiceEvent::Departed {
            seq,
            flow,
            found: true,
        });
        Ok(())
    }

    /// Forgets flows this tick settled: rejected/invalid offers,
    /// successful departures, and definitively rejected shed flows (for
    /// a spanning flow, only the legs whose shard really dropped them —
    /// the owner survives while any leg remains admitted or queued).
    fn prune_owners(&mut self, events: &[ServiceEvent]) {
        let Self { owners, shards, .. } = self;
        for event in events {
            match event {
                ServiceEvent::Decision {
                    seq,
                    admitted: false,
                    ..
                }
                | ServiceEvent::InvalidOffer { seq, .. } => {
                    owners.remove(seq);
                }
                ServiceEvent::Departed {
                    flow, found: true, ..
                } => {
                    owners.remove(flow);
                }
                ServiceEvent::Capacity { rejected, .. } => {
                    for flow in rejected {
                        let gone = match owners.get_mut(flow) {
                            Some(Owner::Spanning(legs)) => {
                                legs.retain(|&(shard, _)| shards[shard].owns(*flow));
                                legs.is_empty()
                            }
                            Some(Owner::Single(_)) => true,
                            None => false,
                        };
                        if gone {
                            owners.remove(flow);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    fn fold_into_hash(&mut self, event: &ServiceEvent) {
        for byte in format!("{event:?}").bytes() {
            self.decision_hash ^= u64::from(byte);
            self.decision_hash = self.decision_hash.wrapping_mul(FNV_PRIME);
        }
    }
}
