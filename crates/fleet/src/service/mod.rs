//! `dmc-fleetd` — the sharded, concurrent fleet admission service.
//!
//! [`FleetPlanner`](crate::FleetPlanner) is a single-threaded library
//! object: one lock around it would serialize every offer and departure
//! of a million-flow deployment. This module is the service layer that
//! removes that bottleneck without touching the solver:
//!
//! * **Region sharding** ([`RegionMap`]) — the shared paths are
//!   partitioned into *capacity regions* by union-find over declared
//!   path groups: two paths land in the same region exactly when some
//!   expected flow class may use both. Flows with disjoint path sets
//!   never share a capacity row of the joint LP, so each region gets its
//!   own `FleetPlanner` (and its own warm-basis cache) and regions never
//!   contend.
//! * **Shard router + workers** ([`FleetService`]) — submissions are
//!   sequence-numbered and queued per shard; [`FleetService::tick`]
//!   drains every queue in one *batched tick*, with the shards split
//!   across `std::thread` scoped workers. Within a shard, consecutive
//!   offers collapse into one [`offer_batch`](crate::FleetPlanner::offer_batch)
//!   solve and consecutive departures into one
//!   [`depart_batch`](crate::FleetPlanner::depart_batch) solve. Flows
//!   whose path set spans regions go through a deterministic two-phase
//!   reserve/commit after the parallel phase, with rollback on any
//!   shard's refusal.
//! * **Wire front end** — [`FleetService::handle_frame`] and
//!   [`FleetService::tick_frames`] speak the checksummed
//!   [`dmc_proto::wire`] Offer/Decision/Depart/LinkChange frames, so the
//!   chaos harness and the `fleet_service` bench drive the service
//!   end-to-end over encoded bytes.
//!
//! # Determinism contract
//!
//! Per-shard event streams are independent (a shard only ever touches
//! its own planner), the workers partition the shards into contiguous
//! chunks, and the router merges each tick's events in submission
//! sequence order — so a fixed submission script produces **bitwise
//! identical** decisions, plans and [`FleetService::decision_hash`] at
//! *any* worker count (`tests/service.rs` pins workers 1 vs 4).
//!
//! # The reservation plane
//!
//! When [`ServiceConfig::grid`] carries a
//! [`TimeGrid`](crate::TimeGrid), every shard additionally hosts a
//! [`SchedulePlanner`](crate::SchedulePlanner): windowed offers
//! ([`FleetService::offer_windowed`]) are answered **synchronously**
//! with a [`ScheduleDecision`](crate::ScheduleDecision) — scheduled in
//! the requested [`SlotWindow`](crate::SlotWindow), *reserved* for the
//! earliest feasible later window, or rejected — and
//! [`FleetService::advance_to`] slides every shard's horizon in step.
//! Reservation decisions are control-plane and region-scoped; they
//! never ride the tick queue and never contend with the instant
//! admission path.
//!
//! # Example
//!
//! ```
//! use dmc_core::ScenarioPath;
//! use dmc_fleet::service::{FleetService, ServiceConfig};
//! use dmc_fleet::{FlowRequest, ScheduleRequest, ServiceEvent, SlotWindow, TimeGrid};
//!
//! # fn main() -> Result<(), dmc_fleet::FleetError> {
//! let paths = vec![
//!     ScenarioPath::constant(80e6, 0.450, 0.2)?,
//!     ScenarioPath::constant(20e6, 0.150, 0.0)?,
//! ];
//! let config = ServiceConfig {
//!     grid: Some(TimeGrid::new(0.5, 8)?), // enable the reservation plane
//!     ..ServiceConfig::default()
//! };
//! // One declared flow class may use both paths → one capacity region.
//! let mut service = FleetService::new(paths, &[vec![0, 1]], config)?;
//!
//! // Instant plane: queue an offer, tick, read the decision.
//! let seq = service.submit(FlowRequest::new(30e6, 0.8)?)?;
//! let events = service.tick()?;
//! assert!(matches!(
//!     events[0],
//!     ServiceEvent::Decision { seq: s, admitted: true, .. } if s == seq
//! ));
//!
//! // Reservation plane: a windowed offer is answered synchronously.
//! let request = ScheduleRequest::new(FlowRequest::new(20e6, 0.8)?, SlotWindow::new(0, 2)?);
//! let (region, decision) = service.offer_windowed(request)?;
//! assert!(decision.is_admitted());
//! // Slide the horizon past the window: the flow completes.
//! let advances = service.advance_to(2)?;
//! assert_eq!(advances[region].completed, vec![decision.id()]);
//! # Ok(())
//! # }
//! ```

mod region;
mod router;
mod shard;
mod wire;

pub use region::RegionMap;
pub use router::{FleetService, ServiceConfig, ServiceEvent};

use std::sync::atomic::{AtomicBool, Ordering};

/// Warn at most once per process about an unparseable `DMC_THREADS`.
static WARNED_BAD_DMC_THREADS: AtomicBool = AtomicBool::new(false);

/// Resolves a requested worker count for the service (and for the
/// Monte-Carlo trial pool, which delegates here): a nonzero request wins
/// verbatim; `0` defers to the `DMC_THREADS` environment variable, then
/// to the machine's available parallelism.
///
/// Thin shim over [`resolved_workers_with`] with a disabled telemetry
/// registry: an unparseable `DMC_THREADS` warns on stderr at most once
/// per process. Callers that own an [`dmc_obs::Obs`] should prefer
/// [`resolved_workers_with`], which records the warning as a structured
/// [`dmc_obs::WarningRecord`] instead.
pub fn resolved_workers(requested: usize) -> usize {
    resolved_workers_with(requested, &dmc_obs::Obs::disabled())
}

/// [`resolved_workers`] with a telemetry registry.
///
/// Parsed environment values are clamped to ≥ 1 — `DMC_THREADS=0` used
/// to parse "successfully" and configure a zero-width pool — and an
/// unparseable value is treated as unset instead of being silently
/// swallowed. With an enabled registry the mishap is recorded once per
/// registry under the warning key `service.bad_dmc_threads` (message,
/// occurrence count) and echoed to stderr on first sight; with a
/// disabled registry it falls back to a once-per-process stderr line.
pub fn resolved_workers_with(requested: usize, obs: &dmc_obs::Obs) -> usize {
    if requested != 0 {
        return requested;
    }
    match std::env::var("DMC_THREADS") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) => n.max(1),
            Err(_) => {
                let message = format!("DMC_THREADS={raw:?} is not a number; treating it as unset");
                let first = if obs.is_enabled() {
                    obs.warn_once("service.bad_dmc_threads", message.clone())
                } else {
                    !WARNED_BAD_DMC_THREADS.swap(true, Ordering::Relaxed)
                };
                if first {
                    eprintln!("warning: {message}");
                }
                available_parallelism()
            }
        },
        Err(_) => available_parallelism(),
    }
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolved_workers_clamps_and_falls_back() {
        // One test mutates the process environment for every case, so
        // the cases cannot race each other across #[test] threads.
        assert_eq!(resolved_workers(3), 3);

        std::env::set_var("DMC_THREADS", "2");
        assert_eq!(resolved_workers(0), 2);
        // An explicit request still beats the environment.
        assert_eq!(resolved_workers(5), 5);

        // The regression: DMC_THREADS=0 parses, and used to configure a
        // zero-width pool; it must clamp to one worker.
        std::env::set_var("DMC_THREADS", "0");
        assert_eq!(resolved_workers(0), 1);

        // Unparseable values fall back to the machine default (≥ 1)
        // instead of being silently treated as a count.
        std::env::set_var("DMC_THREADS", "lots");
        assert!(resolved_workers(0) >= 1);

        // With a registry, the mishap becomes a structured warning:
        // first message wins, later sightings only bump the count.
        let obs = dmc_obs::Obs::enabled();
        assert!(resolved_workers_with(0, &obs) >= 1);
        assert!(resolved_workers_with(0, &obs) >= 1);
        let snap = obs.snapshot();
        let warning = snap
            .warnings
            .iter()
            .find(|w| w.key == "service.bad_dmc_threads")
            .expect("bad DMC_THREADS recorded as a warning");
        assert_eq!(warning.count, 2);
        assert!(warning.message.contains("lots"));

        std::env::remove_var("DMC_THREADS");
        assert!(resolved_workers(0) >= 1);
    }
}
